#include "src/workload/distributions.h"

#include <cmath>

#include "src/util/logging.h"

namespace lazytree::workload {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

}  // namespace

ZipfianDist::ZipfianDist(uint64_t n, Key space, double theta)
    : n_(n), space_(space), theta_(theta) {
  LAZYTREE_CHECK(n_ >= 1 && theta_ > 0 && theta_ < 1)
      << "zipfian wants 0 < theta < 1";
  zetan_ = Zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

Key ZipfianDist::KeyForRank(uint64_t rank) const {
  // Scramble so hot keys are not adjacent (fnv-ish mix into the space).
  uint64_t h = rank;
  h = SplitMix64(h);
  return 1 + (h % (space_ - 1));
}

uint64_t ZipfianDist::NextRank(Rng& rng) const {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
  uint64_t rank = 1 + static_cast<uint64_t>(
                          static_cast<double>(n_) *
                          std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank > n_ ? n_ : rank;
}

Key ZipfianDist::Next(Rng& rng) { return KeyForRank(NextRank(rng)); }

std::unique_ptr<KeyDistribution> MakeDistribution(const std::string& name,
                                                  Key space) {
  if (name == "uniform") return std::make_unique<UniformDist>(space);
  if (name == "sequential") return std::make_unique<SequentialDist>();
  if (name == "zipfian") {
    return std::make_unique<ZipfianDist>(/*n=*/100000, space);
  }
  if (name == "hotspot") {
    return std::make_unique<HotspotDist>(space, 0.05, 0.9);
  }
  LAZYTREE_CHECK(false) << "unknown distribution " << name;
  return nullptr;
}

}  // namespace lazytree::workload
