// Key distributions for workload generation.
//
// The benches sweep access patterns because the dB-tree's behaviour is
// pattern-sensitive: sequential ingest hammers the rightmost leaf (the
// data-balancing motivation of [14]), Zipfian reads concentrate on a few
// hot paths (where interior replication pays), and uniform traffic is
// the neutral baseline.

#ifndef LAZYTREE_WORKLOAD_DISTRIBUTIONS_H_
#define LAZYTREE_WORKLOAD_DISTRIBUTIONS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/msg/key.h"
#include "src/util/rng.h"

namespace lazytree::workload {

/// Generates keys in [1, space) under some distribution.
class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;
  virtual Key Next(Rng& rng) = 0;
  virtual const char* name() const = 0;
};

/// Uniform over the key space.
class UniformDist : public KeyDistribution {
 public:
  explicit UniformDist(Key space) : space_(space) {}
  Key Next(Rng& rng) override { return 1 + rng.Below(space_ - 1); }
  const char* name() const override { return "uniform"; }

 private:
  Key space_;
};

/// Strictly increasing keys — the time-ordered ingest pattern that sends
/// every insert to the current rightmost leaf.
class SequentialDist : public KeyDistribution {
 public:
  explicit SequentialDist(Key start = 1, Key stride = 1)
      : next_(start), stride_(stride) {}
  Key Next(Rng&) override {
    Key k = next_;
    next_ += stride_;
    return k;
  }
  const char* name() const override { return "sequential"; }

 private:
  Key next_;
  Key stride_;
};

/// Zipfian over `n` distinct ranks mapped onto the key space, using the
/// Gray et al. rejection-free approximation (as in YCSB). Rank r has
/// probability proportional to 1/r^theta.
class ZipfianDist : public KeyDistribution {
 public:
  ZipfianDist(uint64_t n, Key space, double theta = 0.99);
  Key Next(Rng& rng) override;
  const char* name() const override { return "zipfian"; }

  /// Rank -> key mapping (scrambled so hot ranks scatter over the space).
  Key KeyForRank(uint64_t rank) const;

 private:
  uint64_t n_;
  Key space_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

/// A fraction `hot_ops` of accesses hit a contiguous `hot_fraction` of
/// the key space (the classic hotspot model).
class HotspotDist : public KeyDistribution {
 public:
  HotspotDist(Key space, double hot_fraction, double hot_ops)
      : space_(space), hot_fraction_(hot_fraction), hot_ops_(hot_ops) {}
  Key Next(Rng& rng) override {
    const Key hot_span =
        std::max<Key>(1, static_cast<Key>(space_ * hot_fraction_));
    if (rng.Chance(hot_ops_)) return 1 + rng.Below(hot_span);
    return 1 + rng.Below(space_ - 1);
  }
  const char* name() const override { return "hotspot"; }

 private:
  Key space_;
  double hot_fraction_;
  double hot_ops_;
};

/// Factory by name ("uniform" | "sequential" | "zipfian" | "hotspot").
std::unique_ptr<KeyDistribution> MakeDistribution(const std::string& name,
                                                  Key space);

}  // namespace lazytree::workload

#endif  // LAZYTREE_WORKLOAD_DISTRIBUTIONS_H_
