// Key distributions for workload generation.
//
// The benches sweep access patterns because the dB-tree's behaviour is
// pattern-sensitive: sequential ingest hammers the rightmost leaf (the
// data-balancing motivation of [14]), Zipfian reads concentrate on a few
// hot paths (where interior replication pays), and uniform traffic is
// the neutral baseline.

#ifndef LAZYTREE_WORKLOAD_DISTRIBUTIONS_H_
#define LAZYTREE_WORKLOAD_DISTRIBUTIONS_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/msg/key.h"
#include "src/util/rng.h"

namespace lazytree::workload {

/// Generates keys in [1, space) under some distribution.
class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;
  virtual Key Next(Rng& rng) = 0;
  virtual const char* name() const = 0;
};

/// Uniform over the key space.
class UniformDist : public KeyDistribution {
 public:
  explicit UniformDist(Key space) : space_(space) {}
  Key Next(Rng& rng) override { return 1 + rng.Below(space_ - 1); }
  const char* name() const override { return "uniform"; }

 private:
  Key space_;
};

/// Strictly increasing keys — the time-ordered ingest pattern that sends
/// every insert to the current rightmost leaf.
class SequentialDist : public KeyDistribution {
 public:
  explicit SequentialDist(Key start = 1, Key stride = 1)
      : next_(start), stride_(stride) {}
  Key Next(Rng&) override {
    Key k = next_;
    next_ += stride_;
    return k;
  }
  const char* name() const override { return "sequential"; }

 private:
  Key next_;
  Key stride_;
};

/// Zipfian over `n` distinct ranks mapped onto the key space, using the
/// Gray et al. rejection-free approximation (as in YCSB). Rank r has
/// probability proportional to 1/r^theta.
class ZipfianDist : public KeyDistribution {
 public:
  ZipfianDist(uint64_t n, Key space, double theta = 0.99);
  Key Next(Rng& rng) override;
  const char* name() const override { return "zipfian"; }

  /// Rank -> key mapping (scrambled so hot ranks scatter over the space).
  Key KeyForRank(uint64_t rank) const;

  /// Samples just the rank in [1, n] (rank 1 hottest) — building block
  /// for distributions that map ranks onto something other than the key
  /// space (LatestDist maps them onto insert recency).
  uint64_t NextRank(Rng& rng) const;

 private:
  uint64_t n_;
  Key space_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

/// A fraction `hot_ops` of accesses hit a contiguous `hot_fraction` of
/// the key space (the classic hotspot model).
class HotspotDist : public KeyDistribution {
 public:
  HotspotDist(Key space, double hot_fraction, double hot_ops)
      : space_(space), hot_fraction_(hot_fraction), hot_ops_(hot_ops) {}
  Key Next(Rng& rng) override {
    const Key hot_span =
        std::max<Key>(1, static_cast<Key>(space_ * hot_fraction_));
    if (rng.Chance(hot_ops_)) return 1 + rng.Below(hot_span);
    return 1 + rng.Below(space_ - 1);
  }
  const char* name() const override { return "hotspot"; }

 private:
  Key space_;
  double hot_fraction_;
  double hot_ops_;
};

/// YCSB's "latest" distribution, made race-free: reads skew (zipfian)
/// toward the most recently *completed* inserts. The insert side calls
/// Publish(key) from the operation's completion callback — never at
/// submit time — so every key Next() can hand out refers to an insert
/// whose reply some client has already seen, and a search for it must
/// succeed (the leaf applied the insert before the reply was sent).
/// Sampling keys derived from the *issue* counter instead is the ycsb-d
/// anomaly BENCH_PR6 exposed: reads race their own in-flight inserts and
/// not_found explodes on the threads transport — 2563 vs 104 on sim for
/// the same seed, purely from the wider submit-to-apply window real
/// threads have (see EXPERIMENTS.md).
///
/// Concurrency: Publish and Next are both any-thread. The ring slots are
/// atomics; a sampler racing a publisher can read a slot that still
/// holds an older completed key, which is benign — it is still a
/// completed key. Slots start at key 1, so before the first Publish the
/// distribution probes a fixed (possibly absent) key.
class LatestDist : public KeyDistribution {
 public:
  /// `window` bounds how far back the recency skew reaches.
  explicit LatestDist(Key space, uint64_t window = 1024,
                      double theta = 0.99)
      : rank_dist_(window, space, theta), ring_(window), window_(window) {
    for (auto& slot : ring_) slot.store(1, std::memory_order_relaxed);
  }

  /// Records a completed insert's key (call from the completion path).
  void Publish(Key key) {
    const uint64_t h = head_.fetch_add(1, std::memory_order_acq_rel);
    ring_[h % window_].store(key, std::memory_order_release);
  }

  Key Next(Rng& rng) override {
    const uint64_t h = head_.load(std::memory_order_acquire);
    if (h == 0) return 1;  // nothing completed yet
    uint64_t rank = rank_dist_.NextRank(rng);  // 1 = most recent
    const uint64_t depth = h < window_ ? h : window_;
    if (rank > depth) rank = 1 + (rank - 1) % depth;
    return ring_[(h - rank) % window_].load(std::memory_order_acquire);
  }
  const char* name() const override { return "latest"; }

 private:
  ZipfianDist rank_dist_;
  std::vector<std::atomic<Key>> ring_;
  uint64_t window_;
  std::atomic<uint64_t> head_{0};
};

/// Factory by name ("uniform" | "sequential" | "zipfian" | "hotspot").
/// "latest" is not constructible here: it needs the caller's completed-
/// insert frontier (see LatestDist).
std::unique_ptr<KeyDistribution> MakeDistribution(const std::string& name,
                                                  Key space);

}  // namespace lazytree::workload

#endif  // LAZYTREE_WORKLOAD_DISTRIBUTIONS_H_
