// Workload generator: turns an operation mix + key distribution into a
// reproducible operation stream (deletes draw from previously inserted
// keys, so streams make sense against a dictionary).

#ifndef LAZYTREE_WORKLOAD_GENERATOR_H_
#define LAZYTREE_WORKLOAD_GENERATOR_H_

#include <memory>
#include <vector>

#include "src/workload/distributions.h"

namespace lazytree::workload {

/// Operation-type proportions; they need not sum to 1 (normalized).
struct OpMix {
  double insert = 0.5;
  double search = 0.5;
  double erase = 0.0;
  double scan = 0.0;
};

struct GenOp {
  enum class Type { kInsert, kSearch, kDelete, kScan };
  Type type = Type::kSearch;
  Key key = 0;
  Value value = 0;
  uint64_t scan_limit = 0;
};

const char* GenOpName(GenOp::Type type);

class Generator {
 public:
  Generator(OpMix mix, std::unique_ptr<KeyDistribution> dist,
            uint64_t seed);

  /// Produces the next operation. Delete targets come from keys this
  /// generator inserted earlier (each deleted at most once); when none
  /// are available a delete becomes a search.
  GenOp Next();

  size_t live_keys() const { return live_.size(); }

 private:
  OpMix mix_;
  double total_;
  std::unique_ptr<KeyDistribution> dist_;
  Rng rng_;
  std::vector<Key> live_;
};

}  // namespace lazytree::workload

#endif  // LAZYTREE_WORKLOAD_GENERATOR_H_
