#include "src/workload/generator.h"

#include "src/util/logging.h"

namespace lazytree::workload {

const char* GenOpName(GenOp::Type type) {
  switch (type) {
    case GenOp::Type::kInsert: return "insert";
    case GenOp::Type::kSearch: return "search";
    case GenOp::Type::kDelete: return "delete";
    case GenOp::Type::kScan: return "scan";
  }
  return "?";
}

Generator::Generator(OpMix mix, std::unique_ptr<KeyDistribution> dist,
                     uint64_t seed)
    : mix_(mix), dist_(std::move(dist)), rng_(seed) {
  total_ = mix_.insert + mix_.search + mix_.erase + mix_.scan;
  LAZYTREE_CHECK(total_ > 0) << "empty op mix";
}

GenOp Generator::Next() {
  GenOp op;
  double pick = rng_.NextDouble() * total_;
  if (pick < mix_.insert) {
    op.type = GenOp::Type::kInsert;
    op.key = dist_->Next(rng_);
    op.value = rng_.Next();
    live_.push_back(op.key);
    return op;
  }
  pick -= mix_.insert;
  if (pick < mix_.search) {
    op.type = GenOp::Type::kSearch;
    op.key = dist_->Next(rng_);
    return op;
  }
  pick -= mix_.search;
  if (pick < mix_.erase) {
    if (live_.empty()) {
      op.type = GenOp::Type::kSearch;
      op.key = dist_->Next(rng_);
      return op;
    }
    op.type = GenOp::Type::kDelete;
    const size_t idx = rng_.Below(live_.size());
    op.key = live_[idx];
    live_[idx] = live_.back();
    live_.pop_back();
    return op;
  }
  op.type = GenOp::Type::kScan;
  op.key = dist_->Next(rng_);
  op.scan_limit = 1 + rng_.Below(32);
  return op;
}

}  // namespace lazytree::workload
