#include "src/history/checker.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace lazytree::history {
namespace {

/// Appends a violation unless the report is already full.
void Violate(CheckReport& report, const CheckOptions& options,
             std::string text) {
  if (report.violations.size() < options.max_violations) {
    report.violations.push_back(std::move(text));
  } else if (report.violations.size() == options.max_violations) {
    report.violations.push_back("... further violations suppressed");
  }
}

/// Uniform update set of one copy: backwards extension + applied records.
std::multiset<UpdateId> UniformSet(const CopyHistory& h) {
  std::multiset<UpdateId> ids(h.inherited.begin(), h.inherited.end());
  for (const Record& r : h.records) ids.insert(r.update);
  return ids;
}

std::string DescribeCopy(const CopyKey& key) {
  return key.node.ToString() + "@p" + std::to_string(key.copy);
}

}  // namespace

std::string CheckReport::ToString() const {
  if (ok()) return "ok";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

CheckReport CheckComplete(const HistoryLog& log,
                          const CheckOptions& options) {
  CheckReport report;
  // Every update seen anywhere (applied or inherited), across all copies
  // live or dead — a deleted node is "conceptually retained" (§3.1).
  std::unordered_set<UpdateId> seen;
  for (const auto& [key, copy_history] : log.Copies()) {
    for (UpdateId u : copy_history.inherited) seen.insert(u);
    for (const Record& r : copy_history.records) seen.insert(r.update);
  }
  for (const IssuedUpdate& issued : log.Issued()) {
    if (!seen.contains(issued.update)) {
      std::ostringstream os;
      os << "complete: issued " << UpdateClassName(issued.cls) << " u="
         << issued.update << " (key=" << issued.key
         << ") never applied at any copy";
      Violate(report, options, os.str());
    }
  }
  return report;
}

CheckReport CheckCompatible(
    const HistoryLog& log,
    const std::map<CopyKey, NodeSnapshot>& final_values,
    const CheckOptions& options) {
  CheckReport report;
  // Group live copies by logical node.
  std::map<NodeId, std::vector<std::pair<CopyKey, const CopyHistory*>>>
      by_node;
  const auto copies = log.Copies();
  for (const auto& [key, copy_history] : copies) {
    if (copy_history.live) by_node[key.node].push_back({key, &copy_history});
  }

  for (const auto& [node, node_copies] : by_node) {
    // 1. Uniform update sets must agree across copies; duplicates within
    //    a copy are protocol bugs unless explicitly allowed.
    const std::multiset<UpdateId> reference = UniformSet(*node_copies[0].second);
    if (!options.allow_duplicate_applications) {
      for (const auto& [key, copy_history] : node_copies) {
        auto ids = UniformSet(*copy_history);
        for (auto it = ids.begin(); it != ids.end();) {
          auto next = ids.upper_bound(*it);
          if (std::distance(it, next) > 1) {
            Violate(report, options,
                    "compatible: update " + std::to_string(*it) +
                        " applied " + std::to_string(std::distance(it, next)) +
                        "x at " + DescribeCopy(key));
          }
          it = next;
        }
      }
    }
    for (size_t i = 1; i < node_copies.size(); ++i) {
      auto ids = UniformSet(*node_copies[i].second);
      if (ids != reference) {
        std::ostringstream os;
        os << "compatible: uniform histories differ for " << node.ToString()
           << ": " << DescribeCopy(node_copies[0].first) << " has "
           << reference.size() << " updates, "
           << DescribeCopy(node_copies[i].first) << " has " << ids.size();
        // Name one differing update to aid debugging.
        std::vector<UpdateId> diff;
        std::set_symmetric_difference(reference.begin(), reference.end(),
                                      ids.begin(), ids.end(),
                                      std::back_inserter(diff));
        if (!diff.empty()) os << " (e.g. u=" << diff.front() << ")";
        Violate(report, options, os.str());
      }
    }

    // 2. Final values must be identical across copies.
    const NodeSnapshot* reference_value = nullptr;
    CopyKey reference_key{};
    for (const auto& [key, copy_history] : node_copies) {
      auto it = final_values.find(key);
      if (it == final_values.end()) {
        Violate(report, options,
                "compatible: no final value supplied for live copy " +
                    DescribeCopy(key));
        continue;
      }
      const NodeSnapshot& v = it->second;
      if (reference_value == nullptr) {
        reference_value = &v;
        reference_key = key;
        continue;
      }
      const NodeSnapshot& ref = *reference_value;
      std::string mismatch;
      if (v.range != ref.range) mismatch = "range";
      else if (v.entries != ref.entries) mismatch = "entries";
      else if (v.right != ref.right) mismatch = "right link";
      else if (v.level != ref.level) mismatch = "level";
      if (!mismatch.empty()) {
        Violate(report, options,
                "compatible: final " + mismatch + " differs between " +
                    DescribeCopy(reference_key) + " and " +
                    DescribeCopy(key) + " of " + node.ToString());
      }
    }
  }
  return report;
}

CheckReport CheckOrdered(const HistoryLog& log,
                         const CheckOptions& options) {
  CheckReport report;
  for (const auto& [key, copy_history] : log.Copies()) {
    // Link-changes: per link kind, applied versions strictly increase.
    Version last_link_version[3] = {0, 0, 0};
    Version last_membership_version = 0;
    for (const Record& r : copy_history.records) {
      if (r.rewritten) continue;  // reordered into the past, no effect
      if (r.cls == UpdateClass::kLinkChange) {
        Version& last = last_link_version[r.link % 3];
        if (r.version <= last) {
          Violate(report, options,
                  "ordered: link-change v=" + std::to_string(r.version) +
                      " applied after v=" + std::to_string(last) + " at " +
                      DescribeCopy(key));
        }
        last = std::max(last, r.version);
      } else if (r.cls == UpdateClass::kMembership ||
                 r.cls == UpdateClass::kMigrate) {
        if (r.version <= last_membership_version) {
          Violate(report, options,
                  "ordered: " + std::string(UpdateClassName(r.cls)) +
                      " v=" + std::to_string(r.version) +
                      " applied after v=" +
                      std::to_string(last_membership_version) + " at " +
                      DescribeCopy(key));
        }
        last_membership_version = std::max(last_membership_version, r.version);
      }
    }
  }
  return report;
}

CheckReport CheckAll(const HistoryLog& log,
                     const std::map<CopyKey, NodeSnapshot>& final_values,
                     const CheckOptions& options) {
  CheckReport report = CheckComplete(log, options);
  report.Merge(CheckCompatible(log, final_values, options));
  report.Merge(CheckOrdered(log, options));
  return report;
}

}  // namespace lazytree::history
