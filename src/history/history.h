// HistoryLog: global, thread-safe collector of per-copy histories.
//
// Protocol code reports copy lifecycle events and every applied update;
// tests then run the §3 checkers (checker.h) over the collected log.
// Collection can be disabled for benches (records are then dropped).

#ifndef LAZYTREE_HISTORY_HISTORY_H_
#define LAZYTREE_HISTORY_HISTORY_H_

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "src/history/record.h"
#include "src/msg/fingerprint.h"

namespace lazytree::history {

/// Identifies one physical copy: (logical node, hosting processor).
struct CopyKey {
  NodeId node;
  ProcessorId copy;
  friend auto operator<=>(const CopyKey&, const CopyKey&) = default;
};

/// Full history of one copy.
struct CopyHistory {
  /// Updates inherited through the seeding snapshot (backwards extension).
  std::vector<UpdateId> inherited;
  /// Updates applied at this copy, in application order.
  std::vector<Record> records;
  bool live = true;  ///< false once the copy was deleted (unjoin/migrate)
};

/// Registry entry for an issued logical update.
struct IssuedUpdate {
  UpdateId update = kNoUpdate;
  UpdateClass cls = UpdateClass::kInsert;
  NodeId node = kInvalidNode;  ///< node it was first addressed to
  Key key = 0;
  Value value = 0;
};

class HistoryLog {
 public:
  explicit HistoryLog(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Registers a brand-new logical update at issue time. Exactly once per
  /// UpdateId; forwarding an insert to a sibling re-addresses but does not
  /// re-register it.
  void RegisterIssued(const IssuedUpdate& issued);

  /// A copy came into existence with the given backwards extension.
  void OnCopyCreated(NodeId node, ProcessorId copy,
                     std::vector<UpdateId> inherited);

  /// A copy was deleted (unjoin, migration away).
  void OnCopyDeleted(NodeId node, ProcessorId copy);

  /// An update action was applied at a copy.
  void Append(Record record);

  /// Snapshot accessors (copying, safe after quiescence).
  std::map<CopyKey, CopyHistory> Copies() const;
  std::vector<IssuedUpdate> Issued() const;

  /// Total records appended (for tests).
  size_t RecordCount() const;

  /// Folds the collected histories into a verifier state fingerprint.
  /// Canonical form: copies sorted by CopyKey with records in per-copy
  /// application order (preserved across equivalent interleavings), and
  /// issued updates sorted by UpdateId — the global issue order varies
  /// between schedules that only reorder independent deliveries.
  void MixState(Fingerprint& fp) const;

  void Reset();

 private:
  bool enabled_;
  mutable std::mutex mu_;
  std::map<CopyKey, CopyHistory> copies_;
  std::vector<IssuedUpdate> issued_;
  std::set<UpdateId> issued_ids_;
  size_t record_count_ = 0;
};

}  // namespace lazytree::history

#endif  // LAZYTREE_HISTORY_HISTORY_H_
