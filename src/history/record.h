// History records — the paper's §3 model of copy state.
//
// The value of a copy is modelled by its history: an initial value (the
// "backwards extension" — the updates folded into the snapshot the copy was
// seeded from) plus a totally-ordered list of update actions applied to it.
// Every logical update carries a stable UpdateId across its initial and
// relayed executions, which is what lets the checker compare *uniform*
// histories (initial/relayed distinction erased) across copies.

#ifndef LAZYTREE_HISTORY_RECORD_H_
#define LAZYTREE_HISTORY_RECORD_H_

#include <cstdint>
#include <string>

#include "src/msg/action.h"

namespace lazytree::history {

/// Semantic class of an update, for commutativity / ordering analysis.
enum class UpdateClass : uint8_t {
  kInsert = 0,      ///< lazy update (commutes with other lazy updates)
  kSplit = 1,       ///< semi-synchronous update
  kDelete = 5,      ///< lazy update (free-at-empty deletes, [11])
  kLinkChange = 2,  ///< ordered action (version-gated)
  kMembership = 3,  ///< join / unjoin registration (ordered, version-gated)
  kMigrate = 4,     ///< node moved host (ordered via version)
};

const char* UpdateClassName(UpdateClass c);

/// One update action applied at one copy.
struct Record {
  UpdateId update = kNoUpdate;
  UpdateClass cls = UpdateClass::kInsert;
  NodeId node = kInvalidNode;
  ProcessorId copy = kInvalidProcessor;  ///< processor hosting the copy
  bool initial = false;  ///< initial (capital) vs relayed (lowercase)

  Key key = 0;           ///< insert payload
  Value value = 0;
  NodeId new_node = kInvalidNode;  ///< split sibling / link target
  Key sep = 0;                     ///< split separator
  Version version = 0;             ///< version attached / produced
  uint8_t link = 0;                ///< LinkKind for link-changes
  /// True when the action was logically reordered into the past with no
  /// effect (a stale link-change, §4.2): it counts for completeness but is
  /// exempt from the ordered-history version check.
  bool rewritten = false;

  std::string ToString() const;
};

}  // namespace lazytree::history

#endif  // LAZYTREE_HISTORY_RECORD_H_
