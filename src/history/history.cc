#include "src/history/history.h"

#include <sstream>

#include "src/util/logging.h"

namespace lazytree::history {

const char* UpdateClassName(UpdateClass c) {
  switch (c) {
    case UpdateClass::kInsert: return "insert";
    case UpdateClass::kSplit: return "split";
    case UpdateClass::kLinkChange: return "link_change";
    case UpdateClass::kMembership: return "membership";
    case UpdateClass::kMigrate: return "migrate";
    case UpdateClass::kDelete: return "delete";
  }
  return "?";
}

std::string Record::ToString() const {
  std::ostringstream os;
  os << (initial ? "I:" : "r:") << UpdateClassName(cls) << " u=" << update
     << " " << node.ToString() << "@p" << copy;
  if (cls == UpdateClass::kInsert) os << " key=" << key;
  if (cls == UpdateClass::kSplit) {
    os << " sep=" << sep << " sib=" << new_node.ToString();
  }
  if (version) os << " v=" << version;
  return os.str();
}

void HistoryLog::RegisterIssued(const IssuedUpdate& issued) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  LAZYTREE_CHECK(issued.update != kNoUpdate) << "issued update without id";
  LAZYTREE_CHECK(issued_ids_.insert(issued.update).second)
      << "update " << issued.update << " registered twice";
  issued_.push_back(issued);
}

void HistoryLog::OnCopyCreated(NodeId node, ProcessorId copy,
                               std::vector<UpdateId> inherited) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  CopyKey key{node, copy};
  auto [it, fresh] = copies_.try_emplace(key);
  if (!fresh) {
    // A processor may re-join a node it unjoined earlier; the new
    // incarnation replaces the dead one.
    LAZYTREE_CHECK(!it->second.live)
        << "copy " << node.ToString() << "@p" << copy << " created twice";
    it->second = CopyHistory{};
  }
  it->second.inherited = std::move(inherited);
}

void HistoryLog::OnCopyDeleted(NodeId node, ProcessorId copy) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = copies_.find(CopyKey{node, copy});
  LAZYTREE_CHECK(it != copies_.end())
      << "delete of unknown copy " << node.ToString() << "@p" << copy;
  it->second.live = false;
}

void HistoryLog::Append(Record record) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = copies_.find(CopyKey{record.node, record.copy});
  LAZYTREE_CHECK(it != copies_.end() && it->second.live)
      << "update at unknown/dead copy: " << record.ToString();
  it->second.records.push_back(std::move(record));
  ++record_count_;
}

std::map<CopyKey, CopyHistory> HistoryLog::Copies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return copies_;
}

std::vector<IssuedUpdate> HistoryLog::Issued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return issued_;
}

size_t HistoryLog::RecordCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_count_;
}

void HistoryLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  copies_.clear();
  issued_.clear();
  issued_ids_.clear();
  record_count_ = 0;
}

}  // namespace lazytree::history
