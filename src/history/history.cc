#include "src/history/history.h"

#include <algorithm>
#include <sstream>

#include "src/util/logging.h"

namespace lazytree::history {

const char* UpdateClassName(UpdateClass c) {
  switch (c) {
    case UpdateClass::kInsert: return "insert";
    case UpdateClass::kSplit: return "split";
    case UpdateClass::kLinkChange: return "link_change";
    case UpdateClass::kMembership: return "membership";
    case UpdateClass::kMigrate: return "migrate";
    case UpdateClass::kDelete: return "delete";
  }
  return "?";
}

std::string Record::ToString() const {
  std::ostringstream os;
  os << (initial ? "I:" : "r:") << UpdateClassName(cls) << " u=" << update
     << " " << node.ToString() << "@p" << copy;
  if (cls == UpdateClass::kInsert) os << " key=" << key;
  if (cls == UpdateClass::kSplit) {
    os << " sep=" << sep << " sib=" << new_node.ToString();
  }
  if (version) os << " v=" << version;
  return os.str();
}

void HistoryLog::RegisterIssued(const IssuedUpdate& issued) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  LAZYTREE_CHECK(issued.update != kNoUpdate) << "issued update without id";
  LAZYTREE_CHECK(issued_ids_.insert(issued.update).second)
      << "update " << issued.update << " registered twice";
  issued_.push_back(issued);
}

void HistoryLog::OnCopyCreated(NodeId node, ProcessorId copy,
                               std::vector<UpdateId> inherited) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  CopyKey key{node, copy};
  auto [it, fresh] = copies_.try_emplace(key);
  if (!fresh) {
    // A processor may re-join a node it unjoined earlier; the new
    // incarnation replaces the dead one.
    LAZYTREE_CHECK(!it->second.live)
        << "copy " << node.ToString() << "@p" << copy << " created twice";
    it->second = CopyHistory{};
  }
  it->second.inherited = std::move(inherited);
}

void HistoryLog::OnCopyDeleted(NodeId node, ProcessorId copy) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = copies_.find(CopyKey{node, copy});
  LAZYTREE_CHECK(it != copies_.end())
      << "delete of unknown copy " << node.ToString() << "@p" << copy;
  it->second.live = false;
}

void HistoryLog::Append(Record record) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = copies_.find(CopyKey{record.node, record.copy});
  LAZYTREE_CHECK(it != copies_.end() && it->second.live)
      << "update at unknown/dead copy: " << record.ToString();
  it->second.records.push_back(std::move(record));
  ++record_count_;
}

std::map<CopyKey, CopyHistory> HistoryLog::Copies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return copies_;
}

std::vector<IssuedUpdate> HistoryLog::Issued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return issued_;
}

size_t HistoryLog::RecordCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_count_;
}

void HistoryLog::MixState(Fingerprint& fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  fp.Mix(copies_.size());
  for (const auto& [key, hist] : copies_) {  // std::map: sorted by CopyKey
    fp.Mix(key.node.v);
    fp.Mix(key.copy);
    fp.Mix(hist.live ? 1 : 0);
    fp.Mix(hist.inherited.size());
    for (UpdateId u : hist.inherited) fp.Mix(u);
    fp.Mix(hist.records.size());
    for (const Record& r : hist.records) {
      fp.Mix(r.update);
      fp.Mix(static_cast<uint64_t>(r.cls));
      fp.Mix(r.node.v);
      fp.Mix(r.copy);
      fp.Mix(r.initial ? 1 : 0);
      fp.Mix(r.key);
      fp.Mix(r.value);
      fp.Mix(r.new_node.v);
      fp.Mix(r.sep);
      fp.Mix(r.version);
      fp.Mix(r.link);
      fp.Mix(r.rewritten ? 1 : 0);
    }
  }
  // Issue order is a global append order and differs between equivalent
  // interleavings; sort by UpdateId for a canonical digest.
  std::vector<const IssuedUpdate*> issued;
  issued.reserve(issued_.size());
  for (const IssuedUpdate& u : issued_) issued.push_back(&u);
  std::sort(issued.begin(), issued.end(),
            [](const IssuedUpdate* a, const IssuedUpdate* b) {
              return a->update < b->update;
            });
  fp.Mix(issued.size());
  for (const IssuedUpdate* u : issued) {
    fp.Mix(u->update);
    fp.Mix(static_cast<uint64_t>(u->cls));
    fp.Mix(u->node.v);
    fp.Mix(u->key);
    fp.Mix(u->value);
  }
}

void HistoryLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  copies_.clear();
  issued_.clear();
  issued_ids_.clear();
  record_count_ = 0;
}

}  // namespace lazytree::history
