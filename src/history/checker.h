// Executable versions of the paper's three correctness requirements (§3.1).
//
//   * Complete histories  — every issued update appears in some node's
//     update set (no action was lost in flight).
//   * Compatible histories — at quiescence, every live copy of a node has
//     the same uniform update set (after backwards-extension accounting)
//     and the same final value.
//   * Ordered histories   — ordered-action classes (link-changes,
//     membership registrations) apply in version order at every copy.
//
// Tests call these after driving a protocol to quiescence; a non-empty
// violation list pinpoints the copy and update at fault.

#ifndef LAZYTREE_HISTORY_CHECKER_H_
#define LAZYTREE_HISTORY_CHECKER_H_

#include <map>
#include <string>
#include <vector>

#include "src/history/history.h"

namespace lazytree::history {

struct CheckReport {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string ToString() const;

  void Merge(CheckReport other) {
    for (auto& v : other.violations) violations.push_back(std::move(v));
  }
};

struct CheckOptions {
  /// When false (default) an update applied twice at the same copy is a
  /// violation; set true for protocols that rely on idempotent re-apply.
  bool allow_duplicate_applications = false;
  /// Cap on violations reported per check (keeps failure output readable).
  size_t max_violations = 16;
};

/// Complete-history requirement.
CheckReport CheckComplete(const HistoryLog& log,
                          const CheckOptions& options = {});

/// Compatible-history requirement. `final_values` maps every *live* copy
/// to its final snapshot (range, entries, links), taken at quiescence.
CheckReport CheckCompatible(
    const HistoryLog& log,
    const std::map<CopyKey, NodeSnapshot>& final_values,
    const CheckOptions& options = {});

/// Ordered-history requirement.
CheckReport CheckOrdered(const HistoryLog& log,
                         const CheckOptions& options = {});

/// All three, merged.
CheckReport CheckAll(const HistoryLog& log,
                     const std::map<CopyKey, NodeSnapshot>& final_values,
                     const CheckOptions& options = {});

}  // namespace lazytree::history

#endif  // LAZYTREE_HISTORY_CHECKER_H_
