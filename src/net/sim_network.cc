#include "src/net/sim_network.h"

#include "src/msg/wire.h"
#include "src/util/logging.h"

namespace lazytree::net {

const char* ScheduleMutationName(ScheduleMutation m) {
  switch (m) {
    case ScheduleMutation::kNone: return "none";
    case ScheduleMutation::kDropRelay: return "drop-relay";
    case ScheduleMutation::kSwapOrdered: return "swap-ordered";
  }
  return "?";
}

ScheduleMutation ParseScheduleMutation(const std::string& name) {
  if (name == "drop-relay") return ScheduleMutation::kDropRelay;
  if (name == "swap-ordered") return ScheduleMutation::kSwapOrdered;
  return ScheduleMutation::kNone;
}

SimNetwork::SimNetwork(uint64_t seed) : rng_(seed) {}

void SimNetwork::Register(ProcessorId id, Receiver* receiver) {
  if (receivers_.size() <= id) receivers_.resize(id + 1, nullptr);
  LAZYTREE_CHECK(receivers_[id] == nullptr) << "double register p" << id;
  receivers_[id] = receiver;
}

ProcessorId SimNetwork::size() const {
  return static_cast<ProcessorId>(receivers_.size());
}

void SimNetwork::EnableLatency(uint64_t base_us, uint64_t jitter_us,
                               uint64_t local_us) {
  LAZYTREE_CHECK(pending_ == 0) << "EnableLatency before any Send";
  LAZYTREE_CHECK(strategy_ == nullptr)
      << "latency mode and schedule strategies are mutually exclusive";
  latency_mode_ = true;
  base_us_ = base_us;
  jitter_us_ = jitter_us;
  local_us_ = local_us;
}

void SimNetwork::SetStrategy(ScheduleStrategy* strategy) {
  LAZYTREE_CHECK(!latency_mode_)
      << "latency mode and schedule strategies are mutually exclusive";
  strategy_ = strategy;
}

void SimNetwork::Crash(ProcessorId p) {
  LAZYTREE_CHECK(p < receivers_.size()) << "crash of unregistered p" << p;
  if (crashed_.size() <= p) crashed_.resize(p + 1, false);
  if (crashed_[p]) return;
  crashed_[p] = true;
  if (observer_ != nullptr) observer_->OnCrash(p);
}

void SimNetwork::Restart(ProcessorId p) {
  if (!IsCrashed(p)) return;
  crashed_[p] = false;
  if (observer_ != nullptr) observer_->OnRestart(p);
}

void SimNetwork::Send(Message m) {
  LAZYTREE_CHECK(m.to < receivers_.size() && receivers_[m.to] != nullptr)
      << "send to unregistered p" << m.to;
  std::vector<uint8_t> encoded = wire::EncodeMessage(m);
  stats_.OnSend(m, encoded.size());
  if (latency_mode_) {
    uint64_t latency =
        m.from == m.to
            ? local_us_
            : base_us_ + (jitter_us_ ? rng_.Below(jitter_us_ + 1) : 0);
    uint64_t& last = last_arrival_[{m.from, m.to}];
    uint64_t arrival = std::max(now_us_ + latency, last);  // FIFO clamp
    last = arrival;
    timeline_.push(TimedEvent{arrival, event_seq_++, m.to,
                              std::move(encoded)});
    ++pending_;
    return;
  }
  Channel& ch = channels_[{m.from, m.to}];
  ch.Push(std::move(encoded));
  ++pending_;
}

bool SimNetwork::Step() {
  if (pending_ == 0) return false;
  LAZYTREE_CHECK(!in_step_) << "reentrant Step";
  if (latency_mode_) {
    TimedEvent event = timeline_.top();
    timeline_.pop();
    --pending_;
    now_us_ = std::max(now_us_, event.arrival_us);
    if (drop_prob_ > 0 && rng_.Chance(drop_prob_)) {
      ++dropped_;
      return true;
    }
    auto decoded = wire::DecodeMessage(event.encoded);
    LAZYTREE_CHECK(decoded.ok())
        << "wire corruption: " << decoded.status().ToString();
    ++delivered_;
    in_step_ = true;
    receivers_[event.to]->Deliver(std::move(*decoded));
    in_step_ = false;
    return true;
  }
  nonempty_.clear();
  for (auto& [key, ch] : channels_) {
    if (!ch.Empty()) nonempty_.push_back(key);
  }
  LAZYTREE_CHECK(!nonempty_.empty()) << "pending_ out of sync";
  size_t index;
  if (strategy_ != nullptr) {
    views_.clear();
    for (const auto& [from, to] : nonempty_) {
      views_.push_back(ChannelView{from, to, channels_[{from, to}].Size()});
    }
    index = strategy_->PickChannel(views_);
    LAZYTREE_CHECK(index < nonempty_.size())
        << "strategy picked channel " << index << " of "
        << nonempty_.size();
  } else {
    index = rng_.Below(nonempty_.size());
  }
  const auto& pick = nonempty_[index];
  Channel& channel = channels_[pick];
  if (mutation_ == ScheduleMutation::kSwapOrdered && !mutation_applied_) {
    mutation_applied_ = MaybeSwapOrdered(channel);
  }
  std::vector<uint8_t> encoded = channel.Pop();
  --pending_;

  // Resolve the message's fate: a crashed destination always drops; a
  // strategy may force an outcome (trace replay); otherwise the network's
  // own fault randomness applies. The rng_ consumption order below is
  // exactly the pre-strategy behavior, so legacy seeds replay unchanged.
  DeliveryOutcome outcome = DeliveryOutcome::kDeliver;
  std::optional<DeliveryOutcome> forced =
      strategy_ != nullptr ? strategy_->ForceOutcome() : std::nullopt;
  // Self-sends model in-process work, not network traffic, and they bypass
  // any reliable layer stacked above — never fault them (faults.cc holds
  // the same line for the real fault injector).
  const bool faultable = pick.first != pick.second;
  if (IsCrashed(pick.second)) {
    outcome = DeliveryOutcome::kCrashDrop;
  } else if (forced.has_value() && *forced != DeliveryOutcome::kCrashDrop) {
    outcome = *forced;
  } else if (faultable && drop_prob_ > 0 && rng_.Chance(drop_prob_)) {
    outcome = DeliveryOutcome::kDrop;
  }
  if (observer_ != nullptr && outcome != DeliveryOutcome::kDeliver) {
    observer_->OnDelivery(pick.first, pick.second, outcome);
  }
  if (outcome == DeliveryOutcome::kCrashDrop) {
    ++crash_dropped_;
    return true;
  }
  if (outcome == DeliveryOutcome::kDrop) {
    ++dropped_;  // injected fault: the message vanishes
    return true;
  }
  auto decoded = wire::DecodeMessage(encoded);
  LAZYTREE_CHECK(decoded.ok()) << "wire corruption: "
                               << decoded.status().ToString();
  if (mutation_ == ScheduleMutation::kDropRelay && !mutation_applied_) {
    mutation_applied_ = MaybeDropRelay(*decoded);
  }
  const bool dup = forced.has_value()
                       ? outcome == DeliveryOutcome::kDuplicate
                       : faultable && dup_prob_ > 0 && rng_.Chance(dup_prob_);
  if (observer_ != nullptr && outcome == DeliveryOutcome::kDeliver) {
    observer_->OnDelivery(pick.first, pick.second,
                          dup ? DeliveryOutcome::kDuplicate
                              : DeliveryOutcome::kDeliver);
  }
  ++delivered_;
  in_step_ = true;
  receivers_[pick.second]->Deliver(*decoded);
  if (dup) {
    ++duplicated_;  // injected fault: delivered twice
    ++delivered_;
    receivers_[pick.second]->Deliver(std::move(*decoded));
  }
  in_step_ = false;
  return true;
}

const std::vector<uint8_t>& SimNetwork::PeekChannel(ProcessorId from,
                                                    ProcessorId to,
                                                    size_t index) const {
  auto it = channels_.find({from, to});
  LAZYTREE_CHECK(it != channels_.end() && index < it->second.Size())
      << "PeekChannel(" << from << "," << to << "," << index
      << ") out of range";
  return it->second.Peek(index);
}

void SimNetwork::MixPending(Fingerprint& fp) const {
  size_t nonempty = 0;
  for (const auto& [key, ch] : channels_) {
    if (!ch.Empty()) ++nonempty;
  }
  fp.Mix(nonempty);
  for (const auto& [key, ch] : channels_) {  // std::map: sorted by (from,to)
    if (ch.Empty()) continue;
    fp.Mix(key.first);
    fp.Mix(key.second);
    fp.Mix(ch.Size());
    for (size_t i = 0; i < ch.Size(); ++i) fp.MixBytes(ch.Peek(i));
  }
  fp.Mix(crashed_.size());
  for (size_t p = 0; p < crashed_.size(); ++p) fp.Mix(crashed_[p] ? 1 : 0);
  for (uint64_t word : rng_.state()) fp.Mix(word);
  fp.Mix(mutation_applied_ ? 1 : 0);
}

bool SimNetwork::MaybeSwapOrdered(Channel& ch) {
  if (ch.Size() < 2) return false;
  auto head = wire::DecodeMessage(ch.Peek(0));
  auto second = wire::DecodeMessage(ch.Peek(1));
  LAZYTREE_CHECK(head.ok() && second.ok()) << "wire corruption in peek";
  for (const Action& a : head->actions) {
    if (OrderClassOf(a.kind) != OrderClass::kMembership) continue;
    for (const Action& b : second->actions) {
      // Only same-kind registration pairs (two joins, two unjoins) about
      // the same node: the version gate then drops the older registration
      // outright, leaving the receiving copy's membership (and history)
      // permanently short one member. Mixed join/unjoin pairs of one
      // member net out to the same final membership, and link-change
      // reorderings are absorbed by the per-link gating — neither is a
      // detectable violation by design.
      if (b.kind != a.kind) continue;
      if (a.target != b.target || a.version == b.version) continue;
      ch.SwapFirstTwo();
      return true;
    }
  }
  return false;
}

bool SimNetwork::MaybeDropRelay(Message& m) {
  for (auto it = m.actions.begin(); it != m.actions.end(); ++it) {
    if (it->IsRelayed() && OrderClassOf(it->kind) == OrderClass::kLazy) {
      m.actions.erase(it);
      return true;
    }
  }
  return false;
}

bool SimNetwork::WaitQuiescent(std::chrono::milliseconds timeout) {
  // Interpret the timeout as a delivery budget: 10k deliveries per ms is
  // far beyond anything a correct run needs, so hitting it means livelock.
  uint64_t budget = static_cast<uint64_t>(timeout.count()) * 10000;
  while (pending_ > 0) {
    if (budget-- == 0) return false;
    Step();
  }
  return true;
}

}  // namespace lazytree::net
