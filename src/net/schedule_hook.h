// Schedule-exploration hooks for SimNetwork.
//
// SimNetwork's default policy picks a uniformly random non-empty channel
// per Step. That rarely reaches the adversarial interleavings the §3/§4
// proofs defend against (a split's link-change racing a relayed insert, a
// join racing a migration). These interfaces let an external driver take
// over the two nondeterministic choices the simulator makes per delivery —
// *which* channel goes next and *what happens* to the popped message — and
// observe every decision so a failing schedule can be recorded, replayed,
// and minimized (src/sim/).

#ifndef LAZYTREE_NET_SCHEDULE_HOOK_H_
#define LAZYTREE_NET_SCHEDULE_HOOK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/msg/key.h"

namespace lazytree::net {

/// One non-empty (from, to) channel offered to the strategy.
struct ChannelView {
  ProcessorId from = kInvalidProcessor;
  ProcessorId to = kInvalidProcessor;
  size_t queued = 0;  ///< messages waiting on this channel
};

/// Planted protocol mutation (exhaustive-verifier self-test): a deliberate
/// one-shot violation of a delivery assumption, applied deterministically at
/// the first qualifying opportunity so that a recorded schedule replays the
/// mutation at the same point.
enum class ScheduleMutation : uint8_t {
  kNone = 0,
  /// Strips the first relayed lazy update (relayed insert/delete) from a
  /// delivered message: one copy silently misses an update, which the
  /// §3.1 compatible-histories check must flag.
  kDropRelay = 1,
  /// Swaps the first two messages of a channel when they carry two
  /// same-kind membership registrations of the same node with different
  /// versions (two joins or two unjoins, necessarily of different
  /// members): breaks per-channel FIFO exactly where the version-gated
  /// registration order matters — the gate drops the older registration,
  /// permanently diverging the receiving copy's membership. Link-change
  /// reorderings (gated per link) and mixed join/unjoin pairs of one
  /// member (which net out) are absorbed by design, so they do not
  /// qualify.
  kSwapOrdered = 2,
};

const char* ScheduleMutationName(ScheduleMutation m);

/// Parses "none" / "drop-relay" / "swap-ordered"; returns kNone for
/// anything else (callers validate separately when needed).
ScheduleMutation ParseScheduleMutation(const std::string& name);

/// What became of one scheduled message.
enum class DeliveryOutcome : uint8_t {
  kDeliver = 0,    ///< delivered exactly once (the §4 assumption)
  kDrop = 1,       ///< injected fault: the message vanished
  kDuplicate = 2,  ///< injected fault: delivered twice
  kCrashDrop = 3,  ///< destination processor was crashed
};

/// Pluggable delivery policy. SimNetwork::Step calls PickChannel with the
/// current non-empty channels (sorted by (from, to), so indices are
/// deterministic), pops the chosen channel's head, then calls ForceOutcome
/// once for that same message. Strategies must be deterministic functions
/// of their seed and the observed call sequence — trace replay depends on
/// it.
class ScheduleStrategy {
 public:
  virtual ~ScheduleStrategy() = default;

  virtual const char* name() const = 0;

  /// Returns an index into `channels` (never empty).
  virtual size_t PickChannel(const std::vector<ChannelView>& channels) = 0;

  /// Optional fault override for the message just picked. nullopt lets the
  /// network apply its own InjectFaults randomness; a value forces the
  /// outcome (trace replay uses this to pin faults). A crashed destination
  /// still wins over any forced value.
  virtual std::optional<DeliveryOutcome> ForceOutcome() {
    return std::nullopt;
  }
};

/// Observes every scheduling decision in execution order. Implemented by
/// the trace recorder (src/sim/trace.h).
class DeliveryObserver {
 public:
  virtual ~DeliveryObserver() = default;

  /// One message left channel (from, to) with the given outcome.
  virtual void OnDelivery(ProcessorId from, ProcessorId to,
                          DeliveryOutcome outcome) = 0;

  /// Processor `p` crashed (inbound messages drop until restart).
  virtual void OnCrash(ProcessorId p) = 0;

  /// Processor `p` restarted.
  virtual void OnRestart(ProcessorId p) = 0;
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_SCHEDULE_HOOK_H_
