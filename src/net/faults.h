// Unreliable-link fault injection.
//
// FaultyNetwork wraps any Network and makes its links lossy: per-link
// drop / duplicate / reorder / delay probabilities plus explicit partition
// windows, all driven by a FaultPlan installed through ClusterOptions. The
// paper assumes reliable exactly-once FIFO channels (§4); this decorator
// deliberately breaks that assumption so the reliable-delivery layer
// (net/reliable.h) can be shown to restore it.
//
// Determinism: every fault decision is a pure function of
// (plan.seed, from, to, per-link send index) — no global RNG, no clock.
// Replaying the same send sequence over the same plan reproduces the exact
// same faults on both transports, which is what lets explorer traces with
// faults replay byte-for-byte.
//
// Delivery-count accounting: a dropped message simply never reaches the
// base transport, so the base's inflight-counter quiescence accounting
// stays correct — the message was never in flight as far as the base is
// concerned. Delayed and reordered messages are *held* inside this layer
// and released by FlushHeld(), which WaitQuiescent calls in a loop, so a
// held message can delay quiescence but never leak past it.

#ifndef LAZYTREE_NET_FAULTS_H_
#define LAZYTREE_NET_FAULTS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/net/transport.h"

namespace lazytree::net {

/// Declarative description of how links misbehave. Probabilities are per
/// message send on a remote link; self-sends are never faulted.
struct FaultPlan {
  double drop = 0.0;       ///< message vanishes
  double duplicate = 0.0;  ///< message delivered twice
  double reorder = 0.0;    ///< message held, swapped with the next send
  double delay = 0.0;      ///< message held until the next quiescence pump
  uint64_t seed = 1;       ///< fault decision stream seed

  /// A partition blackholes every message between `a` and `b` (both
  /// directions) whose per-link send index falls in [start, start+length).
  /// Send-count windows instead of wall-clock windows keep the plan
  /// deterministic across transports; the window heals naturally as
  /// retransmissions burn through send indices.
  struct Partition {
    ProcessorId a = 0;
    ProcessorId b = 0;
    uint64_t start = 0;
    uint64_t length = 0;
  };
  std::vector<Partition> partitions;

  bool active() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || delay > 0 ||
           !partitions.empty();
  }
};

/// Network decorator that applies a FaultPlan to every remote send.
class FaultyNetwork : public Network {
 public:
  FaultyNetwork(Network* base, FaultPlan plan);

  void Register(ProcessorId id, Receiver* receiver) override;
  ProcessorId size() const override;
  void Send(Message m) override;
  void Start() override;
  void Stop() override;
  bool WaitQuiescent(std::chrono::milliseconds timeout) override;
  NetworkStats& stats() override { return base_->stats(); }

  /// Releases every held (delayed / reorder-stashed) message into the base
  /// transport. Returns how many were released. Called from the quiescence
  /// loop and from Cluster::PumpNetworkTimers so held messages model
  /// finite, not infinite, delay.
  size_t FlushHeld();

  // Injection counters (what the fault layer actually did — the reliable
  // layer's recovery counters live in NetworkStats).
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t duplicated() const {
    return duplicated_.load(std::memory_order_relaxed);
  }
  uint64_t reordered() const {
    return reordered_.load(std::memory_order_relaxed);
  }
  uint64_t delayed() const { return delayed_.load(std::memory_order_relaxed); }
  uint64_t partitioned() const {
    return partitioned_.load(std::memory_order_relaxed);
  }

 private:
  // Per ordered (from, to) link: its send index and held messages. Own
  // lock per link so concurrent thread-transport senders only contend
  // when they share a link (same discipline as PiggybackNetwork).
  struct Link {
    std::mutex mu;
    uint64_t sends = 0;
    bool has_stash = false;
    Message stash;               // reorder slot (swapped with next send)
    std::vector<Message> held;   // delayed messages
  };

  void EnsureLinks();
  Link& LinkFor(ProcessorId from, ProcessorId to) {
    return *links_[static_cast<size_t>(from) * num_processors_ + to];
  }
  bool Partitioned(ProcessorId from, ProcessorId to, uint64_t index) const;

  Network* base_;
  FaultPlan plan_;
  std::once_flag links_once_;
  size_t num_processors_ = 0;
  std::vector<std::unique_ptr<Link>> links_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> reordered_{0};
  std::atomic<uint64_t> delayed_{0};
  std::atomic<uint64_t> partitioned_{0};
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_FAULTS_H_
