// Reliable delivery over lossy links.
//
// ReliableNetwork is a Network decorator that restores the paper's §4
// channel assumption — reliable, exactly-once, in-order delivery — on top
// of a transport that drops, duplicates, reorders, or delays messages
// (net/faults.h). The machinery is classic go-back-N:
//
//   sender, per ordered channel (from, to):
//     every data message gets the channel's next sequence number and a
//     copy is kept in an unacked window; an armed retransmission timer
//     resends the whole window with exponential backoff + deterministic
//     jitter; a cumulative ack prunes the window. A bounded retransmit
//     budget declares the link *down* instead of retrying forever: the
//     window is discarded, the link-down callback fires (Cluster fails
//     pending ops with a retriable kUnavailable status), and quiescence
//     treats the channel as settled — Settle() degrades gracefully rather
//     than hanging.
//
//   receiver, per ordered channel:
//     tracks the next expected sequence number with serial-number
//     arithmetic (int64_t difference), so the dedup window survives
//     sequence overflow; stale/duplicate frames are dropped (and trigger
//     an eager re-ack, since a duplicate means the peer is resending);
//     out-of-order frames wait in a bounded reorder buffer and are
//     released in sequence order.
//
//   acks: every outgoing data message piggybacks the cumulative ack for
//     its reverse channel (§1.1's piggybacking discipline applied to
//     control traffic); when no reverse traffic shows up within
//     `ack_delay_us`, a pure ack frame (Message::kAckOnly, never
//     delivered to the application) is emitted by a timer.
//
// Timer discipline: with `real_timers` (ThreadNetwork) a dedicated timer
// thread fires deadlines on the steady clock. Without it (SimNetwork) the
// layer keeps a *virtual* clock that only advances when Pump() is called —
// at quiescent points of the simulation — so timer firings are
// deterministic, schedulable events and fault-bearing explorer traces
// replay byte-for-byte.
//
// Quiescence: dropped messages never reach the base transport and
// retransmits re-enter it as fresh sends, so the base's atomic
// inflight-counter accounting stays exact. This layer's WaitQuiescent
// additionally requires every channel to be settled (window empty or link
// down, no ack pending), pumping its own timers until that holds.

#ifndef LAZYTREE_NET_RELIABLE_H_
#define LAZYTREE_NET_RELIABLE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/msg/fingerprint.h"
#include "src/net/transport.h"

namespace lazytree::net {

struct ReliabilityOptions {
  /// First sequence number a channel assigns. Tests set this near
  /// UINT64_MAX to exercise dedup-window wraparound at sequence overflow.
  uint64_t initial_seq = 1;
  /// Retransmission attempts before the link is declared down.
  uint32_t max_retransmits = 10;
  /// Base retransmission timeout in microseconds (virtual or real).
  uint64_t rto_us = 200;
  /// Delayed pure-ack timer in microseconds.
  uint64_t ack_delay_us = 50;
  /// Upper bound on deterministic backoff jitter in microseconds.
  uint64_t jitter_us = 16;
  /// Seed for the jitter hash.
  uint64_t seed = 1;
  /// Receiver out-of-order buffer cap per channel; frames beyond it are
  /// dropped and recovered by retransmission.
  size_t reorder_window = 1024;
  /// Real timer thread (ThreadNetwork) vs virtual Pump()-driven clock
  /// (SimNetwork). Set by Cluster from the transport kind.
  bool real_timers = false;
};

class ReliableNetwork : public Network {
 public:
  ReliableNetwork(Network* base, ReliabilityOptions options);
  ~ReliableNetwork() override;

  /// Called (outside this layer's lock) when a channel exhausts its
  /// retransmit budget. `from -> to` is the dead direction.
  using LinkDownFn = std::function<void(ProcessorId from, ProcessorId to)>;
  void SetLinkDownCallback(LinkDownFn fn) { on_link_down_ = std::move(fn); }

  void Register(ProcessorId id, Receiver* receiver) override;
  ProcessorId size() const override;
  void Send(Message m) override;
  void Start() override;
  void Stop() override;
  bool WaitQuiescent(std::chrono::milliseconds timeout) override;
  NetworkStats& stats() override { return base_->stats(); }

  /// Virtual-timer pump: advances the virtual clock to the earliest
  /// pending deadline and fires everything due (retransmits, pure acks,
  /// link-down declarations) in deterministic channel order. Returns true
  /// if any timer fired. No-op (false) under real timers.
  bool Pump();

  /// True if any directed channel has been declared down.
  bool AnyLinkDown() const;
  bool IsLinkDown(ProcessorId from, ProcessorId to) const;

  /// Total data messages awaiting ack across all channels (tests).
  size_t Unacked() const;

  /// Mixes the reliable layer's schedule-relevant state (sequence
  /// numbers, unacked windows, reorder buffers, relative deadlines) into
  /// an exhaustive-verifier state fingerprint. Canonical: iterates
  /// channels in index order and mixes deadlines relative to the virtual
  /// clock, never absolute times.
  void MixState(Fingerprint& fp) const;

 private:
  /// uint64_t ordering by serial-number arithmetic, so reorder-buffer
  /// keys sort correctly across the sequence wrap.
  struct SerialLess {
    bool operator()(uint64_t a, uint64_t b) const {
      return static_cast<int64_t>(a - b) < 0;
    }
  };

  static constexpr uint64_t kNoDeadline = ~0ull;

  // Sender half of ordered channel (from, to).
  struct TxChannel {
    uint64_t next_seq = 0;
    std::deque<Message> unacked;  // retransmission window (go-back-N)
    uint32_t retries = 0;
    uint64_t rto_deadline = kNoDeadline;
    bool dead = false;
  };

  // Receiver half of ordered channel (from, to), owned by endpoint `to`.
  struct RxChannel {
    uint64_t expected = 0;  // next in-sequence seq; cum ack = expected - 1
    std::map<uint64_t, Message, SerialLess> reorder;  // out-of-order frames
    bool ack_pending = false;
    uint64_t ack_deadline = kNoDeadline;
  };

  /// Receiver wrapper registered with the base transport: runs the
  /// ack/dedup/reorder state machine, then forwards the surviving batch
  /// to the real receiver (preserving DeliverBatch combining).
  class Endpoint : public Receiver {
   public:
    Endpoint(ReliableNetwork* net, ProcessorId id, Receiver* real)
        : net_(net), id_(id), real_(real) {}
    void Deliver(Message m) override;
    void DeliverBatch(std::vector<Message>& batch) override;

   private:
    ReliableNetwork* net_;
    ProcessorId id_;
    Receiver* real_;
  };

  void EnsureChannels();
  size_t Index(ProcessorId from, ProcessorId to) const {
    return static_cast<size_t>(from) * num_processors_ + to;
  }

  uint64_t NowUs() const;
  uint64_t BackoffUs(ProcessorId from, ProcessorId to,
                     uint32_t retries) const;
  uint64_t NextDeadlineLocked() const;
  /// Fires every timer due at `now`. Appends outgoing frames to `sends`
  /// and dead links to `downs`; the caller dispatches both after
  /// releasing the lock.
  void FireDueLocked(uint64_t now, std::vector<Message>* sends,
                     std::vector<std::pair<ProcessorId, ProcessorId>>* downs);
  bool AllSettledLocked() const;
  /// Stamps the cumulative ack for `to -> from` onto an outgoing
  /// `from -> to` frame, clearing any pending delayed ack.
  void AttachAckLocked(Message* m);
  void ProcessBatch(ProcessorId id, std::vector<Message>& in,
                    std::vector<Message>* out);
  void DispatchDowns(
      const std::vector<std::pair<ProcessorId, ProcessorId>>& downs);
  void TimerLoop();
  void WakeTimerLocked();

  Network* base_;
  ReliabilityOptions options_;
  LinkDownFn on_link_down_;

  std::once_flag channels_once_;
  size_t num_processors_ = 0;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;

  mutable std::mutex mu_;
  std::vector<TxChannel> tx_;
  std::vector<RxChannel> rx_;
  uint64_t virtual_now_us_ = 0;
  bool any_link_down_ = false;
  bool stopped_ = false;

  // Real-timer machinery (options_.real_timers only).
  std::thread timer_thread_;
  std::condition_variable timer_cv_;
  std::condition_variable settled_cv_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_RELIABLE_H_
