#include "src/net/reliable.h"

#include <algorithm>
#include <utility>

#include "src/util/rng.h"

namespace lazytree::net {

ReliableNetwork::ReliableNetwork(Network* base, ReliabilityOptions options)
    : base_(base),
      options_(options),
      epoch_(std::chrono::steady_clock::now()) {}

ReliableNetwork::~ReliableNetwork() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
}

void ReliableNetwork::Register(ProcessorId id, Receiver* receiver) {
  if (endpoints_.size() <= static_cast<size_t>(id)) {
    endpoints_.resize(static_cast<size_t>(id) + 1);
  }
  endpoints_[id] = std::make_unique<Endpoint>(this, id, receiver);
  base_->Register(id, endpoints_[id].get());
}

ProcessorId ReliableNetwork::size() const { return base_->size(); }

void ReliableNetwork::EnsureChannels() {
  std::call_once(channels_once_, [this] {
    num_processors_ = base_->size();
    tx_.resize(num_processors_ * num_processors_);
    rx_.resize(num_processors_ * num_processors_);
    for (TxChannel& tx : tx_) tx.next_seq = options_.initial_seq;
    for (RxChannel& rxc : rx_) rxc.expected = options_.initial_seq;
  });
}

void ReliableNetwork::Start() {
  base_->Start();
  EnsureChannels();
  epoch_ = std::chrono::steady_clock::now();
  if (options_.real_timers && !timer_thread_.joinable()) {
    timer_thread_ = std::thread([this] { TimerLoop(); });
  }
}

void ReliableNetwork::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  base_->Stop();
}

uint64_t ReliableNetwork::NowUs() const {
  if (!options_.real_timers) return virtual_now_us_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint64_t ReliableNetwork::BackoffUs(ProcessorId from, ProcessorId to,
                                    uint32_t retries) const {
  const uint64_t base = options_.rto_us
                        << std::min<uint32_t>(retries, 16);
  // Deterministic jitter: a pure hash of (seed, link, attempt), so replays
  // and the exhaustive verifier see identical timer schedules.
  uint64_t state = options_.seed;
  state ^= 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(from) + 1);
  state ^= 0xC2B2AE3D27D4EB4Full * (static_cast<uint64_t>(to) + 1);
  state ^= 0x165667B19E3779F9ull * (retries + 1);
  const uint64_t jitter =
      options_.jitter_us == 0 ? 0 : SplitMix64(state) % (options_.jitter_us + 1);
  return base + jitter;
}

void ReliableNetwork::AttachAckLocked(Message* m) {
  RxChannel& rxc = rx_[Index(m->to, m->from)];
  m->ack = rxc.expected - 1;  // cumulative: everything below expected
  m->flags |= Message::kHasAck;
  if (rxc.ack_pending) {
    rxc.ack_pending = false;
    rxc.ack_deadline = kNoDeadline;
    stats().OnAckPiggybacked();
  }
}

void ReliableNetwork::Send(Message m) {
  // Self-sends and unaddressed frames model in-process work; the reliable
  // machinery covers remote links only.
  if (m.from == m.to || m.from == kInvalidProcessor ||
      m.to == kInvalidProcessor) {
    base_->Send(std::move(m));
    return;
  }
  EnsureChannels();
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TxChannel& tx = tx_[Index(m.from, m.to)];
    if (tx.dead) return;  // link declared down; ops already failed
    m.seq = tx.next_seq++;
    m.flags = 0;
    AttachAckLocked(&m);
    tx.unacked.push_back(m);  // window copy for retransmission
    if (tx.unacked.size() == 1) {
      tx.rto_deadline = NowUs() + BackoffUs(m.from, m.to, 0);
      wake = true;
    }
  }
  base_->Send(std::move(m));
  if (wake && options_.real_timers) timer_cv_.notify_all();
}

void ReliableNetwork::Endpoint::Deliver(Message m) {
  std::vector<Message> batch;
  batch.push_back(std::move(m));
  DeliverBatch(batch);
}

void ReliableNetwork::Endpoint::DeliverBatch(std::vector<Message>& batch) {
  std::vector<Message> out;
  net_->ProcessBatch(id_, batch, &out);
  if (!out.empty()) real_->DeliverBatch(out);
}

void ReliableNetwork::ProcessBatch(ProcessorId id, std::vector<Message>& in,
                                   std::vector<Message>* out) {
  EnsureChannels();
  bool wake = false;
  bool settled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t now = NowUs();
    for (Message& m : in) {
      if (m.from == m.to || m.from == kInvalidProcessor) {
        out->push_back(std::move(m));
        continue;
      }
      if (m.flags & Message::kHasAck) {
        // The peer acks our `id -> m.from` channel cumulatively.
        TxChannel& tx = tx_[Index(id, m.from)];
        bool progress = false;
        while (!tx.unacked.empty() &&
               static_cast<int64_t>(tx.unacked.front().seq - m.ack) <= 0) {
          tx.unacked.pop_front();
          progress = true;
        }
        if (progress) {
          tx.retries = 0;
          if (tx.unacked.empty()) {
            tx.rto_deadline = kNoDeadline;
            settled = true;
          } else {
            tx.rto_deadline = now + BackoffUs(id, m.from, 0);
            wake = true;
          }
        }
      }
      if (m.flags & Message::kAckOnly) continue;  // never delivered upward

      RxChannel& rxc = rx_[Index(m.from, id)];
      const int64_t diff = static_cast<int64_t>(m.seq - rxc.expected);
      if (diff == 0) {
        out->push_back(std::move(m));
        ++rxc.expected;
        while (!rxc.reorder.empty() &&
               rxc.reorder.begin()->first == rxc.expected) {
          out->push_back(std::move(rxc.reorder.begin()->second));
          rxc.reorder.erase(rxc.reorder.begin());
          ++rxc.expected;
        }
        if (!rxc.ack_pending) {
          rxc.ack_pending = true;
          rxc.ack_deadline = now + options_.ack_delay_us;
          wake = true;
        }
      } else if (diff < 0 || rxc.reorder.count(m.seq) != 0) {
        // Stale or duplicate frame: the peer is (re)sending something we
        // already have, so re-ack eagerly to shut its timer down.
        stats().OnDuplicateDropped();
        rxc.ack_pending = true;
        rxc.ack_deadline = now;
        wake = true;
      } else if (rxc.reorder.size() < options_.reorder_window) {
        rxc.reorder.emplace(m.seq, std::move(m));
      }
      // else: reorder window overflow — drop; go-back-N recovers it.
    }
  }
  if (wake && options_.real_timers) timer_cv_.notify_all();
  if (settled) settled_cv_.notify_all();
}

uint64_t ReliableNetwork::NextDeadlineLocked() const {
  uint64_t next = kNoDeadline;
  for (const TxChannel& tx : tx_) {
    if (!tx.dead && !tx.unacked.empty()) next = std::min(next, tx.rto_deadline);
  }
  for (const RxChannel& rxc : rx_) {
    if (rxc.ack_pending) next = std::min(next, rxc.ack_deadline);
  }
  return next;
}

void ReliableNetwork::FireDueLocked(
    uint64_t now, std::vector<Message>* sends,
    std::vector<std::pair<ProcessorId, ProcessorId>>* downs) {
  // Deterministic firing order: tx channels then rx channels, both in
  // (from, to) index order — required for replayable schedules.
  for (size_t i = 0; i < tx_.size(); ++i) {
    TxChannel& tx = tx_[i];
    if (tx.dead || tx.unacked.empty() || tx.rto_deadline > now) continue;
    const ProcessorId from = static_cast<ProcessorId>(i / num_processors_);
    const ProcessorId to = static_cast<ProcessorId>(i % num_processors_);
    if (tx.retries >= options_.max_retransmits) {
      // Budget spent: declare the link down instead of hanging Settle().
      tx.dead = true;
      tx.unacked.clear();
      tx.rto_deadline = kNoDeadline;
      any_link_down_ = true;
      stats().OnLinkDown();
      downs->emplace_back(from, to);
      continue;
    }
    ++tx.retries;
    stats().OnRetransmit(tx.unacked.size());
    for (const Message& pending : tx.unacked) {
      Message copy = pending;
      copy.flags |= Message::kRetransmit;
      AttachAckLocked(&copy);
      sends->push_back(std::move(copy));
    }
    tx.rto_deadline = now + BackoffUs(from, to, tx.retries);
  }
  for (size_t i = 0; i < rx_.size(); ++i) {
    RxChannel& rxc = rx_[i];
    if (!rxc.ack_pending || rxc.ack_deadline > now) continue;
    const ProcessorId from = static_cast<ProcessorId>(i / num_processors_);
    const ProcessorId to = static_cast<ProcessorId>(i % num_processors_);
    Message ack;
    ack.from = to;  // the rx channel's owner acks back to the sender
    ack.to = from;
    ack.flags = Message::kHasAck | Message::kAckOnly;
    ack.ack = rxc.expected - 1;
    rxc.ack_pending = false;
    rxc.ack_deadline = kNoDeadline;
    sends->push_back(std::move(ack));
  }
}

void ReliableNetwork::DispatchDowns(
    const std::vector<std::pair<ProcessorId, ProcessorId>>& downs) {
  if (!on_link_down_) return;
  for (const auto& [from, to] : downs) on_link_down_(from, to);
}

bool ReliableNetwork::Pump() {
  if (options_.real_timers) return false;
  EnsureChannels();
  std::vector<Message> sends;
  std::vector<std::pair<ProcessorId, ProcessorId>> downs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t next = NextDeadlineLocked();
    if (next == kNoDeadline) return false;
    if (next > virtual_now_us_) virtual_now_us_ = next;
    FireDueLocked(virtual_now_us_, &sends, &downs);
  }
  for (Message& m : sends) base_->Send(std::move(m));
  DispatchDowns(downs);
  return !sends.empty() || !downs.empty();
}

void ReliableNetwork::TimerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopped_) {
    const uint64_t next = NextDeadlineLocked();
    if (next == kNoDeadline) {
      timer_cv_.wait(lock);
      continue;
    }
    const uint64_t now = NowUs();
    if (now < next) {
      timer_cv_.wait_for(lock, std::chrono::microseconds(next - now));
      continue;
    }
    std::vector<Message> sends;
    std::vector<std::pair<ProcessorId, ProcessorId>> downs;
    FireDueLocked(now, &sends, &downs);
    lock.unlock();
    for (Message& m : sends) base_->Send(std::move(m));
    DispatchDowns(downs);
    if (!downs.empty()) settled_cv_.notify_all();
    lock.lock();
  }
}

bool ReliableNetwork::AllSettledLocked() const {
  for (const TxChannel& tx : tx_) {
    if (!tx.dead && !tx.unacked.empty()) return false;
  }
  for (const RxChannel& rxc : rx_) {
    if (rxc.ack_pending) return false;
  }
  return true;
}

bool ReliableNetwork::WaitQuiescent(std::chrono::milliseconds timeout) {
  EnsureChannels();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    if (!base_->WaitQuiescent(remaining > std::chrono::milliseconds(0)
                                  ? remaining
                                  : std::chrono::milliseconds(0))) {
      return false;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (AllSettledLocked()) return true;
      if (options_.real_timers) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        // The timer thread owns firing; wait for acks/retransmits/link
        // declarations to move the state, then re-check the base.
        settled_cv_.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
    }
    // Virtual timers: fire the earliest deadline ourselves. Pump returning
    // false with unsettled channels cannot happen (unacked windows and
    // pending acks always carry deadlines) — bail out rather than spin.
    if (!Pump()) {
      std::lock_guard<std::mutex> lock(mu_);
      return AllSettledLocked();
    }
  }
}

bool ReliableNetwork::AnyLinkDown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return any_link_down_;
}

bool ReliableNetwork::IsLinkDown(ProcessorId from, ProcessorId to) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tx_.empty()) return false;
  return tx_[Index(from, to)].dead;
}

size_t ReliableNetwork::Unacked() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const TxChannel& tx : tx_) total += tx.unacked.size();
  return total;
}

void ReliableNetwork::MixState(Fingerprint& fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  fp.Mix(0x52454C4E45544D58ull);  // "RELNETMX"
  for (const TxChannel& tx : tx_) {
    fp.Mix(tx.next_seq);
    fp.Mix(tx.unacked.size());
    for (const Message& m : tx.unacked) fp.Mix(m.seq);
    fp.Mix(tx.retries);
    fp.Mix(tx.dead ? 1 : 0);
    // Deadlines mix relative to the virtual clock: absolute times grow
    // monotonically and would make every state unique.
    fp.Mix(tx.rto_deadline == kNoDeadline
               ? 0
               : tx.rto_deadline - virtual_now_us_ + 1);
  }
  for (const RxChannel& rxc : rx_) {
    fp.Mix(rxc.expected);
    fp.Mix(rxc.reorder.size());
    for (const auto& [seq, m] : rxc.reorder) fp.Mix(seq);
    fp.Mix(rxc.ack_pending ? 1 : 0);
    fp.Mix(rxc.ack_deadline == kNoDeadline
               ? 0
               : rxc.ack_deadline - virtual_now_us_ + 1);
  }
}

}  // namespace lazytree::net
