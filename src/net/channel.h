// Channel: one ordered (from, to) message lane inside SimNetwork.

#ifndef LAZYTREE_NET_CHANNEL_H_
#define LAZYTREE_NET_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/msg/message.h"

namespace lazytree::net {

/// FIFO queue of encoded messages with per-channel sequence numbers.
/// Single-threaded (SimNetwork only).
class Channel {
 public:
  /// Appends a message; assigns and returns its channel sequence number.
  uint64_t Push(std::vector<uint8_t> encoded);

  /// Pops the head. Precondition: !Empty().
  std::vector<uint8_t> Pop();

  /// Queued message at `index` (0 = head). Precondition: index < Size().
  /// The exhaustive verifier inspects pending messages without popping.
  const std::vector<uint8_t>& Peek(size_t index = 0) const {
    return queue_[index];
  }

  /// Swaps the first two queued messages (planted-mutation self-test:
  /// deliberately violates per-channel FIFO). Precondition: Size() >= 2.
  void SwapFirstTwo() { std::swap(queue_[0], queue_[1]); }

  bool Empty() const { return queue_.empty(); }
  size_t Size() const { return queue_.size(); }

 private:
  std::deque<std::vector<uint8_t>> queue_;
  uint64_t next_seq_ = 1;
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_CHANNEL_H_
