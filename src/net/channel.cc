#include "src/net/channel.h"

#include "src/util/logging.h"

namespace lazytree::net {

uint64_t Channel::Push(std::vector<uint8_t> encoded) {
  queue_.push_back(std::move(encoded));
  return next_seq_++;
}

std::vector<uint8_t> Channel::Pop() {
  LAZYTREE_CHECK(!queue_.empty()) << "Pop on empty channel";
  std::vector<uint8_t> head = std::move(queue_.front());
  queue_.pop_front();
  return head;
}

}  // namespace lazytree::net
