// Piggybacking decorator (§1.1): "the lazy update can be piggybacked onto
// messages used for other purposes, greatly reducing the cost of
// replication management."
//
// PiggybackNetwork wraps any Network. Messages whose actions are all
// relayed updates (which commute — that is what makes them safe to delay)
// are buffered per destination instead of being sent. The buffered actions
// are prepended onto the *next* message of any kind bound for the same
// destination, so per-destination FIFO order is exactly preserved; the
// only effect is batching. A buffer cap bounds staleness, and FlushAll /
// WaitQuiescent force everything out.

#ifndef LAZYTREE_NET_PIGGYBACK_H_
#define LAZYTREE_NET_PIGGYBACK_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/net/transport.h"

namespace lazytree::net {

class PiggybackNetwork : public Network {
 public:
  /// `max_buffered` — per-destination action cap; reaching it flushes.
  /// 0 disables buffering entirely (pass-through).
  PiggybackNetwork(Network* base, size_t max_buffered);

  void Register(ProcessorId id, Receiver* receiver) override;
  ProcessorId size() const override;
  void Send(Message m) override;
  void Start() override;
  void Stop() override;
  bool WaitQuiescent(std::chrono::milliseconds timeout) override;

  /// Sends every buffered action immediately (as standalone messages).
  void FlushAll();

  /// Buffered action count (for tests).
  size_t Buffered() const;

  NetworkStats& base_stats() { return base_->stats(); }

 private:
  static bool Deferrable(const Message& m);
  // Key: (from << 32) | to — buffers are per ordered channel so that
  // flushing preserves each sender's FIFO order toward the destination.
  static uint64_t ChannelKey(ProcessorId from, ProcessorId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  Network* base_;
  size_t max_buffered_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<Action>> buffers_;
  size_t buffered_total_ = 0;
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_PIGGYBACK_H_
