// Piggybacking decorator (§1.1): "the lazy update can be piggybacked onto
// messages used for other purposes, greatly reducing the cost of
// replication management."
//
// PiggybackNetwork wraps any Network. Messages whose actions are all
// relayed updates (which commute — that is what makes them safe to delay)
// are buffered per destination instead of being sent. The buffered actions
// are prepended onto the *next* message of any kind bound for the same
// destination, so per-destination FIFO order is exactly preserved; the
// only effect is batching. The `max_buffered` flush threshold bounds
// staleness: a channel buffer that reaches it departs as one coalesced
// batch message. FlushAll / WaitQuiescent force everything out.
//
// Concurrency: the buffer for each ordered (from, to) channel has its own
// lock, so concurrent senders on the thread transport only contend when
// they share a channel — there is no global mutex on the send path.

#ifndef LAZYTREE_NET_PIGGYBACK_H_
#define LAZYTREE_NET_PIGGYBACK_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/net/transport.h"

namespace lazytree::net {

class PiggybackNetwork : public Network {
 public:
  /// `max_buffered` — per-channel action flush threshold; reaching it
  /// sends the whole buffer as one batch message. 0 disables buffering
  /// entirely (pass-through).
  PiggybackNetwork(Network* base, size_t max_buffered);

  void Register(ProcessorId id, Receiver* receiver) override;
  ProcessorId size() const override;
  void Send(Message m) override;
  void Start() override;
  void Stop() override;
  bool WaitQuiescent(std::chrono::milliseconds timeout) override;
  NetworkStats& stats() override { return base_->stats(); }

  /// Sends every buffered channel immediately (one batch message each).
  void FlushAll();

  /// Buffered action count (for tests).
  size_t Buffered() const {
    return buffered_total_.load(std::memory_order_acquire);
  }

  NetworkStats& base_stats() { return base_->stats(); }

 private:
  // One ordered (from, to) lane's deferral buffer. Buffers are per
  // channel so that flushing preserves each sender's FIFO order toward
  // the destination.
  struct ChannelBuf {
    std::mutex mu;
    std::vector<Action> actions;
  };

  static bool Deferrable(const Message& m);

  /// Builds the dense n*n channel table on first use (Register must
  /// precede all Sends, so `base_->size()` is stable by then).
  void EnsureChannels();
  ChannelBuf& ChannelFor(ProcessorId from, ProcessorId to) {
    return *channels_[static_cast<size_t>(from) * num_processors_ + to];
  }

  Network* base_;
  size_t max_buffered_;
  std::once_flag channels_once_;
  size_t num_processors_ = 0;
  std::vector<std::unique_ptr<ChannelBuf>> channels_;
  std::atomic<size_t> buffered_total_{0};
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_PIGGYBACK_H_
