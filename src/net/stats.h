// Network accounting: every bench in this repo ultimately reports numbers
// that come from here (messages, bytes, per-action-kind counts).

#ifndef LAZYTREE_NET_STATS_H_
#define LAZYTREE_NET_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/msg/message.h"

namespace lazytree::net {

/// Point-in-time copy of the counters (cheap to subtract for intervals).
struct StatsSnapshot {
  uint64_t remote_messages = 0;  ///< messages that crossed processors
  uint64_t local_messages = 0;   ///< self-sends (not network traffic)
  uint64_t remote_bytes = 0;
  uint64_t piggybacked_actions = 0;  ///< actions that rode along for free
  uint64_t combined_actions = 0;     ///< actions merged by the op combiner
  uint64_t fastpath_reads = 0;  ///< local hops short-circuited by inline descent
  uint64_t retransmits = 0;         ///< messages resent by the reliable layer
  uint64_t duplicates_dropped = 0;  ///< stale/duplicate frames deduped away
  uint64_t acks_piggybacked = 0;    ///< cumulative acks that rode data frames
  uint64_t link_down = 0;  ///< channels declared dead (retransmit budget spent)
  std::array<uint64_t, static_cast<size_t>(ActionKind::kMaxKind)>
      actions_by_kind{};

  StatsSnapshot operator-(const StatsSnapshot& rhs) const;
  uint64_t ActionCount(ActionKind kind) const {
    return actions_by_kind[static_cast<size_t>(kind)];
  }
  std::string ToString() const;
};

/// Thread-safe counters owned by a Network.
class NetworkStats {
 public:
  void OnSend(const Message& m, size_t encoded_bytes);
  void OnPiggyback(size_t action_count);
  /// `action_count` actions left the queue manager fused into an
  /// already-pending message instead of as their own sends.
  void OnCombined(size_t action_count);
  /// A navigation hop (or whole descent) was resolved against local
  /// replicas without a queue-manager round trip.
  void OnFastpathRead(size_t hops);
  /// Reliable-delivery accounting (net/reliable.h): the layer is a
  /// decorator, so it writes into the base transport's stats sink.
  void OnRetransmit(size_t messages);
  void OnDuplicateDropped();
  void OnAckPiggybacked();
  void OnLinkDown();
  StatsSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> remote_messages_{0};
  std::atomic<uint64_t> local_messages_{0};
  std::atomic<uint64_t> remote_bytes_{0};
  std::atomic<uint64_t> piggybacked_actions_{0};
  std::atomic<uint64_t> combined_actions_{0};
  std::atomic<uint64_t> fastpath_reads_{0};
  std::atomic<uint64_t> retransmits_{0};
  std::atomic<uint64_t> duplicates_dropped_{0};
  std::atomic<uint64_t> acks_piggybacked_{0};
  std::atomic<uint64_t> link_down_{0};
  std::array<std::atomic<uint64_t>,
             static_cast<size_t>(ActionKind::kMaxKind)>
      actions_by_kind_{};
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_STATS_H_
