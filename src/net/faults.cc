#include "src/net/faults.h"

#include <chrono>
#include <utility>

#include "src/util/rng.h"

namespace lazytree::net {
namespace {

/// One uniform double in [0, 1) for fault decision `stream` of send
/// `index` on link (from, to). Pure function — this is what makes the
/// whole fault layer replayable.
double FaultUniform(uint64_t seed, ProcessorId from, ProcessorId to,
                    uint64_t index, uint64_t stream) {
  uint64_t state = seed;
  state ^= 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(from) + 1);
  state ^= 0xC2B2AE3D27D4EB4Full * (static_cast<uint64_t>(to) + 1);
  state ^= 0x165667B19E3779F9ull * (index + 1);
  state ^= 0x27D4EB2F165667C5ull * (stream + 1);
  uint64_t z = SplitMix64(state);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

constexpr uint64_t kDropStream = 0;
constexpr uint64_t kDupStream = 1;
constexpr uint64_t kReorderStream = 2;
constexpr uint64_t kDelayStream = 3;

}  // namespace

FaultyNetwork::FaultyNetwork(Network* base, FaultPlan plan)
    : base_(base), plan_(std::move(plan)) {}

void FaultyNetwork::Register(ProcessorId id, Receiver* receiver) {
  base_->Register(id, receiver);
}

ProcessorId FaultyNetwork::size() const { return base_->size(); }

void FaultyNetwork::Start() { base_->Start(); }

void FaultyNetwork::Stop() {
  // Held messages are dead at Stop — like messages on the wire when the
  // plug is pulled. Dropping them here (instead of sending into a stopping
  // base) keeps Stop non-blocking and accounting simple.
  base_->Stop();
}

void FaultyNetwork::EnsureLinks() {
  std::call_once(links_once_, [this] {
    num_processors_ = base_->size();
    links_.resize(num_processors_ * num_processors_);
    for (auto& l : links_) l = std::make_unique<Link>();
  });
}

bool FaultyNetwork::Partitioned(ProcessorId from, ProcessorId to,
                                uint64_t index) const {
  for (const FaultPlan::Partition& p : plan_.partitions) {
    const bool on_link = (p.a == from && p.b == to) ||
                         (p.a == to && p.b == from);
    if (on_link && index >= p.start && index < p.start + p.length) {
      return true;
    }
  }
  return false;
}

void FaultyNetwork::Send(Message m) {
  // Self-sends model in-process work, not network traffic; never fault
  // them (dropping one would wedge the processor's own pipeline, which no
  // real lossy link can do).
  if (m.from == m.to) {
    base_->Send(std::move(m));
    return;
  }
  EnsureLinks();
  Link& link = LinkFor(m.from, m.to);

  bool duplicate = false;
  Message swapped_out;
  bool have_swapped_out = false;
  {
    std::lock_guard<std::mutex> lock(link.mu);
    const uint64_t index = link.sends++;
    if (Partitioned(m.from, m.to, index)) {
      partitioned_.fetch_add(1, std::memory_order_relaxed);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;  // blackholed
    }
    const uint64_t seed = plan_.seed;
    if (plan_.drop > 0 &&
        FaultUniform(seed, m.from, m.to, index, kDropStream) < plan_.drop) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;  // vanished
    }
    if (plan_.delay > 0 &&
        FaultUniform(seed, m.from, m.to, index, kDelayStream) < plan_.delay) {
      delayed_.fetch_add(1, std::memory_order_relaxed);
      link.held.push_back(std::move(m));
      return;  // released by FlushHeld
    }
    if (plan_.reorder > 0 &&
        FaultUniform(seed, m.from, m.to, index, kReorderStream) <
            plan_.reorder &&
        !link.has_stash) {
      // Stash this message; it departs *after* the link's next send —
      // an adjacent swap, the minimal FIFO violation.
      reordered_.fetch_add(1, std::memory_order_relaxed);
      link.stash = std::move(m);
      link.has_stash = true;
      return;
    }
    if (link.has_stash) {
      swapped_out = std::move(link.stash);
      link.has_stash = false;
      have_swapped_out = true;
    }
    duplicate =
        plan_.duplicate > 0 &&
        FaultUniform(seed, m.from, m.to, index, kDupStream) < plan_.duplicate;
  }

  if (duplicate) {
    duplicated_.fetch_add(1, std::memory_order_relaxed);
    base_->Send(m);  // copy out first, then the original below
  }
  base_->Send(std::move(m));
  if (have_swapped_out) base_->Send(std::move(swapped_out));
}

size_t FaultyNetwork::FlushHeld() {
  if (links_.empty()) return 0;
  size_t released = 0;
  for (auto& link_ptr : links_) {
    Link& link = *link_ptr;
    std::vector<Message> held;
    Message stash;
    bool have_stash = false;
    {
      std::lock_guard<std::mutex> lock(link.mu);
      held.swap(link.held);
      if (link.has_stash) {
        stash = std::move(link.stash);
        link.has_stash = false;
        have_stash = true;
      }
    }
    for (Message& m : held) {
      base_->Send(std::move(m));
      ++released;
    }
    if (have_stash) {
      base_->Send(std::move(stash));
      ++released;
    }
  }
  return released;
}

bool FaultyNetwork::WaitQuiescent(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Held messages re-enter the base when flushed, so loop until a flush
  // releases nothing *and* the base reports quiescence.
  for (int i = 0; i < 1000; ++i) {
    const size_t released = FlushHeld();
    const auto now = std::chrono::steady_clock::now();
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    if (!base_->WaitQuiescent(remaining > std::chrono::milliseconds(0)
                                  ? remaining
                                  : std::chrono::milliseconds(0))) {
      return false;
    }
    if (released == 0) return true;
  }
  return false;
}

}  // namespace lazytree::net
