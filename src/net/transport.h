// Network abstraction the protocols are written against.
//
// The paper's network assumption (§4): reliable, exactly-once, in-order
// delivery between any pair of processors. Two implementations honor it:
//
//   * ThreadNetwork — one worker thread per processor; real parallelism
//     for throughput benches.
//   * SimNetwork — deterministic discrete-event scheduler; a seed fully
//     determines the interleaving, so property tests can replay
//     adversarial schedules.
//
// Delivery model: each processor registers a Receiver; the network invokes
// Receiver::Deliver for one message at a time per processor (this provides
// the paper's "an action on a node is implicitly atomic" guarantee —
// §1.1). Deliver may call Send reentrantly.

#ifndef LAZYTREE_NET_TRANSPORT_H_
#define LAZYTREE_NET_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/msg/message.h"
#include "src/net/stats.h"

namespace lazytree::net {

/// Message sink implemented by each processor.
class Receiver {
 public:
  virtual ~Receiver() = default;

  /// Handles one message. Called serially per processor. May Send.
  virtual void Deliver(Message m) = 0;

  /// Handles a drained inbox batch. Called serially per processor with
  /// the same atomicity guarantee as Deliver (the batch is just a loop of
  /// serial Delivers from the receiver's point of view). Overriding lets
  /// a receiver amortize per-delivery work across the batch — the
  /// Processor override opens an output-combining scope so all actions
  /// the batch emits toward one destination leave as a single message.
  /// `batch` elements are consumed (moved from); the vector itself stays
  /// owned by the caller for capacity recycling.
  virtual void DeliverBatch(std::vector<Message>& batch) {
    for (Message& m : batch) Deliver(std::move(m));
  }
};

/// Reliable exactly-once FIFO transport between registered processors.
class Network {
 public:
  virtual ~Network() = default;

  /// Registers the receiver for `id`. Must be called for every processor
  /// before Start; ids must be dense [0, n).
  virtual void Register(ProcessorId id, Receiver* receiver) = 0;

  /// Number of registered processors.
  virtual ProcessorId size() const = 0;

  /// Enqueues a message. `m.from`/`m.to` must be registered. Never blocks.
  virtual void Send(Message m) = 0;

  /// Starts delivery (ThreadNetwork spawns workers; SimNetwork is a no-op).
  virtual void Start() = 0;

  /// Stops delivery and drains nothing further. Idempotent.
  virtual void Stop() = 0;

  /// Blocks/loops until no message is queued or being handled, or the
  /// timeout elapses. Returns true on quiescence. For SimNetwork this *is*
  /// the execution loop.
  virtual bool WaitQuiescent(std::chrono::milliseconds timeout) = 0;

  /// Counter sink. Decorators (piggyback, faults, reliable) override this
  /// to return the base transport's sink, so a whole decorator stack
  /// reports through one set of counters no matter which layer a caller
  /// holds.
  virtual NetworkStats& stats() { return stats_; }

 protected:
  NetworkStats stats_;
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_TRANSPORT_H_
