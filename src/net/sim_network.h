// SimNetwork: deterministic, seed-replayable message scheduler.
//
// There are no threads: WaitQuiescent repeatedly picks a random non-empty
// (from, to) channel using the seeded Rng, pops its head message, and calls
// the receiver synchronously. Per-channel FIFO is preserved (the paper's
// assumption); *cross*-channel order is adversarially random, which models
// arbitrary relative network latency. The same seed always yields the same
// interleaving, so failing schedules replay exactly.

#ifndef LAZYTREE_NET_SIM_NETWORK_H_
#define LAZYTREE_NET_SIM_NETWORK_H_

#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "src/msg/fingerprint.h"
#include "src/net/channel.h"
#include "src/net/schedule_hook.h"
#include "src/net/transport.h"
#include "src/util/rng.h"

namespace lazytree::net {

class SimNetwork : public Network {
 public:
  explicit SimNetwork(uint64_t seed = 1);

  /// Switches to timestamped mode: every message is assigned an arrival
  /// time of now + latency, where latency is `base_us` plus a uniform
  /// jitter in [0, jitter_us] (remote) or `local_us` (self-sends), and
  /// Step always delivers the earliest arrival. Per-channel FIFO is
  /// preserved (arrivals are clamped to be non-decreasing per channel).
  /// Gives operations a measurable latency in simulated microseconds.
  /// Call before any Send.
  void EnableLatency(uint64_t base_us, uint64_t jitter_us,
                     uint64_t local_us = 1);

  /// Simulated clock (µs); only advances in latency mode.
  uint64_t NowUs() const { return now_us_; }

  void Register(ProcessorId id, Receiver* receiver) override;
  ProcessorId size() const override;
  void Send(Message m) override;
  void Start() override {}
  void Stop() override {}

  /// Runs deliveries until no message remains. The timeout bounds the
  /// number of deliveries (defensive against livelock bugs), not wall time.
  bool WaitQuiescent(std::chrono::milliseconds timeout) override;

  /// Delivers exactly one message (random non-empty channel, or the
  /// installed strategy's pick). Returns false when nothing is pending.
  bool Step();

  /// Installs a delivery strategy (non-owning; nullptr restores the
  /// uniform-random default). Queue mode only — the timestamped (latency)
  /// mode orders deliveries by arrival time, not by adversarial choice.
  void SetStrategy(ScheduleStrategy* strategy);

  /// Installs an observer notified of every delivery/crash decision in
  /// execution order (non-owning; nullptr detaches).
  void SetObserver(DeliveryObserver* observer) { observer_ = observer; }

  /// Crash injection: while crashed, every message delivered to `p` is
  /// dropped (fail-stop — the processor's volatile state is handled by
  /// Cluster::CrashProcessor). Idempotent.
  void Crash(ProcessorId p);
  void Restart(ProcessorId p);
  bool IsCrashed(ProcessorId p) const {
    return p < crashed_.size() && crashed_[p];
  }
  uint64_t crash_dropped() const { return crash_dropped_; }

  /// Fault injection — deliberately violates the §4 network assumption
  /// (reliable, exactly-once) so tests can demonstrate that the lazy
  /// protocols depend on it. Each delivered message is dropped with
  /// `drop` probability or delivered twice with `duplicate` probability.
  void InjectFaults(double drop, double duplicate) {
    drop_prob_ = drop;
    dup_prob_ = duplicate;
  }
  uint64_t dropped() const { return dropped_; }
  uint64_t duplicated() const { return duplicated_; }

  /// Messages currently queued across all channels.
  size_t Pending() const { return pending_; }

  /// Total deliveries performed so far.
  uint64_t delivered() const { return delivered_; }

  // --- exhaustive-verifier hooks (queue mode only) ---

  /// Encoded message at queue position `index` of channel (from, to).
  /// Precondition: the channel exists and index < its size. The verifier
  /// decodes heads to evaluate delivery independence (POR).
  const std::vector<uint8_t>& PeekChannel(ProcessorId from, ProcessorId to,
                                          size_t index = 0) const;

  /// Folds all in-flight state into a verifier fingerprint: every
  /// non-empty channel (sorted by (from, to)) with its queued message
  /// bytes in FIFO order, plus crash flags and the scheduler PRNG.
  void MixPending(Fingerprint& fp) const;

  /// Plants a one-shot protocol mutation (self-test of the verifier): the
  /// mutation fires at the first qualifying delivery and never again, so
  /// the same delivery schedule always reproduces it. Call before any
  /// Step.
  void PlantMutation(ScheduleMutation mutation) { mutation_ = mutation; }

  /// True once a planted mutation has fired.
  bool mutation_applied() const { return mutation_applied_; }

 private:
  /// Applies a planted kSwapOrdered to the picked channel if its first two
  /// messages qualify; returns true when the swap fired.
  bool MaybeSwapOrdered(Channel& ch);
  /// Applies a planted kDropRelay to a decoded message about to be
  /// delivered; returns true when an action was stripped.
  bool MaybeDropRelay(Message& m);

  Rng rng_;
  std::vector<Receiver*> receivers_;
  // Channel per ordered (from, to) pair, created lazily. A sorted map keeps
  // iteration order deterministic.
  std::map<std::pair<ProcessorId, ProcessorId>, Channel> channels_;
  std::vector<std::pair<ProcessorId, ProcessorId>> nonempty_;  // scratch
  std::vector<ChannelView> views_;                             // scratch
  ScheduleStrategy* strategy_ = nullptr;
  DeliveryObserver* observer_ = nullptr;
  std::vector<bool> crashed_;
  uint64_t crash_dropped_ = 0;
  size_t pending_ = 0;
  uint64_t delivered_ = 0;
  bool in_step_ = false;
  ScheduleMutation mutation_ = ScheduleMutation::kNone;
  bool mutation_applied_ = false;
  double drop_prob_ = 0;
  double dup_prob_ = 0;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;

  // Timestamped (latency) mode.
  struct TimedEvent {
    uint64_t arrival_us;
    uint64_t seq;  // tie-breaker keeps the order deterministic
    ProcessorId to;
    std::vector<uint8_t> encoded;
    bool operator>(const TimedEvent& other) const {
      return arrival_us != other.arrival_us
                 ? arrival_us > other.arrival_us
                 : seq > other.seq;
    }
  };
  bool latency_mode_ = false;
  uint64_t base_us_ = 0;
  uint64_t jitter_us_ = 0;
  uint64_t local_us_ = 0;
  uint64_t now_us_ = 0;
  uint64_t event_seq_ = 0;
  std::map<std::pair<ProcessorId, ProcessorId>, uint64_t> last_arrival_;
  std::priority_queue<TimedEvent, std::vector<TimedEvent>,
                      std::greater<TimedEvent>>
      timeline_;
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_SIM_NETWORK_H_
