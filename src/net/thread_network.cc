#include "src/net/thread_network.h"

#include <cstdlib>

#include "src/msg/wire.h"
#include "src/util/affinity.h"
#include "src/util/logging.h"

namespace lazytree::net {

namespace {

bool CheckedWireFromEnv() {
  const char* v = std::getenv("LAZYTREE_CHECKED_WIRE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

ThreadNetwork::ThreadNetwork(Options options)
    : checked_wire_(options.checked_wire || CheckedWireFromEnv()),
      byte_stats_(options.byte_stats),
      pin_threads_(options.pin_threads),
      max_batch_(options.max_batch > 0 ? options.max_batch : 1) {}

ThreadNetwork::~ThreadNetwork() { Stop(); }

void ThreadNetwork::Register(ProcessorId id, Receiver* receiver) {
  LAZYTREE_CHECK(!started_.load(std::memory_order_acquire))
      << "register after Start";
  if (stations_.size() <= id) stations_.resize(id + 1);
  LAZYTREE_CHECK(stations_[id] == nullptr) << "double register p" << id;
  stations_[id] = std::make_unique<Station>();
  stations_[id]->id = id;
  stations_[id]->receiver = receiver;
}

ProcessorId ThreadNetwork::size() const {
  return static_cast<ProcessorId>(stations_.size());
}

void ThreadNetwork::Send(Message m) {
  LAZYTREE_CHECK(m.to < stations_.size() && stations_[m.to] != nullptr)
      << "send to unregistered p" << m.to;
  Station& station = *stations_[m.to];
  if (checked_wire_) {
    std::vector<uint8_t> encoded = wire::EncodeMessage(m);
    stats_.OnSend(m, encoded.size());
    inflight_.fetch_add(1, std::memory_order_relaxed);
    if (!station.wire_inbox.Push(std::move(encoded))) {
      // Inbox closed during shutdown: account the message as handled.
      OnHandled(1);
    }
    return;
  }
  // Opt-in byte counts are exact even though no buffer is materialized;
  // self-sends are never counted as network bytes.
  stats_.OnSend(
      m, byte_stats_ && m.from != m.to ? wire::EncodedSize(m) : 0);
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (!station.inbox.Push(std::move(m))) {
    OnHandled(1);
  }
}

void ThreadNetwork::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    return;
  }
  for (auto& station : stations_) {
    LAZYTREE_CHECK(station != nullptr) << "processor ids must be dense";
    station->worker = std::thread(&ThreadNetwork::WorkerLoop, this,
                                  station.get());
  }
}

void ThreadNetwork::WorkerLoop(Station* station) {
  // Pin only when there are cores to spread over: on a single-CPU host
  // (or a 1-CPU cgroup) pinning is a no-op scheduling-wise and skipping
  // it keeps strace/TSan logs quiet.
  if (pin_threads_ && AvailableCpus() > 1) {
    PinCurrentThreadToCpu(static_cast<unsigned>(station->id));
  }
  if (checked_wire_) {
    // Original pipeline: one encoded message per queue round trip,
    // decoded and retired individually.
    while (auto encoded = station->wire_inbox.Pop()) {
      auto decoded = wire::DecodeMessage(*encoded);
      LAZYTREE_CHECK(decoded.ok())
          << "wire corruption: " << decoded.status().ToString();
      station->receiver->Deliver(std::move(*decoded));
      OnHandled(1);
    }
    return;
  }
  std::vector<Message> batch;  // recycled across PopAll swaps
  while (station->inbox.PopAll(batch, max_batch_)) {
    station->receiver->DeliverBatch(batch);
    OnHandled(static_cast<int64_t>(batch.size()));
  }
}

void ThreadNetwork::OnHandled(int64_t n) {
  const int64_t prev = inflight_.fetch_sub(n, std::memory_order_acq_rel);
  LAZYTREE_CHECK(prev >= n) << "inflight underflow: " << prev << " - " << n;
  if (prev == n) {
    // Zero transition: sync with WaitQuiescent's predicate check.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_cv_.notify_all();
  }
}

void ThreadNetwork::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    return;
  }
  for (auto& station : stations_) {
    if (station) {
      station->inbox.Close();
      station->wire_inbox.Close();
    }
  }
  for (auto& station : stations_) {
    if (station && station->worker.joinable()) station->worker.join();
  }
}

bool ThreadNetwork::WaitQuiescent(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  return inflight_cv_.wait_for(lock, timeout, [&] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace lazytree::net
