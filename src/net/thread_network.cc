#include "src/net/thread_network.h"

#include "src/msg/wire.h"
#include "src/util/logging.h"

namespace lazytree::net {

ThreadNetwork::~ThreadNetwork() { Stop(); }

void ThreadNetwork::Register(ProcessorId id, Receiver* receiver) {
  LAZYTREE_CHECK(!started_.load()) << "register after Start";
  if (stations_.size() <= id) stations_.resize(id + 1);
  LAZYTREE_CHECK(stations_[id] == nullptr) << "double register p" << id;
  stations_[id] = std::make_unique<Station>();
  stations_[id]->receiver = receiver;
}

ProcessorId ThreadNetwork::size() const {
  return static_cast<ProcessorId>(stations_.size());
}

void ThreadNetwork::Send(Message m) {
  LAZYTREE_CHECK(m.to < stations_.size() && stations_[m.to] != nullptr)
      << "send to unregistered p" << m.to;
  std::vector<uint8_t> encoded = wire::EncodeMessage(m);
  stats_.OnSend(m, encoded.size());
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  if (!stations_[m.to]->inbox.Push(std::move(encoded))) {
    // Inbox closed during shutdown: account the message as handled.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
    inflight_cv_.notify_all();
  }
}

void ThreadNetwork::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  for (auto& station : stations_) {
    LAZYTREE_CHECK(station != nullptr) << "processor ids must be dense";
    station->worker = std::thread(&ThreadNetwork::WorkerLoop, this,
                                  station.get());
  }
}

void ThreadNetwork::WorkerLoop(Station* station) {
  while (true) {
    std::optional<std::vector<uint8_t>> encoded = station->inbox.Pop();
    if (!encoded.has_value()) return;  // closed and drained
    auto decoded = wire::DecodeMessage(*encoded);
    LAZYTREE_CHECK(decoded.ok())
        << "wire corruption: " << decoded.status().ToString();
    station->receiver->Deliver(std::move(*decoded));
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_;
      if (inflight_ == 0) inflight_cv_.notify_all();
    }
  }
}

void ThreadNetwork::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  for (auto& station : stations_) {
    if (station) station->inbox.Close();
  }
  for (auto& station : stations_) {
    if (station && station->worker.joinable()) station->worker.join();
  }
}

bool ThreadNetwork::WaitQuiescent(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  return inflight_cv_.wait_for(lock, timeout,
                               [&] { return inflight_ == 0; });
}

}  // namespace lazytree::net
