#include "src/net/stats.h"

#include <sstream>

namespace lazytree::net {

StatsSnapshot StatsSnapshot::operator-(const StatsSnapshot& rhs) const {
  StatsSnapshot d;
  d.remote_messages = remote_messages - rhs.remote_messages;
  d.local_messages = local_messages - rhs.local_messages;
  d.remote_bytes = remote_bytes - rhs.remote_bytes;
  d.piggybacked_actions = piggybacked_actions - rhs.piggybacked_actions;
  d.combined_actions = combined_actions - rhs.combined_actions;
  d.fastpath_reads = fastpath_reads - rhs.fastpath_reads;
  d.retransmits = retransmits - rhs.retransmits;
  d.duplicates_dropped = duplicates_dropped - rhs.duplicates_dropped;
  d.acks_piggybacked = acks_piggybacked - rhs.acks_piggybacked;
  d.link_down = link_down - rhs.link_down;
  for (size_t i = 0; i < actions_by_kind.size(); ++i) {
    d.actions_by_kind[i] = actions_by_kind[i] - rhs.actions_by_kind[i];
  }
  return d;
}

std::string StatsSnapshot::ToString() const {
  std::ostringstream os;
  os << "remote_msgs=" << remote_messages << " local_msgs=" << local_messages
     << " remote_bytes=" << remote_bytes
     << " piggybacked=" << piggybacked_actions
     << " combined=" << combined_actions
     << " fastpath_reads=" << fastpath_reads;
  if (retransmits || duplicates_dropped || acks_piggybacked || link_down) {
    os << " retransmits=" << retransmits
       << " dups_dropped=" << duplicates_dropped
       << " acks_piggybacked=" << acks_piggybacked
       << " link_down=" << link_down;
  }
  for (size_t i = 1; i < actions_by_kind.size(); ++i) {
    if (actions_by_kind[i] == 0) continue;
    os << " " << ActionKindName(static_cast<ActionKind>(i)) << "="
       << actions_by_kind[i];
  }
  return os.str();
}

void NetworkStats::OnSend(const Message& m, size_t encoded_bytes) {
  if (m.from == m.to) {
    local_messages_.fetch_add(1, std::memory_order_relaxed);
  } else {
    remote_messages_.fetch_add(1, std::memory_order_relaxed);
    remote_bytes_.fetch_add(encoded_bytes, std::memory_order_relaxed);
  }
  // Coalesced messages repeat kinds, so aggregate locally and issue one
  // atomic RMW per distinct kind instead of one per action.
  uint32_t counts[static_cast<size_t>(ActionKind::kMaxKind)] = {};
  for (const Action& a : m.actions) ++counts[static_cast<size_t>(a.kind)];
  for (size_t k = 0; k < static_cast<size_t>(ActionKind::kMaxKind); ++k) {
    if (counts[k] != 0) {
      actions_by_kind_[k].fetch_add(counts[k], std::memory_order_relaxed);
    }
  }
}

void NetworkStats::OnPiggyback(size_t action_count) {
  piggybacked_actions_.fetch_add(action_count, std::memory_order_relaxed);
}

void NetworkStats::OnCombined(size_t action_count) {
  combined_actions_.fetch_add(action_count, std::memory_order_relaxed);
}

void NetworkStats::OnFastpathRead(size_t hops) {
  fastpath_reads_.fetch_add(hops, std::memory_order_relaxed);
}

void NetworkStats::OnRetransmit(size_t messages) {
  retransmits_.fetch_add(messages, std::memory_order_relaxed);
}

void NetworkStats::OnDuplicateDropped() {
  duplicates_dropped_.fetch_add(1, std::memory_order_relaxed);
}

void NetworkStats::OnAckPiggybacked() {
  acks_piggybacked_.fetch_add(1, std::memory_order_relaxed);
}

void NetworkStats::OnLinkDown() {
  link_down_.fetch_add(1, std::memory_order_relaxed);
}

StatsSnapshot NetworkStats::Snapshot() const {
  StatsSnapshot s;
  s.remote_messages = remote_messages_.load(std::memory_order_relaxed);
  s.local_messages = local_messages_.load(std::memory_order_relaxed);
  s.remote_bytes = remote_bytes_.load(std::memory_order_relaxed);
  s.piggybacked_actions =
      piggybacked_actions_.load(std::memory_order_relaxed);
  s.combined_actions = combined_actions_.load(std::memory_order_relaxed);
  s.fastpath_reads = fastpath_reads_.load(std::memory_order_relaxed);
  s.retransmits = retransmits_.load(std::memory_order_relaxed);
  s.duplicates_dropped = duplicates_dropped_.load(std::memory_order_relaxed);
  s.acks_piggybacked = acks_piggybacked_.load(std::memory_order_relaxed);
  s.link_down = link_down_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < s.actions_by_kind.size(); ++i) {
    s.actions_by_kind[i] =
        actions_by_kind_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void NetworkStats::Reset() {
  // Pure counters with no ordering obligations: relaxed, like the
  // increments. A Reset racing in-flight sends is inherently approximate.
  remote_messages_.store(0, std::memory_order_relaxed);
  local_messages_.store(0, std::memory_order_relaxed);
  remote_bytes_.store(0, std::memory_order_relaxed);
  piggybacked_actions_.store(0, std::memory_order_relaxed);
  combined_actions_.store(0, std::memory_order_relaxed);
  fastpath_reads_.store(0, std::memory_order_relaxed);
  retransmits_.store(0, std::memory_order_relaxed);
  duplicates_dropped_.store(0, std::memory_order_relaxed);
  acks_piggybacked_.store(0, std::memory_order_relaxed);
  link_down_.store(0, std::memory_order_relaxed);
  for (auto& c : actions_by_kind_) c.store(0, std::memory_order_relaxed);
}

}  // namespace lazytree::net
