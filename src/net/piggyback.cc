#include "src/net/piggyback.h"

#include "src/util/logging.h"

namespace lazytree::net {

PiggybackNetwork::PiggybackNetwork(Network* base, size_t max_buffered)
    : base_(base), max_buffered_(max_buffered) {}

void PiggybackNetwork::Register(ProcessorId id, Receiver* receiver) {
  base_->Register(id, receiver);
}

ProcessorId PiggybackNetwork::size() const { return base_->size(); }

bool PiggybackNetwork::Deferrable(const Message& m) {
  if (m.actions.empty()) return false;
  for (const Action& a : m.actions) {
    if (!a.IsRelayed()) return false;
  }
  return true;
}

void PiggybackNetwork::Send(Message m) {
  if (max_buffered_ == 0 || m.from == m.to) {
    base_->Send(std::move(m));
    return;
  }
  const uint64_t key = ChannelKey(m.from, m.to);
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& buf = buffers_[key];
    if (Deferrable(m)) {
      stats_.OnPiggyback(m.actions.size());
      for (Action& a : m.actions) buf.push_back(std::move(a));
      buffered_total_ += m.actions.size();
      if (buf.size() >= max_buffered_) {
        // Cap reached: turn the buffer into a standalone message.
        m.actions = std::move(buf);
        buffers_.erase(key);
        buffered_total_ -= m.actions.size();
        flush_now = true;
      }
    } else if (!buf.empty()) {
      // Direct message departs: buffered relays ride along, in order,
      // ahead of the direct action (they were issued first).
      buffered_total_ -= buf.size();
      buf.insert(buf.end(), std::make_move_iterator(m.actions.begin()),
                 std::make_move_iterator(m.actions.end()));
      m.actions = std::move(buf);
      buffers_.erase(key);
      flush_now = true;
    } else {
      flush_now = true;
    }
  }
  if (flush_now) base_->Send(std::move(m));
}

void PiggybackNetwork::FlushAll() {
  std::unordered_map<uint64_t, std::vector<Action>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(buffers_);
    buffered_total_ = 0;
  }
  for (auto& [key, actions] : drained) {
    if (actions.empty()) continue;
    Message m;
    m.from = static_cast<ProcessorId>(key >> 32);
    m.to = static_cast<ProcessorId>(key);
    m.actions = std::move(actions);
    base_->Send(std::move(m));
  }
}

void PiggybackNetwork::Start() { base_->Start(); }

void PiggybackNetwork::Stop() {
  FlushAll();
  base_->Stop();
}

bool PiggybackNetwork::WaitQuiescent(std::chrono::milliseconds timeout) {
  // Buffered relays count as outstanding work: flush, settle, and repeat
  // until both the buffers and the base network are empty (a delivery can
  // enqueue new deferrable relays).
  for (int round = 0; round < 1000; ++round) {
    FlushAll();
    if (!base_->WaitQuiescent(timeout)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (buffered_total_ == 0) return true;
  }
  return false;
}

size_t PiggybackNetwork::Buffered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffered_total_;
}

}  // namespace lazytree::net
