#include "src/net/piggyback.h"

#include "src/util/logging.h"

namespace lazytree::net {

PiggybackNetwork::PiggybackNetwork(Network* base, size_t max_buffered)
    : base_(base), max_buffered_(max_buffered) {}

void PiggybackNetwork::Register(ProcessorId id, Receiver* receiver) {
  base_->Register(id, receiver);
}

ProcessorId PiggybackNetwork::size() const { return base_->size(); }

bool PiggybackNetwork::Deferrable(const Message& m) {
  if (m.actions.empty()) return false;
  for (const Action& a : m.actions) {
    if (!a.IsRelayed()) return false;
  }
  return true;
}

void PiggybackNetwork::EnsureChannels() {
  std::call_once(channels_once_, [this] {
    num_processors_ = base_->size();
    channels_.resize(num_processors_ * num_processors_);
    for (auto& ch : channels_) ch = std::make_unique<ChannelBuf>();
  });
}

void PiggybackNetwork::Send(Message m) {
  if (max_buffered_ == 0 || m.from == m.to) {
    base_->Send(std::move(m));
    return;
  }
  EnsureChannels();
  LAZYTREE_CHECK(m.from < num_processors_ && m.to < num_processors_)
      << "send on unregistered channel p" << m.from << "->p" << m.to;
  ChannelBuf& ch = ChannelFor(m.from, m.to);
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(ch.mu);
    if (Deferrable(m)) {
      base_->stats().OnPiggyback(m.actions.size());
      const size_t added = m.actions.size();
      for (Action& a : m.actions) ch.actions.push_back(std::move(a));
      if (ch.actions.size() >= max_buffered_) {
        // Threshold reached: the buffer departs as one coalesced batch.
        buffered_total_.fetch_sub(ch.actions.size() - added,
                                  std::memory_order_acq_rel);
        m.actions = std::move(ch.actions);
        ch.actions.clear();
        flush_now = true;
      } else {
        buffered_total_.fetch_add(added, std::memory_order_acq_rel);
      }
    } else if (!ch.actions.empty()) {
      // Direct message departs: buffered relays ride along, in order,
      // ahead of the direct action (they were issued first).
      buffered_total_.fetch_sub(ch.actions.size(),
                                std::memory_order_acq_rel);
      ch.actions.insert(ch.actions.end(),
                        std::make_move_iterator(m.actions.begin()),
                        std::make_move_iterator(m.actions.end()));
      m.actions = std::move(ch.actions);
      ch.actions.clear();
      flush_now = true;
    } else {
      flush_now = true;
    }
  }
  if (flush_now) base_->Send(std::move(m));
}

void PiggybackNetwork::FlushAll() {
  if (max_buffered_ == 0 || base_->size() == 0) return;
  EnsureChannels();
  for (size_t from = 0; from < num_processors_; ++from) {
    for (size_t to = 0; to < num_processors_; ++to) {
      ChannelBuf& ch = *channels_[from * num_processors_ + to];
      Message m;
      {
        std::lock_guard<std::mutex> lock(ch.mu);
        if (ch.actions.empty()) continue;
        buffered_total_.fetch_sub(ch.actions.size(),
                                  std::memory_order_acq_rel);
        m.actions = std::move(ch.actions);
        ch.actions.clear();
      }
      m.from = static_cast<ProcessorId>(from);
      m.to = static_cast<ProcessorId>(to);
      base_->Send(std::move(m));
    }
  }
}

void PiggybackNetwork::Start() { base_->Start(); }

void PiggybackNetwork::Stop() {
  FlushAll();
  base_->Stop();
}

bool PiggybackNetwork::WaitQuiescent(std::chrono::milliseconds timeout) {
  // Buffered relays count as outstanding work: flush, settle, and repeat
  // until both the buffers and the base network are empty (a delivery can
  // enqueue new deferrable relays).
  for (int round = 0; round < 1000; ++round) {
    FlushAll();
    if (!base_->WaitQuiescent(timeout)) return false;
    if (buffered_total_.load(std::memory_order_acquire) == 0) return true;
  }
  return false;
}

}  // namespace lazytree::net
