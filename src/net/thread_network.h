// ThreadNetwork: one worker thread per simulated processor.
//
// Each processor owns an inbox; its worker drains batches and calls
// Receiver::Deliver serially, which gives the paper's one-node-manager-
// per-processor execution model with genuine hardware parallelism across
// processors. FIFO per (from, to) pair holds because a sender enqueues in
// program order and the inbox is a single FIFO queue.
//
// Fast path (default): Send *moves* the Message straight into the
// destination's batched MPSC inbox — no wire encode/decode — and
// NetworkStats byte counts come from wire::EncodedSize, so the RPC cost
// model the benches report is unchanged. The opt-in "checked" mode
// (constructor option or LAZYTREE_CHECKED_WIRE=1) reproduces the
// original wire round trip faithfully — encode on Send, per-message
// handoff through a BlockingQueue of encoded buffers, decode on the
// worker — keeping the wire format an exercised contract, guaranteeing
// no mutable state leaks across "processors", and doubling as the
// before-baseline the transport microbenchmark compares against.

#ifndef LAZYTREE_NET_THREAD_NETWORK_H_
#define LAZYTREE_NET_THREAD_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/transport.h"
#include "src/util/mpsc_queue.h"
#include "src/util/threading.h"

namespace lazytree::net {

class ThreadNetwork : public Network {
 public:
  struct Options {
    /// Round-trip every message through wire::EncodeMessage/DecodeMessage
    /// with the pre-zero-copy per-message delivery discipline. The
    /// LAZYTREE_CHECKED_WIRE=1 environment variable forces this on
    /// regardless of the option.
    bool checked_wire = false;
    /// Account NetworkStats::remote_bytes on the fast path (exact, via
    /// wire::EncodedSize — no buffer is materialized). Off by default:
    /// the walk costs real time per snapshot-bearing send and the
    /// RPC-cost benches that consume byte counts run on SimNetwork.
    /// Checked mode always reports exact bytes (the buffer exists).
    bool byte_stats = false;
    /// Pin each worker thread to a fixed CPU (worker i -> available CPU
    /// i mod n). Best-effort; ignored where affinity is unsupported.
    bool pin_threads = true;
    /// Maximum messages drained per inbox batch. Bounds the tail: a
    /// flooded inbox is served in max_batch-sized chunks instead of one
    /// unbounded atomic batch that starves everything queued behind it.
    size_t max_batch = 128;
  };

  ThreadNetwork() : ThreadNetwork(Options{}) {}
  explicit ThreadNetwork(Options options);
  ~ThreadNetwork() override;

  void Register(ProcessorId id, Receiver* receiver) override;
  ProcessorId size() const override;
  void Send(Message m) override;
  void Start() override;
  void Stop() override;
  bool WaitQuiescent(std::chrono::milliseconds timeout) override;

  bool checked_wire() const { return checked_wire_; }

 private:
  struct Station {
    ProcessorId id = 0;
    Receiver* receiver = nullptr;
    // Fast path: messages moved in whole, drained in batches.
    MpscBatchQueue<Message> inbox;
    // Checked mode: encoded wire buffers handed off one message at a
    // time (the original transport's pipeline, kept bit-faithful).
    BlockingQueue<std::vector<uint8_t>> wire_inbox;
    std::thread worker;
  };

  void WorkerLoop(Station* station);
  // Retires `n` handled (or dropped-at-shutdown) messages; notifies
  // quiescence waiters on the zero transition.
  void OnHandled(int64_t n);

  bool checked_wire_ = false;
  bool byte_stats_ = false;
  bool pin_threads_ = true;
  size_t max_batch_ = 128;
  std::vector<std::unique_ptr<Station>> stations_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Quiescence: messages enqueued but not yet fully handled. Relaxed
  // increments/decrements on the hot path; the mutex + condition variable
  // are touched only on the zero transition and by waiters.
  std::atomic<int64_t> inflight_{0};
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_THREAD_NETWORK_H_
