// ThreadNetwork: one worker thread per simulated processor.
//
// Each processor owns an inbox; its worker pops messages and calls
// Receiver::Deliver serially, which gives the paper's one-node-manager-
// per-processor execution model with genuine hardware parallelism across
// processors. FIFO per (from, to) pair holds because a sender enqueues in
// program order and the inbox is a single FIFO queue.

#ifndef LAZYTREE_NET_THREAD_NETWORK_H_
#define LAZYTREE_NET_THREAD_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/transport.h"
#include "src/util/threading.h"

namespace lazytree::net {

class ThreadNetwork : public Network {
 public:
  ThreadNetwork() = default;
  ~ThreadNetwork() override;

  void Register(ProcessorId id, Receiver* receiver) override;
  ProcessorId size() const override;
  void Send(Message m) override;
  void Start() override;
  void Stop() override;
  bool WaitQuiescent(std::chrono::milliseconds timeout) override;

 private:
  struct Station {
    Receiver* receiver = nullptr;
    BlockingQueue<std::vector<uint8_t>> inbox;
    std::thread worker;
  };

  void WorkerLoop(Station* station);

  std::vector<std::unique_ptr<Station>> stations_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Quiescence: count of messages enqueued but not yet fully handled.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  int64_t inflight_ = 0;
};

}  // namespace lazytree::net

#endif  // LAZYTREE_NET_THREAD_NETWORK_H_
