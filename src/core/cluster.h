// Cluster: a set of simulated processors jointly maintaining one dB-tree.
//
// This is the engine behind the DBTree facade and the unit the tests and
// benches drive directly: it wires processors to a transport, bootstraps
// the initial tree under the chosen protocol's placement, and exposes the
// §3 correctness checkers over the full distributed state.

#ifndef LAZYTREE_CORE_CLUSTER_H_
#define LAZYTREE_CORE_CLUSTER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/options.h"
#include "src/history/checker.h"
#include "src/net/faults.h"
#include "src/net/piggyback.h"
#include "src/net/reliable.h"
#include "src/net/sim_network.h"
#include "src/net/thread_network.h"

namespace lazytree {

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Bootstraps the initial tree and starts message delivery.
  void Start();

  /// Stops delivery. Idempotent; the destructor calls it.
  void Stop();

  const ClusterOptions& options() const { return options_; }
  uint32_t size() const { return options_.processors; }
  Processor& processor(ProcessorId id) { return *processors_[id]; }

  /// Outermost network (piggybacking decorator when enabled).
  net::Network& network() { return *network_; }
  /// Non-null when the transport is the deterministic simulator.
  net::SimNetwork* sim() { return sim_; }
  /// Non-null when a fault plan is installed (net/faults.h).
  net::FaultyNetwork* faulty() { return faulty_.get(); }
  /// Non-null when the reliable-delivery layer is on (net/reliable.h).
  net::ReliableNetwork* reliable() { return reliable_.get(); }
  history::HistoryLog& history_log() { return history_; }

  // --- synchronous client operations (home = submitting processor) ---
  Status Insert(ProcessorId home, Key key, Value value);
  StatusOr<Value> Search(ProcessorId home, Key key);
  Status Delete(ProcessorId home, Key key);
  /// Up to `limit` entries with keys >= `start`, ascending. Best-effort
  /// under concurrent updates (B-link scan semantics).
  StatusOr<std::vector<Entry>> Scan(ProcessorId home, Key start,
                                    uint64_t limit);

  // --- asynchronous client operations ---
  OpId InsertAsync(ProcessorId home, Key key, Value value, OpCallback cb);
  OpId SearchAsync(ProcessorId home, Key key, OpCallback cb);
  OpId DeleteAsync(ProcessorId home, Key key, OpCallback cb);
  OpId ScanAsync(ProcessorId home, Key start, uint64_t limit,
                 OpCallback cb);

  /// Asks `host_hint` to migrate `node` to `dest` (§4.2 protocols only).
  /// The command chases forwarding addresses if the node moved; it is
  /// dropped (with a warning) if the node cannot be found.
  void MigrateNode(NodeId node, ProcessorId host_hint, ProcessorId dest);

  /// Drains all in-flight work (for the sim transport this *is* the
  /// execution loop). Returns false on timeout/livelock.
  bool Settle(std::chrono::milliseconds timeout =
                  std::chrono::milliseconds(30000));

  /// Sim transport only: releases fault-held messages and fires the
  /// reliable layer's earliest due virtual timer. Returns true if new
  /// network work appeared — the explorer's drive loop calls this when
  /// SimNetwork::Step runs dry, which is exactly how retransmissions and
  /// delayed acks become schedulable, replayable events.
  bool PumpNetworkTimers();

  // --- crash/restart injection (sim transport only) ---

  /// Fail-stop crash of processor `p`: the network drops its inbound
  /// messages until RestartProcessor, its local copies die (recorded with
  /// the history log), and its outstanding client operations fail
  /// Unavailable. Idempotent while crashed.
  void CrashProcessor(ProcessorId p);

  /// Restarts a crashed processor with a fresh protocol handler and a
  /// root hint learned from a live peer (rejoin-by-asking-a-neighbor).
  /// No-op when `p` is not crashed — a minimized schedule may have had
  /// its crash event removed while the restart survived.
  void RestartProcessor(ProcessorId p);

  // --- whole-tree inspection (call only at quiescence) ---

  /// Final value of every live copy, for CheckCompatible.
  std::map<history::CopyKey, NodeSnapshot> CollectCopies();

  /// Runs all three §3 history checks over the current state.
  history::CheckReport VerifyHistories();

  /// Union of all leaf contents (one copy per logical leaf), sorted by
  /// key — the tree's logical dictionary, for oracle comparison.
  std::vector<Entry> DumpLeaves();

  /// Walks the tree's structural invariants (ranges partition the key
  /// space per level, right links are consistent); returns violations.
  std::vector<std::string> CheckTreeStructure();

  net::StatsSnapshot NetStats() { return base_network().stats().Snapshot(); }

  /// The undecorated transport (real message counts under piggybacking).
  net::Network& base_network();

 private:
  void Bootstrap();

  /// The always-on §3.1 hook: runs CheckAll at a quiescent point when
  /// options_.check_histories is set, dying on the first violation.
  void MaybeCheckHistories();

  /// Reliable-layer callback: a channel exhausted its retransmit budget.
  /// Messages were genuinely lost, so any outstanding op anywhere in the
  /// cluster may be waiting on one of them — fail them all with a
  /// retriable kUnavailable status rather than hanging.
  void OnLinkDown(ProcessorId from, ProcessorId to);

  ClusterOptions options_;
  history::HistoryLog history_;
  /// Decorator stack, innermost first (declaration order matters: outer
  /// layers are destroyed before the layers they wrap):
  ///   base -> faulty -> reliable -> piggyback.
  std::unique_ptr<net::Network> base_network_;
  std::unique_ptr<net::FaultyNetwork> faulty_;
  std::unique_ptr<net::ReliableNetwork> reliable_;
  std::unique_ptr<net::PiggybackNetwork> piggyback_;
  net::Network* network_ = nullptr;  // outermost
  net::SimNetwork* sim_ = nullptr;
  std::vector<std::unique_ptr<Processor>> processors_;
  bool started_ = false;
  /// History size at the last quiescence check (skip re-verifying an
  /// unchanged log when Settle() is called back-to-back).
  size_t checked_history_records_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_CORE_CLUSTER_H_
