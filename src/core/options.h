// Public configuration for a lazytree cluster.

#ifndef LAZYTREE_CORE_OPTIONS_H_
#define LAZYTREE_CORE_OPTIONS_H_

#include <cstdint>

#include "src/history/checker.h"
#include "src/net/faults.h"
#include "src/net/reliable.h"
#include "src/server/processor.h"

namespace lazytree {

/// Which replica-maintenance algorithm runs the tree (§4).
enum class ProtocolKind {
  kSyncSplit,      ///< §4.1.1 — AAS-ordered splits, blocks initial inserts
  kSemiSyncSplit,  ///< §4.1.2 — history rewriting, never blocks (default)
  kNaive,          ///< Fig. 4 strawman — loses inserts (tests/bench only)
  kVigorous,       ///< available-copies baseline — locks every update
  kMobile,         ///< §4.2 — single-copy nodes that migrate
  kVarCopies,      ///< §4.3 — join/unjoin replication, mobile leaves
};

const char* ProtocolKindName(ProtocolKind kind);

/// How the simulated processors exchange messages.
enum class TransportKind {
  kSim,      ///< deterministic seeded scheduler (tests; replayable)
  kThreads,  ///< one worker thread per processor (benches; parallel)
};

struct ClusterOptions {
  uint32_t processors = 4;
  ProtocolKind protocol = ProtocolKind::kSemiSyncSplit;
  TransportKind transport = TransportKind::kSim;
  /// Thread transport only: round-trip every message through the wire
  /// encoder/decoder instead of the zero-copy fast path (also forced by
  /// the LAZYTREE_CHECKED_WIRE=1 environment variable).
  bool checked_wire = false;
  /// Seed for the sim scheduler and all protocol-internal randomness.
  uint64_t seed = 1;
  /// Sim transport only: when > 0, run the simulator in timestamped mode
  /// with this base one-way remote latency (µs) plus `sim_jitter_us` of
  /// uniform jitter; operations then have measurable latency in
  /// simulated time (SimNetwork::NowUs).
  uint64_t sim_latency_us = 0;
  uint64_t sim_jitter_us = 0;
  /// Per-destination relayed-update buffer for piggybacking (§1.1).
  /// 0 disables piggybacking.
  size_t piggyback_window = 0;
  /// Hot-node op combining (TreeConfig::combine_ops): -1 auto-resolves to
  /// ON for the threads transport and OFF for sim (keeping every seeded
  /// sim schedule — and all checked-in explorer traces — byte-stable);
  /// 0/1 force it. Sim runs with it forced on stay deterministic, just
  /// under a different (still valid) schedule.
  int8_t combine_ops = -1;
  /// Local-replica read fast path (TreeConfig::local_fastpath): same
  /// tri-state convention as combine_ops.
  int8_t local_read_fastpath = -1;
  /// Threads transport only: pin each worker thread to a fixed CPU.
  bool pin_threads = true;
  /// Threads transport only: max messages per drained inbox batch (tail-
  /// latency bound); 0 keeps the ThreadNetwork default.
  size_t max_batch = 0;
  /// Run the §3.1 history checks (complete/compatible/ordered) at every
  /// quiescent point Settle() reaches, aborting on the first violation so
  /// the failing schedule is caught at the earliest moment it is
  /// observable — not only when a test remembers to call
  /// VerifyHistories(). Requires tree.track_history (the hook is a no-op
  /// without it) and is skipped while a processor is crashed (§3.1 is a
  /// quiescence property of the recovered system). Turn off for
  /// deliberately broken configurations — the kNaive strawman, fault
  /// injection, schedule exploration — that want to *observe* violations
  /// instead of dying on them.
  bool check_histories = true;
  /// Policy for those checks and for VerifyHistories(): duplicate-
  /// application tolerance and the per-check violation report cap.
  history::CheckOptions history_check;
  /// Link-fault injection (net/faults.h): when the plan is active, a
  /// FaultyNetwork decorator drops/duplicates/reorders/delays remote
  /// messages under the plan's own seed, on either transport.
  net::FaultPlan faults;
  /// Reliable-delivery layer (net/reliable.h): -1 auto-resolves to ON
  /// when the fault plan is active and OFF otherwise; 0/1 force it. With
  /// it on, exactly-once FIFO delivery — and therefore §3.1 — holds even
  /// over lossy links; channels that exhaust their retransmit budget are
  /// declared down and their processors' pending ops fail with a
  /// retriable kUnavailable status instead of hanging Settle().
  int8_t reliable = -1;
  /// Tuning for the reliable layer (timers, budgets, initial sequence
  /// number). `real_timers` is overridden from the transport kind.
  net::ReliabilityOptions reliability;
  /// Node capacity, history tracking, replication factor, upserts.
  TreeConfig tree;
};

}  // namespace lazytree

#endif  // LAZYTREE_CORE_OPTIONS_H_
