// DBTree: the user-facing handle to a distributed, replicated B-link tree
// maintained with lazy updates — the library's front door.
//
//   lazytree::ClusterOptions options;
//   options.processors = 8;
//   lazytree::DBTree tree(options);
//   tree.Insert(42, 4200);
//   auto v = tree.Search(42);   // -> 4200
//
// Operations are submitted at a home processor (round-robin by default —
// every processor can initiate operations because the root is replicated,
// §1.1). Use cluster() for multi-client drivers, async submission, stats,
// and the correctness checkers.

#ifndef LAZYTREE_CORE_DBTREE_H_
#define LAZYTREE_CORE_DBTREE_H_

#include <atomic>
#include <memory>

#include "src/core/cluster.h"

namespace lazytree {

class DBTree {
 public:
  /// Builds and starts a cluster with the given options.
  explicit DBTree(ClusterOptions options);
  ~DBTree();

  /// Inserts key -> value. AlreadyExists unless options.tree.upsert.
  Status Insert(Key key, Value value);

  /// Looks up a key. NotFound on miss.
  StatusOr<Value> Search(Key key);

  /// Removes a key (free-at-empty: nodes are never merged, [11]).
  Status Delete(Key key);

  /// Range read: up to `limit` entries with keys >= `start`.
  StatusOr<std::vector<Entry>> Scan(Key start, uint64_t limit);

  /// Same, with an explicit home processor.
  Status InsertAt(ProcessorId home, Key key, Value value);
  StatusOr<Value> SearchAt(ProcessorId home, Key key);

  /// Keys currently stored (counted from leaf contents at quiescence).
  size_t KeyCount();

  Cluster& cluster() { return *cluster_; }

 private:
  ProcessorId NextHome() {
    return static_cast<ProcessorId>(
        next_home_.fetch_add(1, std::memory_order_relaxed) %
        cluster_->size());
  }

  std::unique_ptr<Cluster> cluster_;
  std::atomic<uint64_t> next_home_{0};
};

}  // namespace lazytree

#endif  // LAZYTREE_CORE_DBTREE_H_
