#include "src/core/cluster.h"

#include <algorithm>
#include <future>
#include <set>
#include <sstream>

#include "src/protocol/mobile.h"
#include "src/protocol/naive.h"
#include "src/protocol/varcopies.h"
#include "src/protocol/semisync_split.h"
#include "src/protocol/sync_split.h"
#include "src/protocol/vigorous.h"
#include "src/util/logging.h"

namespace lazytree {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kSyncSplit: return "sync";
    case ProtocolKind::kSemiSyncSplit: return "semisync";
    case ProtocolKind::kNaive: return "naive";
    case ProtocolKind::kVigorous: return "vigorous";
    case ProtocolKind::kMobile: return "mobile";
    case ProtocolKind::kVarCopies: return "varcopies";
  }
  return "?";
}

namespace {

std::unique_ptr<ProtocolHandler> MakeHandler(ProtocolKind kind,
                                             Processor& p) {
  switch (kind) {
    case ProtocolKind::kSyncSplit:
      return std::make_unique<SyncSplitProtocol>(p);
    case ProtocolKind::kSemiSyncSplit:
      return std::make_unique<SemiSyncSplitProtocol>(p);
    case ProtocolKind::kNaive:
      return std::make_unique<NaiveProtocol>(p);
    case ProtocolKind::kVigorous:
      return std::make_unique<VigorousProtocol>(p);
    case ProtocolKind::kMobile:
      return std::make_unique<MobileProtocol>(p);
    case ProtocolKind::kVarCopies:
      return std::make_unique<VarCopiesProtocol>(p);
    default:
      LAZYTREE_CHECK(false) << "protocol not yet wired into Cluster";
      return nullptr;
  }
}

}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), history_(options_.tree.track_history) {
  LAZYTREE_CHECK(options_.processors >= 1) << "need at least one processor";
  const bool threads = options_.transport == TransportKind::kThreads;
  // Tri-state execution knobs: auto (-1) turns the multicore fast paths
  // on only for the threads transport, so seeded sim schedules (and the
  // checked-in explorer traces that replay them) stay byte-stable.
  options_.tree.combine_ops =
      options_.combine_ops < 0 ? threads : options_.combine_ops > 0;
  options_.tree.local_fastpath = options_.local_read_fastpath < 0
                                     ? threads
                                     : options_.local_read_fastpath > 0;
  if (options_.transport == TransportKind::kSim) {
    auto sim = std::make_unique<net::SimNetwork>(options_.seed);
    if (options_.sim_latency_us > 0) {
      sim->EnableLatency(options_.sim_latency_us, options_.sim_jitter_us);
    }
    sim_ = sim.get();
    base_network_ = std::move(sim);
  } else {
    net::ThreadNetwork::Options topt;
    topt.checked_wire = options_.checked_wire;
    topt.pin_threads = options_.pin_threads;
    if (options_.max_batch > 0) topt.max_batch = options_.max_batch;
    base_network_ = std::make_unique<net::ThreadNetwork>(topt);
  }
  network_ = base_network_.get();
  if (options_.faults.active()) {
    faulty_ = std::make_unique<net::FaultyNetwork>(network_, options_.faults);
    network_ = faulty_.get();
  }
  const bool reliable_on = options_.reliable < 0
                               ? options_.faults.active()
                               : options_.reliable > 0;
  if (reliable_on) {
    net::ReliabilityOptions ropt = options_.reliability;
    ropt.real_timers = threads;
    reliable_ = std::make_unique<net::ReliableNetwork>(network_, ropt);
    reliable_->SetLinkDownCallback(
        [this](ProcessorId from, ProcessorId to) { OnLinkDown(from, to); });
    network_ = reliable_.get();
  }
  if (options_.piggyback_window > 0) {
    piggyback_ = std::make_unique<net::PiggybackNetwork>(
        network_, options_.piggyback_window);
    network_ = piggyback_.get();
  }
  processors_.reserve(options_.processors);
  for (ProcessorId id = 0; id < options_.processors; ++id) {
    processors_.push_back(std::make_unique<Processor>(
        id, options_.processors, network_, &history_, options_.tree));
    processors_.back()->SetHandler(
        MakeHandler(options_.protocol, *processors_.back()));
  }
}

Cluster::~Cluster() { Stop(); }

net::Network& Cluster::base_network() { return *base_network_; }

void Cluster::Bootstrap() {
  // The initial tree: an interior root over a single empty leaf, placed
  // exactly where the protocol's deterministic placement expects them.
  Processor& p0 = *processors_[0];
  const NodeId root_id = p0.NewNodeId();
  const NodeId leaf_id = p0.NewNodeId();
  const uint32_t r = options_.tree.interior_replication;

  std::vector<ProcessorId> root_copies;
  std::vector<ProcessorId> leaf_copies;
  switch (options_.protocol) {
    case ProtocolKind::kMobile:
      root_copies = {0};
      leaf_copies = {0};
      break;
    case ProtocolKind::kVarCopies: {
      // Root everywhere (Fig. 2 policy); the single leaf and its path
      // start on processor 0.
      for (ProcessorId id = 0; id < options_.processors; ++id) {
        root_copies.push_back(id);
      }
      leaf_copies = {0};
      break;
    }
    default:
      root_copies = FixedCopySet(root_id, 1, options_.processors, r,
                                 options_.tree.leaf_replication);
      leaf_copies = FixedCopySet(leaf_id, 0, options_.processors, r,
                                 options_.tree.leaf_replication);
  }

  NodeSnapshot leaf;
  leaf.id = leaf_id;
  leaf.level = 0;
  leaf.range = KeyRange{0, kKeyInfinity};
  leaf.parent = root_id;
  leaf.copies = leaf_copies;
  leaf.pc = leaf_copies.front();

  NodeSnapshot root;
  root.id = root_id;
  root.level = 1;
  root.range = KeyRange{0, kKeyInfinity};
  root.entries = {Entry{0, leaf_id.v}};
  root.copies = root_copies;
  root.pc = root_copies.front();

  for (ProcessorId holder : root_copies) {
    processors_[holder]->InstallNode(
        std::make_unique<Node>(root, options_.tree.track_history));
  }
  for (ProcessorId holder : leaf_copies) {
    processors_[holder]->InstallNode(
        std::make_unique<Node>(leaf, options_.tree.track_history));
  }
  for (auto& p : processors_) p->store().SetRootHint(root_id, 1);
}

void Cluster::Start() {
  LAZYTREE_CHECK(!started_) << "Start called twice";
  started_ = true;
  Bootstrap();
  network_->Start();
}

void Cluster::Stop() {
  if (!started_) return;
  network_->Stop();
}

OpId Cluster::InsertAsync(ProcessorId home, Key key, Value value,
                          OpCallback cb) {
  return processors_[home]->SubmitInsert(key, value, std::move(cb));
}

OpId Cluster::SearchAsync(ProcessorId home, Key key, OpCallback cb) {
  return processors_[home]->SubmitSearch(key, std::move(cb));
}

OpId Cluster::DeleteAsync(ProcessorId home, Key key, OpCallback cb) {
  return processors_[home]->SubmitDelete(key, std::move(cb));
}

OpId Cluster::ScanAsync(ProcessorId home, Key start, uint64_t limit,
                        OpCallback cb) {
  return processors_[home]->SubmitScan(start, limit, std::move(cb));
}

void Cluster::MigrateNode(NodeId node, ProcessorId host_hint,
                          ProcessorId dest) {
  Action cmd;
  cmd.kind = ActionKind::kMigrateNode;
  cmd.target = node;
  cmd.members = {dest};
  network_->Send(Message(dest, host_hint, std::move(cmd)));
}

Status Cluster::Insert(ProcessorId home, Key key, Value value) {
  if (sim_ != nullptr) {
    OpResult result;
    bool done = false;
    InsertAsync(home, key, value, [&](const OpResult& r) {
      result = r;
      done = true;
    });
    if (!Settle() || !done) return Status::TimedOut("insert did not settle");
    return result.status;
  }
  std::promise<OpResult> promise;
  auto future = promise.get_future();
  InsertAsync(home, key, value,
              [&promise](const OpResult& r) { promise.set_value(r); });
  if (future.wait_for(std::chrono::seconds(30)) !=
      std::future_status::ready) {
    return Status::TimedOut("insert stalled");
  }
  return future.get().status;
}

StatusOr<Value> Cluster::Search(ProcessorId home, Key key) {
  if (sim_ != nullptr) {
    OpResult result;
    bool done = false;
    SearchAsync(home, key, [&](const OpResult& r) {
      result = r;
      done = true;
    });
    if (!Settle() || !done) return Status::TimedOut("search did not settle");
    if (!result.status.ok()) return result.status;
    return result.value;
  }
  std::promise<OpResult> promise;
  auto future = promise.get_future();
  SearchAsync(home, key,
              [&promise](const OpResult& r) { promise.set_value(r); });
  if (future.wait_for(std::chrono::seconds(30)) !=
      std::future_status::ready) {
    return Status::TimedOut("search stalled");
  }
  OpResult result = future.get();
  if (!result.status.ok()) return result.status;
  return result.value;
}

Status Cluster::Delete(ProcessorId home, Key key) {
  if (sim_ != nullptr) {
    OpResult result;
    bool done = false;
    DeleteAsync(home, key, [&](const OpResult& r) {
      result = r;
      done = true;
    });
    if (!Settle() || !done) return Status::TimedOut("delete did not settle");
    return result.status;
  }
  std::promise<OpResult> promise;
  auto future = promise.get_future();
  DeleteAsync(home, key,
              [&promise](const OpResult& r) { promise.set_value(r); });
  if (future.wait_for(std::chrono::seconds(30)) !=
      std::future_status::ready) {
    return Status::TimedOut("delete stalled");
  }
  return future.get().status;
}

StatusOr<std::vector<Entry>> Cluster::Scan(ProcessorId home, Key start,
                                           uint64_t limit) {
  if (sim_ != nullptr) {
    OpResult result;
    bool done = false;
    ScanAsync(home, start, limit, [&](const OpResult& r) {
      result = r;
      done = true;
    });
    if (!Settle() || !done) return Status::TimedOut("scan did not settle");
    if (!result.status.ok()) return result.status;
    return result.entries;
  }
  std::promise<OpResult> promise;
  auto future = promise.get_future();
  ScanAsync(home, start, limit,
            [&promise](const OpResult& r) { promise.set_value(r); });
  if (future.wait_for(std::chrono::seconds(30)) !=
      std::future_status::ready) {
    return Status::TimedOut("scan stalled");
  }
  OpResult result = future.get();
  if (!result.status.ok()) return result.status;
  return result.entries;
}

bool Cluster::Settle(std::chrono::milliseconds timeout) {
  if (!network_->WaitQuiescent(timeout)) return false;
  MaybeCheckHistories();
  return true;
}

bool Cluster::PumpNetworkTimers() {
  if (faulty_ != nullptr && faulty_->FlushHeld() > 0) return true;
  return reliable_ != nullptr && reliable_->Pump();
}

void Cluster::OnLinkDown(ProcessorId from, ProcessorId to) {
  LAZYTREE_WARN << "link p" << from << "->p" << to
                << " declared down (retransmit budget exhausted); "
                << "failing pending ops";
  // Lost messages may strand an op homed on *any* processor (relays and
  // returns route through third parties), so degrade the whole cluster's
  // outstanding ops to a retriable failure instead of guessing.
  for (auto& p : processors_) {
    p->ops().FailAllPending(
        Status::Unavailable("network link down (messages lost)"));
  }
}

void Cluster::MaybeCheckHistories() {
  if (!options_.check_histories || !options_.tree.track_history ||
      !started_) {
    return;
  }
  if (reliable_ != nullptr && reliable_->AnyLinkDown()) {
    // A dead link means updates were genuinely lost in transit; §3.1
    // completeness cannot hold and the violation is expected, not a bug.
    return;
  }
  if (sim_ != nullptr) {
    // §3.1 is a property of quiescent points of the *recovered* system;
    // while a processor is down its copies' updates are legitimately
    // missing. The next post-recovery Settle() checks the full log.
    for (ProcessorId p = 0; p < options_.processors; ++p) {
      if (sim_->IsCrashed(p)) return;
    }
  }
  const size_t records = history_.RecordCount();
  if (records == checked_history_records_) return;
  checked_history_records_ = records;
  history::CheckReport report = VerifyHistories();
  LAZYTREE_CHECK(report.ok())
      << "§3.1 invariant violated at quiescence ("
      << report.violations.size() << " violation(s)):\n"
      << report.ToString();
}

void Cluster::CrashProcessor(ProcessorId p) {
  LAZYTREE_CHECK(sim_ != nullptr) << "crash injection needs the sim transport";
  LAZYTREE_CHECK(p < options_.processors) << "crash of unknown p" << p;
  if (sim_->IsCrashed(p)) return;
  sim_->Crash(p);  // drop inbound first, then lose the volatile state
  processors_[p]->Crash();
}

void Cluster::RestartProcessor(ProcessorId p) {
  LAZYTREE_CHECK(sim_ != nullptr) << "crash injection needs the sim transport";
  LAZYTREE_CHECK(p < options_.processors) << "restart of unknown p" << p;
  if (!sim_->IsCrashed(p)) return;
  // Learn the highest root any live peer knows — the restarted processor
  // rejoins the tree by asking a neighbor, like a fresh client would.
  NodeId hint = kInvalidNode;
  int32_t hint_level = -1;
  for (auto& peer : processors_) {
    if (peer->crashed() || peer->id() == p) continue;
    if (peer->store().root_level() > hint_level &&
        peer->store().root_hint().valid()) {
      hint = peer->store().root_hint();
      hint_level = peer->store().root_level();
    }
  }
  processors_[p]->Restart(MakeHandler(options_.protocol, *processors_[p]),
                          hint, hint_level);
  sim_->Restart(p);
}

std::map<history::CopyKey, NodeSnapshot> Cluster::CollectCopies() {
  std::map<history::CopyKey, NodeSnapshot> copies;
  for (auto& p : processors_) {
    const ProcessorId id = p->id();
    p->store().ForEach([&](const Node& node) {
      copies[history::CopyKey{node.id(), id}] = node.ToSnapshot();
    });
  }
  return copies;
}

history::CheckReport Cluster::VerifyHistories() {
  return history::CheckAll(history_, CollectCopies(), options_.history_check);
}

std::vector<Entry> Cluster::DumpLeaves() {
  // One representative copy per logical leaf (compatibility is checked
  // separately); leaves are disjoint so concatenation sorted by range low
  // yields the dictionary.
  std::map<NodeId, NodeSnapshot> leaves;
  for (auto& p : processors_) {
    p->store().ForEach([&](const Node& node) {
      if (node.level() != 0) return;
      auto [it, fresh] = leaves.try_emplace(node.id(), node.ToSnapshot());
      // Prefer the PC's copy as representative.
      if (!fresh && node.pc() == p->id()) it->second = node.ToSnapshot();
    });
  }
  std::vector<Entry> all;
  for (auto& [id, snap] : leaves) {
    all.insert(all.end(), snap.entries.begin(), snap.entries.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<std::string> Cluster::CheckTreeStructure() {
  std::vector<std::string> violations;
  // Representative snapshot per logical node.
  std::map<NodeId, NodeSnapshot> nodes;
  int32_t max_level = 0;
  for (auto& p : processors_) {
    p->store().ForEach([&](const Node& node) {
      nodes.try_emplace(node.id(), node.ToSnapshot());
      max_level = std::max(max_level, node.level());
    });
  }
  // Per level: ranges must chain [0 .. inf) along right links.
  for (int32_t level = 0; level <= max_level; ++level) {
    const NodeSnapshot* cur = nullptr;
    for (auto& [id, snap] : nodes) {
      if (snap.level == level && snap.range.low == 0) {
        if (cur != nullptr) {
          violations.push_back("level " + std::to_string(level) +
                               ": two leftmost nodes");
        }
        cur = &snap;
      }
    }
    if (cur == nullptr) {
      violations.push_back("level " + std::to_string(level) +
                           ": no leftmost node");
      continue;
    }
    std::set<NodeId> seen;
    while (true) {
      if (!seen.insert(cur->id).second) {
        violations.push_back("level " + std::to_string(level) +
                             ": right-link cycle at " + cur->id.ToString());
        break;
      }
      if (cur->range.high == kKeyInfinity) break;
      if (cur->right_low != cur->range.high) {
        violations.push_back(cur->id.ToString() +
                             ": right_low != range.high");
      }
      auto it = nodes.find(cur->right);
      if (it == nodes.end()) {
        violations.push_back(cur->id.ToString() + ": dangling right link");
        break;
      }
      if (it->second.range.low != cur->range.high) {
        violations.push_back(cur->id.ToString() + " -> " +
                             it->second.id.ToString() +
                             ": range gap/overlap");
        break;
      }
      cur = &it->second;
    }
  }
  // Interior entries must point at existing nodes one level down.
  for (auto& [id, snap] : nodes) {
    if (snap.level == 0) continue;
    for (const Entry& e : snap.entries) {
      auto it = nodes.find(NodeId{e.payload});
      if (it == nodes.end()) {
        violations.push_back(id.ToString() + ": child " +
                             NodeId{e.payload}.ToString() + " missing");
      } else if (it->second.level != snap.level - 1) {
        violations.push_back(id.ToString() + ": child level mismatch");
      }
    }
  }
  return violations;
}

}  // namespace lazytree
