#include "src/core/balancer.h"

#include <algorithm>
#include <vector>

namespace lazytree {

Balancer::LoadStats Balancer::Measure() {
  LoadStats stats;
  for (ProcessorId id = 0; id < cluster_->size(); ++id) {
    stats.per_host[id] = 0;
  }
  for (ProcessorId id = 0; id < cluster_->size(); ++id) {
    cluster_->processor(id).store().ForEach([&](const Node& n) {
      if (!n.is_leaf()) return;
      ++stats.per_host[id];
      ++stats.total_leaves;
    });
  }
  stats.mean = static_cast<double>(stats.total_leaves) /
               static_cast<double>(cluster_->size());
  for (auto& [id, count] : stats.per_host) {
    stats.max = std::max(stats.max, count);
  }
  stats.imbalance = stats.mean > 0
                        ? static_cast<double>(stats.max) / stats.mean
                        : 1.0;
  return stats;
}

size_t Balancer::RebalanceOnce() {
  // Collect (leaf, host) pairs and per-host loads.
  struct Movable {
    NodeId id;
    ProcessorId host;
  };
  std::vector<Movable> leaves;
  std::map<ProcessorId, int64_t> load;
  for (ProcessorId id = 0; id < cluster_->size(); ++id) load[id] = 0;
  for (ProcessorId id = 0; id < cluster_->size(); ++id) {
    cluster_->processor(id).store().ForEach([&](const Node& n) {
      if (!n.is_leaf()) return;
      leaves.push_back({n.id(), id});
      ++load[id];
    });
  }
  if (leaves.empty()) return 0;
  const int64_t target = static_cast<int64_t>(
      (leaves.size() + cluster_->size() - 1) / cluster_->size());

  // Greedy: donors give their surplus to the currently lightest host.
  size_t issued = 0;
  for (const Movable& leaf : leaves) {
    if (load[leaf.host] <= target) continue;
    auto lightest = std::min_element(
        load.begin(), load.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (lightest->second >= target) break;  // everyone full enough
    cluster_->MigrateNode(leaf.id, leaf.host, lightest->first);
    --load[leaf.host];
    ++lightest->second;
    ++issued;
  }
  migrations_issued_ += issued;
  return issued;
}

Balancer::LoadStats Balancer::RebalanceUntil(double target_imbalance,
                                             int max_rounds) {
  LoadStats stats = Measure();
  for (int round = 0; round < max_rounds; ++round) {
    if (stats.imbalance <= target_imbalance) break;
    if (RebalanceOnce() == 0) break;
    cluster_->Settle();
    stats = Measure();
  }
  return stats;
}

}  // namespace lazytree
