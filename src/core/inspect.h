// Cluster introspection: whole-tree statistics and a Graphviz export of
// the distributed structure (nodes, ranges, right links, placement).
// Read-only; call at quiescence.

#ifndef LAZYTREE_CORE_INSPECT_H_
#define LAZYTREE_CORE_INSPECT_H_

#include <map>
#include <string>

#include "src/core/cluster.h"

namespace lazytree {

struct LevelStats {
  size_t nodes = 0;         ///< logical nodes at this level
  size_t copies = 0;        ///< physical copies across processors
  size_t entries = 0;       ///< entries summed over logical nodes
  double replication() const {
    return nodes ? static_cast<double>(copies) / nodes : 0;
  }
  double fill(size_t capacity) const {
    return nodes ? static_cast<double>(entries) /
                       (static_cast<double>(nodes) * capacity)
                 : 0;
  }
};

struct TreeStats {
  int32_t height = 0;  ///< levels (leaf = 1)
  size_t keys = 0;     ///< leaf entries
  std::map<int32_t, LevelStats> levels;  ///< keyed by level, 0 = leaf
  std::map<ProcessorId, size_t> leaves_per_host;

  std::string ToString() const;
};

/// Collects whole-tree statistics from every processor's store.
TreeStats CollectTreeStats(Cluster& cluster);

/// Renders the logical tree as Graphviz DOT: one record per logical
/// node (range, level, entry count), child edges, dashed right-sibling
/// edges, and a label listing each node's copy holders.
std::string ExportDot(Cluster& cluster);

}  // namespace lazytree

#endif  // LAZYTREE_CORE_INSPECT_H_
