#include "src/core/dbtree.h"

namespace lazytree {

DBTree::DBTree(ClusterOptions options)
    : cluster_(std::make_unique<Cluster>(std::move(options))) {
  cluster_->Start();
}

DBTree::~DBTree() { cluster_->Stop(); }

Status DBTree::Insert(Key key, Value value) {
  return cluster_->Insert(NextHome(), key, value);
}

StatusOr<Value> DBTree::Search(Key key) {
  return cluster_->Search(NextHome(), key);
}

Status DBTree::Delete(Key key) {
  return cluster_->Delete(NextHome(), key);
}

StatusOr<std::vector<Entry>> DBTree::Scan(Key start, uint64_t limit) {
  return cluster_->Scan(NextHome(), start, limit);
}

Status DBTree::InsertAt(ProcessorId home, Key key, Value value) {
  return cluster_->Insert(home, key, value);
}

StatusOr<Value> DBTree::SearchAt(ProcessorId home, Key key) {
  return cluster_->Search(home, key);
}

size_t DBTree::KeyCount() {
  cluster_->Settle();
  return cluster_->DumpLeaves().size();
}

}  // namespace lazytree
