#include "src/core/inspect.h"

#include <set>
#include <sstream>

namespace lazytree {

TreeStats CollectTreeStats(Cluster& cluster) {
  TreeStats stats;
  std::set<NodeId> seen;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    cluster.processor(id).store().ForEach([&](const Node& n) {
      LevelStats& level = stats.levels[n.level()];
      ++level.copies;
      if (n.is_leaf()) ++stats.leaves_per_host[id];
      if (!seen.insert(n.id()).second) return;
      ++level.nodes;
      level.entries += n.size();
      if (n.is_leaf()) stats.keys += n.size();
      stats.height = std::max(stats.height, n.level() + 1);
    });
  }
  return stats;
}

std::string TreeStats::ToString() const {
  std::ostringstream os;
  os << "height=" << height << " keys=" << keys;
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    os << "  L" << it->first << ": " << it->second.nodes << " nodes x"
       << static_cast<int>(it->second.replication() * 10 + 0.5) / 10.0;
  }
  return os.str();
}

std::string ExportDot(Cluster& cluster) {
  // Representative snapshot + copy holders per logical node.
  std::map<NodeId, NodeSnapshot> nodes;
  std::map<NodeId, std::vector<ProcessorId>> holders;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    cluster.processor(id).store().ForEach([&](const Node& n) {
      nodes.try_emplace(n.id(), n.ToSnapshot());
      holders[n.id()].push_back(id);
    });
  }

  std::ostringstream os;
  os << "digraph lazytree {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=record, fontsize=9];\n";
  // Cluster per level keeps ranks tidy.
  std::map<int32_t, std::vector<NodeId>> by_level;
  for (auto& [id, snap] : nodes) by_level[snap.level].push_back(id);
  for (auto it = by_level.rbegin(); it != by_level.rend(); ++it) {
    os << "  { rank=same;";
    for (NodeId id : it->second) os << " \"" << id.ToString() << "\";";
    os << " }\n";
  }
  for (auto& [id, snap] : nodes) {
    os << "  \"" << id.ToString() << "\" [label=\"{" << id.ToString()
       << " L" << snap.level << "|" << snap.range.ToString() << "|"
       << snap.entries.size() << " entries|@";
    for (size_t i = 0; i < holders[id].size(); ++i) {
      if (i) os << ",";
      os << "p" << holders[id][i];
    }
    os << "}\"];\n";
    if (snap.level > 0) {
      for (const Entry& e : snap.entries) {
        os << "  \"" << id.ToString() << "\" -> \""
           << NodeId{e.payload}.ToString() << "\";\n";
      }
    }
    if (snap.right.valid()) {
      os << "  \"" << id.ToString() << "\" -> \""
         << snap.right.ToString()
         << "\" [style=dashed, constraint=false, color=gray];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace lazytree
