// Balancer: leaf-level data balancing for the mobile protocols ([14],
// §4.2) — measures per-processor leaf load and issues migrations to even
// it out. The protocol keeps the tree correct *while* leaves move; the
// balancer only decides which leaf goes where.
//
// Use at (or between) quiescent points: Measure/RebalanceOnce read the
// node stores directly. The protocols' own shed_threshold knob provides
// fully-online shedding; this class implements the global, goal-directed
// variant.

#ifndef LAZYTREE_CORE_BALANCER_H_
#define LAZYTREE_CORE_BALANCER_H_

#include <map>

#include "src/core/cluster.h"

namespace lazytree {

class Balancer {
 public:
  explicit Balancer(Cluster* cluster) : cluster_(cluster) {}

  struct LoadStats {
    size_t total_leaves = 0;
    std::map<ProcessorId, size_t> per_host;
    double mean = 0;
    size_t max = 0;
    /// max / mean; 1.0 is perfect balance.
    double imbalance = 0;
  };

  /// Scans the stores (call only at quiescence).
  LoadStats Measure();

  /// Greedily plans migrations from over- to under-loaded processors and
  /// issues them (without settling). Returns the number issued.
  size_t RebalanceOnce();

  /// Repeats RebalanceOnce + Settle until the imbalance target is met or
  /// `max_rounds` passes. Returns the final stats.
  LoadStats RebalanceUntil(double target_imbalance = 1.3,
                           int max_rounds = 8);

  uint64_t migrations_issued() const { return migrations_issued_; }

 private:
  Cluster* cluster_;
  uint64_t migrations_issued_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_CORE_BALANCER_H_
