// Node: one copy of a B-link tree node (§1.1).
//
// A node covers the half-open key range [range.low, range.high). Interior
// entries map a separator key to the child NodeId whose subtree starts at
// that key; leaf entries map keys to values. Every node carries a pointer
// to its right sibling (the B-link pointer) plus, for the mobile and
// variable-copies protocols (§4.2/§4.3), a left-sibling pointer and a
// version number.
//
// Node is pure mechanism: it applies inserts and computes half-splits but
// knows nothing about replication or messaging. Protocols decide *when*
// to call what.

#ifndef LAZYTREE_NODE_NODE_H_
#define LAZYTREE_NODE_NODE_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/msg/action.h"
#include "src/util/statusor.h"

namespace lazytree {

class Node {
 public:
  /// Creates a copy from a snapshot (sibling creation, join, migration).
  explicit Node(const NodeSnapshot& snapshot, bool track_updates);

  /// Creates a fresh empty node.
  Node(NodeId id, int32_t level, KeyRange range, bool track_updates);

  NodeId id() const { return id_; }
  int32_t level() const { return level_; }
  bool is_leaf() const { return level_ == 0; }
  const KeyRange& range() const { return range_; }
  Version version() const { return version_; }
  void set_version(Version v) { version_ = v; }
  void bump_version() { ++version_; }

  NodeId right() const { return right_; }
  Key right_low() const { return right_low_; }
  NodeId left() const { return left_; }
  NodeId parent() const { return parent_; }
  void set_right(NodeId n, Key low) { right_ = n; right_low_ = low; }
  void set_left(NodeId n) { left_ = n; }
  void set_parent(NodeId n) { parent_ = n; }

  /// Version of the last applied link-change for `link` (§4.2 gating).
  Version link_version(LinkKind link) const {
    return link_versions_[static_cast<int>(link)];
  }
  void set_link_version(LinkKind link, Version v) {
    link_versions_[static_cast<int>(link)] = v;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  const std::vector<ProcessorId>& copies() const { return copies_; }
  ProcessorId pc() const { return pc_; }
  void set_copies(std::vector<ProcessorId> copies, ProcessorId pc) {
    copies_ = std::move(copies);
    pc_ = pc;
  }
  void AddCopy(ProcessorId p);
  void RemoveCopy(ProcessorId p);
  bool HasCopy(ProcessorId p) const;

  bool Contains(Key key) const { return range_.Contains(key); }

  /// Leaf lookup. Precondition: is_leaf() && Contains(key).
  std::optional<Value> Find(Key key) const;

  /// Interior routing. Precondition: !is_leaf() && Contains(key).
  /// Returns the child covering `key`.
  NodeId ChildFor(Key key) const;

  /// Inserts (or upserts) an entry. Precondition: Contains(key).
  /// Returns false when the key already existed (entry left unchanged
  /// unless `upsert`).
  bool Insert(Key key, uint64_t payload, bool upsert = false);

  /// Removes an entry; false when absent. Nodes are never merged
  /// (free-at-empty, [11]), so an empty node simply stays.
  bool Remove(Key key);

  /// True when the node holds more than `max_entries` entries and should
  /// half-split. Copies are maintained serially, so temporarily exceeding
  /// capacity is safe (the paper's overflow bucket).
  bool Overflowing(size_t max_entries) const {
    return entries_.size() > max_entries;
  }

  /// Result of computing a half-split: the new sibling's seed image plus
  /// the separator key.
  struct SplitResult {
    Key sep = 0;             ///< sibling's low key
    NodeSnapshot sibling;    ///< upper half, links pre-wired
  };

  /// Performs the local half of a half-split (Fig. 1): moves the upper
  /// half of the entries into a new sibling image, shrinks this node's
  /// range to [low, sep), and re-points the right link at the sibling.
  /// The caller assigns sibling copies/pc and distributes the snapshot.
  /// Precondition: size() >= 2.
  SplitResult HalfSplit(NodeId sibling_id);

  /// Applies an already-computed split to this copy (relayed split /
  /// split_end): drops entries >= sep, shrinks the range, re-points the
  /// right link. Out-of-range entries are discarded (their inserts were
  /// relayed to the sibling's seed or forwarded by the PC).
  void ApplySplit(Key sep, NodeId sibling_id);

  /// Serializes the full copy state.
  NodeSnapshot ToSnapshot() const;

  /// Update-id bookkeeping for history checking (backwards extensions)
  /// and relay idempotence.
  void NoteApplied(UpdateId update);
  const std::vector<UpdateId>& applied_updates() const {
    return applied_updates_;
  }

  /// True when `update` was already applied at (or folded into the seed
  /// of) this copy. Always false when update tracking is off — callers
  /// must then rely on value-level idempotence.
  bool HasApplied(UpdateId update) const {
    return update != kNoUpdate && applied_lookup_.contains(update);
  }

  std::string ToString() const;

 private:
  NodeId id_;
  int32_t level_;
  KeyRange range_;
  Version version_ = 0;
  NodeId right_ = kInvalidNode;
  Key right_low_ = kKeyInfinity;
  NodeId left_ = kInvalidNode;
  NodeId parent_ = kInvalidNode;
  Version link_versions_[3] = {0, 0, 0};
  std::vector<Entry> entries_;  // sorted by key, unique keys
  std::vector<ProcessorId> copies_;
  ProcessorId pc_ = kInvalidProcessor;
  bool track_updates_;
  std::vector<UpdateId> applied_updates_;
  std::unordered_set<UpdateId> applied_lookup_;
};

}  // namespace lazytree

#endif  // LAZYTREE_NODE_NODE_H_
