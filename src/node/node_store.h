// NodeStore: all node copies hosted by one processor, plus the local
// routing aids the paper's recovery mechanisms need (root hint, forwarding
// addresses, closest-node lookup).

#ifndef LAZYTREE_NODE_NODE_STORE_H_
#define LAZYTREE_NODE_NODE_STORE_H_

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/msg/fingerprint.h"
#include "src/node/node.h"

namespace lazytree {

class NodeStore {
 public:
  /// Installs a copy. Replaces any dead tombstone with the same id.
  Node* Install(std::unique_ptr<Node> node);

  /// Removes a copy (unjoin / migration away). Optionally records a
  /// forwarding address (§4.2) pointing at the node's new host.
  void Remove(NodeId id, ProcessorId forward_to = kInvalidProcessor);

  /// Local copy, or nullptr.
  Node* Get(NodeId id);
  const Node* Get(NodeId id) const;

  /// Forwarding address left by a migrated node, if still retained.
  ProcessorId Forwarding(NodeId id) const;

  /// Garbage-collects every forwarding address (§4.2: they are an
  /// optimization, safe to drop at any time).
  void DropForwardingAddresses() { forwarding_.clear(); }
  size_t ForwardingCount() const { return forwarding_.size(); }

  /// The locally known root (highest-level local anchor for starting
  /// operations and for missing-node recovery). Updated lazily.
  NodeId root_hint() const { return root_hint_; }
  int32_t root_level() const { return root_level_; }
  void SetRootHint(NodeId id, int32_t level) {
    // Ordered by level: only ever move the hint upward.
    if (level > root_level_ || !root_hint_.valid()) {
      root_hint_ = id;
      root_level_ = level;
    }
  }

  /// "Find a node that is 'close' to the destination" (§4.2 missing-node
  /// recovery): the lowest-level local node at level >= `level` whose
  /// range contains `key`; falls back to the local root copy; returns
  /// nullptr when this processor stores nothing at all.
  Node* Closest(Key key, int32_t level);

  size_t size() const { return nodes_.size(); }

  /// Drops every copy, forwarding address, and the root hint — a crashed
  /// processor's volatile state. The caller is responsible for recording
  /// the copy deaths with the history log first (Processor::Crash does).
  void Reset() {
    nodes_.clear();
    forwarding_.clear();
    root_hint_ = kInvalidNode;
    root_level_ = -1;
  }

  /// Iteration for snapshot collection at quiescence.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [id, node] : nodes_) fn(*node);
  }

  /// Folds every local copy (sorted by id, encoded via its snapshot so all
  /// node fields are covered), forwarding address, and the root hint into
  /// a verifier state fingerprint.
  void MixState(Fingerprint& fp) const {
    std::vector<const Node*> copies;
    copies.reserve(nodes_.size());
    for (const auto& [id, node] : nodes_) copies.push_back(node.get());
    std::sort(copies.begin(), copies.end(),
              [](const Node* a, const Node* b) { return a->id() < b->id(); });
    fp.Mix(copies.size());
    for (const Node* n : copies) MixSnapshot(fp, n->ToSnapshot());
    std::vector<std::pair<NodeId, ProcessorId>> fwd(forwarding_.begin(),
                                                    forwarding_.end());
    std::sort(fwd.begin(), fwd.end());
    fp.Mix(fwd.size());
    for (const auto& [id, host] : fwd) {
      fp.Mix(id.v);
      fp.Mix(host);
    }
    fp.Mix(root_hint_.v);
    fp.Mix(static_cast<uint64_t>(static_cast<int64_t>(root_level_)));
  }

 private:
  std::unordered_map<NodeId, std::unique_ptr<Node>> nodes_;
  std::unordered_map<NodeId, ProcessorId> forwarding_;
  NodeId root_hint_ = kInvalidNode;
  int32_t root_level_ = -1;
};

}  // namespace lazytree

#endif  // LAZYTREE_NODE_NODE_STORE_H_
