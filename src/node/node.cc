#include "src/node/node.h"

#include <algorithm>
#include <sstream>

#include "src/util/logging.h"

namespace lazytree {

Node::Node(const NodeSnapshot& snapshot, bool track_updates)
    : id_(snapshot.id),
      level_(snapshot.level),
      range_(snapshot.range),
      version_(snapshot.version),
      right_(snapshot.right),
      right_low_(snapshot.right_low),
      left_(snapshot.left),
      parent_(snapshot.parent),
      entries_(snapshot.entries),
      copies_(snapshot.copies),
      pc_(snapshot.pc),
      track_updates_(track_updates),
      applied_updates_(snapshot.applied_updates),
      applied_lookup_(snapshot.applied_updates.begin(),
                      snapshot.applied_updates.end()) {
  for (int i = 0; i < 3; ++i) link_versions_[i] = snapshot.link_versions[i];
  LAZYTREE_CHECK(id_.valid()) << "node from invalid snapshot";
}

Node::Node(NodeId id, int32_t level, KeyRange range, bool track_updates)
    : id_(id), level_(level), range_(range), track_updates_(track_updates) {
  LAZYTREE_CHECK(id_.valid()) << "fresh node with invalid id";
}

void Node::AddCopy(ProcessorId p) {
  if (!HasCopy(p)) copies_.push_back(p);
}

void Node::RemoveCopy(ProcessorId p) {
  copies_.erase(std::remove(copies_.begin(), copies_.end(), p),
                copies_.end());
}

bool Node::HasCopy(ProcessorId p) const {
  return std::find(copies_.begin(), copies_.end(), p) != copies_.end();
}

namespace {

/// First entry with key >= `key`.
std::vector<Entry>::const_iterator LowerBound(
    const std::vector<Entry>& entries, Key key) {
  return std::lower_bound(entries.begin(), entries.end(), key,
                          [](const Entry& e, Key k) { return e.key < k; });
}

}  // namespace

std::optional<Value> Node::Find(Key key) const {
  LAZYTREE_CHECK(is_leaf()) << "Find on interior node";
  auto it = LowerBound(entries_, key);
  if (it != entries_.end() && it->key == key) return it->payload;
  return std::nullopt;
}

NodeId Node::ChildFor(Key key) const {
  LAZYTREE_CHECK(!is_leaf()) << "ChildFor on leaf";
  LAZYTREE_CHECK(!entries_.empty()) << "interior node with no children";
  // Greatest separator <= key routes the descent.
  auto it = LowerBound(entries_, key);
  if (it == entries_.end() || it->key > key) {
    LAZYTREE_CHECK(it != entries_.begin())
        << "key " << key << " below first separator of " << ToString();
    --it;
  }
  return NodeId{it->payload};
}

bool Node::Insert(Key key, uint64_t payload, bool upsert) {
  auto it = LowerBound(entries_, key);
  if (it != entries_.end() && it->key == key) {
    if (upsert) entries_[it - entries_.begin()].payload = payload;
    return false;
  }
  entries_.insert(entries_.begin() + (it - entries_.begin()),
                  Entry{key, payload});
  return true;
}

bool Node::Remove(Key key) {
  auto it = LowerBound(entries_, key);
  if (it == entries_.end() || it->key != key) return false;
  entries_.erase(entries_.begin() + (it - entries_.begin()));
  return true;
}

Node::SplitResult Node::HalfSplit(NodeId sibling_id) {
  LAZYTREE_CHECK(entries_.size() >= 2) << "half-split of tiny node";
  const size_t keep = entries_.size() / 2;

  SplitResult result;
  result.sep = entries_[keep].key;

  NodeSnapshot& sibling = result.sibling;
  sibling.id = sibling_id;
  sibling.level = level_;
  sibling.range = KeyRange{result.sep, range_.high};
  sibling.version = version_ + 1;  // §4.2: sibling version = ours + 1
  sibling.right = right_;
  sibling.right_low = right_low_;
  sibling.left = id_;
  sibling.parent = parent_;
  sibling.entries.assign(entries_.begin() + keep, entries_.end());
  if (track_updates_) {
    // The sibling inherits the full backwards extension: its seed value
    // derives from this copy's entire history (§3.1).
    sibling.applied_updates = applied_updates_;
  }

  entries_.resize(keep);
  range_.high = result.sep;
  right_ = sibling_id;
  right_low_ = result.sep;
  return result;
}

void Node::ApplySplit(Key sep, NodeId sibling_id) {
  LAZYTREE_CHECK(range_.Contains(sep) || sep == range_.high)
      << "split sep " << sep << " outside " << ToString();
  auto it = LowerBound(entries_, sep);
  entries_.erase(it, entries_.end());
  range_.high = sep;
  right_ = sibling_id;
  right_low_ = sep;
}

NodeSnapshot Node::ToSnapshot() const {
  NodeSnapshot s;
  s.id = id_;
  s.level = level_;
  s.range = range_;
  s.version = version_;
  s.right = right_;
  s.right_low = right_low_;
  s.left = left_;
  s.parent = parent_;
  for (int i = 0; i < 3; ++i) s.link_versions[i] = link_versions_[i];
  s.entries = entries_;
  s.copies = copies_;
  s.pc = pc_;
  s.applied_updates = applied_updates_;
  return s;
}

void Node::NoteApplied(UpdateId update) {
  if (track_updates_ && update != kNoUpdate) {
    applied_updates_.push_back(update);
    applied_lookup_.insert(update);
  }
}

std::string Node::ToString() const {
  std::ostringstream os;
  os << id_.ToString() << "{L" << level_ << " " << range_.ToString()
     << " n=" << entries_.size() << " ->" << right_.ToString();
  if (version_) os << " v" << version_;
  os << "}";
  return os.str();
}

}  // namespace lazytree
