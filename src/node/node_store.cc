#include "src/node/node_store.h"

#include "src/util/logging.h"

namespace lazytree {

Node* NodeStore::Install(std::unique_ptr<Node> node) {
  NodeId id = node->id();
  forwarding_.erase(id);  // the node is back; any forward is stale
  auto [it, fresh] = nodes_.insert_or_assign(id, std::move(node));
  (void)fresh;
  return it->second.get();
}

void NodeStore::Remove(NodeId id, ProcessorId forward_to) {
  auto it = nodes_.find(id);
  LAZYTREE_CHECK(it != nodes_.end())
      << "remove of unknown node " << id.ToString();
  nodes_.erase(it);
  if (forward_to != kInvalidProcessor) forwarding_[id] = forward_to;
  // The root hint survives: it names a logical node, not a local copy.
}

Node* NodeStore::Get(NodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const Node* NodeStore::Get(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

ProcessorId NodeStore::Forwarding(NodeId id) const {
  auto it = forwarding_.find(id);
  return it == forwarding_.end() ? kInvalidProcessor : it->second;
}

Node* NodeStore::Closest(Key key, int32_t level) {
  // B-link navigation only moves right and down, so a usable start node
  // must sit at or above the target level with range.low <= key. Prefer
  // nodes whose range contains the key (no right-chasing needed), then
  // the lowest level, then the tightest low bound.
  Node* best = nullptr;
  auto better = [&](const Node& n) {
    if (best == nullptr) return true;
    const bool n_contains = n.Contains(key);
    const bool b_contains = best->Contains(key);
    if (n_contains != b_contains) return n_contains;
    if (n.level() != best->level()) return n.level() < best->level();
    return n.range().low > best->range().low;
  };
  for (auto& [id, node] : nodes_) {
    if (node->level() < level) continue;
    if (node->range().low > key) continue;
    if (better(*node)) best = node.get();
  }
  if (best != nullptr) return best;
  return root_hint_.valid() ? Get(root_hint_) : nullptr;
}

}  // namespace lazytree
