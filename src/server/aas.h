// AAS engine: atomic action sequences (§3), the distributed analogue of a
// shared-memory lock.
//
// A copy with an active AAS blocks the action kinds that conflict with it;
// blocked actions are parked here and re-enqueued when the AAS finishes.
// Only the synchronous-split protocol and the vigorous baseline use this —
// the point of lazy updates is to not need it.

#ifndef LAZYTREE_SERVER_AAS_H_
#define LAZYTREE_SERVER_AAS_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/msg/action.h"
#include "src/msg/fingerprint.h"

namespace lazytree {

class AasRegistry {
 public:
  /// Starts an AAS on a node copy. Nested AAS on one copy are not needed
  /// by any protocol here and are rejected.
  void Begin(NodeId node);

  /// Finishes the AAS; returns the actions parked while it was active,
  /// in arrival order, for the caller to re-enqueue.
  std::vector<Action> End(NodeId node);

  bool Active(NodeId node) const { return active_.contains(node); }

  /// Parks an action that conflicts with the node's active AAS.
  /// Precondition: Active(node).
  void Defer(NodeId node, Action action);

  size_t DeferredCount(NodeId node) const;
  size_t ActiveCount() const { return active_.size(); }

  /// Abandons every active AAS and its deferred actions (crash injection:
  /// the state was volatile).
  void Reset() { active_.clear(); }

  /// Folds active AAS nodes (sorted) and their deferred actions (arrival
  /// order, which is per-copy and therefore canonical) into a verifier
  /// state fingerprint.
  void MixState(Fingerprint& fp) const {
    std::vector<NodeId> ids;
    ids.reserve(active_.size());
    for (const auto& [id, parked] : active_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    fp.Mix(ids.size());
    for (NodeId id : ids) {
      fp.Mix(id.v);
      const auto& parked = active_.at(id);
      fp.Mix(parked.size());
      for (const Action& a : parked) MixAction(fp, a);
    }
  }

 private:
  std::unordered_map<NodeId, std::vector<Action>> active_;
};

}  // namespace lazytree

#endif  // LAZYTREE_SERVER_AAS_H_
