#include "src/server/op_tracker.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lazytree {

OpId OpTracker::Begin(OpCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  OpId id = MakeOpId(self_, next_seq_++);
  pending_.emplace(id, std::move(callback));
  return id;
}

void OpTracker::Complete(const OpResult& result) {
  OpCallback callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(result.op);
    if (it == pending_.end()) {
      LAZYTREE_WARN << "completion for unknown op " << result.op;
      return;
    }
    callback = std::move(it->second);
    pending_.erase(it);
    ++completed_;
  }
  if (callback) callback(result);
}

size_t OpTracker::FailAllPending(const Status& status) {
  // Deterministic failure order: sort by op id (the map is unordered).
  std::vector<std::pair<OpId, OpCallback>> failed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    failed.reserve(pending_.size());
    for (auto& [id, callback] : pending_) {
      failed.emplace_back(id, std::move(callback));
    }
    pending_.clear();
    completed_ += failed.size();
  }
  std::sort(failed.begin(), failed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [id, callback] : failed) {
    OpResult result;
    result.op = id;
    result.status = status;
    if (callback) callback(result);
  }
  return failed.size();
}

size_t OpTracker::Outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace lazytree
