// QueueManager: the paper's per-processor message-queue component (§1.1).
//
// The node manager hands it subsequent actions; it routes each one to the
// processor storing the target copy — a self-send lands back in the local
// queue (the paper's "new entry is put into the message queue"), a remote
// send crosses the Network. Self-sends are counted as local messages, not
// network traffic.
//
// Op combining (TreeConfig::combine_ops): while the owning worker thread
// is inside a delivery scope (BeginCombine/EndCombine, opened by the
// Processor around Deliver/DeliverBatch), outgoing actions are buffered
// per destination and flushed as one multi-action message per destination
// when the scope closes. A batch of searches crossing the same hot root
// replica therefore leaves as a single message instead of one message per
// op — the hot-node combining of ROADMAP item 1. Correctness rides on the
// paper's own model: a message already carries a *vector* of actions
// (piggybacking, §1.1), the receiver handles them serially, and per-
// (from,to) FIFO is preserved because buffers flush in first-touch order
// before the next delivery begins.
//
// Thread safety: Submit* enqueues client actions from arbitrary threads
// through SendLocal. Only the network worker that opened the combine
// scope may buffer — everyone else must go straight to the network — so
// the routing decision keys on an atomic owner-thread id. Client threads
// read `combine_owner_`, see "not me", and take the direct path; the
// buffers themselves are touched only by the owner.

#ifndef LAZYTREE_SERVER_QUEUE_MANAGER_H_
#define LAZYTREE_SERVER_QUEUE_MANAGER_H_

#include <atomic>
#include <thread>
#include <vector>

#include "src/net/transport.h"
#include "src/util/logging.h"

namespace lazytree {

class QueueManager {
 public:
  QueueManager(ProcessorId self, net::Network* network)
      : self_(self), network_(network) {}

  ProcessorId self() const { return self_; }

  /// Routes one action to `dest` (which may be self_).
  void SendAction(ProcessorId dest, Action action) {
    if (CombiningHere()) {
      BufferAction(dest, std::move(action));
      return;
    }
    network_->Send(Message(self_, dest, std::move(action)));
  }

  /// Re-enqueues an action locally (deferred work, local hops).
  void SendLocal(Action action) { SendAction(self_, std::move(action)); }

  /// Sends a copy of `action` to every processor in `dests` except self.
  void Broadcast(const std::vector<ProcessorId>& dests, const Action& action) {
    for (ProcessorId d : dests) {
      if (d != self_) SendAction(d, action);
    }
  }

  /// Opens a combining scope owned by the calling thread. Nestable (a
  /// batch scope around per-message scopes); only the outermost
  /// EndCombine flushes. Must not be called while another thread owns a
  /// scope — the Processor only opens scopes from its (single) delivery
  /// thread, which the network serializes.
  void BeginCombine() {
    if (combine_depth_ == 0) {
      combine_owner_.store(std::this_thread::get_id(),
                           std::memory_order_release);
    }
    ++combine_depth_;
  }

  /// Closes the scope; the outermost close flushes every buffered
  /// destination (first-touch order) as one message each.
  void EndCombine() {
    LAZYTREE_CHECK(combine_depth_ > 0) << "unbalanced EndCombine";
    if (--combine_depth_ > 0) return;
    combine_owner_.store(std::thread::id(), std::memory_order_release);
    Flush();
  }

  net::Network* network() { return network_; }

 private:
  bool CombiningHere() const {
    // Owner-thread check doubles as the "is combining active" check:
    // client threads never match, and they must not, because the buffers
    // are owner-confined.
    return combine_owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  void BufferAction(ProcessorId dest, Action action) {
    if (pending_.size() <= dest) pending_.resize(dest + 1);
    Message& m = pending_[dest];
    if (m.actions.empty()) {
      m.from = self_;
      m.to = dest;
      flush_order_.push_back(dest);
    }
    m.actions.push_back(std::move(action));
  }

  void Flush() {
    if (flush_order_.empty()) return;
    size_t actions = 0;
    size_t messages = 0;
    for (ProcessorId dest : flush_order_) {
      Message& m = pending_[dest];
      if (m.actions.empty()) continue;
      actions += m.actions.size();
      ++messages;
      network_->Send(std::move(m));
      m = Message();
    }
    flush_order_.clear();
    if (actions > messages) {
      network_->stats().OnCombined(actions - messages);
    }
  }

  ProcessorId self_;
  net::Network* network_;

  // Combining state. `combine_owner_` is the only field other threads
  // read; depth and buffers are owner-thread-confined.
  std::atomic<std::thread::id> combine_owner_{};
  int combine_depth_ = 0;
  std::vector<Message> pending_;        // indexed by destination
  std::vector<ProcessorId> flush_order_;  // first-touch destinations
};

}  // namespace lazytree

#endif  // LAZYTREE_SERVER_QUEUE_MANAGER_H_
