// QueueManager: the paper's per-processor message-queue component (§1.1).
//
// The node manager hands it subsequent actions; it routes each one to the
// processor storing the target copy — a self-send lands back in the local
// queue (the paper's "new entry is put into the message queue"), a remote
// send crosses the Network. Self-sends are counted as local messages, not
// network traffic.

#ifndef LAZYTREE_SERVER_QUEUE_MANAGER_H_
#define LAZYTREE_SERVER_QUEUE_MANAGER_H_

#include <vector>

#include "src/net/transport.h"

namespace lazytree {

class QueueManager {
 public:
  QueueManager(ProcessorId self, net::Network* network)
      : self_(self), network_(network) {}

  ProcessorId self() const { return self_; }

  /// Routes one action to `dest` (which may be self_).
  void SendAction(ProcessorId dest, Action action) {
    network_->Send(Message(self_, dest, std::move(action)));
  }

  /// Re-enqueues an action locally (deferred work, local hops).
  void SendLocal(Action action) { SendAction(self_, std::move(action)); }

  /// Sends a copy of `action` to every processor in `dests` except self.
  void Broadcast(const std::vector<ProcessorId>& dests, const Action& action) {
    for (ProcessorId d : dests) {
      if (d != self_) SendAction(d, action);
    }
  }

  net::Network* network() { return network_; }

 private:
  ProcessorId self_;
  net::Network* network_;
};

}  // namespace lazytree

#endif  // LAZYTREE_SERVER_QUEUE_MANAGER_H_
