#include "src/server/queue_manager.h"

// Header-only today; the translation unit anchors the library target.
