// OpTracker: outstanding client operations at one processor.
//
// Clients submit operations from arbitrary threads; completions arrive on
// the processor's worker thread as kReturnValue actions. The tracker is the
// only processor component shared across threads, so it locks internally.

#ifndef LAZYTREE_SERVER_OP_TRACKER_H_
#define LAZYTREE_SERVER_OP_TRACKER_H_

#include <algorithm>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/msg/action.h"
#include "src/msg/fingerprint.h"
#include "src/util/status.h"

namespace lazytree {

/// Outcome of one search / insert / delete / scan operation.
struct OpResult {
  OpId op = kNoOp;
  Status status;      ///< OK, NotFound (search miss), AlreadyExists, ...
  Key key = 0;
  Value value = 0;    ///< search hit value
  uint32_t hops = 0;  ///< node visits the operation made
  std::vector<Entry> entries;  ///< scan results (ascending by key)
};

using OpCallback = std::function<void(const OpResult&)>;

class OpTracker {
 public:
  explicit OpTracker(ProcessorId self) : self_(self) {}

  /// Registers a new operation; returns its id.
  OpId Begin(OpCallback callback);

  /// Completes an operation; invokes its callback exactly once.
  /// Unknown ids are ignored (duplicate completion is a protocol bug that
  /// tests catch via the completion counter).
  void Complete(const OpResult& result);

  /// Fails every outstanding operation with `status` (crash injection:
  /// the client sees its server die). Returns how many were failed.
  size_t FailAllPending(const Status& status);

  size_t Outstanding() const;
  uint64_t completed() const { return completed_; }

  /// Folds the tracker's observable state (sorted outstanding op ids plus
  /// the issue/completion counters) into a verifier state fingerprint.
  void MixState(Fingerprint& fp) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<OpId> ids;
    ids.reserve(pending_.size());
    for (const auto& [id, cb] : pending_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    fp.Mix(ids.size());
    for (OpId id : ids) fp.Mix(id);
    fp.Mix(next_seq_);
    fp.Mix(completed_);
  }

 private:
  ProcessorId self_;
  mutable std::mutex mu_;
  std::unordered_map<OpId, OpCallback> pending_;
  uint32_t next_seq_ = 1;
  uint64_t completed_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_SERVER_OP_TRACKER_H_
