#include "src/server/processor.h"

#include "src/util/logging.h"

namespace lazytree {

Processor::Processor(ProcessorId id, uint32_t cluster_size,
                     net::Network* network, history::HistoryLog* history,
                     const TreeConfig& config)
    : id_(id),
      cluster_size_(cluster_size),
      config_(config),
      network_(network),
      history_(history),
      out_(id, network),
      ops_(id) {
  network_->Register(id_, this);
}

void Processor::SetHandler(std::unique_ptr<ProtocolHandler> handler) {
  handler_ = std::move(handler);
}

void Processor::Deliver(Message m) {
  if (crashed_) return;  // defensive; the sim network drops these already
  // Scope per message: a coalesced message's actions emit their outputs
  // as one message per destination. Nested inside a DeliverBatch scope
  // this is a no-op (only the outermost EndCombine flushes).
  if (config_.combine_ops) out_.BeginCombine();
  for (Action& action : m.actions) HandleAction(action);
  if (config_.combine_ops) out_.EndCombine();
}

void Processor::DeliverBatch(std::vector<Message>& batch) {
  if (!config_.combine_ops) {
    for (Message& m : batch) Deliver(std::move(m));
    return;
  }
  // One combining scope across the whole drained batch: same-destination
  // outputs of *different* inbox messages fuse too (this is where a burst
  // of searches past the root collapses into one upstream message).
  out_.BeginCombine();
  for (Message& m : batch) Deliver(std::move(m));
  out_.EndCombine();
}

void Processor::HandleAction(Action& action) {
  actions_handled_.fetch_add(1, std::memory_order_relaxed);
  if (action.kind == ActionKind::kReturnValue) {
    CompleteReturnLocal(std::move(action));
    return;
  }
  LAZYTREE_CHECK(handler_ != nullptr) << "no protocol installed on p" << id_;
  handler_->Handle(action);
}

void Processor::CompleteReturnLocal(Action action) {
  OpResult result;
  result.op = action.op;
  result.key = action.key;
  result.hops = action.hops;
  result.entries = std::move(action.range_results);
  switch (action.rc) {
    case Action::Rc::kOk:
      result.status = Status::OK();
      result.value = action.value;
      break;
    case Action::Rc::kNotFound:
      result.status = Status::NotFound("key absent");
      break;
    case Action::Rc::kExists:
      result.status = Status::AlreadyExists("key exists");
      break;
    case Action::Rc::kNone:
      result.status = Status::Internal("return without rc");
      break;
  }
  ops_.Complete(result);
}

Node* Processor::InstallNode(std::unique_ptr<Node> node) {
  if (history_ != nullptr && history_->enabled()) {
    history_->OnCopyCreated(node->id(), id_, node->applied_updates());
  }
  return store_.Install(std::move(node));
}

void Processor::RemoveNode(NodeId node, ProcessorId forward_to) {
  if (history_ != nullptr && history_->enabled()) {
    history_->OnCopyDeleted(node, id_);
  }
  store_.Remove(node, forward_to);
}

void Processor::Crash() {
  LAZYTREE_CHECK(!crashed_) << "p" << id_ << " crashed twice";
  crashed_ = true;
  ++crash_epoch_;
  // Volatile memory is gone: every local copy dies (the history log keeps
  // their records — a deleted copy is "conceptually retained", §3.1).
  std::vector<NodeId> ids;
  store_.ForEach([&](const Node& node) { ids.push_back(node.id()); });
  for (NodeId id : ids) RemoveNode(id);
  store_.Reset();
  aas_.Reset();
  handler_.reset();  // parked actions and protocol state are volatile too
  ops_.FailAllPending(Status::Unavailable("processor crashed"));
}

void Processor::Restart(std::unique_ptr<ProtocolHandler> handler,
                        NodeId root_hint, int32_t root_level) {
  LAZYTREE_CHECK(crashed_) << "restart of live p" << id_;
  // Operations submitted while the processor was down never made it into
  // the tree (their self-send was dropped): fail them now.
  ops_.FailAllPending(Status::Unavailable("processor was down"));
  handler_ = std::move(handler);
  if (root_hint.valid()) store_.SetRootHint(root_hint, root_level);
  crashed_ = false;
}

OpId Processor::SubmitSearch(Key key, OpCallback callback) {
  LAZYTREE_CHECK(key != kKeyInfinity) << "reserved key";
  OpId op = ops_.Begin(std::move(callback));
  Action a;
  a.kind = ActionKind::kSearch;
  a.op = op;
  a.key = key;
  a.origin = id_;
  out_.SendLocal(std::move(a));
  return op;
}

OpId Processor::SubmitInsert(Key key, Value value, OpCallback callback) {
  LAZYTREE_CHECK(key != kKeyInfinity) << "reserved key";
  OpId op = ops_.Begin(std::move(callback));
  Action a;
  a.kind = ActionKind::kInsertOp;
  a.op = op;
  a.key = key;
  a.value = value;
  a.origin = id_;
  out_.SendLocal(std::move(a));
  return op;
}

OpId Processor::SubmitDelete(Key key, OpCallback callback) {
  LAZYTREE_CHECK(key != kKeyInfinity) << "reserved key";
  OpId op = ops_.Begin(std::move(callback));
  Action a;
  a.kind = ActionKind::kDeleteOp;
  a.op = op;
  a.key = key;
  a.origin = id_;
  out_.SendLocal(std::move(a));
  return op;
}

OpId Processor::SubmitScan(Key start, uint64_t limit, OpCallback callback) {
  OpId op = ops_.Begin(std::move(callback));
  Action a;
  a.kind = ActionKind::kScanOp;
  a.op = op;
  a.key = start == kKeyInfinity ? kKeyInfinity - 1 : start;
  a.value = limit;  // scan limit rides in `value`
  a.origin = id_;
  out_.SendLocal(std::move(a));
  return op;
}

}  // namespace lazytree
