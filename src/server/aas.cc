#include "src/server/aas.h"

#include "src/util/logging.h"

namespace lazytree {

void AasRegistry::Begin(NodeId node) {
  auto [it, fresh] = active_.try_emplace(node);
  (void)it;
  LAZYTREE_CHECK(fresh) << "nested AAS on " << node.ToString();
}

std::vector<Action> AasRegistry::End(NodeId node) {
  auto it = active_.find(node);
  LAZYTREE_CHECK(it != active_.end())
      << "AAS end without begin on " << node.ToString();
  std::vector<Action> deferred = std::move(it->second);
  active_.erase(it);
  return deferred;
}

void AasRegistry::Defer(NodeId node, Action action) {
  auto it = active_.find(node);
  LAZYTREE_CHECK(it != active_.end())
      << "defer without active AAS on " << node.ToString();
  it->second.push_back(std::move(action));
}

size_t AasRegistry::DeferredCount(NodeId node) const {
  auto it = active_.find(node);
  return it == active_.end() ? 0 : it->second.size();
}

}  // namespace lazytree
