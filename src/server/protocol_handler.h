// ProtocolHandler: per-processor strategy object implementing one of the
// paper's replica-maintenance algorithms (protocol/).

#ifndef LAZYTREE_SERVER_PROTOCOL_HANDLER_H_
#define LAZYTREE_SERVER_PROTOCOL_HANDLER_H_

#include "src/msg/action.h"
#include "src/msg/fingerprint.h"

namespace lazytree {

class Processor;

class ProtocolHandler {
 public:
  virtual ~ProtocolHandler() = default;

  /// Executes one action against the local node store. Runs on the
  /// processor's (single) worker thread, so an action on a node is atomic.
  virtual void Handle(const Action& action) = 0;

  /// Folds protocol-private scratch state (parked actions, address tables,
  /// pending ack / join bookkeeping) into a canonical state fingerprint for
  /// the exhaustive verifier. Mixed data must be ordered canonically
  /// (sorted by key, never by hash-map iteration order). Pure diagnostics
  /// counters that cannot influence future behavior should be left out.
  virtual void MixState(Fingerprint& fp) const { (void)fp; }
};

}  // namespace lazytree

#endif  // LAZYTREE_SERVER_PROTOCOL_HANDLER_H_
