// ProtocolHandler: per-processor strategy object implementing one of the
// paper's replica-maintenance algorithms (protocol/).

#ifndef LAZYTREE_SERVER_PROTOCOL_HANDLER_H_
#define LAZYTREE_SERVER_PROTOCOL_HANDLER_H_

#include "src/msg/action.h"

namespace lazytree {

class Processor;

class ProtocolHandler {
 public:
  virtual ~ProtocolHandler() = default;

  /// Executes one action against the local node store. Runs on the
  /// processor's (single) worker thread, so an action on a node is atomic.
  virtual void Handle(const Action& action) = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_SERVER_PROTOCOL_HANDLER_H_
