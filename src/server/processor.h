// Processor: one simulated server (§1.1).
//
// Owns the node store, the queue manager, the AAS registry, the operation
// tracker, and a ProtocolHandler. The network calls Deliver serially, so
// every action executes atomically with respect to the local store — the
// paper's queue-manager / node-manager execution model.

#ifndef LAZYTREE_SERVER_PROCESSOR_H_
#define LAZYTREE_SERVER_PROCESSOR_H_

#include <atomic>
#include <memory>

#include "src/history/history.h"
#include "src/net/transport.h"
#include "src/node/node_store.h"
#include "src/server/aas.h"
#include "src/server/op_tracker.h"
#include "src/server/protocol_handler.h"
#include "src/server/queue_manager.h"

namespace lazytree {

/// Knobs shared by every processor of one tree.
struct TreeConfig {
  /// Max entries per node before the PC half-splits it (fanout).
  size_t max_entries = 8;
  /// Record per-copy histories for the §3 checkers (tests on, benches off).
  bool track_history = true;
  /// Inserting an existing key overwrites (true) or fails AlreadyExists.
  bool upsert = false;
  /// Fixed-copies placement: replication factor for interior nodes.
  /// 0 means "every processor" (the dB-tree root-everywhere policy).
  uint32_t interior_replication = 0;
  /// Fixed-copies placement: replication factor for leaves. The dB-tree
  /// policy is 1 (§1.1: "the leaf nodes are stored on a single
  /// processor"); >1 exercises the general §4.1 fixed-copies model where
  /// client inserts themselves are relayed (Fig. 4 needs this).
  uint32_t leaf_replication = 1;
  /// Mobile/varcopies online data balancing ([14]): when a processor
  /// hosts more than this many leaves, a freshly split-off leaf sibling
  /// is migrated to another processor. 0 disables shedding.
  uint32_t shed_threshold = 0;
  /// ABLATION ONLY: disable the §4.3 version-gated re-relay to late
  /// joiners. Demonstrates the Fig.-6 incomplete-history failure the
  /// machinery exists to prevent.
  bool ablate_fig6_rerelay = false;
  /// Hot-node op combining: buffer actions emitted during one delivery
  /// (or delivery batch) per destination and flush them as one
  /// multi-action message each — one message carries many ops past the
  /// hot root replica. Resolved from ClusterOptions::combine_ops.
  bool combine_ops = false;
  /// Local-replica read fast path: navigation descends through locally
  /// replicated copies inline (no queue-manager round trip per hop), and
  /// kReturnValue to self completes the op directly. Staleness is
  /// absorbed by §4.2 side-link misnavigation recovery, exactly as for a
  /// stale remote replica. Resolved from ClusterOptions::local_read_fastpath.
  bool local_fastpath = false;
};

class Processor : public net::Receiver {
 public:
  Processor(ProcessorId id, uint32_t cluster_size, net::Network* network,
            history::HistoryLog* history, const TreeConfig& config);

  /// Installs the protocol strategy. Must happen before the network starts.
  void SetHandler(std::unique_ptr<ProtocolHandler> handler);

  // net::Receiver:
  void Deliver(Message m) override;
  /// Batch delivery with an output-combining scope spanning the whole
  /// batch (when TreeConfig::combine_ops): all actions the batch emits
  /// toward one destination leave as a single message.
  void DeliverBatch(std::vector<Message>& batch) override;

  /// Completes a kReturnValue action addressed to this processor without
  /// a queue-manager round trip (the local-read fast path's last hop).
  /// Worker thread only.
  void CompleteReturnLocal(Action action);

  // --- services used by protocol code (worker thread only) ---
  ProcessorId id() const { return id_; }
  uint32_t cluster_size() const { return cluster_size_; }
  const TreeConfig& config() const { return config_; }
  NodeStore& store() { return store_; }
  const NodeStore& store() const { return store_; }
  QueueManager& out() { return out_; }
  AasRegistry& aas() { return aas_; }
  OpTracker& ops() { return ops_; }
  history::HistoryLog* history() { return history_; }
  /// Installed protocol strategy (tests and benches downcast to inspect
  /// protocol-specific counters).
  ProtocolHandler* handler() { return handler_.get(); }

  /// Fresh globally-unique node id (uncoordinated: creator-scoped counter).
  NodeId NewNodeId() { return NodeId::Make(id_, next_node_seq_++); }

  /// Fresh globally-unique update id.
  UpdateId NewUpdateId() {
    return (static_cast<UpdateId>(id_) << 32) | next_update_seq_++;
  }

  // Id-allocator positions, exposed for verifier state fingerprints (two
  // states that will mint different ids behave differently later).
  uint32_t next_node_seq() const { return next_node_seq_; }
  uint32_t next_update_seq() const { return next_update_seq_; }

  /// Installs a node copy directly (bootstrap and protocol internals) and
  /// registers its creation with the history log. The node's
  /// applied_updates seed the backwards extension.
  Node* InstallNode(std::unique_ptr<Node> node);

  /// Removes a local copy, recording its death in the history log.
  void RemoveNode(NodeId node, ProcessorId forward_to = kInvalidProcessor);

  // --- crash injection (sim transport; driven by Cluster) ---

  /// Fail-stop crash: every volatile structure is lost — node copies
  /// (their deaths are recorded with the history log), forwarding
  /// addresses, the root hint, parked/deferred actions, and the protocol
  /// handler's state. Outstanding client operations fail Unavailable.
  /// The network must already be dropping this processor's inbound
  /// messages (SimNetwork::Crash).
  void Crash();

  /// Brings the processor back with a fresh protocol handler and (when
  /// valid) a root hint learned from a live peer. Operations submitted
  /// while the processor was down fail Unavailable now.
  void Restart(std::unique_ptr<ProtocolHandler> handler, NodeId root_hint,
               int32_t root_level);

  bool crashed() const { return crashed_; }

  /// Number of crashes survived so far. Protocol code uses `> 0` to know
  /// this processor may legitimately lack copies it is the designated
  /// home of (fixed placement) and should re-route instead of parking.
  uint32_t crash_epoch() const { return crash_epoch_; }

  // --- client API (any thread) ---
  OpId SubmitSearch(Key key, OpCallback callback);
  OpId SubmitInsert(Key key, Value value, OpCallback callback);
  OpId SubmitDelete(Key key, OpCallback callback);
  /// Range read: up to `limit` entries with keys >= `start`, ascending.
  /// Not snapshot-consistent under concurrent updates (B-link scans see
  /// each committed key at most once; keys stable through the scan are
  /// always included).
  OpId SubmitScan(Key start, uint64_t limit, OpCallback callback);

  uint64_t actions_handled() const {
    return actions_handled_.load(std::memory_order_relaxed);
  }

 private:
  void HandleAction(Action& action);

  ProcessorId id_;
  uint32_t cluster_size_;
  TreeConfig config_;
  net::Network* network_;
  history::HistoryLog* history_;
  NodeStore store_;
  QueueManager out_;
  AasRegistry aas_;
  OpTracker ops_;
  std::unique_ptr<ProtocolHandler> handler_;
  uint32_t next_node_seq_ = 1;
  uint32_t next_update_seq_ = 1;
  std::atomic<uint64_t> actions_handled_{0};
  bool crashed_ = false;
  uint32_t crash_epoch_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_SERVER_PROCESSOR_H_
