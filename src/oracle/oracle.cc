#include "src/oracle/oracle.h"

namespace lazytree {

Status Oracle::Insert(Key key, Value value) {
  auto [it, fresh] = map_.try_emplace(key, value);
  if (!fresh) {
    if (!upsert_) return Status::AlreadyExists("key exists");
    it->second = value;
  }
  return Status::OK();
}

StatusOr<Value> Oracle::Search(Key key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("key absent");
  return it->second;
}

Status Oracle::Delete(Key key) {
  return map_.erase(key) ? Status::OK() : Status::NotFound("key absent");
}

std::vector<Entry> Oracle::Scan(Key start, uint64_t limit) const {
  std::vector<Entry> out;
  for (auto it = map_.lower_bound(start);
       it != map_.end() && out.size() < limit; ++it) {
    out.push_back(Entry{it->first, it->second});
  }
  return out;
}

std::vector<Entry> Oracle::Dump() const {
  std::vector<Entry> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(Entry{k, v});
  return out;
}

}  // namespace lazytree
