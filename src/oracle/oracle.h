// Oracle: sequential reference dictionary with the same client semantics
// as DBTree. Tests apply every operation to both and compare.

#ifndef LAZYTREE_ORACLE_ORACLE_H_
#define LAZYTREE_ORACLE_ORACLE_H_

#include <map>
#include <vector>

#include "src/msg/action.h"
#include "src/util/statusor.h"

namespace lazytree {

class Oracle {
 public:
  explicit Oracle(bool upsert = false) : upsert_(upsert) {}

  Status Insert(Key key, Value value);
  StatusOr<Value> Search(Key key) const;
  Status Delete(Key key);
  std::vector<Entry> Scan(Key start, uint64_t limit) const;

  size_t size() const { return map_.size(); }

  /// Sorted (key, value) dump — directly comparable with
  /// Cluster::DumpLeaves().
  std::vector<Entry> Dump() const;

 private:
  bool upsert_;
  std::map<Key, Value> map_;
};

}  // namespace lazytree

#endif  // LAZYTREE_ORACLE_ORACLE_H_
