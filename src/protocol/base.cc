#include "src/protocol/base.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lazytree {

BaseProtocol::BaseProtocol(Processor& p)
    : p_(p), rng_(0x5eedba5e ^ (static_cast<uint64_t>(p.id()) << 17)) {}

void BaseProtocol::Handle(const Action& action) {
  Action a = action;  // handlers mutate routing fields as actions travel
  switch (a.kind) {
    case ActionKind::kSearch: HandleSearch(std::move(a)); break;
    case ActionKind::kInsertOp: HandleInsertOp(std::move(a)); break;
    case ActionKind::kDeleteOp: HandleDeleteOp(std::move(a)); break;
    case ActionKind::kScanOp: HandleScanOp(std::move(a)); break;
    case ActionKind::kInsert: HandleInitialInsert(std::move(a)); break;
    case ActionKind::kRelayedInsert: HandleRelayedInsert(std::move(a)); break;
    case ActionKind::kDelete: HandleInitialDelete(std::move(a)); break;
    case ActionKind::kRelayedDelete: HandleRelayedDelete(std::move(a)); break;
    case ActionKind::kSplitStart: HandleSplitStart(std::move(a)); break;
    case ActionKind::kSplitAck: HandleSplitAck(std::move(a)); break;
    case ActionKind::kSplitEnd: HandleSplitEnd(std::move(a)); break;
    case ActionKind::kRelayedSplit: HandleRelayedSplit(std::move(a)); break;
    case ActionKind::kCreateNode: HandleCreateNode(std::move(a)); break;
    case ActionKind::kRootHint: HandleRootHint(std::move(a)); break;
    case ActionKind::kLinkChange:
    case ActionKind::kRelayedLinkChange:
      HandleLinkChange(std::move(a));
      break;
    case ActionKind::kMigrateNode: HandleMigrateNode(std::move(a)); break;
    case ActionKind::kMigrateAck: HandleMigrateAck(std::move(a)); break;
    case ActionKind::kJoin: HandleJoin(std::move(a)); break;
    case ActionKind::kJoinGrant: HandleJoinGrant(std::move(a)); break;
    case ActionKind::kRelayedJoin: HandleRelayedJoin(std::move(a)); break;
    case ActionKind::kUnjoin: HandleUnjoin(std::move(a)); break;
    case ActionKind::kRelayedUnjoin: HandleRelayedUnjoin(std::move(a)); break;
    case ActionKind::kVigorousLock:
    case ActionKind::kVigorousLockAck:
    case ActionKind::kVigorousApply:
    case ActionKind::kVigorousApplyDelete:
    case ActionKind::kVigorousApplySplit:
    case ActionKind::kVigorousApplyAck:
    case ActionKind::kVigorousUnlock:
      HandleVigorous(std::move(a));
      break;
    default:
      Unexpected(a);
  }
}

void BaseProtocol::MixState(Fingerprint& fp) const {
  std::vector<NodeId> ids;
  ids.reserve(parked_.size());
  for (const auto& [id, actions] : parked_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  fp.Mix(ids.size());
  for (NodeId id : ids) {
    fp.Mix(id.v);
    const auto& actions = parked_.at(id);
    fp.Mix(actions.size());
    for (const Action& a : actions) MixAction(fp, a);
  }
  for (uint64_t word : rng_.state()) fp.Mix(word);
}

void BaseProtocol::Unexpected(const Action& a) {
  LAZYTREE_ERROR << "p" << p_.id() << " dropping unexpected action "
                 << a.ToString();
}

void BaseProtocol::HandleMissing(Action a) {
  // Default policy (fixed-copies): this processor is the designated home
  // of the target but the kCreateNode carrying it is still in flight.
  // Park the action; InstallFromSnapshot drains it.
  parked_[a.target].push_back(std::move(a));
}

void BaseProtocol::RouteToNode(NodeId id, int32_t level, Action a) {
  a.target = id;
  a.level = level;
  if (Local(id) != nullptr) {
    p_.out().SendLocal(std::move(a));
    return;
  }
  ProcessorId dest = ResolveDest(id, level);
  if (dest == p_.id()) {
    HandleMissing(std::move(a));
  } else {
    p_.out().SendAction(dest, std::move(a));
  }
}

void BaseProtocol::Navigate(Action a) {
  // Resolve the starting point lazily: operations begin at the local root
  // hint (§1.1 — every operation starts by accessing the root).
  if (!a.target.valid()) {
    a.target = p_.store().root_hint();
    a.level = p_.store().root_level();
    if (!a.target.valid()) {
      LAZYTREE_ERROR << "p" << p_.id() << " has no root hint";
      Reply(a, Action::Rc::kNotFound, 0);
      return;
    }
  }
  const bool inline_descent = p_.config().local_fastpath;
  size_t inline_hops = 0;
  for (;;) {
    Node* n = Local(a.target);
    if (n == nullptr) {
      ProcessorId dest = ResolveDest(a.target, a.level);
      if (dest == p_.id()) {
        HandleMissing(std::move(a));
      } else {
        p_.out().SendAction(dest, std::move(a));
      }
      break;
    }
    if (ReadBlocked(*n)) {
      p_.aas().Defer(n->id(), std::move(a));
      break;
    }
    ++a.hops;
    LAZYTREE_CHECK(a.key >= n->range().low)
        << "action " << a.ToString() << " navigated left of "
        << n->ToString();
    if (a.key >= n->right_low()) {
      // Misnavigation (the node split under us): chase the right link.
      if (!inline_descent) {
        RouteToNode(n->right(), n->level(), std::move(a));
        return;
      }
      a.target = n->right();
      a.level = n->level();
      ++inline_hops;
      continue;
    }
    if (!n->is_leaf()) {
      NodeId child = n->ChildFor(a.key);
      if (!inline_descent) {
        RouteToNode(child, n->level() - 1, std::move(a));
        return;
      }
      a.target = child;
      a.level = n->level() - 1;
      ++inline_hops;
      continue;
    }
    // Leaf reached.
    switch (a.kind) {
      case ActionKind::kSearch:
        CompleteSearch(a, *n);
        break;
      case ActionKind::kScanOp:
        ContinueScan(std::move(a), *n);
        break;
      case ActionKind::kInsertOp:
        // The navigation phase ends here; the action becomes an initial
        // insert on this leaf (§4.1).
        a.kind = ActionKind::kInsert;
        HandleInitialInsert(std::move(a));
        break;
      case ActionKind::kDeleteOp:
        a.kind = ActionKind::kDelete;
        HandleInitialDelete(std::move(a));
        break;
      default:
        Unexpected(a);
    }
    break;
  }
  // Each inline continuation replaced one self-send round trip through
  // the local queue.
  if (inline_hops > 0) {
    p_.out().network()->stats().OnFastpathRead(inline_hops);
  }
}

void BaseProtocol::SendReturn(Action r) {
  const ProcessorId origin = OpOrigin(r.op);
  if (p_.config().local_fastpath && origin == p_.id()) {
    p_.CompleteReturnLocal(std::move(r));
    return;
  }
  p_.out().SendAction(origin, std::move(r));
}

void BaseProtocol::ContinueScan(Action a, Node& leaf) {
  const uint64_t limit = a.value;
  for (const Entry& e : leaf.entries()) {
    if (e.key < a.key) continue;
    if (a.range_results.size() >= limit) break;
    a.range_results.push_back(e);
  }
  if (a.range_results.size() >= limit ||
      leaf.right_low() == kKeyInfinity) {
    Action r;
    r.kind = ActionKind::kReturnValue;
    r.op = a.op;
    r.key = a.key;
    r.rc = Action::Rc::kOk;
    r.hops = a.hops;
    r.range_results = std::move(a.range_results);
    SendReturn(std::move(r));
    return;
  }
  // Continue from the right sibling's low key.
  a.key = leaf.right_low();
  RouteToNode(leaf.right(), leaf.level(), std::move(a));
}

void BaseProtocol::CompleteSearch(const Action& a, Node& leaf) {
  std::optional<Value> hit = leaf.Find(a.key);
  Reply(a, hit.has_value() ? Action::Rc::kOk : Action::Rc::kNotFound,
        hit.value_or(0));
}

void BaseProtocol::Reply(const Action& a, Action::Rc rc, Value value) {
  if (a.op == kNoOp) return;  // maintenance actions have no client
  Action r;
  r.kind = ActionKind::kReturnValue;
  r.op = a.op;
  r.key = a.key;
  r.value = value;
  r.found = rc == Action::Rc::kOk && a.kind == ActionKind::kSearch;
  r.rc = rc;
  r.hops = a.hops;
  SendReturn(std::move(r));
}

UpdateId BaseProtocol::NewRegisteredUpdate(history::UpdateClass cls,
                                           NodeId node, Key key,
                                           Value value) {
  UpdateId u = p_.NewUpdateId();
  if (p_.history() != nullptr && p_.history()->enabled()) {
    p_.history()->RegisterIssued({u, cls, node, key, value});
  }
  return u;
}

void BaseProtocol::RecordUpdate(Node& node, history::UpdateClass cls,
                                UpdateId update, bool initial,
                                bool rewritten, Key key, Value value,
                                NodeId new_node, Key sep, Version version,
                                uint8_t link) {
  node.NoteApplied(update);
  history::HistoryLog* log = p_.history();
  if (log == nullptr || !log->enabled()) return;
  history::Record r;
  r.update = update;
  r.cls = cls;
  r.node = node.id();
  r.copy = p_.id();
  r.initial = initial;
  r.rewritten = rewritten;
  r.key = key;
  r.value = value;
  r.new_node = new_node;
  r.sep = sep;
  r.version = version;
  r.link = link;
  log->Append(std::move(r));
}

Node* BaseProtocol::InstallFromSnapshot(const NodeSnapshot& snapshot) {
  if (Node* existing = Local(snapshot.id)) {
    // Duplicate create (only possible when the exactly-once assumption
    // is violated): installing is idempotent, keep the live copy.
    LAZYTREE_WARN << "p" << p_.id() << " duplicate install of "
                  << snapshot.id.ToString();
    return existing;
  }
  auto node = std::make_unique<Node>(snapshot, p_.config().track_history);
  Node* installed = p_.InstallNode(std::move(node));
  // A full-range node is a root of some vintage; adopt it as the local
  // starting point if it is the highest we have seen.
  if (snapshot.range.low == 0 && snapshot.range.high == kKeyInfinity) {
    p_.store().SetRootHint(snapshot.id, snapshot.level);
  }
  // Drain actions that raced ahead of the installation — inline, so
  // their channel order is preserved relative to messages that arrive
  // after the install (re-enqueueing through the network would let a
  // later relayed split overtake an earlier parked one).
  auto it = parked_.find(snapshot.id);
  if (it != parked_.end()) {
    std::vector<Action> queued = std::move(it->second);
    parked_.erase(it);
    for (const Action& a : queued) Handle(a);
  }
  return installed;
}

void BaseProtocol::HandleCreateNode(Action a) {
  LAZYTREE_CHECK(a.snapshot.valid()) << "create without snapshot";
  InstallFromSnapshot(a.snapshot);
}

void BaseProtocol::HandleRootHint(Action a) {
  p_.store().SetRootHint(a.new_node, a.level);
}

void BaseProtocol::DistributeCopies(const NodeSnapshot& snapshot) {
  for (ProcessorId holder : snapshot.copies) {
    if (holder == p_.id()) {
      InstallFromSnapshot(snapshot);
    } else {
      Action create;
      create.kind = ActionKind::kCreateNode;
      create.target = snapshot.id;
      create.level = snapshot.level;
      create.snapshot = snapshot;
      p_.out().SendAction(holder, std::move(create));
    }
  }
}

void BaseProtocol::FinishSplit(Node& node, Node::SplitResult& split) {
  NodeSnapshot& sibling = split.sibling;
  sibling.copies = PlaceSibling(node, sibling.id);
  sibling.pc = sibling.copies.empty() ? p_.id() : sibling.copies.front();

  const bool was_top = !node.parent().valid();
  if (was_top) {
    // Grow first so the sibling is born knowing its parent.
    GrowNewRoot(node, split.sep, sibling.id);
  }
  sibling.parent = node.parent();
  DistributeCopies(sibling);

  if (!was_top) {
    const NodeId parent_target = SplitParentTarget(node, split.sep);
    UpdateId u = NewRegisteredUpdate(history::UpdateClass::kInsert,
                                     parent_target, split.sep,
                                     sibling.id.v);
    Action insert;
    insert.kind = ActionKind::kInsert;
    insert.update = u;
    insert.key = split.sep;
    insert.new_node = sibling.id;
    insert.origin = p_.id();
    RouteToNode(parent_target, node.level() + 1, std::move(insert));
  }
}

void BaseProtocol::GrowNewRoot(Node& old_top, Key sep, NodeId sibling) {
  LAZYTREE_CHECK(old_top.range().low == 0)
      << "top node must cover the key space";
  NodeId root_id = p_.NewNodeId();
  const int32_t root_level = old_top.level() + 1;

  NodeSnapshot root;
  root.id = root_id;
  root.level = root_level;
  root.range = KeyRange{0, kKeyInfinity};
  root.entries = {Entry{0, old_top.id().v}, Entry{sep, sibling.v}};
  root.copies = PlaceNewNode(root_id, root_level);
  root.pc = root.copies.empty() ? p_.id() : root.copies.front();

  old_top.set_parent(root_id);
  DistributeCopies(root);

  // Lazily announce the new top to everyone. Stale hints stay correct:
  // the old top still right-links across the whole key space.
  Action hint;
  hint.kind = ActionKind::kRootHint;
  hint.new_node = root_id;
  hint.level = root_level;
  for (ProcessorId dest = 0; dest < p_.cluster_size(); ++dest) {
    if (dest == p_.id()) {
      p_.store().SetRootHint(root_id, root_level);
    } else {
      p_.out().SendAction(dest, hint);
    }
  }
}

}  // namespace lazytree
