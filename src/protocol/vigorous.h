// VigorousProtocol: the available-copies baseline the paper argues against
// (§1, §3: "we can ensure the coherence of the copies by serializing the
// actions on the nodes ... however, we want to be lazy").
//
// Every update on a node — insert or split — executes as a synchronous
// round at the node's PC: lock every copy (an AAS that also blocks reads),
// gather acks, apply everywhere, release. Cost: 3·|copies(n)| messages per
// *insert* (vs. |copies(n)|-1 commuting relays for lazy updates) plus a
// full round-trip of blocking for reads and writes alike. Benches C2/C3
// quantify the gap.

#ifndef LAZYTREE_PROTOCOL_VIGOROUS_H_
#define LAZYTREE_PROTOCOL_VIGOROUS_H_

#include <deque>
#include <unordered_map>

#include "src/protocol/fixed.h"

namespace lazytree {

class VigorousProtocol : public FixedCopiesProtocol {
 public:
  using FixedCopiesProtocol::FixedCopiesProtocol;

  uint64_t rounds_executed() const { return rounds_executed_; }

 protected:
  void HandleInitialInsert(Action a) override;
  void HandleInitialDelete(Action a) override;
  void HandleRelayedInsert(Action a) override { Unexpected(a); }
  void HandleRelayedDelete(Action a) override { Unexpected(a); }
  void HandleVigorous(Action a) override;
  void InitiateSplit(Node& n) override;
  bool ReadBlocked(Node& n) override { return p_.aas().Active(n.id()); }
  void OnPcOutOfRangeRelay(Node& n, Action a) override;

 private:
  /// Marker kind used for queued split rounds.
  static constexpr ActionKind kSplitRound = ActionKind::kVigorousApplySplit;

  struct NodeQueue {
    bool busy = false;
    uint32_t acks = 0;
    Action current;
    std::deque<Action> pending;
    bool split_queued = false;
  };

  void PumpQueue(Node& n);
  void ApplyRound(Node& n);
  void FinishRound(Node& n);

  std::unordered_map<NodeId, NodeQueue> rounds_;
  uint64_t rounds_executed_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_PROTOCOL_VIGOROUS_H_
