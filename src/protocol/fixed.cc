#include "src/protocol/fixed.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lazytree {

std::vector<ProcessorId> FixedCopySet(NodeId id, int32_t level,
                                      uint32_t cluster_size,
                                      uint32_t interior_replication,
                                      uint32_t leaf_replication) {
  uint64_t h = id.v;
  h = SplitMix64(h);  // scatter node ids across processors
  uint32_t r;
  if (level == 0) {
    r = std::min(std::max(leaf_replication, 1u), cluster_size);
  } else {
    r = interior_replication == 0
            ? cluster_size
            : std::min(interior_replication, cluster_size);
  }
  std::vector<ProcessorId> copies;
  copies.reserve(r);
  ProcessorId first = static_cast<ProcessorId>(h % cluster_size);
  for (uint32_t i = 0; i < r; ++i) {
    copies.push_back((first + i) % cluster_size);
  }
  return copies;
}

ProcessorId FixedCopiesProtocol::ResolveDest(NodeId id, int32_t level) {
  LAZYTREE_CHECK(level >= 0) << "fixed routing needs the level for "
                             << id.ToString();
  std::vector<ProcessorId> copies = PlaceNewNode(id, level);
  if (std::find(copies.begin(), copies.end(), p_.id()) != copies.end()) {
    return p_.id();
  }
  // Spread load across the replicas.
  return copies[rng_.Below(copies.size())];
}

void FixedCopiesProtocol::HandleMissing(Action a) {
  constexpr uint32_t kReRouteHopCap = 64;
  const bool client_path =
      a.kind == ActionKind::kSearch || a.kind == ActionKind::kInsertOp ||
      a.kind == ActionKind::kDeleteOp || a.kind == ActionKind::kScanOp ||
      a.kind == ActionKind::kInsert || a.kind == ActionKind::kDelete;
  if (p_.crash_epoch() > 0 && client_path && a.level >= 0 &&
      a.hops < kReRouteHopCap) {
    std::vector<ProcessorId> copies = PlaceNewNode(a.target, a.level);
    for (size_t i = 0; i < copies.size(); ++i) {
      if (copies[i] != p_.id()) continue;
      // Deterministic rotation to the next replica in the fixed set.
      ProcessorId next = copies[(i + 1) % copies.size()];
      if (next == p_.id()) break;  // single copy: nobody else to ask
      ++a.hops;
      p_.out().SendAction(next, std::move(a));
      return;
    }
  }
  BaseProtocol::HandleMissing(std::move(a));
}

void FixedCopiesProtocol::HandleInitialInsert(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  ++a.hops;
  if (a.key >= n->right_low()) {
    // The node split before the insert arrived: chase the right link,
    // still as an *initial* insert (§4.1 insert step 1).
    RouteToNode(n->right(), n->level(), std::move(a));
    return;
  }
  LAZYTREE_CHECK(a.key >= n->range().low)
      << "initial insert left of node: " << a.ToString();
  if (InsertBlocked(*n)) {
    p_.aas().Defer(n->id(), std::move(a));  // re-enqueued at split_end
    return;
  }
  PerformInitialInsert(*n, std::move(a));
}

void FixedCopiesProtocol::PerformInitialInsert(Node& n, Action a) {
  if (a.update == kNoUpdate) {
    // A client insert reaching its leaf: this is the issue point.
    a.update = NewRegisteredUpdate(history::UpdateClass::kInsert, n.id(),
                                   a.key, a.value);
  }
  const uint64_t payload = n.is_leaf() ? a.value : a.new_node.v;
  const bool inserted = n.Insert(a.key, payload, p_.config().upsert);
  RecordUpdate(n, history::UpdateClass::kInsert, a.update,
               /*initial=*/true, /*rewritten=*/false, a.key, payload,
               a.new_node, 0, n.version());

  // Relay to the other copies (the lazy update). Relays carry no client
  // context; the client is answered by this initial execution alone.
  if (n.copies().size() > 1) {
    Action relay = a;
    relay.kind = ActionKind::kRelayedInsert;
    relay.op = kNoOp;
    relay.origin = p_.id();
    relay.version = n.version();
    p_.out().Broadcast(n.copies(), relay);
  }

  Reply(a, inserted || p_.config().upsert ? Action::Rc::kOk
                                          : Action::Rc::kExists,
        0);

  if (n.Overflowing(p_.config().max_entries) && n.pc() == p_.id()) {
    InitiateSplit(n);
  }
}

void FixedCopiesProtocol::HandleInitialDelete(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  ++a.hops;
  if (a.key >= n->right_low()) {
    RouteToNode(n->right(), n->level(), std::move(a));
    return;
  }
  LAZYTREE_CHECK(a.key >= n->range().low)
      << "initial delete left of node: " << a.ToString();
  if (InsertBlocked(*n)) {
    // Deletes conflict with splits exactly like inserts do.
    p_.aas().Defer(n->id(), std::move(a));
    return;
  }
  PerformInitialDelete(*n, std::move(a));
}

void FixedCopiesProtocol::PerformInitialDelete(Node& n, Action a) {
  if (a.update == kNoUpdate) {
    a.update = NewRegisteredUpdate(history::UpdateClass::kDelete, n.id(),
                                   a.key, 0);
  }
  const bool removed = n.Remove(a.key);
  RecordUpdate(n, history::UpdateClass::kDelete, a.update,
               /*initial=*/true, /*rewritten=*/false, a.key, 0,
               kInvalidNode, 0, n.version());
  if (n.copies().size() > 1) {
    Action relay = a;
    relay.kind = ActionKind::kRelayedDelete;
    relay.op = kNoOp;
    relay.origin = p_.id();
    relay.version = n.version();
    p_.out().Broadcast(n.copies(), relay);
  }
  Reply(a, removed ? Action::Rc::kOk : Action::Rc::kNotFound, 0);
  // Free-at-empty: an emptied node stays in the structure ([11]).
}

void FixedCopiesProtocol::HandleRelayedDelete(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    HandleMissing(std::move(a));
    return;
  }
  if (n->Contains(a.key)) {
    n->Remove(a.key);
    RecordUpdate(*n, history::UpdateClass::kDelete, a.update,
                 /*initial=*/false, /*rewritten=*/false, a.key, 0,
                 kInvalidNode, 0, n->version());
    return;
  }
  LAZYTREE_CHECK(a.key >= n->range().low)
      << "relayed delete left of node: " << a.ToString();
  if (n->pc() == p_.id()) {
    OnPcOutOfRangeRelay(*n, std::move(a));
  } else {
    RecordUpdate(*n, history::UpdateClass::kDelete, a.update,
                 /*initial=*/false, /*rewritten=*/true, a.key, 0,
                 kInvalidNode, 0, n->version());
  }
}

void FixedCopiesProtocol::HandleRelayedInsert(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    // Relays are addressed directly to copy holders; if ours is not
    // installed yet the kCreateNode is in flight — park until it lands.
    HandleMissing(std::move(a));
    return;
  }
  const uint64_t payload = n->is_leaf() ? a.value : a.new_node.v;
  if (n->Contains(a.key)) {
    n->Insert(a.key, payload, p_.config().upsert);
    RecordUpdate(*n, history::UpdateClass::kInsert, a.update,
                 /*initial=*/false, /*rewritten=*/false, a.key, payload,
                 a.new_node, 0, n->version());
    if (n->Overflowing(p_.config().max_entries) && n->pc() == p_.id()) {
      InitiateSplit(*n);
    }
    return;
  }
  LAZYTREE_CHECK(a.key >= n->range().low)
      << "relayed insert left of node: " << a.ToString();
  if (n->pc() == p_.id()) {
    OnPcOutOfRangeRelay(*n, std::move(a));
  } else {
    // A split this copy already applied moved the key out; the update is
    // logically reordered before that split and has no local effect
    // (§4.1: "the action is discarded") — but it stays in the history.
    RecordUpdate(*n, history::UpdateClass::kInsert, a.update,
                 /*initial=*/false, /*rewritten=*/true, a.key, payload,
                 a.new_node, 0, n->version());
  }
}

void FixedCopiesProtocol::ApplyRelayedSplit(Node& n, const Action& a) {
  n.ApplySplit(a.sep, a.new_node);
  if (a.version > n.version()) n.set_version(a.version);
  RecordUpdate(n, history::UpdateClass::kSplit, a.update,
               /*initial=*/false, /*rewritten=*/false, 0, 0, a.new_node,
               a.sep, a.version);
}

}  // namespace lazytree
