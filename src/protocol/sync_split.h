// Synchronous split protocol (§4.1.1).
//
// Splits run under an AAS (the distributed lock analogue): the PC sends
// split_start to every copy, copies block *initial* inserts (searches and
// relayed inserts keep flowing) and acknowledge, and once all acks arrive
// the PC performs the half-split and broadcasts split_end. The ordering
// of inserts vs. splits at the PC becomes the standard every copy obeys.
// Cost: 3·|copies(n)| messages per split, and initial inserts stall for a
// round trip — exactly what the semi-synchronous protocol eliminates.

#ifndef LAZYTREE_PROTOCOL_SYNC_SPLIT_H_
#define LAZYTREE_PROTOCOL_SYNC_SPLIT_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/protocol/fixed.h"

namespace lazytree {

class SyncSplitProtocol : public FixedCopiesProtocol {
 public:
  using FixedCopiesProtocol::FixedCopiesProtocol;

  /// Initial inserts deferred by split AAS so far (tests, bench F5).
  uint64_t deferred_inserts() const { return deferred_inserts_; }

  void MixState(Fingerprint& fp) const override {
    BaseProtocol::MixState(fp);
    std::vector<std::pair<NodeId, uint32_t>> acks(pending_acks_.begin(),
                                                  pending_acks_.end());
    std::sort(acks.begin(), acks.end());
    fp.Mix(acks.size());
    for (const auto& [id, count] : acks) {
      fp.Mix(id.v);
      fp.Mix(count);
    }
  }

 protected:
  void InitiateSplit(Node& n) override;
  bool InsertBlocked(Node& n) override;
  void HandleSplitStart(Action a) override;
  void HandleSplitAck(Action a) override;
  void HandleSplitEnd(Action a) override;
  void OnPcOutOfRangeRelay(Node& n, Action a) override;

 private:
  /// All acks in: perform the half-split at the PC and release everyone.
  void PerformSyncSplit(Node& n);

  std::unordered_map<NodeId, uint32_t> pending_acks_;
  uint64_t deferred_inserts_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_PROTOCOL_SYNC_SPLIT_H_
