// Mobile single-copy protocol (§4.2).
//
// Every node has exactly one copy, but nodes migrate between processors
// (data balancing, [14]). Histories are vacuously compatible; the work is
// in *finding* nodes and keeping the ordered link-change actions straight:
//
//   * every node carries a version number, incremented by splits and
//     migrations; link-changes apply only when their version exceeds the
//     link's recorded version (stale ones are rewritten into the past);
//   * a migrating node leaves a forwarding address — an optimization
//     only: addresses can be garbage-collected at any time, after which
//     misdirected actions recover via the closest local node, exactly
//     like misnavigated operations in the B-link protocol;
//   * a processor holding no useful node routes the action to the root.

#ifndef LAZYTREE_PROTOCOL_MOBILE_H_
#define LAZYTREE_PROTOCOL_MOBILE_H_

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/protocol/base.h"

namespace lazytree {

class MobileProtocol : public BaseProtocol {
 public:
  using BaseProtocol::BaseProtocol;

  uint64_t migrations_completed() const { return migrations_completed_; }
  uint64_t recovery_routes() const { return recovery_routes_; }
  uint64_t forward_hits() const { return forward_hits_; }

  /// Test-only: drops every cached node address, simulating a processor
  /// whose location knowledge is entirely stale/absent.
  void TEST_ForgetAddresses() { addr_.clear(); }

  void MixState(Fingerprint& fp) const override {
    BaseProtocol::MixState(fp);
    std::vector<std::pair<NodeId, AddrEntry>> addrs(addr_.begin(),
                                                    addr_.end());
    std::sort(addrs.begin(), addrs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    fp.Mix(addrs.size());
    for (const auto& [id, entry] : addrs) {
      fp.Mix(id.v);
      fp.Mix(entry.host);
      fp.Mix(entry.version);
    }
  }

 protected:
  std::vector<ProcessorId> PlaceNewNode(NodeId id, int32_t level) override {
    (void)id;
    (void)level;
    return {p_.id()};  // §4.2: splits place the sibling locally
  }
  ProcessorId ResolveDest(NodeId id, int32_t level) override;
  void HandleMissing(Action a) override;

  void HandleInitialInsert(Action a) override;
  void HandleInitialDelete(Action a) override;
  void HandleLinkChange(Action a) override;
  void HandleMigrateNode(Action a) override;
  void HandleMigrateAck(Action a) override;

  /// Performs a local half-split (§4.2: sibling on the same processor,
  /// version + 1), issues the parent insert and the left-link change to
  /// the old right neighbor, and optionally sheds the new leaf.
  virtual void LocalSplit(Node& n);

  /// Sends address refreshes + sibling link-changes after a migration
  /// lands (§4.2 step 3: "a link-change action is sent to all known
  /// neighbors").
  void AnnounceMigration(Node& n, Version version);

  /// Location cache, version-gated so stale news never overwrites fresh.
  void NoteAddr(NodeId id, ProcessorId host, Version version);

  /// Registers + sends an ordered sibling link-change.
  void SendLinkChange(NodeId target_node, LinkKind link, NodeId new_node,
                      Version version, Key route_key, int32_t level);

  /// Applies a link-change at a local copy with §4.2 version gating;
  /// stale changes are recorded as rewritten into the past.
  void ApplyGatedLinkChange(Node& m, const Action& a, bool initial);

  /// Local leaf population (shedding heuristic input).
  size_t LocalLeafCount() const;

  /// Hooks for the variable-copies protocol (§4.3): called after a
  /// migrated node is installed here / shipped away from here.
  virtual void OnMigratedNodeInstalled(Node& n) { (void)n; }
  virtual void OnNodeMigratedAway(const NodeSnapshot& snapshot) {
    (void)snapshot;
  }

  struct AddrEntry {
    ProcessorId host = kInvalidProcessor;
    Version version = 0;
  };
  std::unordered_map<NodeId, AddrEntry> addr_;

 private:
  uint64_t migrations_completed_ = 0;
  uint64_t recovery_routes_ = 0;
  uint64_t forward_hits_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_PROTOCOL_MOBILE_H_
