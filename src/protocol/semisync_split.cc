#include "src/protocol/semisync_split.h"

#include "src/util/logging.h"

namespace lazytree {

void SemiSyncSplitProtocol::InitiateSplit(Node& n) {
  UpdateId u = NewRegisteredUpdate(history::UpdateClass::kSplit, n.id(),
                                   /*key=*/0, /*value=*/0);
  Node::SplitResult split = n.HalfSplit(p_.NewNodeId());
  n.bump_version();  // links into this node are now one version stale
  RecordUpdate(n, history::UpdateClass::kSplit, u, /*initial=*/true,
               /*rewritten=*/false, 0, 0, split.sibling.id, split.sep,
               n.version());

  // One relayed-split message per remaining copy — the optimal cost the
  // paper claims for this protocol.
  if (n.copies().size() > 1) {
    Action relay;
    relay.kind = ActionKind::kRelayedSplit;
    relay.target = n.id();
    relay.update = u;
    relay.sep = split.sep;
    relay.new_node = split.sibling.id;
    relay.version = n.version();
    relay.origin = p_.id();
    p_.out().Broadcast(n.copies(), relay);
  }

  FinishSplit(n, split);
}

void SemiSyncSplitProtocol::HandleRelayedSplit(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    HandleMissing(std::move(a));
    return;
  }
  ApplyRelayedSplit(*n, a);
}

void SemiSyncSplitProtocol::OnPcOutOfRangeRelay(Node& n, Action a) {
  // Rewrite history (§4.1.2): pretend the update arrived before the split
  // it lost the race to. It has no effect on this node's value, but the
  // split's subsequent actions must now include delivering the key to the
  // node that owns it — so forward a fresh initial action to the right
  // sibling (the same logical update: the UpdateId is preserved).
  const bool is_delete = a.kind == ActionKind::kRelayedDelete;
  RecordUpdate(n,
               is_delete ? history::UpdateClass::kDelete
                         : history::UpdateClass::kInsert,
               a.update, /*initial=*/false, /*rewritten=*/true, a.key,
               n.is_leaf() ? a.value : a.new_node.v, a.new_node, 0,
               n.version());
  Action forward = std::move(a);
  forward.kind = is_delete ? ActionKind::kDelete : ActionKind::kInsert;
  forward.op = kNoOp;  // the client was answered at the first execution
  forward.origin = p_.id();
  RouteToNode(n.right(), n.level(), std::move(forward));
}

}  // namespace lazytree
