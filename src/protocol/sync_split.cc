#include "src/protocol/sync_split.h"

#include "src/util/logging.h"

namespace lazytree {

bool SyncSplitProtocol::InsertBlocked(Node& n) {
  const bool blocked = p_.aas().Active(n.id());
  if (blocked) ++deferred_inserts_;
  return blocked;
}

void SyncSplitProtocol::InitiateSplit(Node& n) {
  if (p_.aas().Active(n.id())) return;  // a split is already under way
  p_.aas().Begin(n.id());               // block local initial inserts too
  if (n.copies().size() <= 1) {
    PerformSyncSplit(n);
    return;
  }
  pending_acks_[n.id()] = static_cast<uint32_t>(n.copies().size() - 1);
  Action start;
  start.kind = ActionKind::kSplitStart;
  start.target = n.id();
  start.level = n.level();
  start.origin = p_.id();
  p_.out().Broadcast(n.copies(), start);
}

void SyncSplitProtocol::HandleSplitStart(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    HandleMissing(std::move(a));
    return;
  }
  // Block initial inserts until split_end; relayed inserts and searches
  // keep flowing (the AAS conflicts only with initial inserts).
  p_.aas().Begin(n->id());
  Action ack;
  ack.kind = ActionKind::kSplitAck;
  ack.target = n->id();
  ack.origin = p_.id();
  p_.out().SendAction(a.origin, std::move(ack));
}

void SyncSplitProtocol::HandleSplitAck(Action a) {
  auto it = pending_acks_.find(a.target);
  LAZYTREE_CHECK(it != pending_acks_.end())
      << "stray split ack for " << a.target.ToString();
  if (--it->second > 0) return;
  pending_acks_.erase(it);
  Node* n = Local(a.target);
  LAZYTREE_CHECK(n != nullptr) << "PC lost node mid-split";
  PerformSyncSplit(*n);
}

void SyncSplitProtocol::PerformSyncSplit(Node& n) {
  UpdateId u = NewRegisteredUpdate(history::UpdateClass::kSplit, n.id(),
                                   /*key=*/0, /*value=*/0);
  Node::SplitResult split = n.HalfSplit(p_.NewNodeId());
  n.bump_version();
  RecordUpdate(n, history::UpdateClass::kSplit, u, /*initial=*/true,
               /*rewritten=*/false, 0, 0, split.sibling.id, split.sep,
               n.version());

  if (n.copies().size() > 1) {
    Action end;
    end.kind = ActionKind::kSplitEnd;
    end.target = n.id();
    end.update = u;
    end.sep = split.sep;
    end.new_node = split.sibling.id;
    end.version = n.version();
    end.origin = p_.id();
    p_.out().Broadcast(n.copies(), end);
  }

  FinishSplit(n, split);

  // Release the local AAS and replay the inserts it parked.
  for (Action& deferred : p_.aas().End(n.id())) {
    p_.out().SendLocal(std::move(deferred));
  }
}

void SyncSplitProtocol::HandleSplitEnd(Action a) {
  Node* n = Local(a.target);
  LAZYTREE_CHECK(n != nullptr) << "split_end for unknown node";
  ApplyRelayedSplit(*n, a);
  for (Action& deferred : p_.aas().End(n->id())) {
    p_.out().SendLocal(std::move(deferred));
  }
}

void SyncSplitProtocol::OnPcOutOfRangeRelay(Node& n, Action a) {
  // The AAS ordering proof (Theorem 1) guarantees relayed inserts reach
  // the PC before the split that would move them — so this can only be a
  // protocol bug. Fail loudly.
  LAZYTREE_CHECK(false) << "sync protocol: out-of-range relay at PC: "
                        << a.ToString() << " at " << n.ToString();
}

}  // namespace lazytree
