#include "src/protocol/varcopies.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lazytree {

std::vector<ProcessorId> VarCopiesProtocol::PlaceNewNode(NodeId id,
                                                         int32_t level) {
  (void)id;
  if (level == 0) return {p_.id()};  // leaves are single-copy and mobile
  // Interior nodes created outside a split are new roots: replicated
  // everywhere (Fig. 2), with the creator as PC.
  std::vector<ProcessorId> copies;
  copies.push_back(p_.id());
  for (ProcessorId other = 0; other < p_.cluster_size(); ++other) {
    if (other != p_.id()) copies.push_back(other);
  }
  return copies;
}

std::vector<ProcessorId> VarCopiesProtocol::PlaceSibling(
    const Node& splitting, NodeId sibling_id) {
  (void)sibling_id;
  if (splitting.is_leaf()) return {p_.id()};
  // The interior sibling inherits the split node's membership; this PC
  // (which performs the split) becomes the sibling's PC.
  std::vector<ProcessorId> copies;
  copies.push_back(p_.id());
  for (ProcessorId member : splitting.copies()) {
    if (member != p_.id()) copies.push_back(member);
  }
  return copies;
}

NodeId VarCopiesProtocol::SplitParentTarget(const Node& node, Key sep) {
  // Fig.-2 invariant: we replicate the whole path above our leaves, so a
  // local copy of the geometric parent normally exists — using it keeps
  // the pointer insert local even when the stored parent pointer is
  // stale (e.g. a migrated leaf created under a long-split ancestor).
  NodeId best = node.parent();
  p_.store().ForEach([&](const Node& cand) {
    if (cand.level() == node.level() + 1 && cand.Contains(sep)) {
      best = cand.id();
    }
  });
  return best;
}

void VarCopiesProtocol::HandleInitialInsert(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  ++a.hops;
  const int32_t want = std::max(a.level, 0);
  if (a.key >= n->right_low()) {
    RouteToNode(n->right(), n->level(), std::move(a));
    return;
  }
  if (n->level() > want) {
    NodeId child = n->ChildFor(a.key);
    RouteToNode(child, n->level() - 1, std::move(a));
    return;
  }
  LAZYTREE_CHECK(n->level() == want && a.key >= n->range().low)
      << "misrouted initial insert: " << a.ToString();
  PerformInsert(*n, std::move(a));
}

void VarCopiesProtocol::PerformInsert(Node& n, Action a) {
  if (a.update == kNoUpdate) {
    a.update = NewRegisteredUpdate(history::UpdateClass::kInsert, n.id(),
                                   a.key, a.value);
  }
  const uint64_t payload = n.is_leaf() ? a.value : a.new_node.v;
  const bool inserted = n.Insert(a.key, payload, p_.config().upsert);
  RecordUpdate(n, history::UpdateClass::kInsert, a.update,
               /*initial=*/true, /*rewritten=*/false, a.key, payload,
               a.new_node, 0, n.version());

  // §4.3 insert step 1: relay to every copy we are aware of, with this
  // copy's version number attached.
  if (n.copies().size() > 1) {
    Action relay = a;
    relay.kind = ActionKind::kRelayedInsert;
    relay.op = kNoOp;
    relay.origin = p_.id();
    relay.version = n.version();
    p_.out().Broadcast(n.copies(), relay);
  }

  Reply(a, inserted || p_.config().upsert ? Action::Rc::kOk
                                          : Action::Rc::kExists,
        0);

  if (n.Overflowing(p_.config().max_entries)) {
    if (n.is_leaf()) {
      LocalSplit(n);  // single-copy mobile leaf (§4.2)
    } else if (n.pc() == p_.id()) {
      SplitNode(n);
    }
    // A non-PC interior copy overflows into its bucket; the PC splits
    // when the relay reaches it.
  }
}

void VarCopiesProtocol::HandleInitialDelete(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  ++a.hops;
  const int32_t want = std::max(a.level, 0);
  if (a.key >= n->right_low()) {
    RouteToNode(n->right(), n->level(), std::move(a));
    return;
  }
  if (n->level() > want) {
    NodeId child = n->ChildFor(a.key);
    RouteToNode(child, n->level() - 1, std::move(a));
    return;
  }
  if (a.update == kNoUpdate) {
    a.update = NewRegisteredUpdate(history::UpdateClass::kDelete, n->id(),
                                   a.key, 0);
  }
  const bool removed = n->Remove(a.key);
  RecordUpdate(*n, history::UpdateClass::kDelete, a.update,
               /*initial=*/true, /*rewritten=*/false, a.key, 0,
               kInvalidNode, 0, n->version());
  if (n->copies().size() > 1) {
    Action relay = a;
    relay.kind = ActionKind::kRelayedDelete;
    relay.op = kNoOp;
    relay.origin = p_.id();
    relay.version = n->version();
    p_.out().Broadcast(n->copies(), relay);
  }
  Reply(a, removed ? Action::Rc::kOk : Action::Rc::kNotFound, 0);
}

void VarCopiesProtocol::HandleRelayedDelete(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ParkOrDiscardRelay(std::move(a));
    return;
  }
  if (n->HasApplied(a.update)) return;  // exactly-once (see relayed insert)
  if (n->Contains(a.key)) {
    n->Remove(a.key);
    RecordUpdate(*n, history::UpdateClass::kDelete, a.update,
                 /*initial=*/false, /*rewritten=*/false, a.key, 0,
                 kInvalidNode, 0, n->version());
    if (n->pc() == p_.id()) {
      auto it = join_versions_.find(n->id());
      if (it != join_versions_.end() && !p_.config().ablate_fig6_rerelay) {
        for (const auto& [member, joined_at] : it->second) {
          if (joined_at > a.version && member != a.origin &&
              member != p_.id()) {
            ++late_joiner_rerelays_;
            p_.out().SendAction(member, a);
          }
        }
      }
    }
    return;
  }
  LAZYTREE_CHECK(a.key >= n->range().low)
      << "relayed delete left of node: " << a.ToString();
  RecordUpdate(*n, history::UpdateClass::kDelete, a.update,
               /*initial=*/false, /*rewritten=*/true, a.key, 0,
               kInvalidNode, 0, n->version());
  if (n->pc() == p_.id()) {
    auto it = join_versions_.find(n->id());
    if (it != join_versions_.end() && !p_.config().ablate_fig6_rerelay) {
      for (const auto& [member, joined_at] : it->second) {
        if (joined_at > a.version && member != a.origin &&
            member != p_.id()) {
          ++late_joiner_rerelays_;
          p_.out().SendAction(member, a);
        }
      }
    }
    Action forward = std::move(a);
    forward.kind = ActionKind::kDelete;
    forward.op = kNoOp;
    forward.origin = p_.id();
    forward.level = n->level();
    RouteToNode(n->right(), n->level(), std::move(forward));
  }
}

void VarCopiesProtocol::ParkOrDiscardRelay(Action a) {
  if (!unjoined_.contains(a.target) || pending_joins_.contains(a.target)) {
    // A kCreateNode or join grant for this node is (or may be) in
    // flight; the relay belongs after that seed. Park until it lands.
    BaseProtocol::HandleMissing(std::move(a));
    return;
  }
  ++discarded_relays_;  // §4.3: unjoined processors discard relays
}

void VarCopiesProtocol::HandleRelayedInsert(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ParkOrDiscardRelay(std::move(a));
    return;
  }
  if (n->HasApplied(a.update)) {
    // Already folded into this copy (a stale direct relay from an origin
    // whose member list predates our unjoin/rejoin, or a relay whose
    // update rode in on our seed snapshot). Dropping keeps application
    // exactly-once; with update tracking off, the re-apply below is
    // value-idempotent anyway.
    return;
  }
  const uint64_t payload = n->is_leaf() ? a.value : a.new_node.v;
  if (n->Contains(a.key)) {
    n->Insert(a.key, payload, p_.config().upsert);
    RecordUpdate(*n, history::UpdateClass::kInsert, a.update,
                 /*initial=*/false, /*rewritten=*/false, a.key, payload,
                 a.new_node, 0, n->version());
    if (n->pc() == p_.id()) {
      // §4.3 insert step 3a: re-relay to members that joined after the
      // version attached to this update (Fig. 6).
      auto it = join_versions_.find(n->id());
      if (it != join_versions_.end() && !p_.config().ablate_fig6_rerelay) {
        for (const auto& [member, joined_at] : it->second) {
          if (joined_at > a.version && member != a.origin &&
              member != p_.id()) {
            ++late_joiner_rerelays_;
            p_.out().SendAction(member, a);
          }
        }
      }
      if (n->Overflowing(p_.config().max_entries) && !n->is_leaf()) {
        SplitNode(*n);
      }
    }
    return;
  }
  LAZYTREE_CHECK(a.key >= n->range().low)
      << "relayed insert left of node: " << a.ToString();
  if (n->pc() == p_.id()) {
    // §4.3 insert step 3b (the §4.1.2 history rewrite): forward to the
    // node that owns the key now.
    RecordUpdate(*n, history::UpdateClass::kInsert, a.update,
                 /*initial=*/false, /*rewritten=*/true, a.key, payload,
                 a.new_node, 0, n->version());
    // Late joiners still need the relay (they record the same rewrite) —
    // their seed snapshot predates this update just like ours did.
    auto it = join_versions_.find(n->id());
    if (it != join_versions_.end() && !p_.config().ablate_fig6_rerelay) {
      for (const auto& [member, joined_at] : it->second) {
        if (joined_at > a.version && member != a.origin &&
            member != p_.id()) {
          ++late_joiner_rerelays_;
          p_.out().SendAction(member, a);
        }
      }
    }
    Action forward = std::move(a);
    forward.kind = ActionKind::kInsert;
    forward.op = kNoOp;
    forward.origin = p_.id();
    forward.level = n->level();
    RouteToNode(n->right(), n->level(), std::move(forward));
  } else {
    RecordUpdate(*n, history::UpdateClass::kInsert, a.update,
                 /*initial=*/false, /*rewritten=*/true, a.key, payload,
                 a.new_node, 0, n->version());
  }
}

void VarCopiesProtocol::SplitNode(Node& n) {
  UpdateId u = NewRegisteredUpdate(history::UpdateClass::kSplit, n.id(),
                                   0, 0);
  Node::SplitResult split = n.HalfSplit(p_.NewNodeId());
  n.bump_version();
  RecordUpdate(n, history::UpdateClass::kSplit, u, /*initial=*/true,
               /*rewritten=*/false, 0, 0, split.sibling.id, split.sep,
               n.version());
  if (n.copies().size() > 1) {
    Action relay;
    relay.kind = ActionKind::kRelayedSplit;
    relay.target = n.id();
    relay.update = u;
    relay.sep = split.sep;
    relay.new_node = split.sibling.id;
    relay.version = n.version();
    relay.origin = p_.id();
    p_.out().Broadcast(n.copies(), relay);
  }
  // §4.3 split step 1: link-change to the PC of the old right sibling.
  if (split.sibling.right.valid()) {
    SendLinkChange(split.sibling.right, LinkKind::kLeft, split.sibling.id,
                   split.sibling.version, split.sibling.right_low,
                   n.level());
  }
  FinishSplit(n, split);
}

void VarCopiesProtocol::HandleRelayedSplit(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ParkOrDiscardRelay(std::move(a));
    return;
  }
  if (a.version <= n->version()) {
    // PC events (splits, joins, unjoins) reach a copy in version order —
    // through relays or its seed snapshot — so an event at or below the
    // copy's version is already reflected. (Happens after rejoin races.)
    return;
  }
  const NodeId id = n->id();
  n->ApplySplit(a.sep, a.new_node);
  if (a.version > n->version()) n->set_version(a.version);
  RecordUpdate(*n, history::UpdateClass::kSplit, a.update,
               /*initial=*/false, /*rewritten=*/false, 0, 0, a.new_node,
               a.sep, a.version);
  // The split may have moved every local child under the sibling: this
  // copy might no longer be on any local leaf's path.
  MaybeUnjoinAncestors(id);
}

void VarCopiesProtocol::HandleCreateNode(Action a) {
  const NodeId id = a.snapshot.id;
  const int32_t level = a.snapshot.level;
  unjoined_.erase(id);
  BaseProtocol::HandleCreateNode(std::move(a));
  // Interior siblings arrive with inherited membership; keep the copy
  // only if some local leaf actually lives under it (Fig. 2 policy).
  if (level > 0) MaybeUnjoinAncestors(id);
}

void VarCopiesProtocol::HandleLinkChange(Action a) {
  NoteAddr(a.new_node, a.origin, a.version);
  if (a.link == LinkKind::kParent) return;  // cache refresh only

  Node* m = Local(a.target);
  if (m == nullptr) {
    if (a.kind == ActionKind::kRelayedLinkChange) {
      ParkOrDiscardRelay(std::move(a));
      return;
    }
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  if (a.kind == ActionKind::kRelayedLinkChange) {
    ApplyGatedLinkChange(*m, a, /*initial=*/false);
    return;
  }
  // Initial link-change: geometry corrections first, as in §4.2.
  if (a.key >= m->right_low()) {
    RouteToNode(m->right(), m->level(), std::move(a));
    return;
  }
  if (m->level() > a.level) {
    NodeId child = m->ChildFor(a.key);
    RouteToNode(child, m->level() - 1, std::move(a));
    return;
  }
  if (m->copies().size() > 1) {
    // Replicated neighbor: the change registers at its PC and relays to
    // every copy, so copy histories stay uniform.
    if (m->pc() != p_.id()) {
      p_.out().SendAction(m->pc(), std::move(a));
      return;
    }
    Action relay = a;
    relay.kind = ActionKind::kRelayedLinkChange;
    // Keep the original `origin`: it advertises new_node's host.
    p_.out().Broadcast(m->copies(), relay);
  }
  ApplyGatedLinkChange(*m, a, /*initial=*/true);
}

void VarCopiesProtocol::HandleJoin(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));  // id-bound: creator chase only
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  if (n->pc() != p_.id()) {
    p_.out().SendAction(n->pc(), std::move(a));  // the PC registers joins
    return;
  }
  if (n->HasCopy(a.origin)) return;  // duplicate request

  UpdateId u = NewRegisteredUpdate(history::UpdateClass::kMembership,
                                   n->id(), /*key=*/a.origin, /*value=*/1);
  n->bump_version();
  n->AddCopy(a.origin);
  join_versions_[n->id()][a.origin] = n->version();
  RecordUpdate(*n, history::UpdateClass::kMembership, u, /*initial=*/true,
               /*rewritten=*/false, a.origin, 1, kInvalidNode, 0,
               n->version());
  ++joins_granted_;

  // Grant: the snapshot *after* the registration, so the new copy's
  // backwards extension contains exactly the updates it will not be sent.
  Action grant;
  grant.kind = ActionKind::kJoinGrant;
  grant.target = n->id();
  grant.update = u;
  grant.version = n->version();
  grant.snapshot = n->ToSnapshot();
  grant.origin = p_.id();
  p_.out().SendAction(a.origin, std::move(grant));

  // Tell the existing members about the new one.
  Action relayed;
  relayed.kind = ActionKind::kRelayedJoin;
  relayed.target = n->id();
  relayed.update = u;
  relayed.version = n->version();
  relayed.members = {a.origin};
  relayed.origin = p_.id();
  for (ProcessorId member : n->copies()) {
    if (member != p_.id() && member != a.origin) {
      p_.out().SendAction(member, relayed);
    }
  }
}

void VarCopiesProtocol::HandleJoinGrant(Action a) {
  pending_joins_.erase(a.target);
  std::vector<Key> resume;
  if (auto it = pending_join_keys_.find(a.target);
      it != pending_join_keys_.end()) {
    resume = std::move(it->second);
    pending_join_keys_.erase(it);
  }
  if (Local(a.target) == nullptr) {
    unjoined_.erase(a.target);
    Node* n = InstallFromSnapshot(a.snapshot);
    NoteAddr(n->id(), p_.id(), n->version());
  }
  // Resume every suspended path descent through the fresh copy.
  for (Key low : resume) JoinPath(low);
}

void VarCopiesProtocol::HandleRelayedJoin(Action a) {
  Node* m = Local(a.target);
  if (m == nullptr) {
    ParkOrDiscardRelay(std::move(a));
    return;
  }
  LAZYTREE_CHECK(!a.members.empty()) << "relayed join without member";
  if (a.version <= m->version()) return;  // already reflected (see split)
  m->AddCopy(a.members[0]);
  m->set_version(a.version);
  RecordUpdate(*m, history::UpdateClass::kMembership, a.update,
               /*initial=*/false, /*rewritten=*/false, a.members[0], 1,
               kInvalidNode, 0, a.version);
}

void VarCopiesProtocol::HandleUnjoin(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  if (n->pc() != p_.id()) {
    p_.out().SendAction(n->pc(), std::move(a));
    return;
  }
  if (!n->HasCopy(a.origin)) return;  // duplicate request

  UpdateId u = NewRegisteredUpdate(history::UpdateClass::kMembership,
                                   n->id(), /*key=*/a.origin, /*value=*/0);
  n->bump_version();
  n->RemoveCopy(a.origin);
  join_versions_[n->id()].erase(a.origin);
  RecordUpdate(*n, history::UpdateClass::kMembership, u, /*initial=*/true,
               /*rewritten=*/false, a.origin, 0, kInvalidNode, 0,
               n->version());
  ++unjoins_processed_;

  Action relayed;
  relayed.kind = ActionKind::kRelayedUnjoin;
  relayed.target = n->id();
  relayed.update = u;
  relayed.version = n->version();
  relayed.members = {a.origin};
  relayed.origin = p_.id();
  for (ProcessorId member : n->copies()) {
    if (member != p_.id()) p_.out().SendAction(member, relayed);
  }
}

void VarCopiesProtocol::HandleRelayedUnjoin(Action a) {
  Node* m = Local(a.target);
  if (m == nullptr) {
    ParkOrDiscardRelay(std::move(a));
    return;
  }
  LAZYTREE_CHECK(!a.members.empty()) << "relayed unjoin without member";
  if (a.version <= m->version()) return;  // already reflected (see split)
  m->RemoveCopy(a.members[0]);
  m->set_version(a.version);
  RecordUpdate(*m, history::UpdateClass::kMembership, a.update,
               /*initial=*/false, /*rewritten=*/false, a.members[0], 0,
               kInvalidNode, 0, a.version);
}

void VarCopiesProtocol::OnMigratedNodeInstalled(Node& n) {
  // Fig.-2 invariant: owning a leaf obliges us to replicate its path.
  if (n.is_leaf()) JoinPath(n.range().low);
}

void VarCopiesProtocol::OnNodeMigratedAway(const NodeSnapshot& snapshot) {
  if (snapshot.level != 0) return;
  MaybeUnjoinAncestors(snapshot.parent);
  // Parent pointers go stale across splits; sweep everything so no copy
  // outlives the last local leaf beneath it.
  PruneAllUnneeded();
}

void VarCopiesProtocol::PruneAllUnneeded() {
  for (int pass = 0; pass < 4; ++pass) {
    std::vector<NodeId> candidates;
    p_.store().ForEach([&](const Node& n) {
      if (!n.is_leaf()) candidates.push_back(n.id());
    });
    // Low levels first: freeing a level-1 copy can strand its parent.
    std::sort(candidates.begin(), candidates.end(),
              [&](NodeId a, NodeId b) {
                return Local(a)->level() < Local(b)->level();
              });
    bool changed = false;
    for (NodeId id : candidates) {
      if (Local(id) == nullptr) continue;  // pruned via an earlier walk
      const size_t before = p_.store().size();
      MaybeUnjoinAncestors(id);
      changed |= p_.store().size() != before;
    }
    if (!changed) return;
  }
}

void VarCopiesProtocol::JoinPath(Key leaf_low) {
  // Descend from the local root copy (the root is everywhere) toward the
  // leaf, joining each interior node that is not yet local. Right links
  // are followed like any misnavigation, so stale entries and in-flight
  // parent inserts are harmless.
  Node* cur = Local(p_.store().root_hint());
  if (cur == nullptr) {
    LAZYTREE_WARN << "p" << p_.id() << " has no local root copy";
    return;
  }
  while (true) {
    NodeId next;
    if (leaf_low >= cur->right_low()) {
      next = cur->right();
    } else if (cur->level() <= 1) {
      return;  // the next step down is the leaf itself
    } else {
      next = cur->ChildFor(leaf_low);
    }
    if (Node* local = Local(next)) {
      cur = local;
      continue;
    }
    pending_join_keys_[next].push_back(leaf_low);
    if (!pending_joins_.contains(next)) {
      pending_joins_.insert(next);
      Action join;
      join.kind = ActionKind::kJoin;
      join.target = next;
      join.origin = p_.id();
      RouteToNode(next, /*level=*/-1, std::move(join));
    }
    return;  // the grant resumes this descent
  }
}

void VarCopiesProtocol::MaybeUnjoinAncestors(NodeId ancestor) {
  NodeId cur = ancestor;
  while (cur.valid()) {
    Node* m = Local(cur);
    if (m == nullptr) return;
    if (!m->parent().valid()) return;    // the root stays everywhere
    if (m->pc() == p_.id()) return;      // the PC never changes (§4.3)
    bool shelters_local_child = false;
    p_.store().ForEach([&](const Node& node) {
      if (node.level() == m->level() - 1 &&
          node.range().low >= m->range().low &&
          node.range().low < m->range().high) {
        shelters_local_child = true;
      }
    });
    if (shelters_local_child) return;
    const NodeId parent = m->parent();
    Action unjoin;
    unjoin.kind = ActionKind::kUnjoin;
    unjoin.target = cur;
    unjoin.origin = p_.id();
    p_.out().SendAction(m->pc(), std::move(unjoin));
    unjoined_.insert(cur);
    p_.RemoveNode(cur);  // relays for it are discarded from now on
    cur = parent;
  }
}

}  // namespace lazytree
