#include "src/protocol/naive.h"

#include "src/util/logging.h"

namespace lazytree {

void NaiveProtocol::OnPcOutOfRangeRelay(Node& n, Action a) {
  // Fig. 4: "The PC ignores an out-of-range relayed insert." The key is
  // now in no copy's final value and in no seed — a lost update.
  ++dropped_relays_;
  if (n.is_leaf()) ++dropped_leaf_relays_;
  LAZYTREE_DEBUG << "naive PC dropped relay " << a.ToString() << " at "
                 << n.ToString();
}

}  // namespace lazytree
