// Variable-copies protocol (§4.3) — the full dB-tree.
//
// Leaves are single-copy mobile nodes (§4.2); interior nodes are
// replicated, and processors *join* and *unjoin* a node's replication as
// leaves migrate, maintaining the Fig.-2 policy: a processor that stores a
// leaf stores (a copy of) every node on the path from the root to that
// leaf; the root is replicated everywhere. The PC of a node never changes.
//
// The protocol combines:
//   * semi-synchronous lazy splits for replicated interior nodes (§4.1.2);
//   * version numbers + link-changes + forwarding/recovery for mobile
//     leaves (§4.2);
//   * join/unjoin registration at the PC. Every registration increments
//     the node's version; the PC remembers each member's join version and
//     re-relays any insert whose attached version predates a member's
//     join — this closes the Fig.-6 incomplete-history race (a relayed
//     insert that was in flight while the join happened reaches the new
//     copy exactly once).

#ifndef LAZYTREE_PROTOCOL_VARCOPIES_H_
#define LAZYTREE_PROTOCOL_VARCOPIES_H_

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/protocol/mobile.h"

namespace lazytree {

class VarCopiesProtocol : public MobileProtocol {
 public:
  using MobileProtocol::MobileProtocol;

  uint64_t joins_granted() const { return joins_granted_; }
  uint64_t unjoins_processed() const { return unjoins_processed_; }
  uint64_t late_joiner_rerelays() const { return late_joiner_rerelays_; }
  uint64_t discarded_relays() const { return discarded_relays_; }

  void MixState(Fingerprint& fp) const override {
    MobileProtocol::MixState(fp);
    std::vector<NodeId> jv;
    jv.reserve(join_versions_.size());
    for (const auto& [id, members] : join_versions_) jv.push_back(id);
    std::sort(jv.begin(), jv.end());
    fp.Mix(jv.size());
    for (NodeId id : jv) {
      fp.Mix(id.v);
      const auto& members = join_versions_.at(id);  // std::map: sorted
      fp.Mix(members.size());
      for (const auto& [member, version] : members) {
        fp.Mix(member);
        fp.Mix(version);
      }
    }
    fp.Mix(pending_joins_.size());
    for (NodeId id : pending_joins_) fp.Mix(id.v);  // std::set: sorted
    std::vector<NodeId> pk;
    pk.reserve(pending_join_keys_.size());
    for (const auto& [id, keys] : pending_join_keys_) pk.push_back(id);
    std::sort(pk.begin(), pk.end());
    fp.Mix(pk.size());
    for (NodeId id : pk) {
      fp.Mix(id.v);
      const auto& keys = pending_join_keys_.at(id);  // per-copy arrival order
      fp.Mix(keys.size());
      for (Key k : keys) fp.Mix(k);
    }
    fp.Mix(unjoined_.size());
    for (NodeId id : unjoined_) fp.Mix(id.v);  // std::set: sorted
  }

 protected:
  // Placement: mobile leaves, everywhere-roots, membership-inherited
  // interior siblings (self first, so the splitting PC stays the PC).
  std::vector<ProcessorId> PlaceNewNode(NodeId id, int32_t level) override;
  std::vector<ProcessorId> PlaceSibling(const Node& splitting,
                                        NodeId sibling_id) override;
  NodeId SplitParentTarget(const Node& node, Key sep) override;

  void HandleInitialInsert(Action a) override;
  void HandleRelayedInsert(Action a) override;
  void HandleInitialDelete(Action a) override;
  void HandleRelayedDelete(Action a) override;
  void HandleRelayedSplit(Action a) override;
  void HandleLinkChange(Action a) override;
  void HandleCreateNode(Action a) override;
  void HandleJoin(Action a) override;
  void HandleJoinGrant(Action a) override;
  void HandleRelayedJoin(Action a) override;
  void HandleUnjoin(Action a) override;
  void HandleRelayedUnjoin(Action a) override;

  void OnMigratedNodeInstalled(Node& n) override;
  void OnNodeMigratedAway(const NodeSnapshot& snapshot) override;

  /// Splits a replicated interior node at its PC (semi-sync §4.1.2 with
  /// the §4.2 version/link-change additions); single-copy nodes fall back
  /// to the local mobile split.
  void SplitNode(Node& n);

 private:
  /// Applies an in-range insert at a local copy, relays it with this
  /// copy's version attached, answers the client, and considers a split.
  void PerformInsert(Node& n, Action a);

  /// Joins every interior node on the path from the root down to the
  /// leaf covering `leaf_low` that is not already local. The descent is
  /// geometric (by key, through local copies and right links), because
  /// parent pointers may be stale; each grant resumes the descent.
  void JoinPath(Key leaf_low);

  /// Unjoins ancestors that no longer shelter any local child, walking up
  /// from `ancestor`. Never unjoins the root or a node we are PC of.
  void MaybeUnjoinAncestors(NodeId ancestor);

  /// Fixpoint sweep over every local interior copy (leaf departures can
  /// strand copies whose stale parent pointers the targeted walk misses).
  void PruneAllUnneeded();

  // PC-side: each current member's join version (Fig.-6 machinery).
  std::unordered_map<NodeId, std::map<ProcessorId, Version>> join_versions_;
  // Joiner-side: joins requested but not yet granted; relays for these
  // nodes are parked, not discarded.
  std::set<NodeId> pending_joins_;
  // Keys whose path descent is suspended on each pending join.
  std::unordered_map<NodeId, std::vector<Key>> pending_join_keys_;
  // Nodes this processor unjoined: relays for them are discarded (§4.3).
  // Relays for nodes never seen here are *parked* instead — they race a
  // kCreateNode (inherited sibling membership) that is still in flight.
  std::set<NodeId> unjoined_;

  /// Shared disposition for a relayed action whose target is not local:
  /// park (join/create in flight) or discard (we unjoined).
  void ParkOrDiscardRelay(Action a);

  uint64_t joins_granted_ = 0;
  uint64_t unjoins_processed_ = 0;
  uint64_t late_joiner_rerelays_ = 0;
  uint64_t discarded_relays_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_PROTOCOL_VARCOPIES_H_
