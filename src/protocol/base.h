// BaseProtocol: the distributed B-link tree machinery shared by every
// replica-maintenance algorithm in §4.
//
// It implements the Shasha-Goodman link-style navigation the dB-tree
// inherits (§1.1): one node visit per action, misnavigation recovery via
// the right-sibling link, completion messages back to the operation's
// origin, lazily-propagated root growth, and the bookkeeping hooks for the
// §3 history checkers. Concrete protocols supply the replica-coherence
// policy: how initial updates are relayed, how splits are ordered, and how
// missing nodes are found.

#ifndef LAZYTREE_PROTOCOL_BASE_H_
#define LAZYTREE_PROTOCOL_BASE_H_

#include <unordered_map>
#include <vector>

#include "src/history/history.h"
#include "src/server/processor.h"
#include "src/util/rng.h"

namespace lazytree {

class BaseProtocol : public ProtocolHandler {
 public:
  explicit BaseProtocol(Processor& p);

  void Handle(const Action& action) override;

  /// Parked actions + PRNG position. Subclasses with extra scratch state
  /// override, call the base, and mix their own (sorted canonically).
  void MixState(Fingerprint& fp) const override;

 protected:
  // --- per-kind handlers; protocols override what they change ---
  virtual void HandleSearch(Action a) { Navigate(std::move(a)); }
  virtual void HandleInsertOp(Action a) { Navigate(std::move(a)); }
  virtual void HandleDeleteOp(Action a) { Navigate(std::move(a)); }
  virtual void HandleScanOp(Action a) { Navigate(std::move(a)); }
  virtual void HandleInitialInsert(Action a) = 0;
  virtual void HandleRelayedInsert(Action a) { Unexpected(a); }
  virtual void HandleInitialDelete(Action a) { Unexpected(a); }
  virtual void HandleRelayedDelete(Action a) { Unexpected(a); }
  virtual void HandleSplitStart(Action a) { Unexpected(a); }
  virtual void HandleSplitAck(Action a) { Unexpected(a); }
  virtual void HandleSplitEnd(Action a) { Unexpected(a); }
  virtual void HandleRelayedSplit(Action a) { Unexpected(a); }
  virtual void HandleCreateNode(Action a);
  virtual void HandleRootHint(Action a);
  virtual void HandleLinkChange(Action a) { Unexpected(a); }
  virtual void HandleMigrateNode(Action a) { Unexpected(a); }
  virtual void HandleMigrateAck(Action a) { Unexpected(a); }
  virtual void HandleJoin(Action a) { Unexpected(a); }
  virtual void HandleJoinGrant(Action a) { Unexpected(a); }
  virtual void HandleRelayedJoin(Action a) { Unexpected(a); }
  virtual void HandleUnjoin(Action a) { Unexpected(a); }
  virtual void HandleRelayedUnjoin(Action a) { Unexpected(a); }
  virtual void HandleVigorous(Action a) { Unexpected(a); }

  /// Logged-and-dropped fallback for kinds a protocol does not speak.
  void Unexpected(const Action& a);

  // --- routing ---

  /// Which processor should handle an action for node `id` at `level`?
  /// Returns self when the node is (or should be) local.
  virtual ProcessorId ResolveDest(NodeId id, int32_t level) = 0;

  /// Called when an action arrives for a node this processor does not
  /// store and ResolveDest said "self". Fixed-copies parks the action
  /// until the copy is installed; mobile protocols run §4.2 recovery.
  virtual void HandleMissing(Action a);

  /// Local copy of `id`, or nullptr.
  Node* Local(NodeId id) { return p_.store().Get(id); }

  /// Routes an action toward its target node (self-send when local).
  void RouteToNode(NodeId id, int32_t level, Action a);

  // --- navigation (kSearch / kInsertOp) ---
  //
  // Classic mode: one node visit per invocation — every hop, even between
  // two locally stored copies, is a self-send through the queue manager
  // (one full inbox round trip per level). With
  // TreeConfig::local_fastpath the descent instead continues *inline*
  // while the next node is locally replicated: root-everywhere placement
  // means a search usually walks root → interior → leaf-home entirely
  // inside one delivery, and only the final leaf hop (or a misnavigation
  // onto a remote sibling) crosses the queue manager. Local copies may be
  // stale — that is exactly the staleness §4.2 side-link recovery
  // absorbs, so no extra correctness machinery is needed. Atomicity is
  // unchanged: the whole inline walk runs within one Deliver, and each
  // node visit still touches one node at a time.
  void Navigate(Action a);

  /// Routes a completed kReturnValue to the op's origin. With
  /// TreeConfig::local_fastpath a reply to *this* processor completes the
  /// operation directly instead of taking a self-send round trip.
  void SendReturn(Action r);

  /// True when reads of this copy must wait (vigorous baseline locks;
  /// lazy protocols never block reads — the paper's headline property).
  virtual bool ReadBlocked(Node& n) {
    (void)n;
    return false;
  }

  /// Leaf arrival of a kSearch: reply to the origin.
  void CompleteSearch(const Action& a, Node& leaf);

  /// Leaf arrival of a kScanOp: collect entries, walk right while the
  /// limit (a.value) is unfilled, then reply with the batch.
  void ContinueScan(Action a, Node& leaf);

  /// Sends the operation's return-value action to its origin.
  void Reply(const Action& a, Action::Rc rc, Value value);

  // --- update bookkeeping (§3) ---

  /// Allocates an update id and registers the issue with the history log.
  UpdateId NewRegisteredUpdate(history::UpdateClass cls, NodeId node,
                               Key key, Value value);

  /// Records an applied (or rewritten) update at a local copy and folds it
  /// into the node's backwards-extension list.
  void RecordUpdate(Node& node, history::UpdateClass cls, UpdateId update,
                    bool initial, bool rewritten = false, Key key = 0,
                    Value value = 0, NodeId new_node = kInvalidNode,
                    Key sep = 0, Version version = 0, uint8_t link = 0);

  // --- shared split plumbing ---

  /// Installs a copy from a snapshot (kCreateNode and protocol internals):
  /// registers creation, drains parked actions, refreshes the root hint.
  Node* InstallFromSnapshot(const NodeSnapshot& snapshot);

  /// Completes the structural half of a split at the PC: places the
  /// sibling's copies, grows a new root first when `node` was the top (so
  /// the sibling's parent pointer is correct), distributes the sibling
  /// snapshot, and sends the (sep -> sibling) initial insert into the
  /// parent. Parent-pointer staleness is recovered by right-forwarding at
  /// the parent level.
  void FinishSplit(Node& node, Node::SplitResult& split);

  /// Builds the new-root snapshot and distributes it (§1.1 root policy);
  /// broadcasts kRootHint so every processor learns the new top lazily.
  void GrowNewRoot(Node& old_top, Key sep, NodeId sibling);

  /// Copy set for a brand-new node (placement policy).
  virtual std::vector<ProcessorId> PlaceNewNode(NodeId id,
                                                int32_t level) = 0;

  /// Copy set for a split-off sibling. Defaults to PlaceNewNode; the
  /// variable-copies protocol inherits the split node's membership.
  virtual std::vector<ProcessorId> PlaceSibling(const Node& splitting,
                                                NodeId sibling_id) {
    return PlaceNewNode(sibling_id, splitting.level());
  }

  /// Which node receives the (sep -> sibling) insert after a split.
  /// Defaults to the stored parent pointer (staleness is recovered by
  /// right-forwarding); the variable-copies protocol prefers a local
  /// path copy, keeping restructuring local (§1.1).
  virtual NodeId SplitParentTarget(const Node& node, Key sep) {
    (void)sep;
    return node.parent();
  }

  /// Distributes a sibling snapshot to its copy holders (installing the
  /// local one directly).
  void DistributeCopies(const NodeSnapshot& snapshot);

  Processor& p_;
  Rng rng_;

 private:
  // Actions parked while waiting for a kCreateNode to install their target.
  std::unordered_map<NodeId, std::vector<Action>> parked_;
};

}  // namespace lazytree

#endif  // LAZYTREE_PROTOCOL_BASE_H_
