#include "src/protocol/vigorous.h"

#include "src/util/logging.h"

namespace lazytree {

void VigorousProtocol::HandleInitialDelete(Action a) {
  // Deletes are updates too: funnel through the same PC rounds.
  HandleInitialInsert(std::move(a));
}

void VigorousProtocol::HandleInitialInsert(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  ++a.hops;
  if (a.key >= n->right_low()) {
    RouteToNode(n->right(), n->level(), std::move(a));
    return;
  }
  if (n->pc() != p_.id()) {
    // All updates execute at the primary copy.
    p_.out().SendAction(n->pc(), std::move(a));
    return;
  }
  if (a.update == kNoUpdate) {
    a.update = NewRegisteredUpdate(a.kind == ActionKind::kDelete
                                       ? history::UpdateClass::kDelete
                                       : history::UpdateClass::kInsert,
                                   n->id(), a.key, a.value);
  }
  rounds_[n->id()].pending.push_back(std::move(a));
  PumpQueue(*n);
}

void VigorousProtocol::InitiateSplit(Node& n) {
  NodeQueue& q = rounds_[n.id()];
  if (q.split_queued) return;
  q.split_queued = true;
  Action round;
  round.kind = kSplitRound;
  round.target = n.id();
  q.pending.push_front(std::move(round));  // relieve the overflow first
  PumpQueue(n);
}

void VigorousProtocol::PumpQueue(Node& n) {
  NodeQueue& q = rounds_[n.id()];
  if (q.busy) return;
  // A split that ran ahead of queued inserts may have moved their keys
  // out of this node: re-route them right before starting a round.
  while (!q.pending.empty()) {
    Action& front = q.pending.front();
    if (front.kind == kSplitRound || front.key < n.right_low()) break;
    Action displaced = std::move(front);
    q.pending.pop_front();
    RouteToNode(n.right(), n.level(), std::move(displaced));
  }
  if (q.pending.empty()) return;
  q.busy = true;
  q.current = std::move(q.pending.front());
  q.pending.pop_front();
  p_.aas().Begin(n.id());  // blocks reads (and defers nothing else: all
                           // updates already funnel through this queue)
  if (n.copies().size() <= 1) {
    ApplyRound(n);
    return;
  }
  q.acks = static_cast<uint32_t>(n.copies().size() - 1);
  Action lock;
  lock.kind = ActionKind::kVigorousLock;
  lock.target = n.id();
  lock.origin = p_.id();
  p_.out().Broadcast(n.copies(), lock);
}

void VigorousProtocol::HandleVigorous(Action a) {
  switch (a.kind) {
    case ActionKind::kVigorousLock: {
      Node* n = Local(a.target);
      if (n == nullptr) {
        HandleMissing(std::move(a));
        return;
      }
      p_.aas().Begin(n->id());  // block local reads until the apply
      Action ack;
      ack.kind = ActionKind::kVigorousLockAck;
      ack.target = n->id();
      ack.origin = p_.id();
      p_.out().SendAction(a.origin, std::move(ack));
      return;
    }
    case ActionKind::kVigorousLockAck: {
      Node* n = Local(a.target);
      LAZYTREE_CHECK(n != nullptr) << "ack for unknown node";
      NodeQueue& q = rounds_[n->id()];
      LAZYTREE_CHECK(q.busy && q.acks > 0) << "stray vigorous ack";
      if (--q.acks == 0) ApplyRound(*n);
      return;
    }
    case ActionKind::kVigorousApply: {
      Node* n = Local(a.target);
      LAZYTREE_CHECK(n != nullptr) << "apply for unknown node";
      const uint64_t payload = n->is_leaf() ? a.value : a.new_node.v;
      n->Insert(a.key, payload, p_.config().upsert);
      RecordUpdate(*n, history::UpdateClass::kInsert, a.update,
                   /*initial=*/false, /*rewritten=*/false, a.key, payload,
                   a.new_node);
      for (Action& deferred : p_.aas().End(n->id())) {
        p_.out().SendLocal(std::move(deferred));
      }
      return;
    }
    case ActionKind::kVigorousApplyDelete: {
      Node* n = Local(a.target);
      LAZYTREE_CHECK(n != nullptr) << "apply-delete for unknown node";
      n->Remove(a.key);
      RecordUpdate(*n, history::UpdateClass::kDelete, a.update,
                   /*initial=*/false, /*rewritten=*/false, a.key, 0);
      for (Action& deferred : p_.aas().End(n->id())) {
        p_.out().SendLocal(std::move(deferred));
      }
      return;
    }
    case ActionKind::kVigorousApplySplit: {
      Node* n = Local(a.target);
      LAZYTREE_CHECK(n != nullptr) << "apply-split for unknown node";
      ApplyRelayedSplit(*n, a);
      for (Action& deferred : p_.aas().End(n->id())) {
        p_.out().SendLocal(std::move(deferred));
      }
      return;
    }
    default:
      Unexpected(a);
  }
}

void VigorousProtocol::ApplyRound(Node& n) {
  NodeQueue& q = rounds_[n.id()];
  ++rounds_executed_;
  Action a = std::move(q.current);
  if (a.kind == kSplitRound) {
    q.split_queued = false;
    UpdateId u = NewRegisteredUpdate(history::UpdateClass::kSplit, n.id(),
                                     0, 0);
    Node::SplitResult split = n.HalfSplit(p_.NewNodeId());
    n.bump_version();
    RecordUpdate(n, history::UpdateClass::kSplit, u, /*initial=*/true,
                 /*rewritten=*/false, 0, 0, split.sibling.id, split.sep,
                 n.version());
    if (n.copies().size() > 1) {
      Action apply;
      apply.kind = ActionKind::kVigorousApplySplit;
      apply.target = n.id();
      apply.update = u;
      apply.sep = split.sep;
      apply.new_node = split.sibling.id;
      apply.version = n.version();
      p_.out().Broadcast(n.copies(), apply);
    }
    FinishSplit(n, split);
    FinishRound(n);
    return;
  }

  if (a.kind == ActionKind::kDelete) {
    const bool removed = n.Remove(a.key);
    RecordUpdate(n, history::UpdateClass::kDelete, a.update,
                 /*initial=*/true, /*rewritten=*/false, a.key, 0);
    if (n.copies().size() > 1) {
      Action apply;
      apply.kind = ActionKind::kVigorousApplyDelete;
      apply.target = n.id();
      apply.update = a.update;
      apply.key = a.key;
      p_.out().Broadcast(n.copies(), apply);
    }
    Reply(a, removed ? Action::Rc::kOk : Action::Rc::kNotFound, 0);
    FinishRound(n);
    return;
  }

  // Insert round.
  const uint64_t payload = n.is_leaf() ? a.value : a.new_node.v;
  const bool inserted = n.Insert(a.key, payload, p_.config().upsert);
  RecordUpdate(n, history::UpdateClass::kInsert, a.update,
               /*initial=*/true, /*rewritten=*/false, a.key, payload,
               a.new_node);
  if (n.copies().size() > 1) {
    Action apply;
    apply.kind = ActionKind::kVigorousApply;
    apply.target = n.id();
    apply.update = a.update;
    apply.key = a.key;
    apply.value = a.value;
    apply.new_node = a.new_node;
    p_.out().Broadcast(n.copies(), apply);
  }
  Reply(a, inserted || p_.config().upsert ? Action::Rc::kOk
                                          : Action::Rc::kExists,
        0);
  FinishRound(n);
  if (n.Overflowing(p_.config().max_entries)) InitiateSplit(n);
}

void VigorousProtocol::FinishRound(Node& n) {
  rounds_[n.id()].busy = false;
  for (Action& deferred : p_.aas().End(n.id())) {
    p_.out().SendLocal(std::move(deferred));
  }
  PumpQueue(n);
}

void VigorousProtocol::OnPcOutOfRangeRelay(Node& n, Action a) {
  LAZYTREE_CHECK(false) << "vigorous protocol has no relayed inserts: "
                        << a.ToString() << " at " << n.ToString();
}

}  // namespace lazytree
