#include "src/protocol/mobile.h"

#include <utility>

#include "src/util/logging.h"

namespace lazytree {

void MobileProtocol::NoteAddr(NodeId id, ProcessorId host, Version version) {
  AddrEntry& entry = addr_[id];
  if (version >= entry.version) {
    entry.host = host;
    entry.version = version;
  }
}

ProcessorId MobileProtocol::ResolveDest(NodeId id, int32_t level) {
  (void)level;
  auto it = addr_.find(id);
  if (it != addr_.end() && it->second.host != p_.id()) {
    return it->second.host;
  }
  if (id.creator() != p_.id()) return id.creator();
  return p_.id();  // caller falls through to HandleMissing
}

void MobileProtocol::HandleMissing(Action a) {
  // §4.2 recovery chain: forwarding address -> closest local node ->
  // the root. Forwarding addresses are an optimization only; dropping
  // them (GC) leaves the closest-node path, which is the same mechanism
  // that recovers misnavigated operations in the B-link protocol.
  ProcessorId forward = p_.store().Forwarding(a.target);
  if (forward != kInvalidProcessor && forward != p_.id()) {
    ++forward_hits_;
    p_.out().SendAction(forward, std::move(a));
    return;
  }
  switch (a.kind) {
    case ActionKind::kSearch:
    case ActionKind::kInsertOp:
    case ActionKind::kDeleteOp:
    case ActionKind::kScanOp:
    case ActionKind::kInsert:
    case ActionKind::kDelete:
    case ActionKind::kLinkChange:
      break;  // key-routable: closest-node recovery below applies
    default: {
      // Id-bound actions (joins, relays, grants) must never be
      // re-targeted at a different node; chase the creator a few times,
      // then give up.
      if (a.target.creator() != p_.id() && a.hops < 3) {
        ++a.hops;
        p_.out().SendAction(a.target.creator(), std::move(a));
      } else {
        LAZYTREE_WARN << "p" << p_.id() << " dropping unroutable "
                      << a.ToString();
      }
      return;
    }
  }
  // Re-descend from the closest local node — but only while the hop
  // budget lasts: when nothing local (not even the parent) knows the
  // node's new address, re-descending loops parent -> missing child
  // forever. Past the cap, fall through to the random hand-off.
  constexpr uint32_t kRecoveryHopCap = 32;
  Node* close = a.hops < kRecoveryHopCap
                    ? p_.store().Closest(a.key, std::max(a.level, 0))
                    : nullptr;
  if (close != nullptr) {
    ++recovery_routes_;
    a.target = close->id();
    p_.out().SendLocal(std::move(a));
    return;
  }
  // Deterministically bouncing to a fixed processor (the root's host,
  // the creator) can livelock: its knowledge may be exactly what is
  // stale, while the node's true host is named only by its geometric
  // neighbors' (fresh) links. A uniformly random hand-off reaches some
  // processor holding usable knowledge with probability 1.
  if (p_.cluster_size() > 1) {
    ++recovery_routes_;
    ProcessorId dest = static_cast<ProcessorId>(
        rng_.Below(p_.cluster_size() - 1));
    if (dest >= p_.id()) ++dest;  // anyone but self
    p_.out().SendAction(dest, std::move(a));
    return;
  }
  LAZYTREE_ERROR << "p" << p_.id() << " cannot route " << a.ToString();
  Reply(a, Action::Rc::kNotFound, 0);
}

size_t MobileProtocol::LocalLeafCount() const {
  size_t count = 0;
  std::as_const(p_).store().ForEach([&](const Node& n) {
    if (n.is_leaf()) ++count;
  });
  return count;
}

void MobileProtocol::HandleInitialInsert(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  ++a.hops;
  const int32_t want = std::max(a.level, 0);
  if (a.key >= n->right_low()) {
    RouteToNode(n->right(), n->level(), std::move(a));
    return;
  }
  if (n->level() > want) {
    // Recovery landed us above the destination level: descend by key.
    NodeId child = n->ChildFor(a.key);
    RouteToNode(child, n->level() - 1, std::move(a));
    return;
  }
  LAZYTREE_CHECK(n->level() == want)
      << "insert below destination level: " << a.ToString();
  LAZYTREE_CHECK(a.key >= n->range().low)
      << "initial insert left of node: " << a.ToString();

  if (a.update == kNoUpdate) {
    a.update = NewRegisteredUpdate(history::UpdateClass::kInsert, n->id(),
                                   a.key, a.value);
  }
  const uint64_t payload = n->is_leaf() ? a.value : a.new_node.v;
  const bool inserted = n->Insert(a.key, payload, p_.config().upsert);
  RecordUpdate(*n, history::UpdateClass::kInsert, a.update,
               /*initial=*/true, /*rewritten=*/false, a.key, payload,
               a.new_node, 0, n->version());
  Reply(a, inserted || p_.config().upsert ? Action::Rc::kOk
                                          : Action::Rc::kExists,
        0);
  if (n->Overflowing(p_.config().max_entries)) LocalSplit(*n);
}

void MobileProtocol::HandleInitialDelete(Action a) {
  Node* n = Local(a.target);
  if (n == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  ++a.hops;
  const int32_t want = std::max(a.level, 0);
  if (a.key >= n->right_low()) {
    RouteToNode(n->right(), n->level(), std::move(a));
    return;
  }
  if (n->level() > want) {
    NodeId child = n->ChildFor(a.key);
    RouteToNode(child, n->level() - 1, std::move(a));
    return;
  }
  if (a.update == kNoUpdate) {
    a.update = NewRegisteredUpdate(history::UpdateClass::kDelete, n->id(),
                                   a.key, 0);
  }
  const bool removed = n->Remove(a.key);
  RecordUpdate(*n, history::UpdateClass::kDelete, a.update,
               /*initial=*/true, /*rewritten=*/false, a.key, 0,
               kInvalidNode, 0, n->version());
  Reply(a, removed ? Action::Rc::kOk : Action::Rc::kNotFound, 0);
  // Free-at-empty ([11]): an emptied node stays.
}

void MobileProtocol::LocalSplit(Node& n) {
  UpdateId u = NewRegisteredUpdate(history::UpdateClass::kSplit, n.id(),
                                   0, 0);
  Node::SplitResult split = n.HalfSplit(p_.NewNodeId());
  n.bump_version();
  RecordUpdate(n, history::UpdateClass::kSplit, u, /*initial=*/true,
               /*rewritten=*/false, 0, 0, split.sibling.id, split.sep,
               n.version());

  // §4.2: "a link-change action is sent to the right neighbor" — its left
  // link must now point at the new sibling.
  if (split.sibling.right.valid()) {
    SendLinkChange(split.sibling.right, LinkKind::kLeft, split.sibling.id,
                   split.sibling.version, split.sibling.right_low,
                   n.level());
  }

  const bool is_leaf = n.is_leaf();
  const NodeId sibling_id = split.sibling.id;
  FinishSplit(n, split);

  // Online data balancing ([14]): shed the fresh sibling when this
  // processor is over its leaf budget.
  const uint32_t threshold = p_.config().shed_threshold;
  if (threshold != 0 && is_leaf && p_.cluster_size() > 1 &&
      LocalLeafCount() > threshold) {
    ProcessorId dest = static_cast<ProcessorId>(
        rng_.Below(p_.cluster_size() - 1));
    if (dest >= p_.id()) ++dest;  // anyone but self
    Action cmd;
    cmd.kind = ActionKind::kMigrateNode;
    cmd.target = sibling_id;
    cmd.members = {dest};
    p_.out().SendLocal(std::move(cmd));
  }
}

void MobileProtocol::SendLinkChange(NodeId target_node, LinkKind link,
                                    NodeId new_node, Version version,
                                    Key route_key, int32_t level) {
  UpdateId u = NewRegisteredUpdate(history::UpdateClass::kLinkChange,
                                   target_node, route_key, 0);
  Action lc;
  lc.kind = ActionKind::kLinkChange;
  lc.update = u;
  lc.link = link;
  lc.new_node = new_node;
  lc.version = version;
  lc.key = route_key;
  lc.origin = p_.id();
  RouteToNode(target_node, level, std::move(lc));
}

void MobileProtocol::HandleLinkChange(Action a) {
  // Every link-change doubles as an address advertisement.
  NoteAddr(a.new_node, a.origin, a.version);
  if (a.link == LinkKind::kParent) return;  // cache refresh only

  Node* m = Local(a.target);
  if (m == nullptr) {
    ProcessorId dest = ResolveDest(a.target, a.level);
    if (dest == p_.id()) {
      HandleMissing(std::move(a));
    } else {
      p_.out().SendAction(dest, std::move(a));
    }
    return;
  }
  if (a.key >= m->right_low()) {
    // The neighbor split: the geometric neighbor is further right.
    RouteToNode(m->right(), m->level(), std::move(a));
    return;
  }
  if (m->level() > a.level) {
    NodeId child = m->ChildFor(a.key);
    RouteToNode(child, m->level() - 1, std::move(a));
    return;
  }
  ApplyGatedLinkChange(*m, a, /*initial=*/true);
}

void MobileProtocol::ApplyGatedLinkChange(Node& m, const Action& a,
                                          bool initial) {
  if (m.HasApplied(a.update)) return;  // already folded into this copy
  const uint8_t idx = static_cast<uint8_t>(a.link);
  if (a.version > m.link_version(a.link)) {
    if (a.link == LinkKind::kLeft) {
      m.set_left(a.new_node);
    } else {
      m.set_right(a.new_node, m.right_low());
    }
    m.set_link_version(a.link, a.version);
    RecordUpdate(m, history::UpdateClass::kLinkChange, a.update, initial,
                 /*rewritten=*/false, a.key, 0, a.new_node, 0, a.version,
                 idx);
  } else {
    // Stale: rewritten into its proper place in the past (Theorem 3).
    RecordUpdate(m, history::UpdateClass::kLinkChange, a.update, initial,
                 /*rewritten=*/true, a.key, 0, a.new_node, 0, a.version,
                 idx);
  }
}

void MobileProtocol::HandleMigrateNode(Action a) {
  if (a.snapshot.valid()) {
    // Destination side: install, advertise, acknowledge.
    Node* n = InstallFromSnapshot(a.snapshot);
    NoteAddr(n->id(), p_.id(), n->version());
    RecordUpdate(*n, history::UpdateClass::kMigrate, a.update,
                 /*initial=*/true, /*rewritten=*/false, 0, 0,
                 kInvalidNode, 0, n->version());
    AnnounceMigration(*n, n->version());
    OnMigratedNodeInstalled(*n);
    Action ack;
    ack.kind = ActionKind::kMigrateAck;
    ack.target = n->id();
    ack.origin = p_.id();
    p_.out().SendAction(a.origin, std::move(ack));
    return;
  }

  // Command side: pack the node off to members[0].
  Node* n = Local(a.target);
  if (n == nullptr) {
    // Chase the node through its forwarding address only — a command must
    // never be re-targeted at a different node by closest-node recovery.
    ProcessorId forward = p_.store().Forwarding(a.target);
    if (forward != kInvalidProcessor && forward != p_.id()) {
      p_.out().SendAction(forward, std::move(a));
    } else {
      LAZYTREE_WARN << "p" << p_.id()
                    << " migrate command for absent node "
                    << a.target.ToString();
    }
    return;
  }
  if (a.members.empty() || a.members[0] == p_.id() ||
      a.members[0] >= p_.cluster_size()) {
    LAZYTREE_DEBUG << "migrate command with self/bad destination: no-op";
    return;
  }
  const ProcessorId dest = a.members[0];
  UpdateId u = NewRegisteredUpdate(history::UpdateClass::kMigrate, n->id(),
                                   0, 0);
  n->bump_version();
  Action install;
  install.kind = ActionKind::kMigrateNode;
  install.target = n->id();
  install.update = u;
  install.version = n->version();
  install.snapshot = n->ToSnapshot();
  install.origin = p_.id();
  const NodeId id = n->id();
  const Version version = n->version();
  const NodeSnapshot departed = install.snapshot;
  p_.RemoveNode(id, /*forward_to=*/dest);  // leaves a forwarding address
  NoteAddr(id, dest, version);
  p_.out().SendAction(dest, std::move(install));
  OnNodeMigratedAway(departed);
}

void MobileProtocol::AnnounceMigration(Node& n, Version version) {
  // Ordered link-changes to the sibling neighbors...
  if (n.left().valid()) {
    const Key route = n.range().low == 0 ? 0 : n.range().low - 1;
    SendLinkChange(n.left(), LinkKind::kRight, n.id(), version, route,
                   n.level());
  }
  if (n.right().valid()) {
    SendLinkChange(n.right(), LinkKind::kLeft, n.id(), version,
                   n.right_low(), n.level());
  }
  // ...and unordered address refreshes to the parent and the children.
  Action refresh;
  refresh.kind = ActionKind::kLinkChange;
  refresh.link = LinkKind::kParent;
  refresh.new_node = n.id();
  refresh.version = version;
  refresh.origin = p_.id();
  if (n.parent().valid()) {
    Action to_parent = refresh;
    to_parent.key = n.range().low;
    RouteToNode(n.parent(), n.level() + 1, std::move(to_parent));
  }
  if (!n.is_leaf()) {
    for (const Entry& e : n.entries()) {
      Action to_child = refresh;
      to_child.key = e.key;
      RouteToNode(NodeId{e.payload}, n.level() - 1, std::move(to_child));
    }
  }
}

void MobileProtocol::HandleMigrateAck(Action a) {
  (void)a;
  ++migrations_completed_;
}

}  // namespace lazytree
