// Semi-synchronous split protocol (§4.1.2) — the paper's centerpiece.
//
// The PC performs a half-split immediately and relays it with a single
// message per copy (|copies(n)| messages total — optimal). Inserts are
// never blocked. When the PC receives a relayed insert whose key a split
// has already moved away, it "rewrites history": the insert is treated as
// if it happened before the split, and the PC forwards it as a fresh
// initial insert to the node that now owns the key (Fig. 5, right side).

#ifndef LAZYTREE_PROTOCOL_SEMISYNC_SPLIT_H_
#define LAZYTREE_PROTOCOL_SEMISYNC_SPLIT_H_

#include "src/protocol/fixed.h"

namespace lazytree {

class SemiSyncSplitProtocol : public FixedCopiesProtocol {
 public:
  using FixedCopiesProtocol::FixedCopiesProtocol;

 protected:
  void InitiateSplit(Node& n) override;
  void HandleRelayedSplit(Action a) override;
  void OnPcOutOfRangeRelay(Node& n, Action a) override;
};

}  // namespace lazytree

#endif  // LAZYTREE_PROTOCOL_SEMISYNC_SPLIT_H_
