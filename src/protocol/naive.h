// NaiveProtocol: the Fig.-4 strawman — what goes wrong without the
// semi-synchronous ordering rule.
//
// Identical to the semi-synchronous protocol except that the PC *ignores*
// an out-of-range relayed insert instead of rewriting history and
// forwarding it. The key was applied at some copy, the split discarded it
// there, the sibling was seeded without it: the insert is silently lost.
// Tests and bench F4 use this protocol to demonstrate the lost-insert
// problem the paper's algorithms exist to prevent.

#ifndef LAZYTREE_PROTOCOL_NAIVE_H_
#define LAZYTREE_PROTOCOL_NAIVE_H_

#include "src/protocol/semisync_split.h"

namespace lazytree {

class NaiveProtocol : public SemiSyncSplitProtocol {
 public:
  using SemiSyncSplitProtocol::SemiSyncSplitProtocol;

  /// Relayed inserts the PC dropped.
  uint64_t dropped_relays() const { return dropped_relays_; }
  /// Drops at leaf level: each one is exactly one permanently lost key.
  /// (Interior drops lose a parent pointer; the B-link right-link chain
  /// masks those, at the price of extra hops forever.)
  uint64_t dropped_leaf_relays() const { return dropped_leaf_relays_; }

 protected:
  void OnPcOutOfRangeRelay(Node& n, Action a) override;

 private:
  uint64_t dropped_relays_ = 0;
  uint64_t dropped_leaf_relays_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_PROTOCOL_NAIVE_H_
