// FixedCopiesProtocol: shared machinery for the §4.1 family, where every
// node has a fixed set of copies chosen at creation.
//
// Placement is deterministic — copies(n) is a pure function of the node id
// and level — so any processor can locate any node with no coordination
// ("fixed-position copies"). Leaves live on one processor; interior nodes
// are replicated on `interior_replication` processors (0 = all, the
// dB-tree root-everywhere policy of Fig. 2).

#ifndef LAZYTREE_PROTOCOL_FIXED_H_
#define LAZYTREE_PROTOCOL_FIXED_H_

#include <vector>

#include "src/protocol/base.h"

namespace lazytree {

/// Deterministic copy set: exposed so Cluster can bootstrap the initial
/// tree with the exact placement the protocol will compute.
std::vector<ProcessorId> FixedCopySet(NodeId id, int32_t level,
                                      uint32_t cluster_size,
                                      uint32_t interior_replication,
                                      uint32_t leaf_replication);

class FixedCopiesProtocol : public BaseProtocol {
 public:
  using BaseProtocol::BaseProtocol;

 protected:
  std::vector<ProcessorId> PlaceNewNode(NodeId id, int32_t level) override {
    return FixedCopySet(id, level, p_.cluster_size(),
                        p_.config().interior_replication,
                        p_.config().leaf_replication);
  }

  ProcessorId ResolveDest(NodeId id, int32_t level) override;

  /// Crash hardening: normally a missing target means our kCreateNode is
  /// still in flight, so the action parks (base behavior). After this
  /// processor has crashed, its copies are simply gone — client-path
  /// actions re-route to another fixed replica instead of parking
  /// forever; relays still park (they are per-copy and a crashed copy is
  /// dead). A hop cap keeps adversarial schedules from bouncing an action
  /// between restarted replicas indefinitely.
  void HandleMissing(Action a) override;

  void HandleInitialInsert(Action a) override;
  void HandleRelayedInsert(Action a) override;
  void HandleInitialDelete(Action a) override;
  void HandleRelayedDelete(Action a) override;

  /// Applies an in-range initial insert at `n`, relays it to the other
  /// copies, answers the client, and lets the PC consider a split.
  void PerformInitialInsert(Node& n, Action a);

  /// Same for deletes (free-at-empty: nodes never merge, [11]).
  void PerformInitialDelete(Node& n, Action a);

  /// Applies a relayed split at a non-PC copy (split_end / relayed split).
  void ApplyRelayedSplit(Node& n, const Action& a);

  /// PC-side overflow trigger; ordering policy differs per protocol.
  virtual void InitiateSplit(Node& n) = 0;

  /// True when an initial insert must wait at this copy (sync AAS).
  virtual bool InsertBlocked(Node& n) {
    (void)n;
    return false;
  }

  /// Policy when the PC receives a relayed insert whose key left the PC's
  /// range (a split won the race): §4.1.2 rewrites history and forwards;
  /// the Fig.-4 strawman drops it.
  virtual void OnPcOutOfRangeRelay(Node& n, Action a) = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_PROTOCOL_FIXED_H_
