#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace lazytree {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;

void InitFromEnv() {
  const char* env = std::getenv("LAZYTREE_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) SetLogLevel(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) SetLogLevel(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) SetLogLevel(LogLevel::kWarn);
  else if (std::strcmp(env, "error") == 0) SetLogLevel(LogLevel::kError);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  // Level filtering is advisory; a stale read only mis-filters a line.
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

void LogLine(LogLevel level, const char* file, int line,
             const std::string& message) {
  // One fprintf call keeps lines from interleaving across threads.
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

CheckFailure::CheckFailure(const char* file, int line, const char* expr)
    : file_(file), line_(line), expr_(expr) {}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "[FATAL %s:%d] CHECK failed: %s %s\n",
               Basename(file_), line_, expr_, stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace lazytree
