// Deterministic, seedable random number generation.
//
// Protocol tests replay adversarial schedules by seed, so all randomness in
// the library flows through Rng (xoshiro256**, seeded via splitmix64).
// Never use std::rand or random_device inside the library.

#ifndef LAZYTREE_UTIL_RNG_H_
#define LAZYTREE_UTIL_RNG_H_

#include <cstdint>

namespace lazytree {

/// splitmix64 step; used to expand a single seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, fully deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9Bull) { Seed(seed); }

  void Seed(uint64_t seed) {
    for (auto& word : s_) word = SplitMix64(seed);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) return 0;
    // Debiased multiply-shift (Lemire).
    while (true) {
      uint64_t x = Next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t low = static_cast<uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Raw generator state, exposed so the exhaustive verifier can fold the
  /// PRNG position into a state fingerprint (two executions that have
  /// consumed different amounts of randomness are different states).
  const uint64_t (&state() const)[4] { return s_; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace lazytree

#endif  // LAZYTREE_UTIL_RNG_H_
