#include "src/util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace lazytree {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < 4) return static_cast<int>(value);  // exact small buckets
  int log2 = 63 - std::countl_zero(value);
  // Two bits below the leading bit select the sub-bucket.
  int sub = static_cast<int>((value >> (log2 - 2)) & 3);
  int bucket = log2 * 4 + sub;
  return std::min(bucket, kBuckets - 1);
}

uint64_t Histogram::BucketLow(int bucket) {
  if (bucket < 4) return static_cast<uint64_t>(bucket);
  // Buckets 4..7 are a gap in the mapping (values >= 4 start at bucket
  // 8); collapse their lower edge to 4 so interpolation around the
  // small exact buckets stays sane (a negative shift here was UB).
  if (bucket < 8) return 4;
  int log2 = bucket / 4;
  int sub = bucket % 4;
  return (1ull << log2) | (static_cast<uint64_t>(sub) << (log2 - 2));
}

void Histogram::Record(uint64_t value) {
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= target) {
      const uint64_t low = std::max(BucketLow(i), min());
      const uint64_t high =
          i + 1 < kBuckets ? std::min(BucketLow(i + 1), max()) : max();
      const double frac =
          buckets_[i] ? (target - static_cast<double>(seen)) /
                            static_cast<double>(buckets_[i])
                      : 0.0;
      return static_cast<double>(low) +
             frac * static_cast<double>(high - low);
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%llu",
                static_cast<unsigned long long>(count_), mean(), P50(),
                P95(), P99(), static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace lazytree
