// Latency / value histogram with percentile reporting.
//
// Log-bucketed (RocksDB-statistics style): constant-time record, ~4% bucket
// resolution, merge support for per-thread collection.

#ifndef LAZYTREE_UTIL_HISTOGRAM_H_
#define LAZYTREE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lazytree {

/// Fixed-bucket histogram of non-negative 64-bit samples.
class Histogram {
 public:
  Histogram();

  /// Adds one sample.
  void Record(uint64_t value);

  /// Adds all samples from `other`.
  void Merge(const Histogram& other);

  /// Discards all samples.
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / count_ : 0.0;
  }

  /// Value at percentile p in [0, 100]. Interpolated within a bucket.
  double Percentile(double p) const;

  double P50() const { return Percentile(50); }
  double P95() const { return Percentile(95); }
  double P99() const { return Percentile(99); }
  double P999() const { return Percentile(99.9); }

  /// One-line summary: "count=... mean=... p50=... p95=... p99=... max=...".
  std::string Summary() const;

 private:
  static constexpr int kBuckets = 64 * 4;  // 4 sub-buckets per power of two
  static int BucketFor(uint64_t value);
  static uint64_t BucketLow(int bucket);

  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace lazytree

#endif  // LAZYTREE_UTIL_HISTOGRAM_H_
