#include "src/util/threading.h"

#include "src/util/logging.h"

namespace lazytree {

void WaitGroup::Add(int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  count_ += delta;
  LAZYTREE_CHECK(count_ >= 0) << "WaitGroup underflow";
}

void WaitGroup::Done() {
  bool zero;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --count_;
    LAZYTREE_CHECK(count_ >= 0) << "WaitGroup underflow";
    zero = (count_ == 0);
  }
  if (zero) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return count_ == 0; });
}

bool WaitGroup::WaitFor(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [&] { return count_ == 0; });
}

int64_t WaitGroup::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace lazytree
