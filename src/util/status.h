// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB/Abseil idiom: functions that can fail return a Status
// (or a StatusOr<T>, see statusor.h). Statuses are cheap to copy in the OK
// case and carry a code plus a human-readable message otherwise.

#ifndef LAZYTREE_UTIL_STATUS_H_
#define LAZYTREE_UTIL_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace lazytree {

/// Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,        ///< key / node / copy does not exist
  kAlreadyExists = 2,   ///< duplicate key or duplicate registration
  kInvalidArgument = 3, ///< caller error: bad parameter
  kOutOfRange = 4,      ///< key outside a node's range (misnavigation)
  kUnavailable = 5,     ///< processor stopped or channel closed
  kInternal = 6,        ///< invariant violation (a bug)
  kTimedOut = 7,        ///< operation did not finish within its deadline
  kAborted = 8,         ///< operation abandoned (e.g. shutdown)
};

/// Returns a stable lowercase name for a code ("ok", "not_found", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation: OK, or an error code plus message.
///
/// The OK status stores no heap state; error statuses allocate once for the
/// message. Statuses are value types and safe to pass across threads.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string_view message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(code, std::string(message))) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view m) {
    return Status(StatusCode::kNotFound, m);
  }
  static Status AlreadyExists(std::string_view m) {
    return Status(StatusCode::kAlreadyExists, m);
  }
  static Status InvalidArgument(std::string_view m) {
    return Status(StatusCode::kInvalidArgument, m);
  }
  static Status OutOfRange(std::string_view m) {
    return Status(StatusCode::kOutOfRange, m);
  }
  static Status Unavailable(std::string_view m) {
    return Status(StatusCode::kUnavailable, m);
  }
  static Status Internal(std::string_view m) {
    return Status(StatusCode::kInternal, m);
  }
  static Status TimedOut(std::string_view m) {
    return Status(StatusCode::kTimedOut, m);
  }
  static Status Aborted(std::string_view m) {
    return Status(StatusCode::kAborted, m);
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }

  /// Message for an error status; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "ok" or "<code>: <message>".
  std::string ToString() const {
    if (ok()) return "ok";
    std::string s = StatusCodeName(code());
    s += ": ";
    s += message();
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kTimedOut: return "timed_out";
    case StatusCode::kAborted: return "aborted";
  }
  return "unknown";
}

/// Propagates a non-OK status to the caller.
#define LAZYTREE_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::lazytree::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace lazytree

#endif  // LAZYTREE_UTIL_STATUS_H_
