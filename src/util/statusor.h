// StatusOr<T>: a Status or a value of type T, never both.

#ifndef LAZYTREE_UTIL_STATUSOR_H_
#define LAZYTREE_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace lazytree {

/// Holds either an error Status or a value.
///
/// Usage:
///   StatusOr<Value> r = tree.Search(k);
///   if (!r.ok()) return r.status();
///   Use(*r);
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lazytree

#endif  // LAZYTREE_UTIL_STATUSOR_H_
