// MpscBatchQueue: the thread transport's inbox.
//
// Multi-producer, single-consumer, swap-the-vector design: producers
// append to a vector under one mutex; the consumer exchanges that vector
// for its own drained one under the same mutex, then processes the whole
// batch lock-free. One lock acquisition per *batch* on the consumer side
// (vs. one per message for BlockingQueue), and the two vectors recycle
// each other's capacity so a steady-state queue stops allocating.
//
// Wakeup discipline (the p99 tail fix): the consumer spins on a lock-free
// size hint before parking, and producers pay the notify syscall only
// when the consumer has actually parked (`parked_` flag, written under
// the mutex so there is no lost-wakeup window). The old design notified
// on every empty->nonempty transition, so under an intermittent load the
// producer ate a futex wake and the consumer a futex sleep on nearly
// every message — that round trip is where the ms-scale p99 came from.

#ifndef LAZYTREE_UTIL_MPSC_QUEUE_H_
#define LAZYTREE_UTIL_MPSC_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lazytree {

/// Pause hint for spin loops: de-pipelines the spinning core without
/// yielding its timeslice (x86 `pause`, ARM `yield`; plain fallback
/// elsewhere). Cheaper than std::this_thread::yield when the wait is
/// expected to be sub-microsecond.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Unbounded MPSC queue drained in batches. Close() wakes the consumer;
/// after close, PopAll keeps returning queued batches until empty.
template <typename T>
class MpscBatchQueue {
 public:
  /// Enqueues one item. Returns false (item dropped) if the queue is
  /// closed.
  bool Push(T item) {
    bool consumer_parked;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      size_hint_.fetch_add(1, std::memory_order_release);
      consumer_parked = parked_;
    }
    // Only a parked consumer needs (or can benefit from) a futex wake; a
    // spinning one observes size_hint_ without our help.
    if (consumer_parked) cv_.notify_one();
    return true;
  }

  /// Blocks until items are available or the queue is closed, then moves
  /// up to `max_items` pending items into `out` (whose previous contents
  /// are cleared — pass the same vector every call to recycle capacity).
  /// Returns false only when the queue is closed *and* drained.
  ///
  /// The bound keeps one flooded inbox from turning into a single
  /// unbounded delivery batch: without it, a burst of N messages is
  /// handled as one atomic chunk during which the worker never revisits
  /// the queue, and every message that arrived mid-chunk waits for the
  /// whole chunk — a tail-latency amplifier proportional to burst size.
  ///
  /// Spin-then-park: before taking the sleep path the consumer spins on
  /// the lock-free size hint (multicore only — on a single hardware
  /// thread spinning just burns the producers' timeslice). Under load
  /// the next batch arrives within microseconds, and dodging the futex
  /// sleep/wake round trip keeps the consumer out of the producers' Push
  /// path entirely.
  bool PopAll(std::vector<T>& out,
              size_t max_items = std::numeric_limits<size_t>::max()) {
    static const int kSpins =
        std::thread::hardware_concurrency() > 1 ? 4096 : 0;
    out.clear();
    if (TakeStaged(out, max_items)) return true;
    for (int spin = 0; spin < kSpins; ++spin) {
      if (size_hint_.load(std::memory_order_acquire) > 0) {
        if (SwapAndTake(out, max_items)) return true;
      }
      if (closed_hint_.load(std::memory_order_acquire)) break;
      CpuRelax();
    }
    std::unique_lock<std::mutex> lock(mu_);
    parked_ = true;
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    parked_ = false;
    if (items_.empty()) return false;
    StageLocked();
    lock.unlock();
    TakeStaged(out, max_items);
    return true;
  }

  /// Non-blocking variant: moves up to `max_items` pending items into
  /// `out`. Returns false when nothing was pending (closed or not).
  bool TryPopAll(std::vector<T>& out,
                 size_t max_items = std::numeric_limits<size_t>::max()) {
    out.clear();
    if (TakeStaged(out, max_items)) return true;
    return SwapAndTake(out, max_items);
  }

  /// Rejects further pushes and wakes a blocked consumer.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      closed_hint_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size() + (staged_.size() - staged_pos_);
  }

 private:
  // Moves up to `max_items` from the staged batch (consumer-owned, no
  // lock needed). Returns true if anything was taken.
  bool TakeStaged(std::vector<T>& out, size_t max_items) {
    if (staged_pos_ >= staged_.size()) return false;
    const size_t take =
        std::min(max_items, staged_.size() - staged_pos_);
    for (size_t i = 0; i < take; ++i) {
      out.push_back(std::move(staged_[staged_pos_ + i]));
    }
    staged_pos_ += take;
    if (staged_pos_ >= staged_.size()) {
      staged_.clear();
      staged_pos_ = 0;
    }
    return true;
  }

  // Swaps the producer vector into the staging area (under the lock),
  // then serves from it. Returns false when nothing was pending.
  bool SwapAndTake(std::vector<T>& out, size_t max_items) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return false;
      StageLocked();
    }
    return TakeStaged(out, max_items);
  }

  // Requires mu_ held and staged_ fully drained: recycle its capacity
  // into the producer vector and take the pending batch.
  void StageLocked() {
    staged_.swap(items_);
    staged_pos_ = 0;
    size_hint_.fetch_sub(staged_.size(), std::memory_order_release);
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> items_;
  bool closed_ = false;
  bool parked_ = false;  // guarded by mu_; read by producers under mu_

  // Lock-free mirror of items_.size() / closed_ for the consumer's spin
  // phase — advisory only; every take re-checks under the mutex.
  std::atomic<size_t> size_hint_{0};
  std::atomic<bool> closed_hint_{false};

  // Consumer-only staging area for bounded drains: a swapped-in batch
  // larger than max_items is served across successive PopAll calls.
  std::vector<T> staged_;
  size_t staged_pos_ = 0;
};

}  // namespace lazytree

#endif  // LAZYTREE_UTIL_MPSC_QUEUE_H_
