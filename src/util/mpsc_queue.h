// MpscBatchQueue: the thread transport's inbox.
//
// Multi-producer, single-consumer, swap-the-vector design: producers
// append to a vector under one mutex; the consumer exchanges that vector
// for its own drained one under the same mutex, then processes the whole
// batch lock-free. One lock acquisition per *batch* on the consumer side
// (vs. one per message for BlockingQueue), and the two vectors recycle
// each other's capacity so a steady-state queue stops allocating.

#ifndef LAZYTREE_UTIL_MPSC_QUEUE_H_
#define LAZYTREE_UTIL_MPSC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lazytree {

/// Unbounded MPSC queue drained in batches. Close() wakes the consumer;
/// after close, PopAll keeps returning queued batches until empty.
template <typename T>
class MpscBatchQueue {
 public:
  /// Enqueues one item. Returns false (item dropped) if the queue is
  /// closed.
  bool Push(T item) {
    bool was_empty;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      was_empty = items_.empty();
      items_.push_back(std::move(item));
    }
    // Only an empty->nonempty transition can have a sleeping consumer.
    if (was_empty) cv_.notify_one();
    return true;
  }

  /// Blocks until items are available or the queue is closed, then swaps
  /// the pending batch into `out` (whose previous contents are cleared —
  /// pass the same vector every call to recycle its capacity). Returns
  /// false only when the queue is closed *and* drained.
  ///
  /// Spins briefly before sleeping (multicore only — on a single
  /// hardware thread yielding in a loop just burns the producers'
  /// timeslice): under load the next batch arrives within microseconds,
  /// and dodging the futex sleep/wake round trip keeps the consumer out
  /// of the producers' Push path (notify_one only pays a syscall when
  /// someone is actually waiting).
  bool PopAll(std::vector<T>& out) {
    static const int kSpins =
        std::thread::hardware_concurrency() > 1 ? 64 : 0;
    out.clear();
    for (int spin = 0; spin < kSpins; ++spin) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!items_.empty()) {
          out.swap(items_);
          return true;
        }
        if (closed_) return false;
      }
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out.swap(items_);
    return true;
  }

  /// Non-blocking variant: swaps out whatever is pending right now.
  /// Returns false when nothing was pending (closed or not).
  bool TryPopAll(std::vector<T>& out) {
    out.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out.swap(items_);
    return true;
  }

  /// Rejects further pushes and wakes a blocked consumer.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> items_;
  bool closed_ = false;
};

}  // namespace lazytree

#endif  // LAZYTREE_UTIL_MPSC_QUEUE_H_
