// Threading primitives used by the thread-backed transport and processors.

#ifndef LAZYTREE_UTIL_THREADING_H_
#define LAZYTREE_UTIL_THREADING_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace lazytree {

/// Unbounded multi-producer multi-consumer blocking queue.
///
/// Close() wakes all blocked poppers; after close, Pop drains remaining
/// items and then returns nullopt.
template <typename T>
class BlockingQueue {
 public:
  /// Enqueues one item. Returns false if the queue is closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Pop with a deadline; nullopt on timeout or closed-and-empty.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects further pushes and wakes all blocked poppers.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Go-style wait group: tracks outstanding work items across threads.
class WaitGroup {
 public:
  void Add(int64_t delta = 1);
  /// Decrements the counter; wakes waiters when it reaches zero.
  void Done();
  /// Blocks until the counter is zero.
  void Wait();
  /// Blocks until zero or timeout; true if the counter reached zero.
  bool WaitFor(std::chrono::milliseconds timeout);
  int64_t Count() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_ = 0;
};

/// Monotonic wall-clock in nanoseconds (benchmark timing).
uint64_t NowNanos();

}  // namespace lazytree

#endif  // LAZYTREE_UTIL_THREADING_H_
