#include "src/util/affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace lazytree {

unsigned AvailableCpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool PinCurrentThreadToCpu(unsigned cpu) {
#if defined(__linux__)
  // Map the dense worker index onto the CPUs actually available to this
  // process (the affinity mask may be sparse inside containers).
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  const int n = CPU_COUNT(&allowed);
  if (n <= 0) return false;
  int target = static_cast<int>(cpu % static_cast<unsigned>(n));
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (!CPU_ISSET(c, &allowed)) continue;
    if (target-- == 0) {
      cpu_set_t one;
      CPU_ZERO(&one);
      CPU_SET(c, &one);
      return pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0;
    }
  }
  return false;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace lazytree
