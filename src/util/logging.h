// Minimal leveled logger. Thread-safe, writes to stderr.
//
// The default level is kWarn so tests and benches stay quiet; set
// LAZYTREE_LOG=debug|info|warn|error (or call SetLogLevel) to change it.

#ifndef LAZYTREE_UTIL_LOGGING_H_
#define LAZYTREE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace lazytree {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted line ("[level file:line] message\n") to stderr.
void LogLine(LogLevel level, const char* file, int line,
             const std::string& message);

/// Stream-style collector used by the LAZYTREE_LOG_* macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define LAZYTREE_LOG(level)                                       \
  if (static_cast<int>(level) < static_cast<int>(                 \
          ::lazytree::GetLogLevel())) {                           \
  } else                                                          \
    ::lazytree::internal::LogMessage(level, __FILE__, __LINE__)   \
        .stream()

#define LAZYTREE_DEBUG LAZYTREE_LOG(::lazytree::LogLevel::kDebug)
#define LAZYTREE_INFO LAZYTREE_LOG(::lazytree::LogLevel::kInfo)
#define LAZYTREE_WARN LAZYTREE_LOG(::lazytree::LogLevel::kWarn)
#define LAZYTREE_ERROR LAZYTREE_LOG(::lazytree::LogLevel::kError)

/// Aborts with a message when `cond` is false. Active in all build types:
/// protocol invariants guard data integrity, so we never compile them out.
#define LAZYTREE_CHECK(cond)                                           \
  if (cond) {                                                          \
  } else                                                               \
    ::lazytree::internal::CheckFailure(__FILE__, __LINE__, #cond)      \
        .stream()

namespace internal {

/// Collects the failure message, prints it, and aborts in the destructor.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace lazytree

#endif  // LAZYTREE_UTIL_LOGGING_H_
