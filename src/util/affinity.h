// CPU affinity pinning for the per-processor worker threads.
//
// Pinning each ThreadNetwork worker to a fixed core keeps a processor's
// node store hot in one L1/L2 and stops the scheduler from migrating
// workers mid-batch (a migration invalidates the cache-resident tree
// upper levels and shows up as a latency spike). Pinning is best-effort:
// on non-Linux hosts or restricted environments the calls are no-ops and
// the transport runs unpinned.

#ifndef LAZYTREE_UTIL_AFFINITY_H_
#define LAZYTREE_UTIL_AFFINITY_H_

namespace lazytree {

/// Number of CPUs the current thread may run on (the affinity mask
/// cardinality, not the machine core count — containers often restrict
/// it). Returns at least 1.
unsigned AvailableCpus();

/// Pins the calling thread to `cpu` (modulo the available-CPU count so
/// callers can pass a dense worker index on any machine). Returns true
/// if the affinity call succeeded, false if unsupported or refused.
bool PinCurrentThreadToCpu(unsigned cpu);

}  // namespace lazytree

#endif  // LAZYTREE_UTIL_AFFINITY_H_
