// Message: an action in flight between two processors.

#ifndef LAZYTREE_MSG_MESSAGE_H_
#define LAZYTREE_MSG_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/msg/action.h"

namespace lazytree {

/// Envelope carrying one or more actions from one processor to another.
///
/// A message normally carries a single action; the piggybacking layer
/// (net/piggyback.h) batches buffered relayed updates onto the next direct
/// message for the same destination, which is why `actions` is a vector —
/// exactly the optimization §1.1 describes.
struct Message {
  /// Reliable-delivery flag bits (net/reliable.h).
  static constexpr uint8_t kHasAck = 1 << 0;      ///< `ack` field is valid
  static constexpr uint8_t kAckOnly = 1 << 1;     ///< pure ack, no payload
  static constexpr uint8_t kRetransmit = 1 << 2;  ///< resent copy

  ProcessorId from = kInvalidProcessor;
  ProcessorId to = kInvalidProcessor;
  uint64_t seq = 0;  ///< per-(from,to) channel sequence, assigned by net
  uint64_t ack = 0;  ///< cumulative ack for the reverse channel (kHasAck)
  uint8_t flags = 0;  ///< Message::kHasAck | kAckOnly | kRetransmit
  std::vector<Action> actions;

  Message() = default;
  Message(ProcessorId f, ProcessorId t, Action a)
      : from(f), to(t), actions{std::move(a)} {}

  std::string ToString() const;
};

}  // namespace lazytree

#endif  // LAZYTREE_MSG_MESSAGE_H_
