// Core identifier and key types shared by every module.
//
// Keys are unsigned 64-bit integers; the maximum value is reserved as the
// +infinity sentinel so that every node range is a half-open interval
// [low, high) and the rightmost node on each level has high == kKeyInfinity.

#ifndef LAZYTREE_MSG_KEY_H_
#define LAZYTREE_MSG_KEY_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace lazytree {

using Key = uint64_t;
using Value = uint64_t;

/// Reserved sentinel: no user key may equal kKeyInfinity.
constexpr Key kKeyInfinity = std::numeric_limits<Key>::max();

/// Half-open key interval [low, high).
struct KeyRange {
  Key low = 0;
  Key high = kKeyInfinity;

  bool Contains(Key k) const { return k >= low && k < high; }
  bool Empty() const { return low >= high; }

  friend bool operator==(const KeyRange&, const KeyRange&) = default;

  std::string ToString() const {
    std::string s = "[" + std::to_string(low) + ",";
    s += high == kKeyInfinity ? std::string("inf") : std::to_string(high);
    s += ")";
    return s;
  }
};

/// Index of a simulated processor (a "server" in the paper's terms).
using ProcessorId = uint32_t;
constexpr ProcessorId kInvalidProcessor =
    std::numeric_limits<ProcessorId>::max();

/// Globally unique logical-node identifier.
///
/// Packs the creating processor in the high 32 bits and a per-processor
/// counter below, so node creation requires no coordination.
struct NodeId {
  uint64_t v = 0;

  static NodeId Make(ProcessorId creator, uint32_t seq) {
    return NodeId{(static_cast<uint64_t>(creator) << 32) | seq};
  }
  ProcessorId creator() const { return static_cast<ProcessorId>(v >> 32); }
  uint32_t seq() const { return static_cast<uint32_t>(v); }
  bool valid() const { return v != 0; }

  friend auto operator<=>(const NodeId&, const NodeId&) = default;

  std::string ToString() const {
    if (!valid()) return "n(null)";
    return "n" + std::to_string(creator()) + "." + std::to_string(seq());
  }
};

constexpr NodeId kInvalidNode{0};

/// Identifier of one client operation (search / insert).
/// Packs the issuing processor and a per-processor counter.
using OpId = uint64_t;
constexpr OpId kNoOp = 0;

inline OpId MakeOpId(ProcessorId origin, uint32_t seq) {
  return (static_cast<OpId>(origin) << 32) | seq;
}
inline ProcessorId OpOrigin(OpId op) {
  return static_cast<ProcessorId>(op >> 32);
}

/// Identifier of one logical *update* (initial insert, split, link-change,
/// join, ...). Relayed copies of an update carry the same UpdateId, which is
/// how the history checkers match actions across copies (§3.1 uniform
/// histories). 0 means "not an update" (search etc.).
using UpdateId = uint64_t;
constexpr UpdateId kNoUpdate = 0;

/// Monotonic per-node version number (§4.2, §4.3). Increments on split,
/// migration, join and unjoin; orders the ordered-action class.
using Version = uint64_t;

}  // namespace lazytree

template <>
struct std::hash<lazytree::NodeId> {
  size_t operator()(const lazytree::NodeId& id) const noexcept {
    return std::hash<uint64_t>()(id.v);
  }
};

#endif  // LAZYTREE_MSG_KEY_H_
