// Wire format: compact binary encoding of messages.
//
// The in-process transports could pass Message objects directly, but the
// library encodes every message to bytes and decodes it at the receiver so
// that (a) byte counts reported by the benches reflect a real RPC cost
// model and (b) nothing accidentally shares mutable state across
// "processors". Varint-based, little-endian, no alignment requirements.

#ifndef LAZYTREE_MSG_WIRE_H_
#define LAZYTREE_MSG_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/msg/message.h"
#include "src/util/statusor.h"

namespace lazytree {
namespace wire {

/// Append-only byte sink.
class Writer {
 public:
  void PutVarint(uint64_t v);
  void PutFixed8(uint8_t v);
  void PutBool(bool v) { PutFixed8(v ? 1 : 0); }
  /// Pre-grows the buffer for `n` more bytes so a burst of small appends
  /// (every field here is a 1-10 byte varint) lands in one allocation.
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked byte source.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}

  StatusOr<uint64_t> GetVarint();
  StatusOr<uint8_t> GetFixed8();
  StatusOr<bool> GetBool();
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Encodes a full message (envelope + all actions).
std::vector<uint8_t> EncodeMessage(const Message& m);

/// Decodes a message; fails on truncation or unknown kinds.
StatusOr<Message> DecodeMessage(const std::vector<uint8_t>& bytes);

/// Encoded size without materializing the buffer (for stats): runs the
/// encoder against a byte-counting sink, so it is exact by construction
/// and cannot drift from EncodeMessage (wire_test asserts this over
/// random messages).
size_t EncodedSize(const Message& m);

// Exposed for unit tests.
void EncodeAction(Writer& w, const Action& a);
StatusOr<Action> DecodeAction(Reader& r);
void EncodeSnapshot(Writer& w, const NodeSnapshot& s);
StatusOr<NodeSnapshot> DecodeSnapshot(Reader& r);

}  // namespace wire
}  // namespace lazytree

#endif  // LAZYTREE_MSG_WIRE_H_
