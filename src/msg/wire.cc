#include "src/msg/wire.h"

namespace lazytree {
namespace wire {

void Writer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Writer::PutFixed8(uint8_t v) { buf_.push_back(v); }

StatusOr<uint64_t> Reader::GetVarint() {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (pos_ >= size_) return Status::InvalidArgument("truncated varint");
    uint8_t byte = data_[pos_++];
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return result;
  }
  return Status::InvalidArgument("varint too long");
}

StatusOr<uint8_t> Reader::GetFixed8() {
  if (pos_ >= size_) return Status::InvalidArgument("truncated byte");
  return data_[pos_++];
}

StatusOr<bool> Reader::GetBool() {
  auto b = GetFixed8();
  if (!b.ok()) return b.status();
  return *b != 0;
}

namespace {

// Byte-counting stand-in for Writer. The encoders below are templated
// over the sink, so EncodedSize runs the exact same field walk as
// EncodeMessage and the two can never disagree.
class SizeCounter {
 public:
  void PutVarint(uint64_t v) {
    // Branchless varint length: ceil(bits/7) via count-leading-zeros.
    // This keeps the fast-path stats walk well under the cost of the
    // encode it replaced (the shift loop costs ~1 iteration per byte).
#if defined(__GNUC__) || defined(__clang__)
    n_ += static_cast<size_t>(70 - __builtin_clzll(v | 1)) / 7;
#else
    do {
      ++n_;
      v >>= 7;
    } while (v != 0);
#endif
  }
  void PutFixed8(uint8_t) { ++n_; }
  void PutBool(bool) { ++n_; }
  void Reserve(size_t) {}
  size_t size() const { return n_; }

 private:
  size_t n_ = 0;
};

// Cheap upper-bound-ish reserve hints (most varints here are 1-5 bytes);
// a slightly-generous guess that avoids reallocation beats an exact
// second pass.
size_t SnapshotReserveHint(const NodeSnapshot& s) {
  if (!s.valid()) return 1;
  return 64 + 10 * s.entries.size() + 5 * s.copies.size() +
         5 * s.applied_updates.size();
}

size_t MessageReserveHint(const Message& m) {
  size_t n = 16;
  for (const Action& a : m.actions) {
    n += 72 + 5 * a.members.size() + 10 * a.range_results.size() +
         SnapshotReserveHint(a.snapshot);
  }
  return n;
}

template <typename Sink>
void EncodeSnapshotTo(Sink& w, const NodeSnapshot& s) {
  w.PutBool(s.valid());
  if (!s.valid()) return;
  w.PutVarint(s.id.v);
  w.PutVarint(static_cast<uint64_t>(s.level));
  w.PutVarint(s.range.low);
  w.PutVarint(s.range.high);
  w.PutVarint(s.version);
  w.PutVarint(s.right.v);
  w.PutVarint(s.right_low);
  w.PutVarint(s.left.v);
  w.PutVarint(s.parent.v);
  for (Version v : s.link_versions) w.PutVarint(v);
  w.PutVarint(s.entries.size());
  // Delta-encode keys: entries are kept sorted, so deltas stay small.
  Key prev = 0;
  for (const Entry& e : s.entries) {
    w.PutVarint(e.key - prev);
    prev = e.key;
    w.PutVarint(e.payload);
  }
  w.PutVarint(s.copies.size());
  for (ProcessorId p : s.copies) w.PutVarint(p);
  w.PutVarint(s.pc == kInvalidProcessor ? 0 : s.pc + 1);
  w.PutVarint(s.applied_updates.size());
  for (UpdateId u : s.applied_updates) w.PutVarint(u);
}

template <typename Sink>
void EncodeActionTo(Sink& w, const Action& a) {
  w.PutFixed8(static_cast<uint8_t>(a.kind));
  w.PutVarint(a.target.v);
  w.PutVarint(a.op);
  w.PutVarint(a.update);
  w.PutVarint(a.key);
  w.PutVarint(a.value);
  w.PutBool(a.found);
  w.PutFixed8(static_cast<uint8_t>(a.rc));
  w.PutVarint(a.version);
  w.PutVarint(a.origin == kInvalidProcessor ? 0 : a.origin + 1);
  w.PutVarint(static_cast<uint64_t>(a.level + 1));  // -1 encodes as 0
  w.PutVarint(a.hops);
  w.PutVarint(a.new_node.v);
  w.PutVarint(a.sep);
  w.PutFixed8(static_cast<uint8_t>(a.link));
  w.PutVarint(a.members.size());
  for (ProcessorId p : a.members) w.PutVarint(p);
  w.PutVarint(a.range_results.size());
  {
    Key prev = 0;
    for (const Entry& e : a.range_results) {
      w.PutVarint(e.key - prev);
      prev = e.key;
      w.PutVarint(e.payload);
    }
  }
  EncodeSnapshotTo(w, a.snapshot);
}

template <typename Sink>
void EncodeMessageTo(Sink& w, const Message& m) {
  w.PutVarint(m.from == kInvalidProcessor ? 0 : m.from + 1);
  w.PutVarint(m.to == kInvalidProcessor ? 0 : m.to + 1);
  w.PutVarint(m.seq);
  w.PutVarint(m.ack);
  w.PutFixed8(m.flags);
  w.PutVarint(m.actions.size());
  for (const Action& a : m.actions) EncodeActionTo(w, a);
}

}  // namespace

void EncodeSnapshot(Writer& w, const NodeSnapshot& s) {
  w.Reserve(SnapshotReserveHint(s));
  EncodeSnapshotTo(w, s);
}

void EncodeAction(Writer& w, const Action& a) { EncodeActionTo(w, a); }

std::vector<uint8_t> EncodeMessage(const Message& m) {
  Writer w;
  w.Reserve(MessageReserveHint(m));
  EncodeMessageTo(w, m);
  return w.Take();
}

size_t EncodedSize(const Message& m) {
  SizeCounter c;
  EncodeMessageTo(c, m);
  return c.size();
}

StatusOr<NodeSnapshot> DecodeSnapshot(Reader& r) {
  NodeSnapshot s;
  auto present = r.GetBool();
  if (!present.ok()) return present.status();
  if (!*present) return s;

#define LT_GET(var, expr)                   \
  do {                                      \
    auto _v = (expr);                       \
    if (!_v.ok()) return _v.status();       \
    var = *_v;                              \
  } while (0)

  uint64_t tmp;
  LT_GET(s.id.v, r.GetVarint());
  LT_GET(tmp, r.GetVarint());
  s.level = static_cast<int32_t>(tmp);
  LT_GET(s.range.low, r.GetVarint());
  LT_GET(s.range.high, r.GetVarint());
  LT_GET(s.version, r.GetVarint());
  LT_GET(s.right.v, r.GetVarint());
  LT_GET(s.right_low, r.GetVarint());
  LT_GET(s.left.v, r.GetVarint());
  LT_GET(s.parent.v, r.GetVarint());
  for (Version& v : s.link_versions) LT_GET(v, r.GetVarint());
  uint64_t n;
  LT_GET(n, r.GetVarint());
  s.entries.resize(n);
  Key prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t delta;
    LT_GET(delta, r.GetVarint());
    prev += delta;
    s.entries[i].key = prev;
    LT_GET(s.entries[i].payload, r.GetVarint());
  }
  LT_GET(n, r.GetVarint());
  s.copies.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    LT_GET(tmp, r.GetVarint());
    s.copies[i] = static_cast<ProcessorId>(tmp);
  }
  LT_GET(tmp, r.GetVarint());
  s.pc = tmp == 0 ? kInvalidProcessor : static_cast<ProcessorId>(tmp - 1);
  LT_GET(n, r.GetVarint());
  s.applied_updates.resize(n);
  for (uint64_t i = 0; i < n; ++i) LT_GET(s.applied_updates[i], r.GetVarint());
  return s;
}

StatusOr<Action> DecodeAction(Reader& r) {
  Action a;
  uint64_t tmp;
  auto kind = r.GetFixed8();
  if (!kind.ok()) return kind.status();
  if (*kind == 0 || *kind >= static_cast<uint8_t>(ActionKind::kMaxKind)) {
    return Status::InvalidArgument("unknown action kind");
  }
  a.kind = static_cast<ActionKind>(*kind);
  LT_GET(a.target.v, r.GetVarint());
  LT_GET(a.op, r.GetVarint());
  LT_GET(a.update, r.GetVarint());
  LT_GET(a.key, r.GetVarint());
  LT_GET(a.value, r.GetVarint());
  LT_GET(a.found, r.GetBool());
  {
    auto rc = r.GetFixed8();
    if (!rc.ok()) return rc.status();
    if (*rc > static_cast<uint8_t>(Action::Rc::kExists)) {
      return Status::InvalidArgument("bad rc");
    }
    a.rc = static_cast<Action::Rc>(*rc);
  }
  LT_GET(a.version, r.GetVarint());
  LT_GET(tmp, r.GetVarint());
  a.origin = tmp == 0 ? kInvalidProcessor : static_cast<ProcessorId>(tmp - 1);
  LT_GET(tmp, r.GetVarint());
  a.level = static_cast<int32_t>(tmp) - 1;
  LT_GET(tmp, r.GetVarint());
  a.hops = static_cast<uint32_t>(tmp);
  LT_GET(a.new_node.v, r.GetVarint());
  LT_GET(a.sep, r.GetVarint());
  auto link = r.GetFixed8();
  if (!link.ok()) return link.status();
  if (*link > static_cast<uint8_t>(LinkKind::kParent)) {
    return Status::InvalidArgument("bad link kind");
  }
  a.link = static_cast<LinkKind>(*link);
  uint64_t n;
  LT_GET(n, r.GetVarint());
  a.members.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    LT_GET(tmp, r.GetVarint());
    a.members[i] = static_cast<ProcessorId>(tmp);
  }
  LT_GET(n, r.GetVarint());
  a.range_results.resize(n);
  {
    Key prev = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t delta;
      LT_GET(delta, r.GetVarint());
      prev += delta;
      a.range_results[i].key = prev;
      LT_GET(a.range_results[i].payload, r.GetVarint());
    }
  }
  auto snap = DecodeSnapshot(r);
  if (!snap.ok()) return snap.status();
  a.snapshot = std::move(*snap);
  return a;
}

StatusOr<Message> DecodeMessage(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  Message m;
  uint64_t tmp;
  LT_GET(tmp, r.GetVarint());
  m.from = tmp == 0 ? kInvalidProcessor : static_cast<ProcessorId>(tmp - 1);
  LT_GET(tmp, r.GetVarint());
  m.to = tmp == 0 ? kInvalidProcessor : static_cast<ProcessorId>(tmp - 1);
  LT_GET(m.seq, r.GetVarint());
  LT_GET(m.ack, r.GetVarint());
  LT_GET(m.flags, r.GetFixed8());
  uint64_t n;
  LT_GET(n, r.GetVarint());
  m.actions.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    auto a = DecodeAction(r);
    if (!a.ok()) return a.status();
    m.actions.push_back(std::move(*a));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes");
  return m;
#undef LT_GET
}

}  // namespace wire
}  // namespace lazytree
