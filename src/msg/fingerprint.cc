#include "src/msg/fingerprint.h"

#include "src/msg/wire.h"

namespace lazytree {

void MixAction(Fingerprint& fp, const Action& a) {
  wire::Writer w;
  wire::EncodeAction(w, a);
  fp.MixBytes(w.Take());
}

void MixSnapshot(Fingerprint& fp, const NodeSnapshot& s) {
  wire::Writer w;
  wire::EncodeSnapshot(w, s);
  fp.MixBytes(w.Take());
}

}  // namespace lazytree
