// Actions: the unit of work in the paper's execution model (§3).
//
// An operation (search / insert) is executed as a chain of actions on node
// copies. Executing an action at a copy yields a new copy value plus a set
// of subsequent actions, each routed to the processor storing its target
// copy. Initial actions are performed at one copy first; update actions are
// then relayed to the remaining copies (lowercase in the paper).

#ifndef LAZYTREE_MSG_ACTION_H_
#define LAZYTREE_MSG_ACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/msg/key.h"

namespace lazytree {

/// One key → payload entry. At leaf level the payload is a Value; at
/// interior levels it is the NodeId (as uint64) of the child whose range
/// starts at `key`.
struct Entry {
  Key key = 0;
  uint64_t payload = 0;
  friend bool operator==(const Entry&, const Entry&) = default;
  friend bool operator<(const Entry& a, const Entry& b) {
    return a.key < b.key;
  }
};

/// Serializable image of a node copy: used to seed new copies (sibling
/// creation, join grants, migration) — the paper's "original value" of a
/// copy, i.e. the backwards extension it starts from (§3.1).
struct NodeSnapshot {
  NodeId id = kInvalidNode;
  int32_t level = 0;  ///< 0 = leaf
  KeyRange range;
  Version version = 0;
  NodeId right = kInvalidNode;   ///< right sibling (B-link pointer)
  Key right_low = kKeyInfinity;  ///< low key of the right sibling
  NodeId left = kInvalidNode;    ///< left sibling (§4.2 needs both links)
  NodeId parent = kInvalidNode;
  /// Version of the last applied link-change per LinkKind (§4.2 gating).
  Version link_versions[3] = {0, 0, 0};
  std::vector<Entry> entries;
  std::vector<ProcessorId> copies;  ///< processors replicating this node
  ProcessorId pc = kInvalidProcessor;  ///< primary copy
  /// Update ids already folded into this snapshot; a copy seeded from it
  /// inherits them as its backwards extension for history checking.
  std::vector<UpdateId> applied_updates;

  bool valid() const { return id.valid(); }
};

/// Every kind of action exchanged by the protocols.
enum class ActionKind : uint8_t {
  kInvalid = 0,

  // --- client operations (non-update navigation + completion) ---
  kSearch,        ///< navigate toward `key`, reply with value or not-found
  kInsertOp,      ///< navigate toward `key`, then perform an initial insert
  kDeleteOp,      ///< navigate toward `key`, then perform an initial delete
  kScanOp,        ///< range read: walk leaves rightward from `key`
  kReturnValue,   ///< completion message back to the originating processor

  // --- fixed-copies protocols (§4.1) ---
  kInsert,        ///< initial insert I at a copy (leaf or interior)
  kRelayedInsert, ///< relayed insert i to the other copies
  kDelete,        ///< initial delete at a leaf copy (free-at-empty, [11])
  kRelayedDelete, ///< relayed delete to the other copies (lazy update)
  kSplitStart,    ///< AAS start (synchronous protocol only)
  kSplitAck,      ///< copy acknowledges the AAS start to the PC
  kSplitEnd,      ///< AAS end: carries the split outcome to apply
  kRelayedSplit,  ///< relayed half-split s (semi-synchronous protocol)
  kCreateNode,    ///< install a brand-new copy from a snapshot
  kRootHint,      ///< lazily announce a new root (id + level)

  // --- mobile / variable-copies protocols (§4.2, §4.3) ---
  kLinkChange,    ///< ordered action: re-point a link, gated by version
  kRelayedLinkChange,  ///< PC-relayed link-change (replicated neighbors)
  kMigrateNode,   ///< install a migrated node at its new host
  kMigrateAck,    ///< new host confirms installation to the old host
  kJoin,          ///< processor asks the PC to join copies(n)
  kJoinGrant,     ///< PC → requester: snapshot + membership
  kRelayedJoin,   ///< PC → existing copies: membership/version update
  kUnjoin,        ///< processor asks the PC to leave copies(n)
  kRelayedUnjoin, ///< PC → remaining copies: membership/version update

  // --- vigorous (available-copies) baseline ---
  kVigorousLock,    ///< lock request to every copy
  kVigorousLockAck, ///< copy granted the lock
  kVigorousApply,   ///< apply an insert at every copy (also unlocks)
  kVigorousApplyDelete, ///< apply a delete at every copy (also unlocks)
  kVigorousApplySplit, ///< apply a split at every copy (also unlocks)
  kVigorousApplyAck,///< copy applied the update
  kVigorousUnlock,  ///< release

  kMaxKind,
};

const char* ActionKindName(ActionKind kind);

/// True for kinds that modify node state (the paper's update actions);
/// non-update actions need not execute at every copy (§3.1).
constexpr bool IsUpdateKind(ActionKind kind) {
  switch (kind) {
    case ActionKind::kInsert:
    case ActionKind::kRelayedInsert:
    case ActionKind::kDelete:
    case ActionKind::kRelayedDelete:
    case ActionKind::kSplitEnd:
    case ActionKind::kRelayedSplit:
    case ActionKind::kLinkChange:
    case ActionKind::kRelayedLinkChange:
    case ActionKind::kMigrateNode:
    case ActionKind::kJoin:
    case ActionKind::kRelayedJoin:
    case ActionKind::kUnjoin:
    case ActionKind::kRelayedUnjoin:
    case ActionKind::kVigorousApply:
    case ActionKind::kVigorousApplyDelete:
    case ActionKind::kVigorousApplySplit:
      return true;
    default:
      return false;
  }
}

// --- action commutativity (§3.1) -----------------------------------------
//
// The paper's correctness argument partitions update actions into classes:
// lazy updates (relayed inserts / deletes / splits) commute — applying them
// at a copy in either order yields the same final value, which is exactly
// what makes them safe to delay, batch, and piggyback (§1.1) — while the
// ordered-action classes (link-changes; membership registrations, which
// include joins, unjoins, and migrations; the vigorous baseline's
// lock-step applies) must be applied in version order at every copy and
// therefore do not commute among themselves. CheckOrdered (history/checker)
// enforces the run-time half of this contract; the table below is the
// compile-time half, and lazytree_lint verifies the switch stays total
// when kinds are added.

/// Commutativity class of an action kind.
enum class OrderClass : uint8_t {
  kNonUpdate,   ///< navigation/ack/completion: no node mutation, vacuous
  kLazy,        ///< lazy updates: commute freely (§3.1)
  kLinkOrder,   ///< link-changes: version-ordered (§4.2 gating)
  kMembership,  ///< join/unjoin/migrate: version-ordered registrations
  kLockStep,    ///< vigorous applies: serialized externally by locks
};

constexpr OrderClass OrderClassOf(ActionKind kind) {
  switch (kind) {
    case ActionKind::kInsert:
    case ActionKind::kRelayedInsert:
    case ActionKind::kDelete:
    case ActionKind::kRelayedDelete:
    case ActionKind::kSplitEnd:
    case ActionKind::kRelayedSplit:
      return OrderClass::kLazy;
    case ActionKind::kLinkChange:
    case ActionKind::kRelayedLinkChange:
      return OrderClass::kLinkOrder;
    case ActionKind::kMigrateNode:
    case ActionKind::kJoin:
    case ActionKind::kRelayedJoin:
    case ActionKind::kUnjoin:
    case ActionKind::kRelayedUnjoin:
      return OrderClass::kMembership;
    case ActionKind::kVigorousApply:
    case ActionKind::kVigorousApplyDelete:
    case ActionKind::kVigorousApplySplit:
      return OrderClass::kLockStep;
    case ActionKind::kInvalid:
    case ActionKind::kSearch:
    case ActionKind::kInsertOp:
    case ActionKind::kDeleteOp:
    case ActionKind::kScanOp:
    case ActionKind::kReturnValue:
    case ActionKind::kSplitStart:
    case ActionKind::kSplitAck:
    case ActionKind::kCreateNode:
    case ActionKind::kRootHint:
    case ActionKind::kMigrateAck:
    case ActionKind::kJoinGrant:
    case ActionKind::kVigorousLock:
    case ActionKind::kVigorousLockAck:
    case ActionKind::kVigorousApplyAck:
    case ActionKind::kVigorousUnlock:
    case ActionKind::kMaxKind:
      return OrderClass::kNonUpdate;
  }
  return OrderClass::kNonUpdate;  // unreachable; keeps -Wreturn-type quiet
}

/// True when applying `a` then `b` at one copy equals applying `b` then
/// `a`. Total over ActionKind x ActionKind and symmetric by construction
/// (both facts are static_asserted below).
constexpr bool ActionsCommute(ActionKind a, ActionKind b) {
  const OrderClass ca = OrderClassOf(a);
  const OrderClass cb = OrderClassOf(b);
  // Non-updates mutate nothing: vacuously commute with everything.
  if (ca == OrderClass::kNonUpdate || cb == OrderClass::kNonUpdate) {
    return true;
  }
  // Lazy updates commute with every update (the paper's core property).
  if (ca == OrderClass::kLazy || cb == OrderClass::kLazy) return true;
  // Two ordered actions never commute — same class shares a version
  // sequence, and link/membership classes share the node's version
  // counter (§4.2: migration bumps it for both).
  return false;
}

namespace action_internal {

/// Compile-time audit of the commutativity relation: every kind (including
/// future additions, up to kMaxKind) must classify consistently with
/// IsUpdateKind, and the relation must be symmetric and reflexive-sane.
constexpr bool CommutativityTableIsSound() {
  constexpr int n = static_cast<int>(ActionKind::kMaxKind);
  for (int i = 0; i <= n; ++i) {
    const ActionKind a = static_cast<ActionKind>(i);
    // Totality + consistency: updates have an ordered-or-lazy class,
    // non-updates classify kNonUpdate.
    if ((OrderClassOf(a) != OrderClass::kNonUpdate) != IsUpdateKind(a)) {
      return false;
    }
    for (int j = 0; j <= n; ++j) {
      const ActionKind b = static_cast<ActionKind>(j);
      // Symmetry.
      if (ActionsCommute(a, b) != ActionsCommute(b, a)) return false;
    }
    // An ordered action cannot commute with itself.
    if (IsUpdateKind(a) && OrderClassOf(a) != OrderClass::kLazy &&
        ActionsCommute(a, a)) {
      return false;
    }
  }
  return true;
}

}  // namespace action_internal

static_assert(action_internal::CommutativityTableIsSound(),
              "action commutativity table must be total, symmetric, and "
              "consistent with IsUpdateKind — update OrderClassOf when "
              "adding an ActionKind");

/// Which link a kLinkChange re-points.
enum class LinkKind : uint8_t { kRight = 0, kLeft = 1, kParent = 2 };

/// One action plus its routing metadata. A single struct covers all kinds;
/// unused fields stay at their defaults and encode compactly (wire.h).
struct Action {
  ActionKind kind = ActionKind::kInvalid;
  NodeId target = kInvalidNode;  ///< logical node the action addresses
  OpId op = kNoOp;               ///< originating client operation, if any
  UpdateId update = kNoUpdate;   ///< stable id of the logical update

  Key key = 0;
  Value value = 0;
  bool found = false;  ///< kReturnValue: search hit?

  /// kReturnValue outcome discriminator.
  enum class Rc : uint8_t { kNone = 0, kOk = 1, kNotFound = 2, kExists = 3 };
  Rc rc = Rc::kNone;

  Version version = 0;      ///< version attached to the action
  ProcessorId origin = kInvalidProcessor;  ///< issuing processor
  int32_t level = -1;       ///< destination level for routing (-1 = any)
  uint32_t hops = 0;        ///< node visits so far (diagnostics, Fig. 2)

  // Split / link-change payload.
  NodeId new_node = kInvalidNode;  ///< new sibling / new link target
  Key sep = 0;                     ///< separator key (new sibling's low)
  LinkKind link = LinkKind::kRight;

  // Membership payload (join / unjoin / create).
  std::vector<ProcessorId> members;

  // Node payload (create / join grant / migrate / split end).
  NodeSnapshot snapshot;

  // Scan accumulator (kScanOp gathers as it walks; kReturnValue carries
  // the final batch home). `value` holds the scan limit.
  std::vector<Entry> range_results;

  std::string ToString() const;

  /// Initial/relayed distinction (§3): relays never spawn client-visible
  /// subsequent actions.
  bool IsRelayed() const {
    return kind == ActionKind::kRelayedInsert ||
           kind == ActionKind::kRelayedDelete ||
           kind == ActionKind::kRelayedSplit ||
           kind == ActionKind::kRelayedLinkChange ||
           kind == ActionKind::kRelayedJoin ||
           kind == ActionKind::kRelayedUnjoin;
  }
};

}  // namespace lazytree

#endif  // LAZYTREE_MSG_ACTION_H_
