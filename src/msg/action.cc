#include "src/msg/action.h"

#include <sstream>

namespace lazytree {

const char* ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kInvalid: return "invalid";
    case ActionKind::kSearch: return "search";
    case ActionKind::kInsertOp: return "insert_op";
    case ActionKind::kDeleteOp: return "delete_op";
    case ActionKind::kScanOp: return "scan_op";
    case ActionKind::kReturnValue: return "return_value";
    case ActionKind::kInsert: return "Insert";
    case ActionKind::kRelayedInsert: return "insert";
    case ActionKind::kDelete: return "Delete";
    case ActionKind::kRelayedDelete: return "delete";
    case ActionKind::kSplitStart: return "split_start";
    case ActionKind::kSplitAck: return "split_ack";
    case ActionKind::kSplitEnd: return "split_end";
    case ActionKind::kRelayedSplit: return "split";
    case ActionKind::kCreateNode: return "create_node";
    case ActionKind::kRootHint: return "root_hint";
    case ActionKind::kLinkChange: return "link_change";
    case ActionKind::kRelayedLinkChange: return "relayed_link_change";
    case ActionKind::kMigrateNode: return "migrate_node";
    case ActionKind::kMigrateAck: return "migrate_ack";
    case ActionKind::kJoin: return "join";
    case ActionKind::kJoinGrant: return "join_grant";
    case ActionKind::kRelayedJoin: return "relayed_join";
    case ActionKind::kUnjoin: return "unjoin";
    case ActionKind::kRelayedUnjoin: return "relayed_unjoin";
    case ActionKind::kVigorousLock: return "vig_lock";
    case ActionKind::kVigorousLockAck: return "vig_lock_ack";
    case ActionKind::kVigorousApply: return "vig_apply";
    case ActionKind::kVigorousApplyDelete: return "vig_apply_delete";
    case ActionKind::kVigorousApplySplit: return "vig_apply_split";
    case ActionKind::kVigorousApplyAck: return "vig_apply_ack";
    case ActionKind::kVigorousUnlock: return "vig_unlock";
    case ActionKind::kMaxKind: return "max_kind";
  }
  return "?";
}

std::string Action::ToString() const {
  std::ostringstream os;
  os << ActionKindName(kind) << "(" << target.ToString();
  if (op != kNoOp) os << " op=" << op;
  if (update != kNoUpdate) os << " u=" << update;
  switch (kind) {
    case ActionKind::kSearch:
    case ActionKind::kInsertOp:
    case ActionKind::kInsert:
    case ActionKind::kRelayedInsert:
    case ActionKind::kDeleteOp:
    case ActionKind::kScanOp:
    case ActionKind::kDelete:
    case ActionKind::kRelayedDelete:
      os << " key=" << key << " val=" << value;
      break;
    case ActionKind::kReturnValue:
      os << " key=" << key << " found=" << (found ? "y" : "n");
      break;
    case ActionKind::kSplitEnd:
    case ActionKind::kRelayedSplit:
      os << " sep=" << sep << " sib=" << new_node.ToString();
      break;
    case ActionKind::kLinkChange:
      os << " link=" << static_cast<int>(link) << " ->"
         << new_node.ToString() << " v=" << version;
      break;
    default:
      break;
  }
  if (version != 0) os << " v=" << version;
  os << ")";
  return os.str();
}

}  // namespace lazytree
