#include "src/msg/message.h"

#include <sstream>

namespace lazytree {

std::string Message::ToString() const {
  std::ostringstream os;
  os << "p" << from << "->p" << to << "#" << seq;
  if (flags & kHasAck) os << "~a" << ack;
  if (flags & kAckOnly) os << "!ack";
  if (flags & kRetransmit) os << "!rtx";
  os << "{";
  for (size_t i = 0; i < actions.size(); ++i) {
    if (i) os << ", ";
    os << actions[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace lazytree
