// Canonical state fingerprints for the exhaustive verifier.
//
// A Fingerprint is an order-sensitive FNV-1a accumulator over 64-bit words
// and byte ranges. The exhaustive model checker (src/sim/exhaustive.*) folds
// every piece of observable simulation state — node stores, in-flight
// messages, op trackers, protocol-handler scratch state, history records —
// into one digest and uses it to deduplicate revisited states, so every
// mixer must be *canonical*: two states that are behaviorally identical must
// mix the same words in the same order regardless of which interleaving
// produced them (sort unordered containers; never mix raw pointers, wall
// clock, or global append orders that vary across equivalent schedules).
//
// Actions and node snapshots are mixed through their wire encoding
// (wire::EncodeAction / wire::EncodeSnapshot), which already covers every
// field — the lint wire-coverage pass keeps that honest, so a new Action
// field is automatically part of the fingerprint.

#ifndef LAZYTREE_MSG_FINGERPRINT_H_
#define LAZYTREE_MSG_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/msg/action.h"

namespace lazytree {

class Fingerprint {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= kPrime;
    }
  }
  void MixBytes(const uint8_t* data, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h_ ^= data[i];
      h_ *= kPrime;
    }
  }
  void MixBytes(const std::vector<uint8_t>& bytes) {
    MixBytes(bytes.data(), bytes.size());
  }

  uint64_t digest() const { return h_; }

 private:
  static constexpr uint64_t kOffset = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t h_ = kOffset;
};

/// Mixes an action via its wire encoding (covers every field).
void MixAction(Fingerprint& fp, const Action& a);

/// Mixes a node snapshot via its wire encoding (covers every field,
/// including entries, copy sets, and applied-update ids).
void MixSnapshot(Fingerprint& fp, const NodeSnapshot& s);

}  // namespace lazytree

#endif  // LAZYTREE_MSG_FINGERPRINT_H_
