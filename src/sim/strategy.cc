#include "src/sim/strategy.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lazytree::sim {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kUniform: return "uniform";
    case StrategyKind::kPct: return "pct";
    case StrategyKind::kStarve: return "starve";
  }
  return "?";
}

bool ParseStrategyKind(const std::string& name, StrategyKind* out) {
  if (name == "uniform") *out = StrategyKind::kUniform;
  else if (name == "pct") *out = StrategyKind::kPct;
  else if (name == "starve") *out = StrategyKind::kStarve;
  else return false;
  return true;
}

PctStrategy::PctStrategy(uint64_t seed, uint32_t depth,
                         uint64_t expected_events)
    : rng_(seed ^ 0x9C7ull) {
  LAZYTREE_CHECK(depth >= 1) << "PCT depth must be >= 1";
  // d-1 change points, uniform over [1, k], applied in ascending step
  // order (stored descending so back() is next).
  for (uint32_t i = 0; i + 1 < depth; ++i) {
    change_points_.push_back(rng_.Range(1, std::max<uint64_t>(
                                               expected_events, 1)));
  }
  std::sort(change_points_.rbegin(), change_points_.rend());
}

uint64_t PctStrategy::PriorityOf(const ChannelKey& key) {
  auto it = priorities_.find(key);
  if (it != priorities_.end()) return it->second;
  // Initial priorities live strictly above the demoted band.
  uint64_t priority = kDemotedBase + 1 + rng_.Next() % (1ull << 31);
  priorities_.emplace(key, priority);
  return priority;
}

size_t PctStrategy::PickChannel(
    const std::vector<net::ChannelView>& channels) {
  ++steps_;
  size_t best = 0;
  uint64_t best_priority = 0;
  for (size_t i = 0; i < channels.size(); ++i) {
    uint64_t priority = PriorityOf({channels[i].from, channels[i].to});
    if (i == 0 || priority > best_priority) {
      best = i;
      best_priority = priority;
    }
  }
  if (!change_points_.empty() && steps_ >= change_points_.back()) {
    change_points_.pop_back();
    ++change_points_hit_;
    // Demote the channel that was about to run below everything seen so
    // far; it delivers this one message, then yields.
    priorities_[{channels[best].from, channels[best].to}] = --next_demoted_;
  }
  return best;
}

StarvationStrategy::StarvationStrategy(uint64_t seed, ProcessorId victim,
                                       uint32_t max_starve)
    : rng_(seed ^ 0x57a8ull), victim_(victim),
      max_starve_(std::max(max_starve, 1u)) {}

size_t StarvationStrategy::PickChannel(
    const std::vector<net::ChannelView>& channels) {
  candidates_.clear();
  for (size_t i = 0; i < channels.size(); ++i) {
    if (channels[i].to != victim_) candidates_.push_back(i);
  }
  const bool victim_has_work = candidates_.size() < channels.size();
  if (!victim_has_work) {
    starved_run_ = 0;
    return rng_.Below(channels.size());
  }
  if (candidates_.empty() || starved_run_ >= max_starve_) {
    // Fairness release: deliver one starved message so episodes quiesce.
    starved_run_ = 0;
    size_t victim_index = rng_.Below(channels.size() - candidates_.size());
    for (size_t i = 0; i < channels.size(); ++i) {
      if (channels[i].to != victim_) continue;
      if (victim_index == 0) return i;
      --victim_index;
    }
    return 0;  // unreachable
  }
  ++starved_run_;
  return candidates_[rng_.Below(candidates_.size())];
}

std::unique_ptr<net::ScheduleStrategy> MakeStrategy(
    const StrategyOptions& options) {
  switch (options.kind) {
    case StrategyKind::kUniform:
      return std::make_unique<UniformStrategy>(options.seed);
    case StrategyKind::kPct:
      return std::make_unique<PctStrategy>(options.seed, options.pct_depth,
                                           options.pct_expected_events);
    case StrategyKind::kStarve:
      return std::make_unique<StarvationStrategy>(
          options.seed, options.starve_victim, options.starve_cap);
  }
  return nullptr;
}

}  // namespace lazytree::sim
