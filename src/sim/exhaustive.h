// Exhaustive bounded model checking over delivery schedules.
//
// VerifyExhaustive enumerates EVERY delivery schedule of a small episode
// (2-3 processors, a handful of operations, optionally one crash/restart)
// and runs the full §3.1 verification battery — complete, compatible,
// ordered — at every quiescent point of every schedule. Where the random
// strategies in strategy.h *sample* the schedule space, this is a proof by
// exhaustion for the bounded configuration.
//
// Mechanically it is a stateless-re-execution DFS (CHESS-style): the
// episode machinery (explorer.h) cannot checkpoint a cluster mid-flight,
// so the checker replays the decision prefix from scratch on every
// execution, extends it by fresh choices until the episode completes, and
// backtracks by advancing the deepest frame with an unexplored candidate.
// ExhaustiveStrategy is the ScheduleStrategy that carries the persistent
// frame stack across executions.
//
// Two reductions keep the space tractable:
//
//   * Commutativity-guided partial-order reduction (sleep sets). When the
//     head messages of two pending channels are independent — different
//     destination processors AND every cross pair of their actions either
//     commutes per ActionsCommute (§3.1) or targets different nodes —
//     delivering them in either order reaches the same state, so only one
//     order is explored. Implemented as classic sleep sets: after a
//     branch t is fully explored, t is put to sleep in the siblings that
//     are independent of the transition actually taken, and sleeping
//     transitions are pruned from candidate sets. Sound for properties
//     evaluated at quiescent points, which every complete schedule
//     reaches. A sampled runtime cross-check re-executes pruned pairs in
//     both orders and compares state fingerprints, guarding the
//     independence relation itself against drift.
//
//   * State-fingerprint deduplication. A canonical FNV-1a fingerprint of
//     the entire configuration (node stores, protocol handler state,
//     in-flight messages, op tracker, history log, crash flags) names each
//     reached state; when a state already fully explored under an empty
//     sleep set is reached again by a different prefix, the execution is
//     cut and drained deterministically instead of re-expanding the
//     subtree. Fingerprints are recorded only for empty-sleep frames,
//     which sidesteps the classic sleep-set/state-caching unsoundness
//     (a cached state reached with a *smaller* sleep set must not be
//     skipped).
//
// Near a planned crash/restart the fence kicks in: sleep filtering is
// disabled for decisions within two deliveries of a crash-plan event,
// because reordering across the crash boundary changes which messages die.
//
// Self-test support: planting a ScheduleMutation (net/schedule_hook.h) in
// the episode config makes the protocol genuinely misbehave once —
// dropping a relayed lazy update, or swapping a version-ordered membership
// pair past each other — and the checker must find a violating schedule
// and emit a minimized trace replayable by `lazytree_explore replay`.

#ifndef LAZYTREE_SIM_EXHAUSTIVE_H_
#define LAZYTREE_SIM_EXHAUSTIVE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/sim/explorer.h"

namespace lazytree::sim {

struct VerifyConfig {
  /// The bounded episode to exhaust. Keep it SMALL: the schedule space is
  /// exponential in pending-message count. drop/dup must be 0 (fault
  /// randomness would make re-execution nondeterministic); a crash plan is
  /// allowed and explored against every schedule.
  EpisodeConfig episode;
  /// Bounded message loss: at most this many drops per schedule, explored
  /// as explicit DFS decisions (every enabled channel forks a "deliver the
  /// head" and a "drop the head" branch while budget remains). Unlike the
  /// probabilistic episode.drop, scripted drops are deterministic, so the
  /// prefix re-execution machinery is unaffected. Requires
  /// episode.reliable: the reliable layer retransmits the dropped frame at
  /// the next timer pump, and the §3.1 battery plus the oracle must stay
  /// green on every schedule — the loss is recovered, not absorbed. Drop
  /// decisions never enter sleep sets (dropping is not independent of
  /// anything — it consumes retransmit budget), so POR stays sound.
  uint32_t drop_budget = 0;
  /// Commutativity-guided sleep-set pruning. Off = plain exhaustive DFS.
  bool por = true;
  /// State-fingerprint deduplication of revisited states.
  bool dedup = true;
  /// Max POR independence decisions to cross-check by re-executing both
  /// orders of a pruned pair (0 disables the cross-check).
  uint32_t cross_check_samples = 8;
  /// Execution budget; hitting it stops with exhausted = false.
  uint64_t max_executions = 1000000;
  /// Run the §3.1 checkers at every per-round quiescent point (not just
  /// the final state), recording the first violating round.
  bool check_each_quiescence = true;
  /// Minimize the failing trace before returning it.
  bool minimize = true;
  /// Directed-search heuristic: when >= 0, candidate transitions delivering
  /// to this processor sort LAST at every frame, so the leftmost DFS
  /// schedule is the extreme starvation of the victim (the §4.3 adversary
  /// family). Violations that need messages queued up behind each other on
  /// a victim-bound channel — FIFO-dependent orderings, version-gated
  /// membership races — surface within the first few executions instead of
  /// deep in the tree. Search order only: exhaustiveness and sleep-set
  /// soundness are unaffected. -1 = neutral (to, from) order.
  int starve_victim = -1;
};

struct VerifyStats {
  uint64_t executions = 0;        ///< episodes run (schedule prefixes tried)
  uint64_t schedules = 0;         ///< complete schedules (not dedup-cut)
  uint64_t transitions = 0;       ///< total delivery decisions made
  uint64_t states = 0;            ///< distinct state fingerprints recorded
  uint64_t pruned_sleep = 0;      ///< candidate transitions pruned by POR
  uint64_t pruned_visited = 0;    ///< executions cut at a revisited state
  uint64_t cross_checks = 0;      ///< independent pairs re-executed both ways
  uint64_t cross_check_failures = 0;  ///< ... that did not converge
  uint64_t determinism_failures = 0;  ///< prefix replay fingerprint drift
  uint64_t mutation_fired = 0;    ///< executions where a planted mutation hit
  uint64_t drops_injected = 0;    ///< scripted drop transitions taken
  size_t max_frontier = 0;        ///< deepest DFS stack reached
};

struct VerifyResult {
  /// No violation in any explored schedule (and no internal failure).
  bool ok = true;
  /// The schedule space was fully explored within the execution budget.
  bool exhausted = false;
  /// Violations of the first failing schedule (worst first), plus any
  /// verifier-internal failures (determinism / cross-check).
  std::vector<std::string> violations;
  VerifyStats stats;
  /// Failing schedule (minimized when config.minimize), replayable via
  /// ReplayEpisode / `lazytree_explore replay` with the same episode
  /// config. Empty when ok.
  ScheduleTrace trace;
  /// First round whose quiescent point failed the §3.1 checkers
  /// (UINT32_MAX when none did).
  uint32_t first_violation_round = 0xFFFFFFFF;

  std::string Summary() const;
};

/// Exhausts the bounded schedule space of config.episode. Returns on the
/// first violating schedule or when the space (or budget) is exhausted.
VerifyResult VerifyExhaustive(const VerifyConfig& config);

}  // namespace lazytree::sim

#endif  // LAZYTREE_SIM_EXHAUSTIVE_H_
