// Delivery strategies for schedule exploration.
//
// Three policies over SimNetwork's per-step channel choice:
//
//   * UniformStrategy — the simulator's historical behavior, made explicit
//     so every explorer episode flows through the same hook.
//   * PctStrategy — PCT-style priority scheduling (Burckhardt et al.,
//     "A Randomized Scheduler with Probabilistic Guarantees of Finding
//     Bugs"). Each channel gets a random priority on first sight; the
//     highest-priority non-empty channel always delivers next, except at
//     d-1 random change points where the running channel's priority drops
//     below everything. Small depths d reach deep reorderings (a starved
//     relay overtaking a split) with probability >= 1/(n * k^(d-1)) —
//     far better odds than uniform sampling.
//   * StarvationStrategy — targeted adversary: all channels into one
//     victim processor are starved while any other channel has work,
//     modeling one arbitrarily slow link (the §4.1.2/§4.3 races are all
//     "relay delayed past a structure change"). A fairness cap bounds the
//     starvation window so episodes still quiesce.
//
// Strategies are deterministic functions of (seed, observed call
// sequence); a (strategy, seed, workload) triple therefore names a
// schedule exactly, and the recorded trace (trace.h) replays it.

#ifndef LAZYTREE_SIM_STRATEGY_H_
#define LAZYTREE_SIM_STRATEGY_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/schedule_hook.h"
#include "src/util/rng.h"

namespace lazytree::sim {

enum class StrategyKind : uint8_t {
  kUniform = 0,
  kPct = 1,
  kStarve = 2,
};

const char* StrategyKindName(StrategyKind kind);

/// Parses "uniform" / "pct" / "starve"; returns false on unknown names.
bool ParseStrategyKind(const std::string& name, StrategyKind* out);

/// Uniform-random channel choice (the legacy SimNetwork policy).
class UniformStrategy : public net::ScheduleStrategy {
 public:
  explicit UniformStrategy(uint64_t seed) : rng_(seed) {}

  const char* name() const override { return "uniform"; }
  size_t PickChannel(const std::vector<net::ChannelView>& channels) override {
    return rng_.Below(channels.size());
  }

 private:
  Rng rng_;
};

/// PCT-style priority scheduler over channels.
class PctStrategy : public net::ScheduleStrategy {
 public:
  /// `depth` is the PCT bug depth d (number of ordering constraints the
  /// schedule can force; d-1 change points are sampled). `expected_events`
  /// is the k the change points are sampled from — an upper estimate of
  /// the episode's delivery count.
  PctStrategy(uint64_t seed, uint32_t depth, uint64_t expected_events);

  const char* name() const override { return "pct"; }
  size_t PickChannel(const std::vector<net::ChannelView>& channels) override;

  uint64_t change_points_hit() const { return change_points_hit_; }

 private:
  using ChannelKey = std::pair<ProcessorId, ProcessorId>;
  uint64_t PriorityOf(const ChannelKey& key);

  Rng rng_;
  std::vector<uint64_t> change_points_;  // descending; back() is next
  std::map<ChannelKey, uint64_t> priorities_;
  uint64_t steps_ = 0;
  // Demoted priorities count down from kDemotedBase so each demotion lands
  // strictly below every earlier one; initial priorities sit above.
  static constexpr uint64_t kDemotedBase = 1ull << 32;
  uint64_t next_demoted_ = kDemotedBase;
  uint64_t change_points_hit_ = 0;
};

/// Starves every channel into one victim processor.
class StarvationStrategy : public net::ScheduleStrategy {
 public:
  StarvationStrategy(uint64_t seed, ProcessorId victim,
                     uint32_t max_starve = 128);

  const char* name() const override { return "starve"; }
  size_t PickChannel(const std::vector<net::ChannelView>& channels) override;

  ProcessorId victim() const { return victim_; }

 private:
  Rng rng_;
  ProcessorId victim_;
  uint32_t max_starve_;   // fairness cap: forced victim delivery after this
  uint32_t starved_run_ = 0;
  std::vector<size_t> candidates_;  // scratch
};

/// Parameters for MakeStrategy.
struct StrategyOptions {
  StrategyKind kind = StrategyKind::kUniform;
  uint64_t seed = 1;
  uint32_t pct_depth = 3;
  uint64_t pct_expected_events = 4096;
  ProcessorId starve_victim = 0;
  uint32_t starve_cap = 128;
};

std::unique_ptr<net::ScheduleStrategy> MakeStrategy(
    const StrategyOptions& options);

}  // namespace lazytree::sim

#endif  // LAZYTREE_SIM_STRATEGY_H_
