#include "src/sim/minimize.h"

#include <algorithm>

namespace lazytree::sim {

namespace {

/// Rebuilds the trace keeping only the fault/control events whose index
/// (into `interesting`) is in `keep`: dropped X/U events become plain
/// deliveries, dropped C/R events disappear entirely.
ScheduleTrace BuildCandidate(const ScheduleTrace& trace,
                             const std::vector<size_t>& interesting,
                             const std::vector<bool>& keep) {
  ScheduleTrace candidate;
  candidate.meta = trace.meta;
  candidate.events.reserve(trace.events.size());
  size_t next = 0;  // cursor into `interesting` (sorted ascending)
  for (size_t i = 0; i < trace.events.size(); ++i) {
    TraceEvent e = trace.events[i];
    const bool is_interesting =
        next < interesting.size() && interesting[next] == i;
    if (is_interesting) {
      const bool kept = keep[next++];
      if (!kept) {
        if (e.is_control()) continue;      // crash/restart: remove
        e.kind = TraceEvent::Kind::kDeliver;  // fault: un-inject
      }
    }
    candidate.events.push_back(e);
  }
  return candidate;
}

}  // namespace

StatusOr<MinimizeResult> MinimizeTrace(const EpisodeConfig& config,
                                       const ScheduleTrace& trace) {
  MinimizeResult out;

  EpisodeResult baseline = ReplayEpisode(config, trace);
  ++out.replays;
  if (baseline.ok) {
    return Status::InvalidArgument(
        "trace does not fail on replay; nothing to minimize");
  }
  out.signature = baseline.Signature();

  std::vector<size_t> interesting;
  for (size_t i = 0; i < trace.events.size(); ++i) {
    if (trace.events[i].is_fault() || trace.events[i].is_control()) {
      interesting.push_back(i);
    }
  }
  out.initial_faults = interesting.size();

  std::vector<bool> keep(interesting.size(), true);
  size_t kept = interesting.size();

  auto still_fails = [&](const std::vector<bool>& candidate_keep) {
    ScheduleTrace candidate =
        BuildCandidate(trace, interesting, candidate_keep);
    EpisodeResult r = ReplayEpisode(config, candidate);
    ++out.replays;
    return !r.ok && r.Signature() == out.signature;
  };

  // ddmin (complement variant): partition the kept set into n chunks and
  // try discarding one chunk at a time; on success restart with the
  // smaller set, otherwise refine the partition until chunks are single
  // events — at which point the result is 1-minimal.
  size_t n = 2;
  while (kept > 0 && !interesting.empty()) {
    std::vector<size_t> kept_positions;
    for (size_t i = 0; i < keep.size(); ++i) {
      if (keep[i]) kept_positions.push_back(i);
    }
    n = std::min(n, kept_positions.size());
    bool reduced = false;
    for (size_t chunk = 0; chunk < n; ++chunk) {
      const size_t lo = kept_positions.size() * chunk / n;
      const size_t hi = kept_positions.size() * (chunk + 1) / n;
      if (lo == hi) continue;
      std::vector<bool> candidate_keep = keep;
      for (size_t i = lo; i < hi; ++i) {
        candidate_keep[kept_positions[i]] = false;
      }
      if (still_fails(candidate_keep)) {
        keep = std::move(candidate_keep);
        kept -= hi - lo;
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    if (n >= kept_positions.size()) break;  // 1-minimal
    n = std::min(n * 2, kept_positions.size());
  }

  out.trace = BuildCandidate(trace, interesting, keep);
  out.trace.meta["minimized"] = "1";
  out.trace.meta["failure"] = out.signature;
  out.final_faults = kept;

  // The acceptance bar: the minimized trace must reproduce the identical
  // violation on back-to-back replays.
  EpisodeResult first = ReplayEpisode(config, out.trace);
  EpisodeResult second = ReplayEpisode(config, out.trace);
  out.replays += 2;
  out.deterministic = !first.ok && !second.ok &&
                      first.Signature() == out.signature &&
                      second.Signature() == out.signature;
  return out;
}

}  // namespace lazytree::sim
