// Replayable schedule traces.
//
// A trace is the complete record of every nondeterministic decision one
// sim episode made: which channel delivered at each step, whether the
// message was delivered / dropped / duplicated, and where crash/restart
// events interleaved. Because the workload is itself a pure function of
// the episode config (explorer.h), (config, trace) replays the episode
// bit-for-bit — including the checker violation a failing episode found.
//
// Text format, one decision per line, with a key-value header:
//
//   # lazytree schedule trace v1
//   protocol semisync
//   strategy pct
//   seed 42
//   ...
//   D 0 3     <- delivered the head of channel (0 -> 3)
//   X 2 4     <- dropped it (injected fault or crashed destination)
//   U 1 0     <- delivered it twice (duplication fault)
//   C 2       <- processor 2 crashed here
//   R 2       <- processor 2 restarted here
//
// The minimizer (minimize.h) edits traces — un-faulting X/U lines and
// deleting C/R pairs — and checks each candidate still fails by replay.

#ifndef LAZYTREE_SIM_TRACE_H_
#define LAZYTREE_SIM_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/net/schedule_hook.h"
#include "src/util/statusor.h"

namespace lazytree::sim {

struct TraceEvent {
  enum class Kind : uint8_t {
    kDeliver = 0,    // D from to
    kDrop = 1,       // X from to
    kDuplicate = 2,  // U from to
    kCrash = 3,      // C proc   (stored in `to`)
    kRestart = 4,    // R proc   (stored in `to`)
  };
  Kind kind = Kind::kDeliver;
  ProcessorId from = 0;
  ProcessorId to = 0;

  bool is_control() const {
    return kind == Kind::kCrash || kind == Kind::kRestart;
  }
  bool is_fault() const {
    return kind == Kind::kDrop || kind == Kind::kDuplicate;
  }
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct ScheduleTrace {
  /// Free-form provenance (protocol, strategy, seed, ...). Sorted map so
  /// serialization is canonical: identical episodes produce identical
  /// bytes, which the regression test relies on.
  std::map<std::string, std::string> meta;
  std::vector<TraceEvent> events;

  size_t FaultCount() const;
  size_t ControlCount() const;

  std::string Serialize() const;
  static StatusOr<ScheduleTrace> Parse(const std::string& text);

  Status SaveFile(const std::string& path) const;
  static StatusOr<ScheduleTrace> LoadFile(const std::string& path);
};

/// Records one episode's decisions (attach via SimNetwork::SetObserver).
class TraceRecorder : public net::DeliveryObserver {
 public:
  void OnDelivery(ProcessorId from, ProcessorId to,
                  net::DeliveryOutcome outcome) override;
  void OnCrash(ProcessorId p) override;
  void OnRestart(ProcessorId p) override;

  ScheduleTrace& trace() { return trace_; }
  const ScheduleTrace& trace() const { return trace_; }

 private:
  ScheduleTrace trace_;
};

/// Drives SimNetwork down a recorded schedule.
///
/// Delivery events are consumed by PickChannel/ForceOutcome; control
/// events (crash/restart) must be consumed by the episode driver via
/// PeekControl/AdvanceControl *before* the next Step, since applying them
/// needs Cluster. After the trace is exhausted — or an edited trace
/// diverges from what the system actually does — the replayer falls back
/// to a deterministic drain: lowest channel first, always deliver.
class ReplayStrategy : public net::ScheduleStrategy {
 public:
  explicit ReplayStrategy(const ScheduleTrace& trace) : trace_(trace) {}

  const char* name() const override { return "replay"; }
  size_t PickChannel(const std::vector<net::ChannelView>& channels) override;
  std::optional<net::DeliveryOutcome> ForceOutcome() override {
    return forced_;
  }

  /// Next unconsumed event iff it is a crash/restart, else nullptr.
  const TraceEvent* PeekControl() const;
  void AdvanceControl();

  bool Exhausted() const { return cursor_ >= trace_.events.size(); }
  /// Delivery events that could not be matched to a live channel (> 0
  /// means the trace was edited or the config does not match).
  uint64_t diverged() const { return diverged_; }

 private:
  const ScheduleTrace& trace_;
  size_t cursor_ = 0;
  uint64_t diverged_ = 0;
  std::optional<net::DeliveryOutcome> forced_;
};

}  // namespace lazytree::sim

#endif  // LAZYTREE_SIM_TRACE_H_
