#include "src/sim/explorer.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/core/cluster.h"
#include "src/oracle/oracle.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace lazytree::sim {

Value WorkValueOf(Key k) { return k * 2654435761ull + 13; }

// Keys are distinct within a round, which makes per-key outcomes
// deterministic given the quiescence barrier between rounds.
std::vector<std::vector<WorkOp>> GenerateEpisodeWorkload(
    const EpisodeConfig& c) {
  Rng rng(c.seed ^ 0x3C6EF372FE94F82Aull);
  std::vector<std::vector<WorkOp>> rounds(c.rounds);
  std::vector<Key> ever_inserted;
  for (uint32_t r = 0; r < c.rounds; ++r) {
    std::set<Key> used;
    auto fresh_key = [&]() -> Key {
      for (int tries = 0; tries < 64; ++tries) {
        Key k = rng.Range(1, c.key_space);
        if (used.insert(k).second) return k;
      }
      return 0;  // key space exhausted for this round
    };
    std::vector<Key> round_inserts;
    for (uint32_t i = 0; i < c.ops_per_round; ++i) {
      uint64_t dice = rng.Below(100);
      WorkOp op;
      op.home = static_cast<ProcessorId>(rng.Below(c.processors));
      if (dice < 55 || ever_inserted.empty()) {
        op.kind = WorkKind::kInsert;
        op.key = fresh_key();
      } else if (dice < 75) {
        op.kind = WorkKind::kDelete;
        Key k = ever_inserted[rng.Below(ever_inserted.size())];
        op.key = used.insert(k).second ? k : fresh_key();
        if (op.key != k) op.kind = WorkKind::kInsert;  // fall back to insert
      } else {
        op.kind = WorkKind::kSearch;
        Key k = ever_inserted[rng.Below(ever_inserted.size())];
        op.key = used.insert(k).second ? k : fresh_key();
      }
      if (op.key == 0) continue;  // round's key budget exhausted
      if (op.kind == WorkKind::kInsert) round_inserts.push_back(op.key);
      rounds[r].push_back(op);
    }
    ever_inserted.insert(ever_inserted.end(), round_inserts.begin(),
                         round_inserts.end());
  }
  return rounds;
}

namespace {

std::string FoldLines(std::string s) {
  for (char& c : s) {
    if (c == '\n') c = ';';
  }
  return s;
}

EpisodeResult RunEpisodeImpl(const EpisodeConfig& config,
                             net::ScheduleStrategy* strategy,
                             ReplayStrategy* replay,
                             TraceRecorder* recorder, bool strict,
                             const EpisodeHooks* hooks) {
  ClusterOptions options;
  options.processors = config.processors;
  options.protocol = config.protocol;
  options.transport = TransportKind::kSim;
  options.seed = config.seed;
  options.tree.max_entries = config.fanout;
  options.tree.track_history = true;
  options.tree.leaf_replication = config.leaf_replication;
  options.tree.interior_replication = config.interior_replication;
  options.tree.shed_threshold = config.shed_threshold;
  options.combine_ops = config.combine_ops ? 1 : 0;
  options.local_read_fastpath = config.local_fastpath ? 1 : 0;
  // The episode's verification battery records violations for the trace /
  // report pipeline; the quiescence hook would abort on the first one.
  options.check_histories = false;
  // The reliable layer under the sim transport uses virtual timers pumped
  // at quiescent points, so its retransmissions and acks are part of the
  // recorded schedule.
  options.reliable = config.reliable ? 1 : 0;

  Cluster cluster(std::move(options));
  net::SimNetwork* sim = cluster.sim();
  LAZYTREE_CHECK(sim != nullptr) << "episodes need the sim transport";
  sim->SetStrategy(strategy);
  if (recorder != nullptr) sim->SetObserver(recorder);
  // Replay pins every outcome via ForceOutcome; fault randomness is only
  // live while recording.
  if (replay == nullptr && (config.drop > 0 || config.dup > 0)) {
    sim->InjectFaults(config.drop, config.dup);
  }
  if (config.mutation != net::ScheduleMutation::kNone) {
    sim->PlantMutation(config.mutation);
  }
  cluster.Start();

  std::vector<std::vector<WorkOp>> rounds = GenerateEpisodeWorkload(config);
  size_t total_ops = 0;
  for (const auto& r : rounds) total_ops += r.size();
  std::vector<EpisodeOp> ops;
  ops.reserve(total_ops);
  if (hooks != nullptr && hooks->on_start) {
    hooks->on_start(cluster, *sim, ops);
  }

  // Crash plan, applied in (round, after_steps) order while recording.
  std::vector<CrashEvent> plan = config.crashes;
  std::stable_sort(plan.begin(), plan.end(),
                   [](const CrashEvent& a, const CrashEvent& b) {
                     return a.round != b.round ? a.round < b.round
                                               : a.after_steps < b.after_steps;
                   });
  size_t next_plan = 0;

  uint64_t steps_used = 0;
  bool livelock = false;

  auto apply_control = [&](const TraceEvent& e) {
    if (e.kind == TraceEvent::Kind::kCrash) {
      cluster.CrashProcessor(e.to);
    } else {
      cluster.RestartProcessor(e.to);
    }
  };
  auto apply_plan_event = [&](const CrashEvent& e) {
    if (e.restart) {
      cluster.RestartProcessor(e.processor);
    } else {
      cluster.CrashProcessor(e.processor);
    }
  };

  // Delivers messages until the round quiesces (or the budget dies),
  // interleaving crash-plan events (record) or trace control events
  // (replay) between deliveries. Trailing events land at quiescence so
  // their position relative to the next round's submissions is identical
  // in record and replay.
  auto drive = [&](uint32_t round) {
    uint64_t steps_in_round = 0;
    while (true) {
      if (replay != nullptr) {
        while (const TraceEvent* e = replay->PeekControl()) {
          apply_control(*e);
          replay->AdvanceControl();
        }
      } else {
        while (next_plan < plan.size() && plan[next_plan].round <= round &&
               (plan[next_plan].round < round ||
                plan[next_plan].after_steps <= steps_in_round)) {
          apply_plan_event(plan[next_plan++]);
        }
      }
      if (steps_used >= config.step_budget) {
        livelock = sim->Pending() > 0;
        return;
      }
      if (!sim->Step()) {
        // Delivery frontier is dry: fire the reliable layer's earliest
        // virtual timer (retransmit / delayed ack). Its sends re-enter
        // the frontier as ordinary schedulable deliveries, so the round
        // only ends once recovery has fully drained too.
        if (!cluster.PumpNetworkTimers()) break;
        continue;
      }
      ++steps_used;
      ++steps_in_round;
    }
    // Quiescent: flush this round's remaining plan/control events.
    if (replay != nullptr) {
      while (const TraceEvent* e = replay->PeekControl()) {
        apply_control(*e);
        replay->AdvanceControl();
      }
    } else {
      while (next_plan < plan.size() && plan[next_plan].round <= round) {
        apply_plan_event(plan[next_plan++]);
      }
    }
  };

  for (uint32_t r = 0; r < config.rounds && !livelock; ++r) {
    for (const WorkOp& w : rounds[r]) {
      const size_t idx = ops.size();
      EpisodeOp record;
      record.op = w;
      ops.push_back(std::move(record));
      auto cb = [&ops, idx](const OpResult& res) {
        ops[idx].result = res;
        ops[idx].done = true;
      };
      switch (w.kind) {
        case WorkKind::kInsert:
          cluster.InsertAsync(w.home, w.key, WorkValueOf(w.key), cb);
          break;
        case WorkKind::kDelete:
          cluster.DeleteAsync(w.home, w.key, cb);
          break;
        case WorkKind::kSearch:
          cluster.SearchAsync(w.home, w.key, cb);
          break;
      }
    }
    drive(r);
    if (hooks != nullptr && hooks->on_quiescent && !livelock) {
      hooks->on_quiescent(cluster, r);
    }
  }
  if (!livelock) {
    drive(config.rounds);  // final drain + leftover events
    if (hooks != nullptr && hooks->on_quiescent && !livelock) {
      hooks->on_quiescent(cluster, config.rounds);
    }
  }

  // ---- verification battery ----
  EpisodeResult result;
  result.steps = steps_used;
  result.delivered = sim->delivered();
  result.ops_submitted = ops.size();
  for (const EpisodeOp& op : ops) {
    if (op.done) ++result.ops_completed;
  }
  std::vector<std::string>& violations = result.violations;

  if (livelock) {
    violations.push_back(
        "livelock: " + std::to_string(sim->Pending()) +
        " messages still pending after " + std::to_string(steps_used) +
        " deliveries");
  }

  // One entry per checker violation: the failure signature is the first
  // entry alone, so the minimizer can shed faults that only feed later
  // violations.
  for (const std::string& v : cluster.VerifyHistories().violations) {
    violations.push_back("history: " + FoldLines(v));
  }
  for (const std::string& v : cluster.CheckTreeStructure()) {
    violations.push_back("structure: " + v);
  }

  // Per-key fate: fold completed outcomes into must-present / must-absent
  // / unknown, in submission order (rounds are serial; keys are distinct
  // within a round, so this order is the per-key serialization).
  enum class Fate : uint8_t { kAbsent, kPresent, kUnknown };
  std::map<Key, Fate> fate;
  std::set<Key> ever_submitted_insert;
  for (const EpisodeOp& op : ops) {
    Fate& f = fate.try_emplace(op.op.key, Fate::kAbsent).first->second;
    switch (op.op.kind) {
      case WorkKind::kInsert:
        ever_submitted_insert.insert(op.op.key);
        if (op.done && (op.result.status.ok() ||
                        op.result.status.IsAlreadyExists())) {
          f = Fate::kPresent;
        } else if (f != Fate::kPresent) {
          f = Fate::kUnknown;  // may or may not have applied
        }
        break;
      case WorkKind::kDelete:
        if (op.done && (op.result.status.ok() ||
                        op.result.status.IsNotFound())) {
          f = Fate::kAbsent;
        } else if (f == Fate::kPresent) {
          f = Fate::kUnknown;  // delete may have applied before failing
        }
        break;
      case WorkKind::kSearch:
        break;  // reads do not change fate
    }
  }
  std::vector<Entry> dump = cluster.DumpLeaves();
  std::map<Key, Value> present;
  for (const Entry& e : dump) present[e.key] = e.payload;
  for (const auto& [key, f] : fate) {
    auto it = present.find(key);
    if (f == Fate::kPresent) {
      if (it == present.end()) {
        violations.push_back("lost key " + std::to_string(key) +
                             ": completed insert missing from the tree");
      } else if (it->second != WorkValueOf(key)) {
        violations.push_back("wrong value for key " + std::to_string(key));
      }
    } else if (f == Fate::kAbsent) {
      if (it != present.end()) {
        violations.push_back("resurrected key " + std::to_string(key) +
                             ": completed delete still in the tree");
      }
    } else if (it != present.end() && it->second != WorkValueOf(key)) {
      violations.push_back("wrong value for key " + std::to_string(key));
    }
  }
  for (const auto& [key, value] : present) {
    if (!ever_submitted_insert.count(key)) {
      violations.push_back("ghost key " + std::to_string(key) +
                           ": present but never inserted");
    }
  }

  // Clean episodes get the strict check: every operation completed, with
  // the oracle's exact return code, and the dictionaries match.
  if (strict && !livelock) {
    Oracle oracle(/*upsert=*/false);
    for (const EpisodeOp& op : ops) {
      if (!op.done) {
        violations.push_back("incomplete op: " +
                             std::string(op.op.kind == WorkKind::kInsert
                                             ? "insert"
                                             : op.op.kind == WorkKind::kDelete
                                                   ? "delete"
                                                   : "search") +
                             " key " + std::to_string(op.op.key) +
                             " never completed");
        continue;
      }
      StatusCode want = StatusCode::kOk;
      Value want_value = 0;
      switch (op.op.kind) {
        case WorkKind::kInsert:
          want = oracle.Insert(op.op.key, WorkValueOf(op.op.key)).code();
          break;
        case WorkKind::kDelete:
          want = oracle.Delete(op.op.key).code();
          break;
        case WorkKind::kSearch: {
          StatusOr<Value> w = oracle.Search(op.op.key);
          want = w.status().code();
          if (w.ok()) want_value = *w;
          break;
        }
      }
      if (op.result.status.code() != want) {
        violations.push_back(
            "oracle rc mismatch for key " + std::to_string(op.op.key) +
            ": got " + StatusCodeName(op.result.status.code()) + ", want " +
            StatusCodeName(want));
      } else if (op.op.kind == WorkKind::kSearch && want == StatusCode::kOk &&
                 op.result.value != want_value) {
        violations.push_back("oracle value mismatch for key " +
                             std::to_string(op.op.key));
      }
    }
    std::vector<Entry> want_dump = oracle.Dump();
    if (dump.size() != want_dump.size()) {
      violations.push_back(
          "dictionary size mismatch: tree holds " +
          std::to_string(dump.size()) + " keys, oracle " +
          std::to_string(want_dump.size()));
    } else {
      for (size_t i = 0; i < dump.size(); ++i) {
        if (dump[i].key != want_dump[i].key ||
            dump[i].payload != want_dump[i].payload) {
          violations.push_back("dictionary mismatch at index " +
                               std::to_string(i));
          break;
        }
      }
    }
  }

  if (replay != nullptr) result.replay_diverged = replay->diverged();
  result.ok = violations.empty();
  // Detach before the cluster (and its network) die.
  sim->SetStrategy(nullptr);
  sim->SetObserver(nullptr);
  return result;
}

// Stamps the config into a recorded trace's metadata so `lazytree_explore
// replay` can rebuild the identical episode. Shared by RunEpisode and
// RunEpisodeUnder so verifier-recorded traces replay the same way.
void FillTraceMeta(const EpisodeConfig& config, EpisodeResult& result) {
  ScheduleTrace& t = result.trace;
  t.meta["protocol"] = ProtocolKindName(config.protocol);
  t.meta["strategy"] = StrategyKindName(config.strategy.kind);
  t.meta["strategy_seed"] = std::to_string(config.strategy.seed);
  t.meta["pct_depth"] = std::to_string(config.strategy.pct_depth);
  t.meta["pct_expected_events"] =
      std::to_string(config.strategy.pct_expected_events);
  t.meta["starve_victim"] = std::to_string(config.strategy.starve_victim);
  t.meta["starve_cap"] = std::to_string(config.strategy.starve_cap);
  t.meta["seed"] = std::to_string(config.seed);
  t.meta["processors"] = std::to_string(config.processors);
  t.meta["rounds"] = std::to_string(config.rounds);
  t.meta["ops_per_round"] = std::to_string(config.ops_per_round);
  t.meta["key_space"] = std::to_string(config.key_space);
  t.meta["fanout"] = std::to_string(config.fanout);
  t.meta["leaf_replication"] = std::to_string(config.leaf_replication);
  t.meta["interior_replication"] =
      std::to_string(config.interior_replication);
  // Written only when on: absent keys read back as 0, and default-config
  // traces (all checked-in repros predate these knobs) keep serializing
  // byte-for-byte.
  if (config.combine_ops) t.meta["combine_ops"] = "1";
  if (config.local_fastpath) t.meta["local_fastpath"] = "1";
  if (config.reliable) t.meta["reliable"] = "1";
  if (config.shed_threshold > 0) {
    t.meta["shed_threshold"] = std::to_string(config.shed_threshold);
  }
  if (config.mutation != net::ScheduleMutation::kNone) {
    t.meta["mutation"] = net::ScheduleMutationName(config.mutation);
  }
  t.meta["result"] = result.ok ? "ok" : "fail";
  if (!result.ok) t.meta["failure"] = result.Signature();
}

}  // namespace

bool ParseProtocolKind(const std::string& name, ProtocolKind* out) {
  if (name == "sync") *out = ProtocolKind::kSyncSplit;
  else if (name == "semisync") *out = ProtocolKind::kSemiSyncSplit;
  else if (name == "naive") *out = ProtocolKind::kNaive;
  else if (name == "vigorous") *out = ProtocolKind::kVigorous;
  else if (name == "mobile") *out = ProtocolKind::kMobile;
  else if (name == "varcopies") *out = ProtocolKind::kVarCopies;
  else return false;
  return true;
}

std::string EpisodeResult::Signature() const {
  if (violations.empty()) return "";
  std::string s = violations.front();
  for (char& c : s) {
    if (c == '\n') c = ';';
  }
  return s;
}

EpisodeResult RunEpisode(const EpisodeConfig& config) {
  std::unique_ptr<net::ScheduleStrategy> strategy =
      MakeStrategy(config.strategy);
  TraceRecorder recorder;
  EpisodeResult result = RunEpisodeImpl(config, strategy.get(), nullptr,
                                        &recorder, config.clean(), nullptr);
  result.trace = std::move(recorder.trace());
  FillTraceMeta(config, result);
  return result;
}

EpisodeResult RunEpisodeUnder(const EpisodeConfig& config,
                              net::ScheduleStrategy* strategy,
                              TraceRecorder* recorder,
                              const EpisodeHooks& hooks) {
  EpisodeResult result = RunEpisodeImpl(config, strategy, nullptr, recorder,
                                        config.clean(), &hooks);
  if (recorder != nullptr) {
    result.trace = std::move(recorder->trace());
    FillTraceMeta(config, result);
  }
  return result;
}

EpisodeResult ReplayEpisode(const EpisodeConfig& config,
                            const ScheduleTrace& trace) {
  ReplayStrategy replay(trace);
  // Strict (oracle-exact) verification only applies when the replayed
  // schedule injects nothing the system cannot recover from: a trace with
  // crashes legitimately fails/abandons operations, whatever
  // config.crashes says, and fault events only stay strict when the
  // reliable layer is there to undo them.
  const bool strict = config.clean() &&
                      (config.reliable || trace.FaultCount() == 0) &&
                      trace.ControlCount() == 0;
  EpisodeResult result =
      RunEpisodeImpl(config, &replay, &replay, nullptr, strict, nullptr);
  result.trace = trace;
  return result;
}

}  // namespace lazytree::sim
