// lazytree_verify: exhaustive bounded protocol verification driver.
//
// Battery mode (default, what CI runs) exhausts one bounded configuration
// per protocol — every delivery schedule, §3.1 checks at every quiescent
// point — and then proves the checker can actually detect violations by
// planting each ScheduleMutation and requiring a violating schedule plus a
// replayable minimized trace:
//
//   lazytree_verify
//
// Single-config mode exhausts one configuration described by flags and
// prints its statistics; --compare-naive re-runs the same configuration
// with POR and dedup disabled (capped at ratio x the reduced run) to
// measure the reduction factor:
//
//   lazytree_verify --protocol=semisync --processors=2 --ops=4 \
//       --compare-naive
//
// Exit status: 0 when every run behaved as expected, 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/sim/exhaustive.h"

namespace lazytree::sim {
namespace {

struct CliOptions {
  std::string protocol;  // empty = battery mode
  uint32_t processors = 2;
  uint32_t rounds = 1;
  uint32_t ops_per_round = 4;
  uint64_t key_space = 16;
  size_t fanout = 3;
  uint32_t leaf_replication = 2;
  uint32_t shed_threshold = 0;
  uint64_t seed = 1;
  std::string mutation;
  uint32_t drop_budget = 0;  // bounded scripted loss (forces reliable on)
  bool reliable = false;     // reliable-delivery layer under the episode
  bool por = true;
  bool dedup = true;
  uint64_t max_executions = 1000000;
  uint32_t cross_checks = 8;
  bool compare_naive = false;
  int starve_victim = -1;
  std::string trace_out;  // save a failing trace here
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: lazytree_verify [--protocol=<name>] [--processors=N]\n"
      "    [--rounds=N] [--ops=N] [--keyspace=N] [--fanout=N]\n"
      "    [--leaf-replication=N] [--shed=N] [--seed=N]\n"
      "    [--mutation=drop-relay|swap-ordered] [--no-por] [--no-dedup]\n"
      "    [--drop-budget=N] [--reliable] [--max-executions=N]\n"
      "    [--cross-checks=N] [--compare-naive] [--starve-victim=P]\n"
      "    [--trace-out=FILE]\n"
      "with no --protocol: run the bounded verification battery\n");
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseCli(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "protocol", &v)) cli->protocol = v;
    else if (ParseFlag(arg, "processors", &v)) cli->processors = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "rounds", &v)) cli->rounds = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "ops", &v)) cli->ops_per_round = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "keyspace", &v)) cli->key_space = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "fanout", &v)) cli->fanout = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "leaf-replication", &v)) cli->leaf_replication = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "shed", &v)) cli->shed_threshold = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "seed", &v)) cli->seed = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "mutation", &v)) cli->mutation = v;
    else if (ParseFlag(arg, "max-executions", &v)) cli->max_executions = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "cross-checks", &v)) cli->cross_checks = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "starve-victim", &v)) cli->starve_victim = std::atoi(v.c_str());
    else if (ParseFlag(arg, "trace-out", &v)) cli->trace_out = v;
    else if (ParseFlag(arg, "drop-budget", &v)) cli->drop_budget = std::strtoul(v.c_str(), nullptr, 10);
    else if (arg == "--reliable") cli->reliable = true;
    else if (arg == "--no-por") cli->por = false;
    else if (arg == "--no-dedup") cli->dedup = false;
    else if (arg == "--compare-naive") cli->compare_naive = true;
    else if (arg == "--help" || arg == "-h") { Usage(); return false; }
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

/// The per-protocol bounded configurations the battery exhausts. Small on
/// purpose: the schedule space is exponential in in-flight messages, and
/// these are sized to finish in seconds while still exercising a split
/// (fanout 3, more inserts than a leaf holds) with replicated leaves
/// relaying lazy updates between two processors.
VerifyConfig BoundedConfig(ProtocolKind protocol) {
  VerifyConfig config;
  config.episode.protocol = protocol;
  config.episode.processors = 2;
  config.episode.seed = 1;
  config.episode.rounds = 1;
  config.episode.ops_per_round = 4;
  config.episode.key_space = 16;
  config.episode.fanout = 3;
  config.episode.leaf_replication = 2;
  config.episode.step_budget = 100000;
  if (protocol == ProtocolKind::kMobile ||
      protocol == ProtocolKind::kVarCopies) {
    // §4.2/§4.3: single-copy mobile leaves; shedding makes every split
    // migrate the fresh sibling, so link-changes (and for varcopies the
    // join/unjoin membership traffic) are in flight to be reordered.
    config.episode.leaf_replication = 1;
    config.episode.shed_threshold = 1;
  }
  return config;
}

void PrintResult(const char* label, const VerifyResult& result) {
  std::printf("[%s] %s\n", label, result.Summary().c_str());
  for (const std::string& v : result.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
}

/// One battery entry: exhaust the config and demand the expected outcome.
/// Violation runs must also produce a trace that re-fails under plain
/// ReplayEpisode — the repro artifact the mutation self-test promises.
bool RunExpecting(const char* label, const VerifyConfig& config,
                  bool expect_violation, const std::string& trace_out) {
  VerifyResult result = VerifyExhaustive(config);
  PrintResult(label, result);
  if (!expect_violation) {
    if (!result.ok) return false;
    if (!result.exhausted) {
      std::printf("[%s] FAILED: space not exhausted within budget\n", label);
      return false;
    }
    return true;
  }
  if (result.ok) {
    std::printf("[%s] FAILED: planted mutation not detected\n", label);
    return false;
  }
  EpisodeResult replayed = ReplayEpisode(config.episode, result.trace);
  if (replayed.ok) {
    std::printf("[%s] FAILED: minimized trace does not replay to failure\n",
                label);
    return false;
  }
  std::printf("[%s] minimized trace replays to: %s\n", label,
              replayed.Signature().c_str());
  if (!trace_out.empty()) {
    Status save = result.trace.SaveFile(trace_out);
    std::printf("[%s] trace: %s\n", label,
                save.ok() ? trace_out.c_str() : save.ToString().c_str());
  }
  return true;
}

int RunBattery() {
  struct Item {
    std::string label;
    VerifyConfig config;
    bool expect_violation;
  };
  std::vector<Item> items;
  for (ProtocolKind protocol :
       {ProtocolKind::kSyncSplit, ProtocolKind::kSemiSyncSplit,
        ProtocolKind::kMobile, ProtocolKind::kVarCopies}) {
    items.push_back({ProtocolKindName(protocol), BoundedConfig(protocol),
                     /*expect_violation=*/false});
  }
  // Bounded loss: the same protocols with a drop budget of 1 and the
  // reliable layer recovering every loss. Each DFS frame forks a drop
  // branch per enabled channel and retransmission deepens schedules, so
  // the episode is one op smaller; every schedule — including every
  // placement of the drop — must stay §3.1-green and oracle-exact.
  for (ProtocolKind protocol :
       {ProtocolKind::kSyncSplit, ProtocolKind::kSemiSyncSplit,
        ProtocolKind::kMobile, ProtocolKind::kVarCopies}) {
    Item lossy{std::string(ProtocolKindName(protocol)) + "-drop1",
               BoundedConfig(protocol), /*expect_violation=*/false};
    lossy.config.episode.ops_per_round = 3;
    lossy.config.episode.reliable = true;
    lossy.config.drop_budget = 1;
    items.push_back(std::move(lossy));
  }
  {
    Item drop{"selftest-drop-relay", BoundedConfig(ProtocolKind::kSemiSyncSplit),
              /*expect_violation=*/true};
    drop.config.episode.mutation = net::ScheduleMutation::kDropRelay;
    items.push_back(std::move(drop));
  }
  {
    // The swap mutation needs a qualifying pair queued on one channel: two
    // same-kind membership registrations (two relayed joins or unjoins of
    // different members) behind each other on a PC -> bystander channel.
    // That takes 4 processors (PC + bystander + two join/unjoin-churning
    // members) and two rounds of membership churn, and the violating
    // schedules starve the bystander — so the search is directed at them
    // with starve_victim. Detection, not exhaustion, is the promise here.
    Item swap{"selftest-swap-ordered", BoundedConfig(ProtocolKind::kVarCopies),
              /*expect_violation=*/true};
    swap.config.episode.processors = 4;
    swap.config.episode.rounds = 2;
    swap.config.episode.ops_per_round = 6;
    swap.config.episode.key_space = 32;
    swap.config.episode.mutation = net::ScheduleMutation::kSwapOrdered;
    swap.config.starve_victim = 1;
    swap.config.max_executions = 20000;
    items.push_back(std::move(swap));
  }

  int failures = 0;
  for (const Item& item : items) {
    if (!RunExpecting(item.label.c_str(), item.config, item.expect_violation,
                      "")) {
      ++failures;
    }
  }
  std::printf("battery: %zu items, %d failed\n", items.size(), failures);
  return failures > 0 ? 1 : 0;
}

int RunSingle(const CliOptions& cli) {
  ProtocolKind protocol;
  if (!ParseProtocolKind(cli.protocol, &protocol)) {
    std::fprintf(stderr, "unknown protocol: %s\n", cli.protocol.c_str());
    return 1;
  }
  VerifyConfig config;
  config.episode.protocol = protocol;
  config.episode.processors = cli.processors;
  config.episode.seed = cli.seed;
  config.episode.rounds = cli.rounds;
  config.episode.ops_per_round = cli.ops_per_round;
  config.episode.key_space = cli.key_space;
  config.episode.fanout = cli.fanout;
  config.episode.leaf_replication = cli.leaf_replication;
  config.episode.shed_threshold = cli.shed_threshold;
  config.episode.mutation = net::ParseScheduleMutation(cli.mutation);
  config.episode.step_budget = 100000;
  config.episode.reliable = cli.reliable || cli.drop_budget > 0;
  config.drop_budget = cli.drop_budget;
  config.por = cli.por;
  config.dedup = cli.dedup;
  config.cross_check_samples = cli.cross_checks;
  config.max_executions = cli.max_executions;
  config.starve_victim = cli.starve_victim;

  VerifyResult result = VerifyExhaustive(config);
  PrintResult("verify", result);
  if (!result.ok && !cli.trace_out.empty()) {
    Status save = result.trace.SaveFile(cli.trace_out);
    std::printf("trace: %s\n",
                save.ok() ? cli.trace_out.c_str() : save.ToString().c_str());
  }

  if (cli.compare_naive && result.ok && result.exhausted) {
    VerifyConfig naive = config;
    naive.por = false;
    naive.dedup = false;
    naive.cross_check_samples = 0;
    // Cap the naive run: proving >= 32x reduction is enough to stop.
    naive.max_executions = result.stats.executions * 32;
    VerifyResult base = VerifyExhaustive(naive);
    PrintResult("naive", base);
    double ratio = result.stats.executions > 0
                       ? static_cast<double>(base.stats.executions) /
                             static_cast<double>(result.stats.executions)
                       : 0.0;
    std::printf("reduction: %llu naive%s vs %llu reduced executions "
                "(%.1fx%s)\n",
                static_cast<unsigned long long>(base.stats.executions),
                base.exhausted ? "" : " (capped)",
                static_cast<unsigned long long>(result.stats.executions),
                ratio, base.exhausted ? "" : "+");
    if (ratio < 5.0) {
      std::printf("FAILED: POR+dedup reduction below the required 5x\n");
      return 1;
    }
  }
  if (config.episode.mutation == net::ScheduleMutation::kNone) {
    return result.ok && result.exhausted ? 0 : 1;
  }
  return result.ok ? 1 : 0;  // a planted mutation must be detected
}

int Main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseCli(argc, argv, &cli)) return 2;
  if (cli.protocol.empty()) return RunBattery();
  return RunSingle(cli);
}

}  // namespace
}  // namespace lazytree::sim

int main(int argc, char** argv) { return lazytree::sim::Main(argc, argv); }
