// Delta-debugging trace minimization.
//
// A failing episode's trace usually carries far more injected faults
// (drops, duplicates, crashes) than the failure needs. MinimizeTrace runs
// ddmin over the trace's *fault set*: candidate traces flip drop/duplicate
// events back to plain deliveries and remove crash/restart events, then
// replay — deliveries are never deleted, so candidates stay aligned with
// the executions they drive. A candidate survives when its replay fails
// with the same signature (first violation) as the original. The final
// trace is 1-minimal (no single remaining fault can be removed) and is
// replayed twice to confirm the failure reproduces deterministically.

#ifndef LAZYTREE_SIM_MINIMIZE_H_
#define LAZYTREE_SIM_MINIMIZE_H_

#include <string>

#include "src/sim/explorer.h"

namespace lazytree::sim {

struct MinimizeResult {
  ScheduleTrace trace;        ///< minimized trace
  std::string signature;      ///< the failure it reproduces
  size_t initial_faults = 0;  ///< fault + control events before
  size_t final_faults = 0;    ///< ... and after
  size_t replays = 0;         ///< candidate replays spent
  bool deterministic = false; ///< final trace replayed twice identically
};

/// Minimizes a failing trace. Errors when the input trace does not fail
/// on replay (nothing to minimize against).
StatusOr<MinimizeResult> MinimizeTrace(const EpisodeConfig& config,
                                       const ScheduleTrace& trace);

}  // namespace lazytree::sim

#endif  // LAZYTREE_SIM_MINIMIZE_H_
