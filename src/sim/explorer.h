// Episode runner for schedule exploration.
//
// An *episode* is one complete, self-checking run of a cluster under an
// adversarial schedule: a workload derived purely from the config (so it
// is identical across record and replay), executed in quiescence-separated
// rounds while a ScheduleStrategy picks every delivery and an optional
// crash plan kills/restarts processors between deliveries. At the end the
// episode runs the full verification battery:
//
//   * the three §3 history checkers (CheckAll),
//   * the structural tree walk (ranges chain, links resolve),
//   * per-key fate: a key whose insert completed must be present, a key
//     whose delete completed must be absent, nothing appears that was
//     never inserted — sound even when crashes leave operations with
//     unknown outcomes,
//   * for clean episodes (no faults, no crashes): every operation
//     completed with exactly the oracle's return code, and the leaf
//     dictionary equals the oracle dump.
//
// RunEpisode records the schedule into a ScheduleTrace; ReplayEpisode
// re-executes a trace deterministically. (config, trace) is the repro
// unit the minimizer (minimize.h) and the `lazytree_explore` CLI shuffle
// around.

#ifndef LAZYTREE_SIM_EXPLORER_H_
#define LAZYTREE_SIM_EXPLORER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/server/op_tracker.h"
#include "src/sim/strategy.h"
#include "src/sim/trace.h"

namespace lazytree {
class Cluster;
namespace net {
class SimNetwork;
}  // namespace net
}  // namespace lazytree

namespace lazytree::sim {

/// Parses "sync" / "semisync" / "naive" / "vigorous" / "mobile" /
/// "varcopies" (the ProtocolKindName spellings); false on unknown names.
bool ParseProtocolKind(const std::string& name, ProtocolKind* out);

/// One crash-plan entry, applied between deliveries during `round` once
/// `after_steps` deliveries of that round have run (or at the round's
/// quiescence if the round is shorter). Replay ignores the plan — the
/// recorded trace carries the crash/restart positions exactly.
struct CrashEvent {
  uint32_t round = 0;
  uint64_t after_steps = 0;
  ProcessorId processor = 0;
  bool restart = false;  ///< false = crash, true = restart
};

/// One generated client operation. Exposed (with the generator below) so
/// the exhaustive verifier submits the byte-identical workload an episode
/// would, keeping its recorded schedules replayable by ReplayEpisode.
enum class WorkKind : uint8_t { kInsert, kDelete, kSearch };

struct WorkOp {
  WorkKind kind = WorkKind::kInsert;
  Key key = 0;
  ProcessorId home = 0;
};

/// Every insert of key k writes the same value, so presence checks never
/// need to know which insert won.
Value WorkValueOf(Key k);

struct EpisodeConfig {
  ProtocolKind protocol = ProtocolKind::kSemiSyncSplit;
  uint32_t processors = 4;
  /// Seeds the cluster (protocol rngs) and the workload generator. The
  /// strategy has its own seed in `strategy`.
  uint64_t seed = 1;
  StrategyOptions strategy;
  uint32_t rounds = 6;
  uint32_t ops_per_round = 24;
  uint64_t key_space = 512;
  size_t fanout = 6;
  uint32_t leaf_replication = 1;
  uint32_t interior_replication = 0;
  /// Multicore execution knobs (TreeConfig::combine_ops /
  /// local_fastpath), explored on the sim transport so the §3.1 checkers
  /// and the oracle vet the fused/fast-path histories under adversarial
  /// schedules. Default off — old recorded traces replay byte-for-byte
  /// (their meta simply lacks the keys, which reads as 0).
  bool combine_ops = false;
  bool local_fastpath = false;
  /// Mobile/varcopies leaf shedding (TreeConfig::shed_threshold): >0 makes
  /// splits migrate fresh siblings, generating the join/unjoin membership
  /// traffic the exhaustive verifier's varcopies configs need.
  uint32_t shed_threshold = 0;
  /// Planted one-shot protocol mutation (verifier self-test). Applied
  /// deterministically at the first qualifying delivery, so a recorded
  /// trace replayed against the same config reproduces it exactly.
  net::ScheduleMutation mutation = net::ScheduleMutation::kNone;
  /// Network fault probabilities (record mode only; replay pins outcomes).
  double drop = 0;
  double dup = 0;
  /// Reliable-delivery layer (net/reliable.h) under the episode. With it
  /// on, drop/dup faults are *recovered*: retransmissions and acks run as
  /// deterministic virtual-timer events pumped at the schedule's
  /// quiescent points, so fault-bearing traces still replay byte-for-byte
  /// and the episode is held to the clean-run oracle standard.
  bool reliable = false;
  std::vector<CrashEvent> crashes;
  /// Total delivery budget; exhausting it is reported as livelock.
  uint64_t step_budget = 2000000;

  /// True when every operation must complete and the oracle must match
  /// exactly (no injected faults, no crash plan, no planted mutation).
  /// Drop/dup faults under the reliable layer count as clean: recovery is
  /// the whole point, so the oracle must still match exactly.
  bool clean() const {
    return (reliable || (drop == 0 && dup == 0)) && crashes.empty() &&
           mutation == net::ScheduleMutation::kNone;
  }
};

struct EpisodeResult {
  bool ok = false;
  /// Checker/oracle violations, worst first; empty iff ok.
  std::vector<std::string> violations;
  uint64_t steps = 0;
  uint64_t delivered = 0;
  size_t ops_submitted = 0;
  size_t ops_completed = 0;
  /// Recorded schedule (record mode); copy of the input trace on replay.
  ScheduleTrace trace;
  /// Replay only: delivery events that no longer matched a live channel.
  uint64_t replay_diverged = 0;

  /// Stable one-line failure identity (first violation, newlines folded).
  /// The minimizer reduces a trace while preserving this.
  std::string Signature() const;
};

/// The workload is a pure function of the config: all rounds are generated
/// up front, independent of operation outcomes, so record and replay (and
/// every minimized variant) submit the identical operation sequence.
std::vector<std::vector<WorkOp>> GenerateEpisodeWorkload(
    const EpisodeConfig& config);

/// Live view of one submitted operation (see EpisodeHooks::on_start).
struct EpisodeOp {
  WorkOp op;
  bool done = false;
  OpResult result;
};

/// Callbacks exposing a running episode to an external driver (the
/// exhaustive verifier): the live Cluster/SimNetwork before the first
/// delivery — plus the episode's operation records, stable in memory for
/// the episode's lifetime — and each round's quiescent point (round ==
/// config.rounds for the final drain).
struct EpisodeHooks {
  std::function<void(Cluster&, net::SimNetwork&,
                     const std::vector<EpisodeOp>&)>
      on_start;
  std::function<void(Cluster&, uint32_t round)> on_quiescent;
};

/// Runs one episode under config.strategy, recording the schedule.
EpisodeResult RunEpisode(const EpisodeConfig& config);

/// Runs one episode under an externally-owned strategy, reporting progress
/// through `hooks`. The recorder (optional) captures the schedule exactly
/// as RunEpisode would; result.trace carries the same replayable metadata.
EpisodeResult RunEpisodeUnder(const EpisodeConfig& config,
                              net::ScheduleStrategy* strategy,
                              TraceRecorder* recorder,
                              const EpisodeHooks& hooks);

/// Re-executes a recorded schedule. `config` must describe the same
/// episode the trace came from (protocol, processors, seed, workload
/// shape); crash/restart events come from the trace, not config.crashes.
EpisodeResult ReplayEpisode(const EpisodeConfig& config,
                            const ScheduleTrace& trace);

}  // namespace lazytree::sim

#endif  // LAZYTREE_SIM_EXPLORER_H_
