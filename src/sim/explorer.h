// Episode runner for schedule exploration.
//
// An *episode* is one complete, self-checking run of a cluster under an
// adversarial schedule: a workload derived purely from the config (so it
// is identical across record and replay), executed in quiescence-separated
// rounds while a ScheduleStrategy picks every delivery and an optional
// crash plan kills/restarts processors between deliveries. At the end the
// episode runs the full verification battery:
//
//   * the three §3 history checkers (CheckAll),
//   * the structural tree walk (ranges chain, links resolve),
//   * per-key fate: a key whose insert completed must be present, a key
//     whose delete completed must be absent, nothing appears that was
//     never inserted — sound even when crashes leave operations with
//     unknown outcomes,
//   * for clean episodes (no faults, no crashes): every operation
//     completed with exactly the oracle's return code, and the leaf
//     dictionary equals the oracle dump.
//
// RunEpisode records the schedule into a ScheduleTrace; ReplayEpisode
// re-executes a trace deterministically. (config, trace) is the repro
// unit the minimizer (minimize.h) and the `lazytree_explore` CLI shuffle
// around.

#ifndef LAZYTREE_SIM_EXPLORER_H_
#define LAZYTREE_SIM_EXPLORER_H_

#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/sim/strategy.h"
#include "src/sim/trace.h"

namespace lazytree::sim {

/// Parses "sync" / "semisync" / "naive" / "vigorous" / "mobile" /
/// "varcopies" (the ProtocolKindName spellings); false on unknown names.
bool ParseProtocolKind(const std::string& name, ProtocolKind* out);

/// One crash-plan entry, applied between deliveries during `round` once
/// `after_steps` deliveries of that round have run (or at the round's
/// quiescence if the round is shorter). Replay ignores the plan — the
/// recorded trace carries the crash/restart positions exactly.
struct CrashEvent {
  uint32_t round = 0;
  uint64_t after_steps = 0;
  ProcessorId processor = 0;
  bool restart = false;  ///< false = crash, true = restart
};

struct EpisodeConfig {
  ProtocolKind protocol = ProtocolKind::kSemiSyncSplit;
  uint32_t processors = 4;
  /// Seeds the cluster (protocol rngs) and the workload generator. The
  /// strategy has its own seed in `strategy`.
  uint64_t seed = 1;
  StrategyOptions strategy;
  uint32_t rounds = 6;
  uint32_t ops_per_round = 24;
  uint64_t key_space = 512;
  size_t fanout = 6;
  uint32_t leaf_replication = 1;
  uint32_t interior_replication = 0;
  /// Multicore execution knobs (TreeConfig::combine_ops /
  /// local_fastpath), explored on the sim transport so the §3.1 checkers
  /// and the oracle vet the fused/fast-path histories under adversarial
  /// schedules. Default off — old recorded traces replay byte-for-byte
  /// (their meta simply lacks the keys, which reads as 0).
  bool combine_ops = false;
  bool local_fastpath = false;
  /// Network fault probabilities (record mode only; replay pins outcomes).
  double drop = 0;
  double dup = 0;
  std::vector<CrashEvent> crashes;
  /// Total delivery budget; exhausting it is reported as livelock.
  uint64_t step_budget = 2000000;

  /// True when every operation must complete and the oracle must match
  /// exactly (no injected faults, no crash plan).
  bool clean() const { return drop == 0 && dup == 0 && crashes.empty(); }
};

struct EpisodeResult {
  bool ok = false;
  /// Checker/oracle violations, worst first; empty iff ok.
  std::vector<std::string> violations;
  uint64_t steps = 0;
  uint64_t delivered = 0;
  size_t ops_submitted = 0;
  size_t ops_completed = 0;
  /// Recorded schedule (record mode); copy of the input trace on replay.
  ScheduleTrace trace;
  /// Replay only: delivery events that no longer matched a live channel.
  uint64_t replay_diverged = 0;

  /// Stable one-line failure identity (first violation, newlines folded).
  /// The minimizer reduces a trace while preserving this.
  std::string Signature() const;
};

/// Runs one episode under config.strategy, recording the schedule.
EpisodeResult RunEpisode(const EpisodeConfig& config);

/// Re-executes a recorded schedule. `config` must describe the same
/// episode the trace came from (protocol, processors, seed, workload
/// shape); crash/restart events come from the trace, not config.crashes.
EpisodeResult ReplayEpisode(const EpisodeConfig& config,
                            const ScheduleTrace& trace);

}  // namespace lazytree::sim

#endif  // LAZYTREE_SIM_EXPLORER_H_
