#include "src/sim/exhaustive.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "src/core/cluster.h"
#include "src/msg/wire.h"
#include "src/net/sim_network.h"
#include "src/sim/minimize.h"
#include "src/util/logging.h"

namespace lazytree::sim {
namespace {

using ChannelKey = std::pair<ProcessorId, ProcessorId>;

/// One DFS decision: deliver the head of `channel`, or (bounded-drop mode)
/// pop and discard it, leaving recovery to the reliable layer's
/// retransmission timers. Drops are ordinary tree branches — deterministic,
/// replayable, and counted against VerifyConfig::drop_budget.
struct Choice {
  ChannelKey channel;
  bool drop = false;
};

inline bool operator==(const Choice& a, const Choice& b) {
  return a.channel == b.channel && a.drop == b.drop;
}

/// Canonical fingerprint of the complete configuration at a decision
/// point: every processor's store / op tracker / AAS registry / protocol
/// handler, the shared history log, all in-flight messages, and the
/// episode's progress counters (round, deliveries-this-round, completed
/// operation outcomes). Two states with equal fingerprints are treated as
/// identical by the dedup cache, so every canonicalization rule lives in
/// the MixState implementations this composes.
uint64_t StateFingerprint(Cluster& cluster, net::SimNetwork& sim,
                          const std::vector<EpisodeOp>& ops, uint32_t round,
                          uint64_t picks, uint64_t drops) {
  Fingerprint fp;
  for (ProcessorId p = 0; p < cluster.size(); ++p) {
    Processor& proc = cluster.processor(p);
    fp.Mix(p);
    fp.Mix(proc.crashed() ? 1 : 0);
    fp.Mix(proc.crash_epoch());
    fp.Mix(proc.next_node_seq());
    fp.Mix(proc.next_update_seq());
    proc.store().MixState(fp);
    proc.ops().MixState(fp);
    proc.aas().MixState(fp);
    if (proc.handler() != nullptr) proc.handler()->MixState(fp);
  }
  cluster.history_log().MixState(fp);
  // Reliable-layer windows and timers are part of the configuration: two
  // states equal in tree/history terms but differing in unacked frames or
  // armed retransmit deadlines evolve differently once the pump fires.
  if (cluster.reliable() != nullptr) cluster.reliable()->MixState(fp);
  sim.MixPending(fp);
  fp.Mix(round);
  fp.Mix(picks);
  // Remaining drop budget distinguishes states: a state that can still
  // drop has successors a budget-exhausted twin lacks.
  fp.Mix(drops);
  fp.Mix(ops.size());
  for (const EpisodeOp& op : ops) {
    fp.Mix(op.done ? 1 : 0);
    if (op.done) {
      fp.Mix(static_cast<uint64_t>(op.result.status.code()));
      fp.Mix(op.result.value);
    }
  }
  return fp.digest();
}

/// True when delivering the head messages of `c1` and `c2` in either order
/// provably reaches the same state: the destinations are distinct
/// processors (a delivery mutates only its destination's local state), and
/// every cross pair of carried actions either commutes per the §3.1 table
/// or addresses different nodes. The action check is deliberately redundant
/// with the destination check today — it keeps the reduction sound if a
/// handler ever grows cross-processor shared state, and it is the
/// "commutativity-guided" half the cross-check below validates at runtime.
bool IndependentHeads(net::SimNetwork& sim, const ChannelKey& c1,
                      const ChannelKey& c2) {
  if (c1.second == c2.second) return false;
  auto m1 = wire::DecodeMessage(sim.PeekChannel(c1.first, c1.second));
  auto m2 = wire::DecodeMessage(sim.PeekChannel(c2.first, c2.second));
  LAZYTREE_CHECK(m1.ok() && m2.ok()) << "wire corruption in verifier peek";
  for (const Action& a : m1->actions) {
    for (const Action& b : m2->actions) {
      if (!ActionsCommute(a.kind, b.kind) && a.target == b.target) {
        return false;
      }
    }
  }
  return true;
}

/// One sampled independence decision, re-executed in both orders after the
/// main exploration to confirm the states converge.
struct CrossCheckRequest {
  std::vector<Choice> prefix;  ///< choices leading to the frame
  ChannelKey t1;
  ChannelKey t2;
};

constexpr uint32_t kNoViolationRound = 0xFFFFFFFF;

/// The DFS engine. One instance persists across all executions of a
/// VerifyExhaustive call: each execution replays the decision prefix held
/// in `stack_` (checking determinism against recorded fingerprints),
/// extends it with fresh frames until the episode completes, and the
/// driver then advances the deepest frame with an untried candidate.
class ExhaustiveStrategy : public net::ScheduleStrategy {
 public:
  ExhaustiveStrategy(const VerifyConfig& config, VerifyStats* stats)
      : config_(config), stats_(stats) {}

  const char* name() const override { return "exhaustive"; }

  EpisodeHooks hooks() {
    EpisodeHooks h;
    h.on_start = [this](Cluster& c, net::SimNetwork& n,
                        const std::vector<EpisodeOp>& ops) {
      cluster_ = &c;
      sim_ = &n;
      ops_ = &ops;
      depth_ = 0;
      cut_ = false;
      round_ = 0;
      picks_this_round_ = 0;
      drops_used_ = 0;
      pending_sleep_.clear();
    };
    h.on_quiescent = [this](Cluster& c, uint32_t round) {
      round_ = round + 1;
      picks_this_round_ = 0;
      if (round == config_.episode.rounds && sim_->mutation_applied()) {
        ++stats_->mutation_fired;
      }
      if (config_.check_each_quiescence &&
          first_violation_round_ == kNoViolationRound &&
          !c.VerifyHistories().violations.empty()) {
        first_violation_round_ = round;
      }
    };
    return h;
  }

  size_t PickChannel(const std::vector<net::ChannelView>& views) override {
    ++stats_->transitions;
    drop_next_ = false;
    size_t index;
    if (cut_) {
      index = 0;  // deterministic drain: lowest channel first
    } else if (depth_ < stack_.size()) {
      index = ReplayPrefix(views);
    } else {
      index = Extend(views);
    }
    ++picks_this_round_;
    return index;
  }

  /// Pins every outcome: the message just picked is delivered unless the
  /// current DFS choice is a scripted drop. Never nullopt — the verifier
  /// must own all delivery nondeterminism.
  std::optional<net::DeliveryOutcome> ForceOutcome() override {
    return drop_next_ ? net::DeliveryOutcome::kDrop
                      : net::DeliveryOutcome::kDeliver;
  }

  /// Advances to the next unexplored schedule; false when the space is
  /// exhausted.
  bool Backtrack() {
    while (!stack_.empty()) {
      Frame& f = stack_.back();
      if (f.next + 1 < f.candidates.size()) {
        ++f.next;
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

  bool cut() const { return cut_; }
  uint32_t first_violation_round() const { return first_violation_round_; }
  std::vector<CrossCheckRequest> TakeCrossChecks() {
    return std::move(cross_checks_);
  }

 private:
  struct Frame {
    std::vector<Choice> candidates;  ///< deliver choices, then drop choices
    std::vector<ChannelKey> sleep;   ///< deliveries pruned here (POR)
    size_t next = 0;                 ///< candidate explored this pass
    uint64_t entry_fp = 0;           ///< state fingerprint on entry
    bool fence = false;  ///< crash-plan event within 2 deliveries
  };

  uint64_t Here() const {
    return StateFingerprint(*cluster_, *sim_, *ops_, round_,
                            picks_this_round_, drops_used_);
  }

  /// A crash-plan event fires between deliveries once the round's step
  /// count reaches it; swapping the next two deliveries changes which side
  /// of the crash they land on, so independence does not hold across the
  /// boundary and sleep filtering is disabled within two deliveries of it.
  bool NearCrashEvent() const {
    for (const CrashEvent& e : config_.episode.crashes) {
      if (e.round == round_ && e.after_steps > picks_this_round_ &&
          e.after_steps <= picks_this_round_ + 2) {
        return true;
      }
    }
    return false;
  }

  static size_t IndexOf(const std::vector<net::ChannelView>& views,
                        const ChannelKey& key) {
    for (size_t i = 0; i < views.size(); ++i) {
      if (views[i].from == key.first && views[i].to == key.second) return i;
    }
    return views.size();
  }

  /// Sleep set the successor of `f` under `chosen` inherits: every
  /// transition already asleep or already fully explored here stays asleep
  /// iff it is independent of `chosen` (its head message is untouched by
  /// the delivery, so exploring it later from the child is redundant).
  /// Drop choices never participate: a drop is not independent of anything
  /// (it consumes budget and arms retransmission), so a chosen drop passes
  /// an empty sleep set down and an explored drop puts nothing to sleep.
  void ComputeChildSleep(const Frame& f, const Choice& chosen) {
    pending_sleep_.clear();
    if (!config_.por || f.fence || chosen.drop) return;
    auto consider = [&](const ChannelKey& u) {
      if (u == chosen.channel) return;
      if (std::find(pending_sleep_.begin(), pending_sleep_.end(), u) !=
          pending_sleep_.end()) {
        return;
      }
      if (IndependentHeads(*sim_, u, chosen.channel)) {
        pending_sleep_.push_back(u);
      }
    };
    for (const ChannelKey& u : f.sleep) consider(u);
    for (size_t i = 0; i < f.next; ++i) {
      if (!f.candidates[i].drop) consider(f.candidates[i].channel);
    }
  }

  size_t ReplayPrefix(const std::vector<net::ChannelView>& views) {
    Frame& f = stack_[depth_];
    if (Here() != f.entry_fp) ++stats_->determinism_failures;
    const Choice chosen = f.candidates[f.next];
    size_t index = IndexOf(views, chosen.channel);
    if (index >= views.size()) {
      // The recorded choice is no longer enabled: the episode is not
      // re-executing deterministically. Count it and drain.
      ++stats_->determinism_failures;
      cut_ = true;
      return 0;
    }
    TakeChoice(chosen);
    ComputeChildSleep(f, chosen);
    ++depth_;
    return index;
  }

  size_t Extend(const std::vector<net::ChannelView>& views) {
    Frame f;
    f.entry_fp = Here();
    f.fence = NearCrashEvent();
    if (!f.fence) f.sleep = std::move(pending_sleep_);
    pending_sleep_.clear();
    if (config_.dedup && f.sleep.empty()) {
      // Record / consult the cache only for empty-sleep frames: a state
      // first reached with a *non-empty* sleep set is not fully explored
      // from here, and skipping a later full visit would be unsound.
      if (!visited_.insert(f.entry_fp).second) {
        ++stats_->pruned_visited;
        cut_ = true;
        return 0;
      }
      ++stats_->states;
    }
    // Explore candidates in (to, from) order rather than the view's
    // (from, to) order: delivering inbound requests before outbound
    // fan-out lets multi-message backlogs form on coordinator->member
    // channels early in the search. With starve_victim set, deliveries to
    // that processor sort last at every frame, so the leftmost schedule is
    // the extreme starvation of the victim (the §4.3 adversary family) —
    // violations that need two messages queued on one victim-bound channel
    // then surface in the first few executions instead of deep in the
    // tree. Pure search-order heuristic — every candidate is still
    // explored, so exhaustiveness and sleep-set soundness are unaffected.
    const int victim = config_.starve_victim;
    std::vector<ChannelKey> enabled;
    enabled.reserve(views.size());
    for (const net::ChannelView& v : views) enabled.push_back({v.from, v.to});
    std::stable_sort(enabled.begin(), enabled.end(),
                     [victim](const ChannelKey& a, const ChannelKey& b) {
                       int sa = victim >= 0 && a.second == victim ? 1 : 0;
                       int sb = victim >= 0 && b.second == victim ? 1 : 0;
                       return std::tie(sa, a.second, a.first) <
                              std::tie(sb, b.second, b.first);
                     });
    for (const ChannelKey& key : enabled) {
      if (config_.por &&
          std::find(f.sleep.begin(), f.sleep.end(), key) != f.sleep.end()) {
        ++stats_->pruned_sleep;
        continue;
      }
      f.candidates.push_back({key, false});
    }
    // Deliver branches first, drop branches after: the leftmost DFS path
    // stays the drop-free schedule, so the cheap sanity pass runs before
    // any loss is explored. Drop choices ignore the sleep set — dropping a
    // sleeping channel's head is NOT covered by the reordering argument
    // that put the delivery to sleep. Self-channels are exempt: loopback
    // models in-process work, bypasses the reliable layer, and is
    // lossless by the paper's model.
    if (drops_used_ < config_.drop_budget) {
      for (const ChannelKey& key : enabled) {
        if (key.first != key.second) f.candidates.push_back({key, true});
      }
    }
    if (f.candidates.empty()) {
      // Everything enabled sleeps: all schedules from this state are
      // covered through orders explored elsewhere. Drain.
      cut_ = true;
      return 0;
    }
    MaybeSampleCrossCheck(f);
    const Choice chosen = f.candidates[0];
    size_t index = IndexOf(views, chosen.channel);
    LAZYTREE_CHECK(index < views.size());
    TakeChoice(chosen);
    ComputeChildSleep(f, chosen);
    stack_.push_back(std::move(f));
    ++depth_;
    stats_->max_frontier = std::max(stats_->max_frontier, stack_.size());
    return index;
  }

  /// Applies the side effects of committing to `chosen` for this delivery:
  /// arms the forced outcome consumed by ForceOutcome and accounts budget.
  void TakeChoice(const Choice& chosen) {
    if (!chosen.drop) return;
    drop_next_ = true;
    ++drops_used_;
    ++stats_->drops_injected;
  }

  void MaybeSampleCrossCheck(const Frame& f) {
    if (!config_.por || cross_checks_.size() >= config_.cross_check_samples) {
      return;
    }
    for (size_t i = 0; i < f.candidates.size(); ++i) {
      if (f.candidates[i].drop) continue;
      for (size_t j = i + 1; j < f.candidates.size(); ++j) {
        if (f.candidates[j].drop) continue;
        if (!IndependentHeads(*sim_, f.candidates[i].channel,
                              f.candidates[j].channel)) {
          continue;
        }
        CrossCheckRequest req;
        req.prefix.reserve(depth_);
        for (size_t d = 0; d < depth_; ++d) {
          req.prefix.push_back(stack_[d].candidates[stack_[d].next]);
        }
        req.t1 = f.candidates[i].channel;
        req.t2 = f.candidates[j].channel;
        cross_checks_.push_back(std::move(req));
        return;
      }
    }
  }

  const VerifyConfig& config_;
  VerifyStats* stats_;
  Cluster* cluster_ = nullptr;
  net::SimNetwork* sim_ = nullptr;
  const std::vector<EpisodeOp>* ops_ = nullptr;
  std::vector<Frame> stack_;
  size_t depth_ = 0;  ///< frames consumed by the current execution
  bool cut_ = false;  ///< current execution switched to deterministic drain
  uint32_t round_ = 0;
  uint64_t picks_this_round_ = 0;
  uint32_t drops_used_ = 0;  ///< scripted drops taken by this execution
  bool drop_next_ = false;   ///< outcome armed for the message just picked
  std::vector<ChannelKey> pending_sleep_;  ///< sleep set for the next frame
  std::unordered_set<uint64_t> visited_;
  uint32_t first_violation_round_ = kNoViolationRound;
  std::vector<CrossCheckRequest> cross_checks_;
};

/// Delivers a fixed choice sequence (channel + deliver/drop outcome), then
/// drains deterministically (lowest channel first, everything delivered).
/// Used to re-execute both orders of a sampled independent pair.
class ForcedStrategy : public net::ScheduleStrategy {
 public:
  explicit ForcedStrategy(std::vector<Choice> forced)
      : forced_(std::move(forced)) {}

  const char* name() const override { return "forced"; }

  size_t PickChannel(const std::vector<net::ChannelView>& views) override {
    drop_next_ = false;
    if (cursor_ < forced_.size()) {
      const Choice& c = forced_[cursor_];
      for (size_t i = 0; i < views.size(); ++i) {
        if (views[i].from == c.channel.first &&
            views[i].to == c.channel.second) {
          ++cursor_;
          drop_next_ = c.drop;
          return i;
        }
      }
      ++diverged_;
      cursor_ = forced_.size();  // abandon the script, drain
    }
    return 0;
  }

  std::optional<net::DeliveryOutcome> ForceOutcome() override {
    return drop_next_ ? net::DeliveryOutcome::kDrop
                      : net::DeliveryOutcome::kDeliver;
  }

  uint64_t diverged() const { return diverged_; }

 private:
  std::vector<Choice> forced_;
  size_t cursor_ = 0;
  bool drop_next_ = false;
  uint64_t diverged_ = 0;
};

/// Re-runs the episode delivering `forced` first, and fingerprints the
/// final quiescent state (violation count mixed in). Two forced runs that
/// differ only in the order of an independent pair must return equal
/// values.
uint64_t RunForced(const EpisodeConfig& episode, std::vector<Choice> forced,
                   bool* diverged) {
  ForcedStrategy strategy(std::move(forced));
  net::SimNetwork* sim = nullptr;
  const std::vector<EpisodeOp>* ops = nullptr;
  uint64_t final_fp = 0;
  EpisodeHooks hooks;
  hooks.on_start = [&](Cluster& c, net::SimNetwork& n,
                       const std::vector<EpisodeOp>& o) {
    (void)c;
    sim = &n;
    ops = &o;
  };
  hooks.on_quiescent = [&](Cluster& c, uint32_t round) {
    final_fp = StateFingerprint(c, *sim, *ops, round, 0, 0);
  };
  EpisodeResult result = RunEpisodeUnder(episode, &strategy, nullptr, hooks);
  *diverged = strategy.diverged() > 0;
  Fingerprint fp;
  fp.Mix(final_fp);
  fp.Mix(result.violations.size());
  return fp.digest();
}

std::string DescribeChannel(const ChannelKey& key) {
  return "(" + std::to_string(key.first) + "->" + std::to_string(key.second) +
         ")";
}

}  // namespace

std::string VerifyResult::Summary() const {
  std::string s;
  if (!ok) {
    s = "VIOLATION: " + (violations.empty() ? "?" : violations.front());
  } else if (exhausted) {
    s = "exhausted, no violations";
  } else {
    s = "budget hit, no violations";
  }
  s += " | executions=" + std::to_string(stats.executions);
  s += " schedules=" + std::to_string(stats.schedules);
  s += " transitions=" + std::to_string(stats.transitions);
  s += " states=" + std::to_string(stats.states);
  s += " pruned_sleep=" + std::to_string(stats.pruned_sleep);
  s += " pruned_visited=" + std::to_string(stats.pruned_visited);
  s += " cross_checks=" + std::to_string(stats.cross_checks) + "/" +
       std::to_string(stats.cross_check_failures) + " failed";
  if (stats.mutation_fired > 0) {
    s += " mutation_fired=" + std::to_string(stats.mutation_fired);
  }
  if (stats.drops_injected > 0) {
    s += " drops_injected=" + std::to_string(stats.drops_injected);
  }
  s += " max_frontier=" + std::to_string(stats.max_frontier);
  return s;
}

VerifyResult VerifyExhaustive(const VerifyConfig& config) {
  LAZYTREE_CHECK(config.episode.drop == 0 && config.episode.dup == 0)
      << "exhaustive verification needs deterministic delivery outcomes "
         "(bounded loss goes through drop_budget, not probabilities)";
  LAZYTREE_CHECK(config.drop_budget == 0 || config.episode.reliable)
      << "bounded drops need the reliable layer to recover them";
  VerifyResult result;
  ExhaustiveStrategy strategy(config, &result.stats);
  EpisodeHooks hooks = strategy.hooks();
  while (true) {
    TraceRecorder recorder;
    EpisodeResult episode =
        RunEpisodeUnder(config.episode, &strategy, &recorder, hooks);
    ++result.stats.executions;
    if (!strategy.cut()) ++result.stats.schedules;
    if (!episode.ok) {
      result.ok = false;
      result.violations = episode.violations;
      result.trace = episode.trace;
      if (config.minimize) {
        StatusOr<MinimizeResult> minimized =
            MinimizeTrace(config.episode, episode.trace);
        if (minimized.ok()) {
          result.trace = std::move(minimized->trace);
        }
      }
      break;
    }
    if (!strategy.Backtrack()) {
      result.exhausted = true;
      break;
    }
    if (result.stats.executions >= config.max_executions) break;
  }
  result.first_violation_round = strategy.first_violation_round();

  if (result.stats.determinism_failures > 0) {
    result.ok = false;
    result.violations.push_back(
        "verifier: prefix re-execution diverged " +
        std::to_string(result.stats.determinism_failures) +
        " times — episode state is not a deterministic function of the "
        "delivery schedule");
  }

  // Validate sampled independence decisions by running both orders.
  if (config.por && config.cross_check_samples > 0) {
    for (const CrossCheckRequest& req : strategy.TakeCrossChecks()) {
      std::vector<Choice> ab = req.prefix;
      ab.push_back({req.t1, false});
      ab.push_back({req.t2, false});
      std::vector<Choice> ba = req.prefix;
      ba.push_back({req.t2, false});
      ba.push_back({req.t1, false});
      bool diverged_ab = false;
      bool diverged_ba = false;
      uint64_t fp_ab = RunForced(config.episode, std::move(ab), &diverged_ab);
      uint64_t fp_ba = RunForced(config.episode, std::move(ba), &diverged_ba);
      if (diverged_ab || diverged_ba) continue;  // prefix no longer valid
      ++result.stats.cross_checks;
      if (fp_ab != fp_ba) {
        ++result.stats.cross_check_failures;
        result.ok = false;
        result.violations.push_back(
            "verifier: POR cross-check diverged for pair " +
            DescribeChannel(req.t1) + " x " + DescribeChannel(req.t2) +
            " at depth " + std::to_string(req.prefix.size()) +
            " — independence relation is unsound for this protocol");
      }
    }
  }
  return result;
}

}  // namespace lazytree::sim
