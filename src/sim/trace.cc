#include "src/sim/trace.h"

#include <cstdio>
#include <sstream>

namespace lazytree::sim {

namespace {

char KindChar(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kDeliver: return 'D';
    case TraceEvent::Kind::kDrop: return 'X';
    case TraceEvent::Kind::kDuplicate: return 'U';
    case TraceEvent::Kind::kCrash: return 'C';
    case TraceEvent::Kind::kRestart: return 'R';
  }
  return '?';
}

}  // namespace

size_t ScheduleTrace::FaultCount() const {
  size_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.is_fault()) ++n;
  }
  return n;
}

size_t ScheduleTrace::ControlCount() const {
  size_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.is_control()) ++n;
  }
  return n;
}

std::string ScheduleTrace::Serialize() const {
  std::string out = "# lazytree schedule trace v1\n";
  for (const auto& [key, value] : meta) {
    out += key;
    out += ' ';
    out += value;
    out += '\n';
  }
  out += "--\n";
  for (const TraceEvent& e : events) {
    out += KindChar(e.kind);
    if (e.is_control()) {
      out += ' ';
      out += std::to_string(e.to);
    } else {
      out += ' ';
      out += std::to_string(e.from);
      out += ' ';
      out += std::to_string(e.to);
    }
    out += '\n';
  }
  return out;
}

StatusOr<ScheduleTrace> ScheduleTrace::Parse(const std::string& text) {
  ScheduleTrace trace;
  std::istringstream in(text);
  std::string line;
  bool in_events = false;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    if (line == "--") {
      in_events = true;
      continue;
    }
    std::istringstream fields(line);
    if (!in_events) {
      std::string key;
      fields >> key;
      std::string value;
      std::getline(fields, value);
      if (!value.empty() && value[0] == ' ') value.erase(0, 1);
      trace.meta[key] = value;
      continue;
    }
    char kind_char = 0;
    fields >> kind_char;
    TraceEvent e;
    switch (kind_char) {
      case 'D': e.kind = TraceEvent::Kind::kDeliver; break;
      case 'X': e.kind = TraceEvent::Kind::kDrop; break;
      case 'U': e.kind = TraceEvent::Kind::kDuplicate; break;
      case 'C': e.kind = TraceEvent::Kind::kCrash; break;
      case 'R': e.kind = TraceEvent::Kind::kRestart; break;
      default:
        return Status::InvalidArgument("trace line " +
                                       std::to_string(lineno) +
                                       ": unknown event '" + line + "'");
    }
    uint64_t a = 0;
    uint64_t b = 0;
    if (e.is_control()) {
      if (!(fields >> a)) {
        return Status::InvalidArgument("trace line " +
                                       std::to_string(lineno) +
                                       ": malformed control event");
      }
      e.to = static_cast<ProcessorId>(a);
    } else {
      if (!(fields >> a >> b)) {
        return Status::InvalidArgument("trace line " +
                                       std::to_string(lineno) +
                                       ": malformed delivery event");
      }
      e.from = static_cast<ProcessorId>(a);
      e.to = static_cast<ProcessorId>(b);
    }
    trace.events.push_back(e);
  }
  return trace;
}

Status ScheduleTrace::SaveFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  std::string text = Serialize();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::OK();
}

StatusOr<ScheduleTrace> ScheduleTrace::LoadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return Parse(text);
}

void TraceRecorder::OnDelivery(ProcessorId from, ProcessorId to,
                               net::DeliveryOutcome outcome) {
  TraceEvent e;
  e.from = from;
  e.to = to;
  switch (outcome) {
    case net::DeliveryOutcome::kDeliver:
      e.kind = TraceEvent::Kind::kDeliver;
      break;
    case net::DeliveryOutcome::kDrop:
    case net::DeliveryOutcome::kCrashDrop:
      // A crash-drop replays as a plain drop: the crash event itself is in
      // the trace, so the replayed destination is crashed too, and forcing
      // kDrop keeps the outcome identical even if the minimizer removed
      // the crash.
      e.kind = TraceEvent::Kind::kDrop;
      break;
    case net::DeliveryOutcome::kDuplicate:
      e.kind = TraceEvent::Kind::kDuplicate;
      break;
  }
  trace_.events.push_back(e);
}

void TraceRecorder::OnCrash(ProcessorId p) {
  trace_.events.push_back(
      TraceEvent{TraceEvent::Kind::kCrash, kInvalidProcessor, p});
}

void TraceRecorder::OnRestart(ProcessorId p) {
  trace_.events.push_back(
      TraceEvent{TraceEvent::Kind::kRestart, kInvalidProcessor, p});
}

size_t ReplayStrategy::PickChannel(
    const std::vector<net::ChannelView>& channels) {
  // Find the next delivery event matching a live channel. Control events
  // here mean the driver did not consume them (it always should); treat
  // them as divergence and skip.
  while (cursor_ < trace_.events.size()) {
    const TraceEvent& e = trace_.events[cursor_];
    if (e.is_control()) {
      ++diverged_;
      ++cursor_;
      continue;
    }
    for (size_t i = 0; i < channels.size(); ++i) {
      if (channels[i].from == e.from && channels[i].to == e.to) {
        ++cursor_;
        switch (e.kind) {
          case TraceEvent::Kind::kDeliver:
            forced_ = net::DeliveryOutcome::kDeliver;
            break;
          case TraceEvent::Kind::kDrop:
            forced_ = net::DeliveryOutcome::kDrop;
            break;
          default:
            forced_ = net::DeliveryOutcome::kDuplicate;
            break;
        }
        return i;
      }
    }
    // The recorded channel has no pending message now — an edited trace
    // (minimization) shifted the execution. Skip the event.
    ++diverged_;
    ++cursor_;
  }
  // Trace exhausted: deterministic drain so replay stays reproducible.
  forced_ = net::DeliveryOutcome::kDeliver;
  return 0;
}

const TraceEvent* ReplayStrategy::PeekControl() const {
  if (cursor_ >= trace_.events.size()) return nullptr;
  const TraceEvent& e = trace_.events[cursor_];
  return e.is_control() ? &e : nullptr;
}

void ReplayStrategy::AdvanceControl() {
  if (PeekControl() != nullptr) ++cursor_;
}

}  // namespace lazytree::sim
