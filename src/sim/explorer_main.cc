// lazytree_explore: schedule-exploration driver.
//
// Explore mode (default) sweeps strategies x protocols x seeds, running a
// fully-verified episode per combination:
//
//   lazytree_explore --strategy=pct --protocol=all --seeds=50
//
// On failure it saves the recorded trace, runs the delta-debugging
// minimizer, and prints the exact replay command. Fault injection
// demonstrates the pipeline end-to-end (the lazy protocols assume a
// reliable network, so drops produce real checker violations):
//
//   lazytree_explore --strategy=uniform --protocol=semisync --seeds=5 \
//       --drop=0.02
//
// Replay mode re-executes a saved trace (config flags must match the
// trace's episode — they are recorded in its header):
//
//   lazytree_explore --replay=failure.trace --protocol=semisync --seed=3
//
// Exit status: 0 when every episode passed, 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/sim/explorer.h"
#include "src/sim/minimize.h"

namespace lazytree::sim {
namespace {

struct CliOptions {
  std::string strategy = "pct";     // uniform | pct | starve | all
  std::string protocol = "all";     // protocol name | all
  uint64_t seeds = 10;              // explore seeds 1..N
  uint64_t seed = 0;                // replay / single-seed override
  uint32_t processors = 4;
  uint32_t rounds = 6;
  uint32_t ops_per_round = 24;
  uint64_t key_space = 512;
  size_t fanout = 6;
  uint32_t pct_depth = 3;
  uint32_t leaf_replication = 0;    // 0 = protocol default (1)
  uint32_t shed_threshold = 0;      // mobile/varcopies leaf shedding
  std::string mutation;             // planted mutation (verifier self-test)
  double drop = 0;
  double dup = 0;
  bool reliable = false;  // recover drop/dup via the reliable layer
  uint32_t crashes = 0;
  std::string trace_out = "traces";  // directory for failure artifacts
  std::string replay_path;          // switches to replay mode
  std::string record_path;          // save first episode's trace here
  bool minimize = true;
  bool verbose = false;
  bool multicore = false;  // combine_ops + local_fastpath on (sim vetting)
};

void Usage() {
  std::fprintf(stderr,
               "usage: lazytree_explore [--strategy=uniform|pct|starve|all]\n"
               "    [--protocol=<name>|all] [--seeds=N] [--seed=N]\n"
               "    [--processors=N] [--rounds=N] [--ops=N] [--keyspace=N]\n"
               "    [--fanout=N] [--pct-depth=N] [--leaf-replication=N]\n"
               "    [--shed=N] [--mutation=drop-relay|swap-ordered]\n"
               "    [--drop=P] [--dup=P] [--reliable] [--crashes=N]\n"
               "    [--trace-out=DIR] [--replay=TRACE] [--record=TRACE]\n"
               "    [--no-minimize] [--multicore] [--verbose]\n");
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseCli(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "strategy", &v)) cli->strategy = v;
    else if (ParseFlag(arg, "protocol", &v)) cli->protocol = v;
    else if (ParseFlag(arg, "seeds", &v)) cli->seeds = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "seed", &v)) cli->seed = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "processors", &v)) cli->processors = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "rounds", &v)) cli->rounds = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "ops", &v)) cli->ops_per_round = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "keyspace", &v)) cli->key_space = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "fanout", &v)) cli->fanout = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "pct-depth", &v)) cli->pct_depth = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "leaf-replication", &v)) cli->leaf_replication = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "shed", &v)) cli->shed_threshold = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "mutation", &v)) cli->mutation = v;
    else if (ParseFlag(arg, "drop", &v)) cli->drop = std::strtod(v.c_str(), nullptr);
    else if (ParseFlag(arg, "dup", &v)) cli->dup = std::strtod(v.c_str(), nullptr);
    else if (ParseFlag(arg, "crashes", &v)) cli->crashes = std::strtoul(v.c_str(), nullptr, 10);
    else if (ParseFlag(arg, "trace-out", &v)) cli->trace_out = v;
    else if (ParseFlag(arg, "replay", &v)) cli->replay_path = v;
    else if (ParseFlag(arg, "record", &v)) cli->record_path = v;
    else if (arg == "--reliable") cli->reliable = true;
    else if (arg == "--no-minimize") cli->minimize = false;
    else if (arg == "--minimize") cli->minimize = true;
    else if (arg == "--multicore") cli->multicore = true;
    else if (arg == "--verbose") cli->verbose = true;
    else if (arg == "--help" || arg == "-h") { Usage(); return false; }
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

/// The "shipped five" (naive is the deliberately broken Fig. 4 strawman;
/// it is selectable by name but not part of `all`).
std::vector<ProtocolKind> ProtocolSet(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "all") {
    return {ProtocolKind::kSyncSplit, ProtocolKind::kSemiSyncSplit,
            ProtocolKind::kVigorous, ProtocolKind::kMobile,
            ProtocolKind::kVarCopies};
  }
  ProtocolKind kind;
  if (!ParseProtocolKind(name, &kind)) {
    *ok = false;
    return {};
  }
  return {kind};
}

std::vector<StrategyKind> StrategySet(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "all") {
    return {StrategyKind::kUniform, StrategyKind::kPct, StrategyKind::kStarve};
  }
  StrategyKind kind;
  if (!ParseStrategyKind(name, &kind)) {
    *ok = false;
    return {};
  }
  return {kind};
}

/// Fixed-copies protocols survive crash/restart generically (replicated
/// copies + deterministic placement re-routing). Mobile and varcopies
/// host single-copy leaves, so a generic crash destroys data by design;
/// their crash coverage is the hand-built scenarios in
/// tests/crash_restart_test.cc.
bool SupportsGenericCrashes(ProtocolKind protocol) {
  return protocol == ProtocolKind::kSyncSplit ||
         protocol == ProtocolKind::kSemiSyncSplit ||
         protocol == ProtocolKind::kVigorous;
}

EpisodeConfig BuildConfig(const CliOptions& cli, ProtocolKind protocol,
                          StrategyKind strategy, uint64_t seed) {
  EpisodeConfig config;
  config.protocol = protocol;
  config.processors = cli.processors;
  config.seed = seed;
  config.rounds = cli.rounds;
  config.ops_per_round = cli.ops_per_round;
  config.key_space = cli.key_space;
  config.fanout = cli.fanout;
  config.leaf_replication =
      cli.leaf_replication > 0 ? cli.leaf_replication : 1;
  config.combine_ops = cli.multicore;
  config.local_fastpath = cli.multicore;
  config.shed_threshold = cli.shed_threshold;
  config.mutation = net::ParseScheduleMutation(cli.mutation);
  config.drop = cli.drop;
  config.dup = cli.dup;
  config.reliable = cli.reliable;
  config.strategy.kind = strategy;
  config.strategy.seed = seed;
  config.strategy.pct_depth = cli.pct_depth;
  config.strategy.pct_expected_events =
      static_cast<uint64_t>(cli.rounds) * cli.ops_per_round * 32;
  config.strategy.starve_victim =
      static_cast<ProcessorId>(seed % cli.processors);
  if (cli.crashes > 0 && SupportsGenericCrashes(protocol)) {
    // Crashes need surviving replicas to be non-destructive.
    if (config.leaf_replication < 2) config.leaf_replication = 3;
    for (uint32_t i = 0; i < cli.crashes; ++i) {
      CrashEvent crash;
      crash.round = cli.rounds > 2 ? 1 + (i % (cli.rounds - 2)) : 0;
      crash.after_steps = 40 + 17 * i + seed % 23;
      crash.processor =
          static_cast<ProcessorId>((seed + i) % cli.processors);
      config.crashes.push_back(crash);
      CrashEvent restart = crash;
      restart.restart = true;
      restart.round = crash.round + 1;
      restart.after_steps = 20 + seed % 11;
      config.crashes.push_back(restart);
    }
  }
  return config;
}

std::string ReproCommand(const CliOptions& cli, const EpisodeConfig& config,
                         const std::string& trace_path) {
  std::string cmd = "lazytree_explore --replay=" + trace_path;
  cmd += " --protocol=" + std::string(ProtocolKindName(config.protocol));
  cmd += " --seed=" + std::to_string(config.seed);
  cmd += " --processors=" + std::to_string(config.processors);
  cmd += " --rounds=" + std::to_string(config.rounds);
  cmd += " --ops=" + std::to_string(config.ops_per_round);
  cmd += " --keyspace=" + std::to_string(config.key_space);
  cmd += " --fanout=" + std::to_string(config.fanout);
  cmd += " --leaf-replication=" + std::to_string(config.leaf_replication);
  if (config.combine_ops || config.local_fastpath) cmd += " --multicore";
  if (config.reliable) cmd += " --reliable";
  (void)cli;
  return cmd;
}

/// Writes the §3.1 violation report that rides alongside a failure trace:
/// the classified violation list plus the exact replay command, so a
/// failure can be triaged without re-running the episode.
void WriteFailureReport(const std::string& report_path,
                        const EpisodeConfig& config,
                        const EpisodeResult& result,
                        const std::string& trace_path,
                        const std::string& min_path,
                        const std::string& repro) {
  std::ofstream out(report_path);
  if (!out) {
    std::printf("  report save failed: %s\n", report_path.c_str());
    return;
  }
  out << "lazytree schedule-explorer failure report\n"
      << "episode: protocol=" << ProtocolKindName(config.protocol)
      << " seed=" << config.seed << " processors=" << config.processors
      << " rounds=" << config.rounds << " ops_per_round="
      << config.ops_per_round << " key_space=" << config.key_space
      << " fanout=" << config.fanout << " leaf_replication="
      << config.leaf_replication << " drop=" << config.drop
      << " dup=" << config.dup << "\n"
      << "signature: " << result.Signature() << "\n"
      << "ops: " << result.ops_completed << "/" << result.ops_submitted
      << " completed, " << result.delivered << " deliveries\n\n";

  std::vector<std::string> history, structure, client;
  for (const std::string& v : result.violations) {
    if (v.rfind("history: ", 0) == 0) {
      history.push_back(v.substr(9));
    } else if (v.rfind("structure: ", 0) == 0) {
      structure.push_back(v.substr(11));
    } else {
      client.push_back(v);
    }
  }
  auto section = [&](const char* title, const std::vector<std::string>& vs) {
    out << title << " (" << vs.size() << "):\n";
    for (const std::string& v : vs) out << "  " << v << "\n";
    out << "\n";
  };
  section("S3.1 history violations (complete/compatible/ordered)", history);
  section("tree-structure violations", structure);
  section("client-visible violations", client);

  out << "trace: " << trace_path << "\n";
  if (!min_path.empty()) out << "minimized trace: " << min_path << "\n";
  out << "repro: " << repro << "\n";
}

int RunReplay(const CliOptions& cli) {
  StatusOr<ScheduleTrace> loaded = ScheduleTrace::LoadFile(cli.replay_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load trace: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  bool proto_ok = true;
  std::vector<ProtocolKind> protocols = ProtocolSet(cli.protocol, &proto_ok);
  if (!proto_ok || protocols.size() != 1) {
    std::fprintf(stderr,
                 "--replay needs a single --protocol matching the trace\n");
    return 1;
  }
  EpisodeConfig config = BuildConfig(
      cli, protocols[0], StrategyKind::kUniform, cli.seed ? cli.seed : 1);
  config.crashes.clear();  // the trace carries crash/restart events
  // Episode knobs recorded in the trace header win over CLI defaults, so
  // verifier-recorded repros (shed/mutation configs) replay verbatim.
  if (cli.shed_threshold == 0) {
    auto it = loaded->meta.find("shed_threshold");
    if (it != loaded->meta.end()) {
      config.shed_threshold =
          static_cast<uint32_t>(std::strtoul(it->second.c_str(), nullptr, 10));
    }
  }
  if (cli.mutation.empty()) {
    auto it = loaded->meta.find("mutation");
    if (it != loaded->meta.end()) {
      config.mutation = net::ParseScheduleMutation(it->second);
    }
  }
  if (!cli.reliable) {
    auto it = loaded->meta.find("reliable");
    if (it != loaded->meta.end()) config.reliable = it->second == "1";
  }
  EpisodeResult result = ReplayEpisode(config, *loaded);
  std::printf("replay %s: %s (%llu deliveries, %llu diverged)\n",
              cli.replay_path.c_str(), result.ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(result.delivered),
              static_cast<unsigned long long>(result.replay_diverged));
  for (const std::string& v : result.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
  if (!result.ok && cli.minimize) {
    StatusOr<MinimizeResult> minimized = MinimizeTrace(config, *loaded);
    if (minimized.ok()) {
      std::string path = cli.replay_path + ".min";
      Status save = minimized->trace.SaveFile(path);
      std::printf(
          "minimized: %zu -> %zu fault events (%zu replays, "
          "deterministic=%s) -> %s\n",
          minimized->initial_faults, minimized->final_faults,
          minimized->replays, minimized->deterministic ? "yes" : "no",
          save.ok() ? path.c_str() : save.ToString().c_str());
    } else {
      std::printf("minimize: %s\n", minimized.status().ToString().c_str());
    }
  }
  return result.ok ? 0 : 1;
}

int RunExplore(const CliOptions& cli) {
  bool proto_ok = true;
  bool strat_ok = true;
  std::vector<ProtocolKind> protocols = ProtocolSet(cli.protocol, &proto_ok);
  std::vector<StrategyKind> strategies = StrategySet(cli.strategy, &strat_ok);
  if (!proto_ok) {
    std::fprintf(stderr, "unknown protocol: %s\n", cli.protocol.c_str());
    return 1;
  }
  if (!strat_ok) {
    std::fprintf(stderr, "unknown strategy: %s\n", cli.strategy.c_str());
    return 1;
  }
  const uint64_t first_seed = cli.seed ? cli.seed : 1;
  const uint64_t last_seed = cli.seed ? cli.seed : cli.seeds;

  size_t episodes = 0;
  size_t failures = 0;
  for (ProtocolKind protocol : protocols) {
    for (StrategyKind strategy : strategies) {
      for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
        EpisodeConfig config = BuildConfig(cli, protocol, strategy, seed);
        EpisodeResult result = RunEpisode(config);
        ++episodes;
        if (!cli.record_path.empty() && episodes == 1) {
          Status save = result.trace.SaveFile(cli.record_path);
          std::printf("recorded %s: %s\n", cli.record_path.c_str(),
                      save.ok() ? "ok" : save.ToString().c_str());
        }
        if (cli.verbose || !result.ok) {
          std::printf("[%s/%s seed=%llu] %s: %zu/%zu ops, %llu deliveries\n",
                      ProtocolKindName(protocol), StrategyKindName(strategy),
                      static_cast<unsigned long long>(seed),
                      result.ok ? "pass" : "FAIL", result.ops_completed,
                      result.ops_submitted,
                      static_cast<unsigned long long>(result.delivered));
        }
        if (result.ok) continue;
        ++failures;
        for (const std::string& v : result.violations) {
          std::printf("  violation: %s\n", v.c_str());
        }
        std::error_code mkdir_ec;
        std::filesystem::create_directories(cli.trace_out, mkdir_ec);
        if (mkdir_ec) {
          std::printf("  trace dir %s: %s\n", cli.trace_out.c_str(),
                      mkdir_ec.message().c_str());
        }
        std::string path = cli.trace_out + "/failure-" +
                           ProtocolKindName(protocol) + "-" +
                           StrategyKindName(strategy) + "-s" +
                           std::to_string(seed) + ".trace";
        Status save = result.trace.SaveFile(path);
        if (!save.ok()) {
          std::printf("  trace save failed: %s\n",
                      save.ToString().c_str());
          continue;
        }
        std::printf("  trace: %s\n", path.c_str());
        std::string min_path;
        if (cli.minimize) {
          StatusOr<MinimizeResult> minimized =
              MinimizeTrace(config, result.trace);
          if (minimized.ok()) {
            std::string candidate = path + ".min";
            Status min_save = minimized->trace.SaveFile(candidate);
            std::printf(
                "  minimized: %zu -> %zu fault events (%zu replays, "
                "deterministic=%s) -> %s\n",
                minimized->initial_faults, minimized->final_faults,
                minimized->replays,
                minimized->deterministic ? "yes" : "no",
                min_save.ok() ? candidate.c_str()
                              : min_save.ToString().c_str());
            if (min_save.ok()) {
              min_path = std::move(candidate);
              std::printf("  repro: %s\n",
                          ReproCommand(cli, config, min_path).c_str());
            }
          } else {
            std::printf("  minimize: %s\n",
                        minimized.status().ToString().c_str());
          }
        }
        const std::string repro = ReproCommand(
            cli, config, min_path.empty() ? path : min_path);
        std::printf("  repro: %s\n", ReproCommand(cli, config, path).c_str());
        const std::string report_path = path + ".report";
        WriteFailureReport(report_path, config, result, path, min_path,
                           repro);
        std::printf("  report: %s\n", report_path.c_str());
      }
    }
  }
  std::printf("%zu episodes, %zu failed\n", episodes, failures);
  return failures > 0 ? 1 : 0;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseCli(argc, argv, &cli)) return 2;
  if (!cli.replay_path.empty()) return RunReplay(cli);
  return RunExplore(cli);
}

}  // namespace
}  // namespace lazytree::sim

int main(int argc, char** argv) { return lazytree::sim::Main(argc, argv); }
