// BlinkTree: shared-memory concurrent B-link tree (Lehman–Yao [17],
// Sagiv [18]) — the algorithm the dB-tree distributes (§1.1).
//
// Every node carries a right-sibling pointer and a high key; operations
// hold at most one node latch at a time (no lock coupling), recovering
// from concurrent splits by chasing right links. Nodes are never merged
// (free-at-empty policy, [11]). Included both as the baseline the paper
// builds on and for bench C6 (why B-link is the right starting point).

#ifndef LAZYTREE_BLINK_BLINK_TREE_H_
#define LAZYTREE_BLINK_BLINK_TREE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "src/msg/key.h"

namespace lazytree {

class BlinkTree {
 public:
  /// `max_entries`: node capacity before a half-split.
  explicit BlinkTree(size_t max_entries = 64);
  ~BlinkTree();

  BlinkTree(const BlinkTree&) = delete;
  BlinkTree& operator=(const BlinkTree&) = delete;

  /// Inserts key -> value; false if the key already exists.
  bool Insert(Key key, Value value);

  /// Point lookup.
  std::optional<Value> Search(Key key) const;

  /// Removes a key; false if absent. Nodes are never merged
  /// (free-at-empty, [11]).
  bool Delete(Key key);

  /// Up to `limit` entries with keys >= `start`, ascending, by walking
  /// the leaf chain. Best-effort under concurrent updates.
  std::vector<std::pair<Key, Value>> Scan(Key start, size_t limit) const;

  /// Number of keys stored.
  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Tree height (levels), for diagnostics.
  int32_t Height() const;

  /// Structural self-check (single-threaded use only): verifies level
  /// chains, range partitioning, and key order. Returns violation count.
  size_t CheckStructure() const;

 private:
  struct BNode {
    mutable std::shared_mutex mu;
    int32_t level = 0;              // 0 = leaf
    Key low = 0;
    Key high = kKeyInfinity;        // [low, high)
    BNode* right = nullptr;
    std::vector<Key> keys;          // sorted
    std::vector<uint64_t> payloads; // leaf: Value; interior: BNode*

    bool Contains(Key k) const { return k >= low && k < high; }
  };

  // Interior payload <-> child pointer conversion, confined to these two
  // audited helpers (the only reinterpret_casts in the tree). Interior
  // payloads reuse the leaf's uint64_t payload slot to store the child
  // BNode*. Safe because nodes come from the arena and are never freed
  // while the tree lives, and uintptr_t round-trips through uint64_t on
  // every supported platform (checked below).
  static BNode* ChildPtr(uint64_t payload) {
    static_assert(sizeof(uintptr_t) <= sizeof(uint64_t),
                  "BNode* must round-trip through a uint64_t payload");
    return reinterpret_cast<BNode*>(static_cast<uintptr_t>(payload));
  }
  static uint64_t ChildPayload(const BNode* child) {
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(child));
  }

  BNode* NewNode(int32_t level);

  /// Descends from the current root to the leaf covering `key`, stashing
  /// the visited node per level in `path` (levels above the leaf) for
  /// the bottom-up split phase.
  BNode* DescendToLeaf(Key key, std::vector<BNode*>* path) const;

  /// Inserts (key, payload) into a locked node; returns false on dup.
  static bool NodeInsert(BNode& n, Key key, uint64_t payload);

  /// Splits a locked, overfull node; returns the new sibling (unlocked,
  /// not yet published to the parent).
  BNode* SplitLocked(BNode& n);

  /// Inserts a separator for `sibling` into the ancestor at
  /// `parent_level`, splitting upward as needed.
  void InsertSeparator(std::vector<BNode*>& path, int32_t parent_level,
                       Key sep, BNode* sibling);

  /// Installs a new root so the tree reaches `needed_level`; no-op when
  /// a racing grower already did.
  void GrowRoot(int32_t needed_level);

  const size_t max_entries_;
  std::atomic<BNode*> root_;
  std::atomic<size_t> size_{0};
  std::mutex root_mu_;  // serializes root growth only

  // Node arena: nodes live until the tree dies (never-merge policy makes
  // this safe and keeps sibling pointers valid without hazard pointers).
  std::mutex arena_mu_;
  std::vector<std::unique_ptr<BNode>> arena_;
};

}  // namespace lazytree

#endif  // LAZYTREE_BLINK_BLINK_TREE_H_
