#include "src/blink/lock_tree.h"

#include <mutex>

namespace lazytree {

bool LockTree::Insert(Key key, Value value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return map_.try_emplace(key, value).second;
}

std::optional<Value> LockTree::Search(Key key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

size_t LockTree::Size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

}  // namespace lazytree
