// LockTree: the "one big lock" strawman for bench C6 — a dictionary
// guarded by a single reader-writer lock. Its collapse under write load
// is why B-link-style node-local synchronization (and, distributed, lazy
// updates) matter.

#ifndef LAZYTREE_BLINK_LOCK_TREE_H_
#define LAZYTREE_BLINK_LOCK_TREE_H_

#include <map>
#include <optional>
#include <shared_mutex>

#include "src/msg/key.h"

namespace lazytree {

class LockTree {
 public:
  bool Insert(Key key, Value value);
  std::optional<Value> Search(Key key) const;
  size_t Size() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<Key, Value> map_;
};

}  // namespace lazytree

#endif  // LAZYTREE_BLINK_LOCK_TREE_H_
