#include "src/blink/blink_tree.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lazytree {

BlinkTree::BlinkTree(size_t max_entries) : max_entries_(max_entries) {
  LAZYTREE_CHECK(max_entries_ >= 2) << "capacity too small to split";
  root_.store(NewNode(/*level=*/0), std::memory_order_release);
}

BlinkTree::~BlinkTree() = default;

BlinkTree::BNode* BlinkTree::NewNode(int32_t level) {
  auto node = std::make_unique<BNode>();
  node->level = level;
  BNode* raw = node.get();
  std::lock_guard<std::mutex> lock(arena_mu_);
  arena_.push_back(std::move(node));
  return raw;
}

int32_t BlinkTree::Height() const {
  return root_.load(std::memory_order_acquire)->level + 1;
}

bool BlinkTree::NodeInsert(BNode& n, Key key, uint64_t payload) {
  auto it = std::lower_bound(n.keys.begin(), n.keys.end(), key);
  if (it != n.keys.end() && *it == key) return false;
  size_t idx = static_cast<size_t>(it - n.keys.begin());
  n.keys.insert(it, key);
  n.payloads.insert(n.payloads.begin() + idx, payload);
  return true;
}

BlinkTree::BNode* BlinkTree::DescendToLeaf(Key key,
                                           std::vector<BNode*>* path) const {
  BNode* cur = root_.load(std::memory_order_acquire);
  if (path != nullptr) {
    path->assign(static_cast<size_t>(cur->level) + 1, nullptr);
  }
  while (true) {
    BNode* next = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(cur->mu);
      if (key >= cur->high) {
        next = cur->right;  // concurrent split: chase the link
      } else if (cur->level == 0) {
        return cur;
      } else {
        if (path != nullptr &&
            static_cast<size_t>(cur->level) < path->size()) {
          (*path)[cur->level] = cur;
        }
        auto it = std::upper_bound(cur->keys.begin(), cur->keys.end(), key);
        LAZYTREE_CHECK(it != cur->keys.begin())
            << "blink descent below first separator";
        next = ChildPtr(
            cur->payloads[static_cast<size_t>(it - cur->keys.begin()) - 1]);
      }
    }
    cur = next;
  }
}

std::optional<Value> BlinkTree::Search(Key key) const {
  BNode* leaf = DescendToLeaf(key, nullptr);
  while (true) {
    BNode* next = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(leaf->mu);
      if (key >= leaf->high) {
        next = leaf->right;
      } else {
        auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(),
                                   key);
        if (it != leaf->keys.end() && *it == key) {
          return leaf->payloads[static_cast<size_t>(
              it - leaf->keys.begin())];
        }
        return std::nullopt;
      }
    }
    leaf = next;
  }
}

bool BlinkTree::Delete(Key key) {
  BNode* leaf = DescendToLeaf(key, nullptr);
  std::unique_lock<std::shared_mutex> lock(leaf->mu);
  while (key >= leaf->high) {
    BNode* next = leaf->right;
    lock.unlock();
    leaf = next;
    lock = std::unique_lock<std::shared_mutex>(leaf->mu);
  }
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return false;
  size_t idx = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.erase(it);
  leaf->payloads.erase(leaf->payloads.begin() + idx);
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;  // free-at-empty: an emptied leaf stays linked
}

std::vector<std::pair<Key, Value>> BlinkTree::Scan(Key start,
                                                   size_t limit) const {
  std::vector<std::pair<Key, Value>> out;
  if (limit == 0) return out;
  BNode* leaf = DescendToLeaf(start, nullptr);
  Key cursor = start;
  while (leaf != nullptr && out.size() < limit) {
    BNode* next = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(leaf->mu);
      if (cursor >= leaf->high) {
        next = leaf->right;
      } else {
        auto it =
            std::lower_bound(leaf->keys.begin(), leaf->keys.end(), cursor);
        for (; it != leaf->keys.end() && out.size() < limit; ++it) {
          out.emplace_back(*it,
                           leaf->payloads[static_cast<size_t>(
                               it - leaf->keys.begin())]);
        }
        if (out.size() >= limit || leaf->high == kKeyInfinity) return out;
        cursor = leaf->high;
        next = leaf->right;
      }
    }
    leaf = next;
  }
  return out;
}

BlinkTree::BNode* BlinkTree::SplitLocked(BNode& n) {
  const size_t keep = n.keys.size() / 2;
  BNode* sibling = NewNode(n.level);
  sibling->low = n.keys[keep];
  sibling->high = n.high;
  sibling->right = n.right;
  sibling->keys.assign(n.keys.begin() + keep, n.keys.end());
  sibling->payloads.assign(n.payloads.begin() + keep, n.payloads.end());
  n.keys.resize(keep);
  n.payloads.resize(keep);
  n.high = sibling->low;
  // Publish last: sibling is fully formed before it becomes reachable.
  n.right = sibling;
  return sibling;
}

bool BlinkTree::Insert(Key key, Value value) {
  LAZYTREE_CHECK(key != kKeyInfinity) << "reserved key";
  std::vector<BNode*> path;
  BNode* leaf = DescendToLeaf(key, &path);
  std::unique_lock<std::shared_mutex> lock(leaf->mu);
  while (key >= leaf->high) {
    BNode* next = leaf->right;
    lock.unlock();
    leaf = next;
    lock = std::unique_lock<std::shared_mutex>(leaf->mu);
  }
  if (!NodeInsert(*leaf, key, value)) return false;
  size_.fetch_add(1, std::memory_order_relaxed);
  if (leaf->keys.size() > max_entries_) {
    BNode* sibling = SplitLocked(*leaf);
    Key sep = sibling->low;
    lock.unlock();
    InsertSeparator(path, /*parent_level=*/1, sep, sibling);
  }
  return true;
}

void BlinkTree::InsertSeparator(std::vector<BNode*>& path,
                                int32_t parent_level, Key sep,
                                BNode* sibling) {
  while (true) {
    // Locate the ancestor at parent_level covering `sep`.
    BNode* node = nullptr;
    if (static_cast<size_t>(parent_level) < path.size()) {
      node = path[parent_level];
    }
    if (node == nullptr) {
      BNode* top = root_.load(std::memory_order_acquire);
      if (top->level < parent_level) {
        GrowRoot(parent_level);
        continue;  // re-resolve against the taller tree
      }
      // Descend from the root to parent_level.
      node = top;
      while (true) {
        BNode* next = nullptr;
        {
          std::shared_lock<std::shared_mutex> l(node->mu);
          if (sep >= node->high) {
            next = node->right;
          } else if (node->level == parent_level) {
            break;
          } else {
            auto it = std::upper_bound(node->keys.begin(), node->keys.end(),
                                       sep);
            next = ChildPtr(
                node->payloads[static_cast<size_t>(
                                   it - node->keys.begin()) -
                               1]);
          }
        }
        if (next != nullptr) node = next;
      }
    }

    std::unique_lock<std::shared_mutex> lock(node->mu);
    while (sep >= node->high) {
      BNode* next = node->right;
      lock.unlock();
      node = next;
      lock = std::unique_lock<std::shared_mutex>(node->mu);
    }
    NodeInsert(*node, sep, ChildPayload(sibling));
    if (node->keys.size() <= max_entries_) return;
    BNode* upper = SplitLocked(*node);
    Key upper_sep = upper->low;
    lock.unlock();
    if (static_cast<size_t>(parent_level) < path.size()) {
      path[parent_level] = nullptr;  // stale for the next level's search
    }
    sep = upper_sep;
    sibling = upper;
    ++parent_level;
  }
}

void BlinkTree::GrowRoot(int32_t needed_level) {
  std::lock_guard<std::mutex> lock(root_mu_);
  BNode* old_root = root_.load(std::memory_order_acquire);
  if (old_root->level >= needed_level) return;  // a racer grew already
  // The old root pointer always names the leftmost node of the top level
  // (its low stays 0 across splits), so a taller root over just that node
  // is complete: everything else is reachable through right links, and
  // pending separator inserts will land in the new root.
  BNode* new_root = NewNode(old_root->level + 1);
  new_root->keys = {0};
  new_root->payloads = {ChildPayload(old_root)};
  root_.store(new_root, std::memory_order_release);
}

size_t BlinkTree::CheckStructure() const {
  size_t violations = 0;
  BNode* level_start = root_.load(std::memory_order_acquire);
  while (level_start != nullptr) {
    if (level_start->low != 0) ++violations;
    Key expect_low = 0;
    int64_t count = 0;
    for (BNode* n = level_start; n != nullptr; n = n->right) {
      if (n->low != expect_low) ++violations;
      if (n->level != level_start->level) ++violations;
      if (!std::is_sorted(n->keys.begin(), n->keys.end())) ++violations;
      if (n->keys.size() != n->payloads.size()) ++violations;
      if (n->level > 0) {
        if (n->keys.empty() || n->keys.front() != n->low) ++violations;
        for (uint64_t p : n->payloads) {
          if (ChildPtr(p)->level != n->level - 1) {
            ++violations;
          }
        }
      }
      expect_low = n->high;
      if (++count > (1 << 28)) return violations + 1;  // cycle guard
    }
    if (expect_low != kKeyInfinity) ++violations;
    level_start = level_start->level == 0
                      ? nullptr
                      : ChildPtr(level_start->payloads[0]);
  }
  return violations;
}

}  // namespace lazytree
