# Empty compiler generated dependencies file for kv_directory.
# This may be replaced when dependencies are built.
