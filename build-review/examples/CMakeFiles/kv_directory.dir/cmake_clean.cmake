file(REMOVE_RECURSE
  "CMakeFiles/kv_directory.dir/kv_directory.cpp.o"
  "CMakeFiles/kv_directory.dir/kv_directory.cpp.o.d"
  "kv_directory"
  "kv_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
