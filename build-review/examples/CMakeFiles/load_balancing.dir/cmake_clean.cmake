file(REMOVE_RECURSE
  "CMakeFiles/load_balancing.dir/load_balancing.cpp.o"
  "CMakeFiles/load_balancing.dir/load_balancing.cpp.o.d"
  "load_balancing"
  "load_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
