# Empty dependencies file for load_balancing.
# This may be replaced when dependencies are built.
