file(REMOVE_RECURSE
  "CMakeFiles/elastic_replicas.dir/elastic_replicas.cpp.o"
  "CMakeFiles/elastic_replicas.dir/elastic_replicas.cpp.o.d"
  "elastic_replicas"
  "elastic_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
