# Empty dependencies file for elastic_replicas.
# This may be replaced when dependencies are built.
