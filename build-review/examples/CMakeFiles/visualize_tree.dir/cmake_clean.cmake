file(REMOVE_RECURSE
  "CMakeFiles/visualize_tree.dir/visualize_tree.cpp.o"
  "CMakeFiles/visualize_tree.dir/visualize_tree.cpp.o.d"
  "visualize_tree"
  "visualize_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
