# Empty dependencies file for visualize_tree.
# This may be replaced when dependencies are built.
