# Empty dependencies file for lazytree_util.
# This may be replaced when dependencies are built.
