file(REMOVE_RECURSE
  "CMakeFiles/lazytree_util.dir/util/histogram.cc.o"
  "CMakeFiles/lazytree_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/lazytree_util.dir/util/logging.cc.o"
  "CMakeFiles/lazytree_util.dir/util/logging.cc.o.d"
  "CMakeFiles/lazytree_util.dir/util/threading.cc.o"
  "CMakeFiles/lazytree_util.dir/util/threading.cc.o.d"
  "liblazytree_util.a"
  "liblazytree_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
