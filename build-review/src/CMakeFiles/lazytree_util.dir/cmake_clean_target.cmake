file(REMOVE_RECURSE
  "liblazytree_util.a"
)
