# Empty dependencies file for lazytree_oracle.
# This may be replaced when dependencies are built.
