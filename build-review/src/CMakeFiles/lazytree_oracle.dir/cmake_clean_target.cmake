file(REMOVE_RECURSE
  "liblazytree_oracle.a"
)
