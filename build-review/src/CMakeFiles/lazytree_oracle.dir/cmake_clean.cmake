file(REMOVE_RECURSE
  "CMakeFiles/lazytree_oracle.dir/oracle/oracle.cc.o"
  "CMakeFiles/lazytree_oracle.dir/oracle/oracle.cc.o.d"
  "liblazytree_oracle.a"
  "liblazytree_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
