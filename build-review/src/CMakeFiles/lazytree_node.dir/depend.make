# Empty dependencies file for lazytree_node.
# This may be replaced when dependencies are built.
