file(REMOVE_RECURSE
  "liblazytree_node.a"
)
