file(REMOVE_RECURSE
  "CMakeFiles/lazytree_node.dir/node/node.cc.o"
  "CMakeFiles/lazytree_node.dir/node/node.cc.o.d"
  "CMakeFiles/lazytree_node.dir/node/node_store.cc.o"
  "CMakeFiles/lazytree_node.dir/node/node_store.cc.o.d"
  "liblazytree_node.a"
  "liblazytree_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
