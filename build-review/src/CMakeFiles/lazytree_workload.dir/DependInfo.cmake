
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/distributions.cc" "src/CMakeFiles/lazytree_workload.dir/workload/distributions.cc.o" "gcc" "src/CMakeFiles/lazytree_workload.dir/workload/distributions.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/lazytree_workload.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/lazytree_workload.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/lazytree_msg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
