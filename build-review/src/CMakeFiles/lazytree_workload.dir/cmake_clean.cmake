file(REMOVE_RECURSE
  "CMakeFiles/lazytree_workload.dir/workload/distributions.cc.o"
  "CMakeFiles/lazytree_workload.dir/workload/distributions.cc.o.d"
  "CMakeFiles/lazytree_workload.dir/workload/generator.cc.o"
  "CMakeFiles/lazytree_workload.dir/workload/generator.cc.o.d"
  "liblazytree_workload.a"
  "liblazytree_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
