# Empty dependencies file for lazytree_workload.
# This may be replaced when dependencies are built.
