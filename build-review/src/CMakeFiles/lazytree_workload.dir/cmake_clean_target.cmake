file(REMOVE_RECURSE
  "liblazytree_workload.a"
)
