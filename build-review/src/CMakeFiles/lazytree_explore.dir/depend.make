# Empty dependencies file for lazytree_explore.
# This may be replaced when dependencies are built.
