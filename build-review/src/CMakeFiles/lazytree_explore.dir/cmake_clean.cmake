file(REMOVE_RECURSE
  "CMakeFiles/lazytree_explore.dir/sim/explorer_main.cc.o"
  "CMakeFiles/lazytree_explore.dir/sim/explorer_main.cc.o.d"
  "lazytree_explore"
  "lazytree_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
