# Empty dependencies file for lazytree_msg.
# This may be replaced when dependencies are built.
