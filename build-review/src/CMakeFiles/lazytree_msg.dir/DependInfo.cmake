
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/action.cc" "src/CMakeFiles/lazytree_msg.dir/msg/action.cc.o" "gcc" "src/CMakeFiles/lazytree_msg.dir/msg/action.cc.o.d"
  "/root/repo/src/msg/message.cc" "src/CMakeFiles/lazytree_msg.dir/msg/message.cc.o" "gcc" "src/CMakeFiles/lazytree_msg.dir/msg/message.cc.o.d"
  "/root/repo/src/msg/wire.cc" "src/CMakeFiles/lazytree_msg.dir/msg/wire.cc.o" "gcc" "src/CMakeFiles/lazytree_msg.dir/msg/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/lazytree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
