file(REMOVE_RECURSE
  "liblazytree_msg.a"
)
