file(REMOVE_RECURSE
  "CMakeFiles/lazytree_msg.dir/msg/action.cc.o"
  "CMakeFiles/lazytree_msg.dir/msg/action.cc.o.d"
  "CMakeFiles/lazytree_msg.dir/msg/message.cc.o"
  "CMakeFiles/lazytree_msg.dir/msg/message.cc.o.d"
  "CMakeFiles/lazytree_msg.dir/msg/wire.cc.o"
  "CMakeFiles/lazytree_msg.dir/msg/wire.cc.o.d"
  "liblazytree_msg.a"
  "liblazytree_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
