# Empty dependencies file for lazytree_protocol.
# This may be replaced when dependencies are built.
