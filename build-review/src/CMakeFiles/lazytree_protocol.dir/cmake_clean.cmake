file(REMOVE_RECURSE
  "CMakeFiles/lazytree_protocol.dir/protocol/base.cc.o"
  "CMakeFiles/lazytree_protocol.dir/protocol/base.cc.o.d"
  "CMakeFiles/lazytree_protocol.dir/protocol/fixed.cc.o"
  "CMakeFiles/lazytree_protocol.dir/protocol/fixed.cc.o.d"
  "CMakeFiles/lazytree_protocol.dir/protocol/mobile.cc.o"
  "CMakeFiles/lazytree_protocol.dir/protocol/mobile.cc.o.d"
  "CMakeFiles/lazytree_protocol.dir/protocol/naive.cc.o"
  "CMakeFiles/lazytree_protocol.dir/protocol/naive.cc.o.d"
  "CMakeFiles/lazytree_protocol.dir/protocol/semisync_split.cc.o"
  "CMakeFiles/lazytree_protocol.dir/protocol/semisync_split.cc.o.d"
  "CMakeFiles/lazytree_protocol.dir/protocol/sync_split.cc.o"
  "CMakeFiles/lazytree_protocol.dir/protocol/sync_split.cc.o.d"
  "CMakeFiles/lazytree_protocol.dir/protocol/varcopies.cc.o"
  "CMakeFiles/lazytree_protocol.dir/protocol/varcopies.cc.o.d"
  "CMakeFiles/lazytree_protocol.dir/protocol/vigorous.cc.o"
  "CMakeFiles/lazytree_protocol.dir/protocol/vigorous.cc.o.d"
  "liblazytree_protocol.a"
  "liblazytree_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
