
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/base.cc" "src/CMakeFiles/lazytree_protocol.dir/protocol/base.cc.o" "gcc" "src/CMakeFiles/lazytree_protocol.dir/protocol/base.cc.o.d"
  "/root/repo/src/protocol/fixed.cc" "src/CMakeFiles/lazytree_protocol.dir/protocol/fixed.cc.o" "gcc" "src/CMakeFiles/lazytree_protocol.dir/protocol/fixed.cc.o.d"
  "/root/repo/src/protocol/mobile.cc" "src/CMakeFiles/lazytree_protocol.dir/protocol/mobile.cc.o" "gcc" "src/CMakeFiles/lazytree_protocol.dir/protocol/mobile.cc.o.d"
  "/root/repo/src/protocol/naive.cc" "src/CMakeFiles/lazytree_protocol.dir/protocol/naive.cc.o" "gcc" "src/CMakeFiles/lazytree_protocol.dir/protocol/naive.cc.o.d"
  "/root/repo/src/protocol/semisync_split.cc" "src/CMakeFiles/lazytree_protocol.dir/protocol/semisync_split.cc.o" "gcc" "src/CMakeFiles/lazytree_protocol.dir/protocol/semisync_split.cc.o.d"
  "/root/repo/src/protocol/sync_split.cc" "src/CMakeFiles/lazytree_protocol.dir/protocol/sync_split.cc.o" "gcc" "src/CMakeFiles/lazytree_protocol.dir/protocol/sync_split.cc.o.d"
  "/root/repo/src/protocol/varcopies.cc" "src/CMakeFiles/lazytree_protocol.dir/protocol/varcopies.cc.o" "gcc" "src/CMakeFiles/lazytree_protocol.dir/protocol/varcopies.cc.o.d"
  "/root/repo/src/protocol/vigorous.cc" "src/CMakeFiles/lazytree_protocol.dir/protocol/vigorous.cc.o" "gcc" "src/CMakeFiles/lazytree_protocol.dir/protocol/vigorous.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/lazytree_server.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_node.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_history.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_msg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
