file(REMOVE_RECURSE
  "liblazytree_protocol.a"
)
