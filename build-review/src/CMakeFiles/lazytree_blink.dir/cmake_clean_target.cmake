file(REMOVE_RECURSE
  "liblazytree_blink.a"
)
