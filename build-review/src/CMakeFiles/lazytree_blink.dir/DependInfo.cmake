
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blink/blink_tree.cc" "src/CMakeFiles/lazytree_blink.dir/blink/blink_tree.cc.o" "gcc" "src/CMakeFiles/lazytree_blink.dir/blink/blink_tree.cc.o.d"
  "/root/repo/src/blink/lock_tree.cc" "src/CMakeFiles/lazytree_blink.dir/blink/lock_tree.cc.o" "gcc" "src/CMakeFiles/lazytree_blink.dir/blink/lock_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/lazytree_msg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
