# Empty dependencies file for lazytree_blink.
# This may be replaced when dependencies are built.
