file(REMOVE_RECURSE
  "CMakeFiles/lazytree_blink.dir/blink/blink_tree.cc.o"
  "CMakeFiles/lazytree_blink.dir/blink/blink_tree.cc.o.d"
  "CMakeFiles/lazytree_blink.dir/blink/lock_tree.cc.o"
  "CMakeFiles/lazytree_blink.dir/blink/lock_tree.cc.o.d"
  "liblazytree_blink.a"
  "liblazytree_blink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_blink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
