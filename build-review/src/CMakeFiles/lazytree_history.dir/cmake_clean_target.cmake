file(REMOVE_RECURSE
  "liblazytree_history.a"
)
