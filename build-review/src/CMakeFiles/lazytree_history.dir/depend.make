# Empty dependencies file for lazytree_history.
# This may be replaced when dependencies are built.
