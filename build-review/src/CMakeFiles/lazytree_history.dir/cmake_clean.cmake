file(REMOVE_RECURSE
  "CMakeFiles/lazytree_history.dir/history/checker.cc.o"
  "CMakeFiles/lazytree_history.dir/history/checker.cc.o.d"
  "CMakeFiles/lazytree_history.dir/history/history.cc.o"
  "CMakeFiles/lazytree_history.dir/history/history.cc.o.d"
  "liblazytree_history.a"
  "liblazytree_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
