file(REMOVE_RECURSE
  "CMakeFiles/lazytree_sim.dir/sim/explorer.cc.o"
  "CMakeFiles/lazytree_sim.dir/sim/explorer.cc.o.d"
  "CMakeFiles/lazytree_sim.dir/sim/minimize.cc.o"
  "CMakeFiles/lazytree_sim.dir/sim/minimize.cc.o.d"
  "CMakeFiles/lazytree_sim.dir/sim/strategy.cc.o"
  "CMakeFiles/lazytree_sim.dir/sim/strategy.cc.o.d"
  "CMakeFiles/lazytree_sim.dir/sim/trace.cc.o"
  "CMakeFiles/lazytree_sim.dir/sim/trace.cc.o.d"
  "liblazytree_sim.a"
  "liblazytree_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
