file(REMOVE_RECURSE
  "liblazytree_sim.a"
)
