# Empty dependencies file for lazytree_sim.
# This may be replaced when dependencies are built.
