# Empty dependencies file for lazytree_server.
# This may be replaced when dependencies are built.
