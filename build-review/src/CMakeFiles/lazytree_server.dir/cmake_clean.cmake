file(REMOVE_RECURSE
  "CMakeFiles/lazytree_server.dir/server/aas.cc.o"
  "CMakeFiles/lazytree_server.dir/server/aas.cc.o.d"
  "CMakeFiles/lazytree_server.dir/server/op_tracker.cc.o"
  "CMakeFiles/lazytree_server.dir/server/op_tracker.cc.o.d"
  "CMakeFiles/lazytree_server.dir/server/processor.cc.o"
  "CMakeFiles/lazytree_server.dir/server/processor.cc.o.d"
  "CMakeFiles/lazytree_server.dir/server/queue_manager.cc.o"
  "CMakeFiles/lazytree_server.dir/server/queue_manager.cc.o.d"
  "liblazytree_server.a"
  "liblazytree_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
