
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/aas.cc" "src/CMakeFiles/lazytree_server.dir/server/aas.cc.o" "gcc" "src/CMakeFiles/lazytree_server.dir/server/aas.cc.o.d"
  "/root/repo/src/server/op_tracker.cc" "src/CMakeFiles/lazytree_server.dir/server/op_tracker.cc.o" "gcc" "src/CMakeFiles/lazytree_server.dir/server/op_tracker.cc.o.d"
  "/root/repo/src/server/processor.cc" "src/CMakeFiles/lazytree_server.dir/server/processor.cc.o" "gcc" "src/CMakeFiles/lazytree_server.dir/server/processor.cc.o.d"
  "/root/repo/src/server/queue_manager.cc" "src/CMakeFiles/lazytree_server.dir/server/queue_manager.cc.o" "gcc" "src/CMakeFiles/lazytree_server.dir/server/queue_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/lazytree_node.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_history.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_msg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
