file(REMOVE_RECURSE
  "liblazytree_server.a"
)
