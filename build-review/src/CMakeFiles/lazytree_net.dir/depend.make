# Empty dependencies file for lazytree_net.
# This may be replaced when dependencies are built.
