file(REMOVE_RECURSE
  "liblazytree_net.a"
)
