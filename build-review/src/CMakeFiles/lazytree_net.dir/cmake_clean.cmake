file(REMOVE_RECURSE
  "CMakeFiles/lazytree_net.dir/net/channel.cc.o"
  "CMakeFiles/lazytree_net.dir/net/channel.cc.o.d"
  "CMakeFiles/lazytree_net.dir/net/piggyback.cc.o"
  "CMakeFiles/lazytree_net.dir/net/piggyback.cc.o.d"
  "CMakeFiles/lazytree_net.dir/net/sim_network.cc.o"
  "CMakeFiles/lazytree_net.dir/net/sim_network.cc.o.d"
  "CMakeFiles/lazytree_net.dir/net/stats.cc.o"
  "CMakeFiles/lazytree_net.dir/net/stats.cc.o.d"
  "CMakeFiles/lazytree_net.dir/net/thread_network.cc.o"
  "CMakeFiles/lazytree_net.dir/net/thread_network.cc.o.d"
  "liblazytree_net.a"
  "liblazytree_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
