file(REMOVE_RECURSE
  "liblazytree_core.a"
)
