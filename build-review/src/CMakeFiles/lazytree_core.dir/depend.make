# Empty dependencies file for lazytree_core.
# This may be replaced when dependencies are built.
