file(REMOVE_RECURSE
  "CMakeFiles/lazytree_core.dir/core/balancer.cc.o"
  "CMakeFiles/lazytree_core.dir/core/balancer.cc.o.d"
  "CMakeFiles/lazytree_core.dir/core/cluster.cc.o"
  "CMakeFiles/lazytree_core.dir/core/cluster.cc.o.d"
  "CMakeFiles/lazytree_core.dir/core/dbtree.cc.o"
  "CMakeFiles/lazytree_core.dir/core/dbtree.cc.o.d"
  "CMakeFiles/lazytree_core.dir/core/inspect.cc.o"
  "CMakeFiles/lazytree_core.dir/core/inspect.cc.o.d"
  "liblazytree_core.a"
  "liblazytree_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazytree_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
