file(REMOVE_RECURSE
  "CMakeFiles/mobile_protocol_test.dir/mobile_protocol_test.cc.o"
  "CMakeFiles/mobile_protocol_test.dir/mobile_protocol_test.cc.o.d"
  "mobile_protocol_test"
  "mobile_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
