# Empty compiler generated dependencies file for mobile_protocol_test.
# This may be replaced when dependencies are built.
