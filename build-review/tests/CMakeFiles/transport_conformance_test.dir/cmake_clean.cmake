file(REMOVE_RECURSE
  "CMakeFiles/transport_conformance_test.dir/transport_conformance_test.cc.o"
  "CMakeFiles/transport_conformance_test.dir/transport_conformance_test.cc.o.d"
  "transport_conformance_test"
  "transport_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
