# Empty dependencies file for transport_conformance_test.
# This may be replaced when dependencies are built.
