# Empty compiler generated dependencies file for inspect_test.
# This may be replaced when dependencies are built.
