file(REMOVE_RECURSE
  "CMakeFiles/inspect_test.dir/inspect_test.cc.o"
  "CMakeFiles/inspect_test.dir/inspect_test.cc.o.d"
  "inspect_test"
  "inspect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
