# Empty dependencies file for fault_ablation_test.
# This may be replaced when dependencies are built.
