file(REMOVE_RECURSE
  "CMakeFiles/fault_ablation_test.dir/fault_ablation_test.cc.o"
  "CMakeFiles/fault_ablation_test.dir/fault_ablation_test.cc.o.d"
  "fault_ablation_test"
  "fault_ablation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
