file(REMOVE_RECURSE
  "CMakeFiles/blink_tree_test.dir/blink_tree_test.cc.o"
  "CMakeFiles/blink_tree_test.dir/blink_tree_test.cc.o.d"
  "blink_tree_test"
  "blink_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blink_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
