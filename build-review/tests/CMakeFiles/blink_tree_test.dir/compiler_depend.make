# Empty compiler generated dependencies file for blink_tree_test.
# This may be replaced when dependencies are built.
