file(REMOVE_RECURSE
  "CMakeFiles/varcopies_protocol_test.dir/varcopies_protocol_test.cc.o"
  "CMakeFiles/varcopies_protocol_test.dir/varcopies_protocol_test.cc.o.d"
  "varcopies_protocol_test"
  "varcopies_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varcopies_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
