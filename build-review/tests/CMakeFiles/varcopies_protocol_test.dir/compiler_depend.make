# Empty compiler generated dependencies file for varcopies_protocol_test.
# This may be replaced when dependencies are built.
