file(REMOVE_RECURSE
  "CMakeFiles/delete_scan_test.dir/delete_scan_test.cc.o"
  "CMakeFiles/delete_scan_test.dir/delete_scan_test.cc.o.d"
  "delete_scan_test"
  "delete_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delete_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
