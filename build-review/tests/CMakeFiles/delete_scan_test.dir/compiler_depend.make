# Empty compiler generated dependencies file for delete_scan_test.
# This may be replaced when dependencies are built.
