file(REMOVE_RECURSE
  "CMakeFiles/cluster_api_test.dir/cluster_api_test.cc.o"
  "CMakeFiles/cluster_api_test.dir/cluster_api_test.cc.o.d"
  "cluster_api_test"
  "cluster_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
