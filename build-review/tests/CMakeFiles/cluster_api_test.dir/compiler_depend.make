# Empty compiler generated dependencies file for cluster_api_test.
# This may be replaced when dependencies are built.
