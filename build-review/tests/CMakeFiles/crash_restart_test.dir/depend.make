# Empty dependencies file for crash_restart_test.
# This may be replaced when dependencies are built.
