file(REMOVE_RECURSE
  "CMakeFiles/crash_restart_test.dir/crash_restart_test.cc.o"
  "CMakeFiles/crash_restart_test.dir/crash_restart_test.cc.o.d"
  "crash_restart_test"
  "crash_restart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_restart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
