# Empty compiler generated dependencies file for cluster_integration_test.
# This may be replaced when dependencies are built.
