file(REMOVE_RECURSE
  "CMakeFiles/cluster_integration_test.dir/cluster_integration_test.cc.o"
  "CMakeFiles/cluster_integration_test.dir/cluster_integration_test.cc.o.d"
  "cluster_integration_test"
  "cluster_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
