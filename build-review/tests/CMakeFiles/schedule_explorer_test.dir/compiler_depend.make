# Empty compiler generated dependencies file for schedule_explorer_test.
# This may be replaced when dependencies are built.
