file(REMOVE_RECURSE
  "CMakeFiles/schedule_explorer_test.dir/schedule_explorer_test.cc.o"
  "CMakeFiles/schedule_explorer_test.dir/schedule_explorer_test.cc.o.d"
  "schedule_explorer_test"
  "schedule_explorer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
