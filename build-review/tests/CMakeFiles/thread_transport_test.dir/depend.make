# Empty dependencies file for thread_transport_test.
# This may be replaced when dependencies are built.
