file(REMOVE_RECURSE
  "CMakeFiles/thread_transport_test.dir/thread_transport_test.cc.o"
  "CMakeFiles/thread_transport_test.dir/thread_transport_test.cc.o.d"
  "thread_transport_test"
  "thread_transport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
