# Empty compiler generated dependencies file for balancer_test.
# This may be replaced when dependencies are built.
