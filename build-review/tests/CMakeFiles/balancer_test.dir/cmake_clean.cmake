file(REMOVE_RECURSE
  "CMakeFiles/balancer_test.dir/balancer_test.cc.o"
  "CMakeFiles/balancer_test.dir/balancer_test.cc.o.d"
  "balancer_test"
  "balancer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
