file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_joins.dir/bench_fig6_joins.cc.o"
  "CMakeFiles/bench_fig6_joins.dir/bench_fig6_joins.cc.o.d"
  "bench_fig6_joins"
  "bench_fig6_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
