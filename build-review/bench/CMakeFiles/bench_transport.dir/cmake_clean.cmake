file(REMOVE_RECURSE
  "CMakeFiles/bench_transport.dir/bench_transport.cc.o"
  "CMakeFiles/bench_transport.dir/bench_transport.cc.o.d"
  "bench_transport"
  "bench_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
