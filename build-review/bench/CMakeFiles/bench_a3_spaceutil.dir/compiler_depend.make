# Empty compiler generated dependencies file for bench_a3_spaceutil.
# This may be replaced when dependencies are built.
