
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a3_spaceutil.cc" "bench/CMakeFiles/bench_a3_spaceutil.dir/bench_a3_spaceutil.cc.o" "gcc" "bench/CMakeFiles/bench_a3_spaceutil.dir/bench_a3_spaceutil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/lazytree_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_blink.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_protocol.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_server.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_node.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_history.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_msg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
