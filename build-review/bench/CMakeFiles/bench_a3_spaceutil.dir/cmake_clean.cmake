file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_spaceutil.dir/bench_a3_spaceutil.cc.o"
  "CMakeFiles/bench_a3_spaceutil.dir/bench_a3_spaceutil.cc.o.d"
  "bench_a3_spaceutil"
  "bench_a3_spaceutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_spaceutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
