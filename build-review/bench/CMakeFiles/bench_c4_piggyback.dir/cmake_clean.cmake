file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_piggyback.dir/bench_c4_piggyback.cc.o"
  "CMakeFiles/bench_c4_piggyback.dir/bench_c4_piggyback.cc.o.d"
  "bench_c4_piggyback"
  "bench_c4_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
