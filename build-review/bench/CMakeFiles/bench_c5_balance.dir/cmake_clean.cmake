file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_balance.dir/bench_c5_balance.cc.o"
  "CMakeFiles/bench_c5_balance.dir/bench_c5_balance.cc.o.d"
  "bench_c5_balance"
  "bench_c5_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
