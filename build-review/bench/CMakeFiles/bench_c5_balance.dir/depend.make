# Empty dependencies file for bench_c5_balance.
# This may be replaced when dependencies are built.
