# Empty dependencies file for bench_fig1_halfsplit.
# This may be replaced when dependencies are built.
