file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_halfsplit.dir/bench_fig1_halfsplit.cc.o"
  "CMakeFiles/bench_fig1_halfsplit.dir/bench_fig1_halfsplit.cc.o.d"
  "bench_fig1_halfsplit"
  "bench_fig1_halfsplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_halfsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
