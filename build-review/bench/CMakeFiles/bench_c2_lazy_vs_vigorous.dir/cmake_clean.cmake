file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_lazy_vs_vigorous.dir/bench_c2_lazy_vs_vigorous.cc.o"
  "CMakeFiles/bench_c2_lazy_vs_vigorous.dir/bench_c2_lazy_vs_vigorous.cc.o.d"
  "bench_c2_lazy_vs_vigorous"
  "bench_c2_lazy_vs_vigorous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_lazy_vs_vigorous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
