# Empty compiler generated dependencies file for bench_c2_lazy_vs_vigorous.
# This may be replaced when dependencies are built.
