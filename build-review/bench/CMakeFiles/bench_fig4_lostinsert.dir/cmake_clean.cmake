file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lostinsert.dir/bench_fig4_lostinsert.cc.o"
  "CMakeFiles/bench_fig4_lostinsert.dir/bench_fig4_lostinsert.cc.o.d"
  "bench_fig4_lostinsert"
  "bench_fig4_lostinsert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lostinsert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
