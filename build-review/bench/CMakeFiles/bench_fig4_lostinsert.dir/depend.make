# Empty dependencies file for bench_fig4_lostinsert.
# This may be replaced when dependencies are built.
