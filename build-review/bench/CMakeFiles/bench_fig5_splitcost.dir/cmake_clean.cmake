file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_splitcost.dir/bench_fig5_splitcost.cc.o"
  "CMakeFiles/bench_fig5_splitcost.dir/bench_fig5_splitcost.cc.o.d"
  "bench_fig5_splitcost"
  "bench_fig5_splitcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_splitcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
