# Empty dependencies file for bench_fig5_splitcost.
# This may be replaced when dependencies are built.
