file(REMOVE_RECURSE
  "CMakeFiles/bench_c7_access_patterns.dir/bench_c7_access_patterns.cc.o"
  "CMakeFiles/bench_c7_access_patterns.dir/bench_c7_access_patterns.cc.o.d"
  "bench_c7_access_patterns"
  "bench_c7_access_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_access_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
