# Empty compiler generated dependencies file for bench_c7_access_patterns.
# This may be replaced when dependencies are built.
