# Empty custom commands generated dependencies file for lazytree_bench.
# This may be replaced when dependencies are built.
