file(REMOVE_RECURSE
  "CMakeFiles/lazytree_bench"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/lazytree_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
