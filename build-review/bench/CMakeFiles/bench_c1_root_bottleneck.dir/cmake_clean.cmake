file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_root_bottleneck.dir/bench_c1_root_bottleneck.cc.o"
  "CMakeFiles/bench_c1_root_bottleneck.dir/bench_c1_root_bottleneck.cc.o.d"
  "bench_c1_root_bottleneck"
  "bench_c1_root_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_root_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
