# Empty compiler generated dependencies file for bench_c1_root_bottleneck.
# This may be replaced when dependencies are built.
