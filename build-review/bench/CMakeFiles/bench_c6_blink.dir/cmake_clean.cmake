file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_blink.dir/bench_c6_blink.cc.o"
  "CMakeFiles/bench_c6_blink.dir/bench_c6_blink.cc.o.d"
  "bench_c6_blink"
  "bench_c6_blink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_blink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
