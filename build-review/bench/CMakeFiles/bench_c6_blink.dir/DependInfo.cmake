
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_c6_blink.cc" "bench/CMakeFiles/bench_c6_blink.dir/bench_c6_blink.cc.o" "gcc" "bench/CMakeFiles/bench_c6_blink.dir/bench_c6_blink.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/lazytree_blink.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/lazytree_msg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
