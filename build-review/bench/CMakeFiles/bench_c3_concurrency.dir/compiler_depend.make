# Empty compiler generated dependencies file for bench_c3_concurrency.
# This may be replaced when dependencies are built.
