file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_concurrency.dir/bench_c3_concurrency.cc.o"
  "CMakeFiles/bench_c3_concurrency.dir/bench_c3_concurrency.cc.o.d"
  "bench_c3_concurrency"
  "bench_c3_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
