# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(transport_bench_smoke "/root/repo/build-review/bench/bench_transport" "--smoke")
set_tests_properties(transport_bench_smoke PROPERTIES  LABELS "bench" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
