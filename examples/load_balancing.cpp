// load_balancing: mobile nodes under a skewed ingest ([14], §4.2).
//
// A bulk load lands entirely on processor 0 (think: a time-ordered ingest
// hitting the rightmost shard). The balancer then migrates leaves until
// every processor carries a fair share — while the tree keeps serving
// reads — and forwarding addresses + misnavigation recovery keep every
// key reachable throughout.
//
//   $ ./build/examples/load_balancing

#include <cstdio>

#include "src/core/balancer.h"
#include "src/core/dbtree.h"
#include "src/util/rng.h"

int main() {
  using namespace lazytree;

  ClusterOptions options;
  options.processors = 4;
  options.protocol = ProtocolKind::kMobile;  // single-copy mobile nodes
  options.transport = TransportKind::kSim;
  options.tree.max_entries = 8;
  options.seed = 7;

  DBTree tree(options);
  Cluster& cluster = tree.cluster();

  // Skewed ingest: every insert is submitted at processor 0, and the
  // mobile protocol places split-off leaves locally, so p0 ends up with
  // all the data.
  Rng rng(99);
  std::vector<Key> keys;
  for (int i = 0; i < 2000; ++i) {
    Key k = rng.Range(1, 1u << 30);
    if (cluster.Insert(0, k, k).ok()) keys.push_back(k);
  }

  Balancer balancer(&cluster);
  auto print = [](const char* label, const Balancer::LoadStats& s) {
    std::printf("%s: %zu leaves, per-host [", label, s.total_leaves);
    for (auto& [host, count] : s.per_host) {
      std::printf(" p%u:%zu", host, count);
    }
    std::printf(" ], imbalance %.2fx\n", s.imbalance);
  };

  print("before", balancer.Measure());
  auto after = balancer.RebalanceUntil(/*target_imbalance=*/1.3);
  print("after ", after);
  std::printf("migrations issued: %llu\n",
              (unsigned long long)balancer.migrations_issued());

  // Forwarding addresses are an optimization only (§4.2): drop them all
  // and prove the tree still answers via closest-node recovery.
  size_t dropped = 0;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    dropped += cluster.processor(id).store().ForwardingCount();
    cluster.processor(id).store().DropForwardingAddresses();
  }
  std::printf("dropped %zu forwarding addresses; re-checking reads...\n",
              dropped);
  size_t found = 0;
  for (size_t i = 0; i < keys.size(); i += 7) {
    if (cluster.Search(static_cast<ProcessorId>(i % 4), keys[i]).ok()) {
      ++found;
    }
  }
  std::printf("%zu/%zu sampled keys reachable after GC\n", found,
              (keys.size() + 6) / 7);

  auto report = cluster.VerifyHistories();
  std::printf("history checks: %s\n", report.ToString().c_str());
  return report.ok() && found == (keys.size() + 6) / 7 ? 0 : 1;
}
