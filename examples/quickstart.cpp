// Quickstart: build a replicated, distributed B-link tree on 4 simulated
// processors, insert a few keys, and read them back from every processor.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/core/dbtree.h"

int main() {
  using namespace lazytree;

  ClusterOptions options;
  options.processors = 4;
  options.protocol = ProtocolKind::kSemiSyncSplit;  // the paper's §4.1.2
  options.transport = TransportKind::kSim;          // deterministic
  options.tree.max_entries = 8;

  DBTree tree(options);

  // Inserts are submitted round-robin across processors — every
  // processor can initiate operations because the root is replicated.
  for (Key k = 1; k <= 100; ++k) {
    Status s = tree.Insert(k, k * k);
    if (!s.ok()) {
      std::fprintf(stderr, "insert %llu failed: %s\n",
                   (unsigned long long)k, s.ToString().c_str());
      return 1;
    }
  }

  // Searches can start anywhere too.
  for (ProcessorId home = 0; home < 4; ++home) {
    auto v = tree.SearchAt(home, 42);
    std::printf("processor %u sees key 42 -> %llu\n", home,
                (unsigned long long)*v);
  }

  auto miss = tree.Search(4242);
  std::printf("key 4242: %s\n", miss.status().ToString().c_str());

  // Range scans walk the leaf level through the right-sibling links.
  auto range = tree.Scan(/*start=*/40, /*limit=*/5);
  std::printf("scan [40..):");
  for (const Entry& e : *range) {
    std::printf(" %llu->%llu", (unsigned long long)e.key,
                (unsigned long long)e.payload);
  }
  std::printf("\n");

  // Deletes are lazy updates too (free-at-empty: nodes never merge).
  tree.Delete(42);
  std::printf("after delete, key 42: %s\n",
              tree.Search(42).status().ToString().c_str());
  std::printf("keys stored: %zu\n", tree.KeyCount());

  // The distributed state is checkable against the paper's §3 theory.
  auto report = tree.cluster().VerifyHistories();
  std::printf("history checks: %s\n", report.ToString().c_str());

  auto stats = tree.cluster().NetStats();
  std::printf("network: %s\n", stats.ToString().c_str());
  return report.ok() ? 0 : 1;
}
