// visualize_tree: dump the distributed structure as Graphviz DOT.
//
// Builds a small dB-tree under the variable-copies protocol, spreads the
// leaves, and writes the logical tree — ranges, child edges, dashed
// right-sibling links, and each node's copy holders — to
// lazytree.dot (render with `dot -Tsvg lazytree.dot -o lazytree.svg`).
//
//   $ ./build/examples/visualize_tree [keys]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/core/balancer.h"
#include "src/core/inspect.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace lazytree;
  const int keys = argc > 1 ? std::atoi(argv[1]) : 120;

  ClusterOptions options;
  options.processors = 4;
  options.protocol = ProtocolKind::kVarCopies;
  options.transport = TransportKind::kSim;
  options.tree.max_entries = 6;
  options.seed = 3;

  Cluster cluster(options);
  cluster.Start();
  Rng rng(11);
  for (int i = 0; i < keys; ++i) {
    cluster.Insert(0, rng.Range(1, 100000), i);
  }
  Balancer(&cluster).RebalanceUntil(1.3);

  TreeStats stats = CollectTreeStats(cluster);
  std::printf("%s\n", stats.ToString().c_str());
  for (auto& [host, count] : stats.leaves_per_host) {
    std::printf("  p%u hosts %zu leaves\n", host, count);
  }

  std::ofstream out("lazytree.dot");
  out << ExportDot(cluster);
  out.close();
  std::printf("wrote lazytree.dot (%d keys, height %d)\n", keys,
              stats.height);
  std::printf("render: dot -Tsvg lazytree.dot -o lazytree.svg\n");
  return 0;
}
