// elastic_replicas: the full dB-tree (§4.3) with variable copies.
//
// Demonstrates the Fig.-2 replication policy maintained *by protocol*:
// processors join a node's replication when they acquire leaves beneath
// it and unjoin when the leaves move away. The run prints the replication
// factor per tree level as data spreads and then shrinks back.
//
//   $ ./build/examples/elastic_replicas

#include <cstdio>
#include <map>

#include "src/core/balancer.h"
#include "src/core/dbtree.h"
#include "src/protocol/varcopies.h"
#include "src/util/rng.h"

namespace {

void PrintReplication(lazytree::Cluster& cluster, const char* label) {
  using namespace lazytree;
  std::map<int32_t, std::pair<size_t, size_t>> by_level;  // copies, nodes
  std::map<NodeId, bool> seen;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    cluster.processor(id).store().ForEach([&](const Node& n) {
      auto& [copies, nodes] = by_level[n.level()];
      ++copies;
      if (!seen[n.id()]) {
        seen[n.id()] = true;
        ++nodes;
      }
    });
  }
  std::printf("%s replication by level:", label);
  for (auto it = by_level.rbegin(); it != by_level.rend(); ++it) {
    auto [copies, nodes] = it->second;
    std::printf("  L%d: %zu nodes x%.1f", it->first, nodes,
                nodes ? static_cast<double>(copies) / nodes : 0.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lazytree;

  ClusterOptions options;
  options.processors = 6;
  options.protocol = ProtocolKind::kVarCopies;
  options.transport = TransportKind::kSim;
  options.tree.max_entries = 8;
  options.seed = 21;

  DBTree tree(options);
  Cluster& cluster = tree.cluster();

  Rng rng(5);
  std::vector<Key> keys;
  for (int i = 0; i < 1500; ++i) {
    Key k = rng.Range(1, 1u << 28);
    if (cluster.Insert(0, k, k).ok()) keys.push_back(k);
  }
  PrintReplication(cluster, "after skewed load (all on p0):");

  // Spread the data: joins follow the leaves (root stays everywhere).
  Balancer balancer(&cluster);
  balancer.RebalanceUntil(1.3);
  PrintReplication(cluster, "after balancing across 6 hosts:");

  // Pull everything onto p0 and p1: the other four unjoin their copies.
  for (ProcessorId id = 2; id < cluster.size(); ++id) {
    std::map<NodeId, ProcessorId> to_move;
    cluster.processor(id).store().ForEach([&](const Node& n) {
      if (n.is_leaf()) to_move[n.id()] = id;
    });
    int i = 0;
    for (auto& [node, host] : to_move) {
      cluster.MigrateNode(node, host, i++ % 2);
    }
  }
  cluster.Settle();
  PrintReplication(cluster, "after shrinking to 2 hosts:");

  uint64_t joins = 0, unjoins = 0;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    auto* var = static_cast<VarCopiesProtocol*>(
        cluster.processor(id).handler());
    joins += var->joins_granted();
    unjoins += var->unjoins_processed();
  }
  std::printf("joins granted: %llu, unjoins processed: %llu\n",
              (unsigned long long)joins, (unsigned long long)unjoins);

  // Everything still readable from everywhere.
  size_t ok = 0;
  for (size_t i = 0; i < keys.size(); i += 11) {
    if (cluster.Search(static_cast<ProcessorId>(i % 6), keys[i]).ok()) ++ok;
  }
  std::printf("%zu/%zu sampled keys reachable\n", ok, (keys.size() + 10) / 11);

  auto report = cluster.VerifyHistories();
  std::printf("history checks: %s\n", report.ToString().c_str());
  return report.ok() ? 0 : 1;
}
