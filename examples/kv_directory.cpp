// kv_directory: a distributed service directory.
//
// Scenario from the paper's motivation (§1): a very large dictionary
// served by many processors, read-mostly with a steady trickle of
// registrations. Interior replication lets every front-end resolve most
// lookups with local hops; lazy updates keep the replicas cheap.
//
//   $ ./build/examples/kv_directory [processors] [services]

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/core/dbtree.h"
#include "src/util/rng.h"
#include "src/util/threading.h"

int main(int argc, char** argv) {
  using namespace lazytree;
  const uint32_t processors = argc > 1 ? std::atoi(argv[1]) : 8;
  const size_t services =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20000;

  ClusterOptions options;
  options.processors = processors;
  options.protocol = ProtocolKind::kSemiSyncSplit;
  options.transport = TransportKind::kThreads;  // real parallelism
  options.tree.max_entries = 32;
  options.tree.track_history = false;  // production mode
  options.piggyback_window = 8;        // batch relays (§1.1)

  DBTree tree(options);
  Rng seeder(42);

  // Phase 1: register services (hash of name -> endpoint id).
  uint64_t t0 = NowNanos();
  std::vector<std::thread> registrars;
  for (uint32_t c = 0; c < processors; ++c) {
    registrars.emplace_back([&, c] {
      Rng rng(1000 + c);
      for (size_t i = c; i < services; i += processors) {
        Key service_id = (static_cast<Key>(i) << 16) | rng.Below(9999);
        tree.InsertAt(c, service_id, /*endpoint=*/rng.Next() >> 32);
      }
    });
  }
  for (auto& t : registrars) t.join();
  tree.cluster().Settle();
  double reg_secs = (NowNanos() - t0) * 1e-9;

  // Phase 2: resolve — read-heavy lookups from every front-end.
  t0 = NowNanos();
  std::atomic<size_t> hits{0}, misses{0};
  std::vector<std::thread> resolvers;
  for (uint32_t c = 0; c < processors; ++c) {
    resolvers.emplace_back([&, c] {
      // Replay the registrar's id stream for exact hits, plus some
      // random misses — a realistic resolve mix.
      Rng replay(1000 + c);
      Rng rng(2000 + c);
      size_t idx = c;
      for (int i = 0; i < 5000; ++i) {
        Key probe;
        if (i % 4 != 0 && idx < services) {
          probe = (static_cast<Key>(idx) << 16) | replay.Below(9999);
          replay.Next();  // the registrar consumed a draw for the endpoint
          idx += processors;
        } else {
          probe = (rng.Below(services) << 16) | rng.Below(9999);
        }
        auto r = tree.SearchAt(c, probe);
        (r.ok() ? hits : misses).fetch_add(1);
      }
    });
  }
  for (auto& t : resolvers) t.join();
  double lookup_secs = (NowNanos() - t0) * 1e-9;

  auto stats = tree.cluster().NetStats();
  std::printf("registered %zu services on %u processors in %.2fs "
              "(%.0f regs/s)\n",
              services, processors, reg_secs, services / reg_secs);
  std::printf("resolved %zu lookups (%zu hits) in %.2fs (%.0f lookups/s)\n",
              hits + misses, hits.load(), lookup_secs,
              (hits + misses) / lookup_secs);
  std::printf("remote messages: %llu (%.2f per op), piggybacked relays "
              "rode along free\n",
              (unsigned long long)stats.remote_messages,
              double(stats.remote_messages) / double(services + hits +
                                                     misses));
  std::printf("stored keys: %zu\n", tree.KeyCount());
  return 0;
}
