// Fixture for lazytree_lint --self-test: a miniature action.h/message.h
// whose wire walk (bad_wire.cc) and dispatch (bad_base.cc) contain
// deliberate violations. Never compiled into the project.

#include <cstdint>
#include <vector>

enum class ActionKind : uint8_t {
  kInvalid = 0,
  kSearch,
  kInsertOp,
  kScanOp,
  kMaxKind,
};

struct NodeSnapshot {
  uint64_t id = 0;
  int32_t level = 0;
  uint64_t parent = 0;  // bad_wire.cc's decoder forgets this field
};

struct Action {
  ActionKind kind = ActionKind::kInvalid;
  uint64_t target = 0;
  uint32_t hops = 0;  // bad_wire.cc's encoder forgets this field
  NodeSnapshot snapshot;
};

struct Message {
  uint32_t from = 0;
  uint32_t to = 0;
  uint64_t seq = 0;
  std::vector<Action> actions;
};
