// Fixture for lazytree_lint --self-test: a dispatch switch that forgets
// ActionKind::kScanOp. Never compiled into the project.

void BaseProtocol::Handle(const Action& action) {
  Action a = action;
  switch (a.kind) {
    case ActionKind::kSearch: HandleSearch(a); break;
    case ActionKind::kInsertOp: HandleInsertOp(a); break;
    // BUG (planted): ActionKind::kScanOp has no case.
    default:
      Unexpected(a);
  }
}
