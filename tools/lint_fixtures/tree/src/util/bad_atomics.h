// Lint self-test fixture: every line marked below must be flagged by the
// atomics-discipline pass. Not compiled into anything.

#ifndef LAZYTREE_LINT_FIXTURE_BAD_ATOMICS_H_
#define LAZYTREE_LINT_FIXTURE_BAD_ATOMICS_H_

#include <atomic>

namespace fixture {

class BadAtomics {
 public:
  void Touch(bool flag) {
    hits_.fetch_add(1);         // bare RMW: implicit seq_cst
    ready_.store(flag);         // bare store
    if (ready_.load()) {        // bare load
      ++hits_;                  // operator increment on an atomic
    }
    total_ = 0;                 // plain assignment on an atomic
    // Non-relaxed order with no allowlist justification:
    last_ = seen_.load(std::memory_order_acquire);
    // Properly relaxed: must NOT be flagged.
    clean_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<unsigned long> hits_{0};
  std::atomic<bool> ready_{false};
  std::atomic<unsigned long> total_{0};
  std::atomic<int> seen_{0};
  std::atomic<unsigned long> clean_{0};
  int last_ = 0;
};

}  // namespace fixture

#endif  // LAZYTREE_LINT_FIXTURE_BAD_ATOMICS_H_
