// Fixture for lazytree_lint --self-test: protocol code holding a lock,
// which violates the single-threaded-per-processor execution model the
// concurrency-confinement rule protects. Never compiled into the project.

#include <mutex>

namespace lazytree {

struct LockedProtocolState {
  std::mutex mu;  // BUG (planted): blocking primitive outside transport
  int counter = 0;
};

}  // namespace lazytree
