// Fixture for lazytree_lint --self-test: a wire walk with two planted
// violations — the encoder skips Action::hops and the decoder skips
// NodeSnapshot::parent. Never compiled into the project.

template <typename Sink>
void EncodeSnapshotTo(Sink& w, const NodeSnapshot& s) {
  w.PutVarint(s.id);
  w.PutVarint(s.level);
  w.PutVarint(s.parent);
}

template <typename Sink>
void EncodeActionTo(Sink& w, const Action& a) {
  w.PutFixed8(static_cast<uint8_t>(a.kind));
  w.PutVarint(a.target);
  // BUG (planted): a.hops is never written.
  EncodeSnapshotTo(w, a.snapshot);
}

template <typename Sink>
void EncodeMessageTo(Sink& w, const Message& m) {
  w.PutVarint(m.from);
  w.PutVarint(m.to);
  w.PutVarint(m.seq);
  for (const Action& a : m.actions) EncodeActionTo(w, a);
}

StatusOr<NodeSnapshot> DecodeSnapshot(Reader& r) {
  NodeSnapshot s;
  s.id = r.GetVarint();
  s.level = r.GetVarint();
  // BUG (planted): s.parent is never read.
  return s;
}

StatusOr<Action> DecodeAction(Reader& r) {
  Action a;
  a.kind = static_cast<ActionKind>(r.GetFixed8());
  a.target = r.GetVarint();
  a.hops = r.GetVarint();
  a.snapshot = DecodeSnapshot(r);
  return a;
}

StatusOr<Message> DecodeMessage(Reader& r) {
  Message m;
  m.from = r.GetVarint();
  m.to = r.GetVarint();
  m.seq = r.GetVarint();
  m.actions.push_back(DecodeAction(r));
  return m;
}

size_t EncodedSize(const Message& m) {
  SizeCounter c;
  EncodeMessageTo(c, m);
  return c.size();
}
