// lazytree_lint: repo-specific static analysis for protocol rules the
// compiler cannot enforce.
//
//   1. Wire coverage — every field of Message / Action / NodeSnapshot must
//      be written by the encoder walk and read by the decoder. (Encode and
//      EncodedSize share one templated walk; the lint verifies that
//      structural guarantee still holds, so a field covered by the encoder
//      is covered by the size counter by construction.)
//   2. Dispatch totality — every ActionKind enumerator must appear in the
//      BaseProtocol::Handle dispatch switch, in ActionKindName, and in the
//      commutativity classification OrderClassOf.
//   3. Concurrency confinement — std::mutex / std::shared_mutex /
//      std::condition_variable / BlockingQueue must not appear outside the
//      approved transport/infrastructure files. Protocol and core code is
//      single-threaded per processor by design (§1.1); a stray lock there
//      is a smell that the execution model was violated.
//   4. Commutativity soundness — the ActionsCommute relation (linked in
//      from lazytree_msg) is re-checked at runtime over every pair:
//      total, symmetric, consistent with IsUpdateKind, ordered classes
//      non-self-commuting.
//
// Usage:
//   lazytree_lint --root <repo-root>        # lint the tree (ctest tier-1)
//   lazytree_lint --self-test --root <...>  # prove checkers fire on the
//                                           # crafted fixtures
//
// Exit status 0 = clean, 1 = findings, 2 = usage/IO error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/msg/action.h"

namespace lazytree::lint {
namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::string rule;
  std::string message;
};

class Report {
 public:
  void Add(std::string file, std::string rule, std::string message) {
    findings_.push_back({std::move(file), std::move(rule),
                         std::move(message)});
  }
  const std::vector<Finding>& findings() const { return findings_; }
  size_t Print() const {
    for (const Finding& f : findings_) {
      std::fprintf(stderr, "%s: [%s] %s\n", f.file.c_str(), f.rule.c_str(),
                   f.message.c_str());
    }
    return findings_.size();
  }

 private:
  std::vector<Finding> findings_;
};

std::optional<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Strips // comments (string literals in the linted sources never contain
/// "//", which keeps this simple parser honest enough).
std::string StripLineComments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
    } else {
      out.push_back(text[i++]);
    }
  }
  return out;
}

/// Body of the brace block that starts at the first '{' at or after `from`;
/// empty when unbalanced.
std::string BraceBlock(const std::string& text, size_t from) {
  size_t open = text.find('{', from);
  if (open == std::string::npos) return "";
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}') {
      if (--depth == 0) return text.substr(open + 1, i - open - 1);
    }
  }
  return "";
}

/// Body of `struct <name> {...}` in `text`; empty when absent.
std::string StructBody(const std::string& text, const std::string& name) {
  std::regex decl("struct\\s+" + name + "\\s*\\{");
  std::smatch m;
  if (!std::regex_search(text, m, decl)) return "";
  return BraceBlock(text, static_cast<size_t>(m.position(0)));
}

/// Body of the function whose signature matches `signature_re`.
std::string FunctionBody(const std::string& text,
                         const std::string& signature_re) {
  std::regex decl(signature_re);
  std::smatch m;
  if (!std::regex_search(text, m, decl)) return "";
  return BraceBlock(text, static_cast<size_t>(m.position(0)) + m.length(0));
}

/// Data-member names declared in a struct body. Skips functions (any line
/// containing '('), nested types, usings, and access specifiers.
std::vector<std::string> FieldNames(const std::string& body) {
  std::vector<std::string> fields;
  std::istringstream lines(StripLineComments(body));
  std::string line;
  int nested_depth = 0;
  std::regex member(
      R"(^\s*[A-Za-z_][\w:<>,\s\*&]*[\s&\*]([A-Za-z_]\w*)\s*(\[\s*\d+\s*\])?\s*(=[^;]*)?;\s*$)");
  while (std::getline(lines, line)) {
    // Track nested enum/struct blocks so their members are not counted.
    for (char c : line) {
      if (c == '{') ++nested_depth;
      if (c == '}') --nested_depth;
    }
    if (nested_depth > 0) continue;
    if (line.find('(') != std::string::npos) continue;  // function decl
    if (std::regex_search(line,
                          std::regex("^\\s*(enum|struct|class|using|friend|"
                                     "static|public|private|protected)\\b"))) {
      continue;
    }
    std::smatch m;
    if (std::regex_match(line, m, member)) fields.push_back(m[1]);
  }
  return fields;
}

// ---------------------------------------------------------------------------
// Check 1: wire coverage.
// ---------------------------------------------------------------------------

struct WireSources {
  std::string action_h;   // defines Action + NodeSnapshot
  std::string message_h;  // defines Message
  std::string wire_cc;    // encoder / decoder walks
};

void CheckWireCoverage(const WireSources& src, Report& report) {
  struct StructSpec {
    const char* struct_name;
    const std::string* header;
    const char* header_name;
    std::string var;        // receiver variable in the wire walks
    std::string encode_fn;  // signature regex
    std::string decode_fn;
  };
  const StructSpec specs[] = {
      {"NodeSnapshot", &src.action_h, "action.h", "s",
       R"(void\s+EncodeSnapshotTo\s*\()",
       R"(StatusOr<NodeSnapshot>\s+DecodeSnapshot\s*\()"},
      {"Action", &src.action_h, "action.h", "a",
       R"(void\s+EncodeActionTo\s*\()",
       R"(StatusOr<Action>\s+DecodeAction\s*\()"},
      {"Message", &src.message_h, "message.h", "m",
       R"(void\s+EncodeMessageTo\s*\()",
       R"(StatusOr<Message>\s+DecodeMessage\s*\()"},
  };

  for (const StructSpec& spec : specs) {
    const std::string body = StructBody(*spec.header, spec.struct_name);
    if (body.empty()) {
      report.Add(spec.header_name, "wire-coverage",
                 std::string("struct ") + spec.struct_name + " not found");
      continue;
    }
    const std::string encode =
        StripLineComments(FunctionBody(src.wire_cc, spec.encode_fn));
    const std::string decode =
        StripLineComments(FunctionBody(src.wire_cc, spec.decode_fn));
    if (encode.empty() || decode.empty()) {
      report.Add("wire.cc", "wire-coverage",
                 std::string("encoder or decoder for ") + spec.struct_name +
                     " not found");
      continue;
    }
    for (const std::string& field : FieldNames(body)) {
      // `Message::actions` round-trips as `m.actions` in both directions;
      // every other field is referenced as <var>.<field>.
      const std::regex use("\\b" + spec.var + "\\.(" + field + ")\\b");
      if (!std::regex_search(encode, use)) {
        report.Add("wire.cc", "wire-coverage",
                   std::string(spec.struct_name) + "::" + field +
                       " is never written by the encoder walk (add it to "
                       "Encode" +
                       spec.struct_name + "To; EncodedSize follows for "
                       "free)");
      }
      if (!std::regex_search(decode, use)) {
        report.Add("wire.cc", "wire-coverage",
                   std::string(spec.struct_name) + "::" + field +
                       " is never read by the decoder (add it to Decode" +
                       spec.struct_name + ")");
      }
    }
  }

  // Encode/EncodedSize symmetry is structural: EncodedSize must run the
  // exact same walk (EncodeMessageTo against the counting sink). If that
  // pattern is ever broken the two can drift silently — fail loudly here.
  const std::string size_fn =
      StripLineComments(FunctionBody(src.wire_cc, R"(size_t\s+EncodedSize\s*\()"));
  if (size_fn.find("EncodeMessageTo") == std::string::npos) {
    report.Add("wire.cc", "wire-size-symmetry",
               "EncodedSize no longer reuses the EncodeMessageTo walk; "
               "size accounting can drift from the encoder");
  }
}

// ---------------------------------------------------------------------------
// Check 2: dispatch totality.
// ---------------------------------------------------------------------------

std::vector<std::string> ActionKindEnumerators(const std::string& action_h) {
  std::vector<std::string> kinds;
  std::regex decl(R"(enum\s+class\s+ActionKind\s*:\s*uint8_t\s*\{)");
  std::smatch m;
  if (!std::regex_search(action_h, m, decl)) return kinds;
  const std::string body =
      StripLineComments(BraceBlock(action_h, static_cast<size_t>(m.position(0))));
  std::regex name(R"(\b(k[A-Z]\w*)\b)");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), name);
       it != std::sregex_iterator(); ++it) {
    std::string kind = (*it)[1];
    if (kind == "kInvalid" || kind == "kMaxKind") continue;
    kinds.push_back(std::move(kind));
  }
  return kinds;
}

void CheckDispatchTotality(const std::string& action_h,
                           const std::string& action_cc,
                           const std::string& base_cc,
                           const std::string& processor_cc, Report& report) {
  const std::vector<std::string> kinds = ActionKindEnumerators(action_h);
  if (kinds.empty()) {
    report.Add("action.h", "dispatch-totality",
               "could not parse ActionKind enumerators");
    return;
  }
  struct Table {
    const char* what;
    const char* file;
    std::string body;
  };
  // The dispatch surface is BaseProtocol::Handle plus the kReturnValue
  // interception in Processor::HandleAction (completions never reach the
  // protocol layer; they resolve client ops in the tracker — Deliver and
  // DeliverBatch both funnel through HandleAction).
  const Table tables[] = {
      {"the BaseProtocol::Handle / Processor::Deliver dispatch",
       "protocol/base.cc",
       StripLineComments(
           FunctionBody(base_cc, R"(void\s+BaseProtocol::Handle\s*\()") +
           FunctionBody(processor_cc, R"(void\s+Processor::Deliver\s*\()") +
           FunctionBody(processor_cc,
                        R"(void\s+Processor::HandleAction\s*\()"))},
      {"ActionKindName", "msg/action.cc",
       StripLineComments(FunctionBody(
           action_cc, R"(const\s+char\*\s+ActionKindName\s*\()"))},
      {"OrderClassOf commutativity classification", "msg/action.h",
       StripLineComments(FunctionBody(
           action_h, R"(constexpr\s+OrderClass\s+OrderClassOf\s*\()"))},
  };
  for (const Table& table : tables) {
    if (table.body.empty()) {
      report.Add(table.file, "dispatch-totality",
                 std::string(table.what) + " not found");
      continue;
    }
    for (const std::string& kind : kinds) {
      const std::regex use("\\bActionKind::" + kind + "\\b");
      if (!std::regex_search(table.body, use)) {
        report.Add(table.file, "dispatch-totality",
                   "ActionKind::" + kind + " is not handled by " +
                       table.what);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 3: concurrency-primitive confinement.
// ---------------------------------------------------------------------------

/// Files allowed to use blocking primitives, relative to the repo root.
/// Everything else under src/ runs on exactly one processor worker thread
/// (or is called only at quiescence) and must stay lock-free.
const char* const kApprovedConcurrencyFiles[] = {
    // The primitives themselves.
    "src/util/threading.h", "src/util/threading.cc",
    "src/util/mpsc_queue.h",
    // Worker-thread CPU pinning (pthread affinity syscalls only). The
    // op-combining QueueManager is deliberately NOT here: its only
    // cross-thread state is one atomic thread-id, and it must stay that
    // way.
    "src/util/affinity.h", "src/util/affinity.cc",
    // The thread transport and its decorators.
    "src/net/thread_network.h", "src/net/thread_network.cc",
    "src/net/piggyback.h", "src/net/piggyback.cc",
    // The lossy-link fault injector (per-link mutex guarding send
    // counters / held messages — decorator state, never processor state).
    "src/net/faults.h", "src/net/faults.cc",
    // The reliable-delivery layer: channel windows and timers are shared
    // between sender threads, the delivery path, and the real-timer
    // thread, guarded by one decorator-internal mutex; processors still
    // see the §1.1 single-threaded delivery model above it.
    "src/net/reliable.h", "src/net/reliable.cc",
    // Client-thread completion handoff.
    "src/server/op_tracker.h", "src/server/op_tracker.cc",
    // Cross-thread history collection (quiescence-read, append-live).
    "src/history/history.h", "src/history/history.cc",
    // Shared-memory baseline trees are latch-based by design (§1.1 foil).
    "src/blink/blink_tree.h", "src/blink/blink_tree.cc",
    "src/blink/lock_tree.h", "src/blink/lock_tree.cc",
};

void CheckConcurrencyConfinement(const fs::path& root, Report& report) {
  // Also bans raw pthread blocking/affinity calls: everything threaded
  // must go through the approved wrappers so TSan and the execution-model
  // audit see one surface.
  const std::regex banned(
      R"(\bstd::(mutex|shared_mutex|recursive_mutex|condition_variable(_any)?|timed_mutex)\b|\bBlockingQueue\s*<|\bpthread_(mutex|cond|rwlock|barrier|spin)_\w+\s*\(|\bpthread_setaffinity_np\s*\()");
  std::set<std::string> approved(std::begin(kApprovedConcurrencyFiles),
                                 std::end(kApprovedConcurrencyFiles));
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    if (approved.contains(rel)) continue;
    auto text = ReadFile(entry.path());
    if (!text) continue;
    const std::string code = StripLineComments(*text);
    std::smatch m;
    if (std::regex_search(code, m, banned)) {
      report.Add(rel, "concurrency-confinement",
                 "uses blocking primitive '" + m.str() +
                     "' outside the approved transport files; processor "
                     "code is single-threaded per the §1.1 execution "
                     "model (extend kApprovedConcurrencyFiles in "
                     "lazytree_lint only with a design justification)");
    }
  }
}

// ---------------------------------------------------------------------------
// Check 4: commutativity-table soundness (runtime re-check of the
// static_asserted properties, over the linked-in real table).
// ---------------------------------------------------------------------------

void CheckCommutativityTable(Report& report) {
  const int n = static_cast<int>(ActionKind::kMaxKind);
  for (int i = 0; i <= n; ++i) {
    const auto a = static_cast<ActionKind>(i);
    if ((OrderClassOf(a) != OrderClass::kNonUpdate) != IsUpdateKind(a)) {
      report.Add("msg/action.h", "commutativity",
                 std::string("OrderClassOf disagrees with IsUpdateKind for ") +
                     ActionKindName(a));
    }
    if (IsUpdateKind(a) && OrderClassOf(a) != OrderClass::kLazy &&
        ActionsCommute(a, a)) {
      report.Add("msg/action.h", "commutativity",
                 std::string("ordered action ") + ActionKindName(a) +
                     " must not commute with itself");
    }
    for (int j = 0; j <= n; ++j) {
      const auto b = static_cast<ActionKind>(j);
      if (ActionsCommute(a, b) != ActionsCommute(b, a)) {
        report.Add("msg/action.h", "commutativity",
                   std::string("asymmetric pair (") + ActionKindName(a) +
                       ", " + ActionKindName(b) + ")");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 5: atomics discipline.
//
// Every access to a declared std::atomic in src/ must spell its
// std::memory_order explicitly — bare load()/store()/fetch_add()/
// compare_exchange() (which silently default to seq_cst), ++/--, and
// plain assignment are all flagged. On top of that, any ordering
// stronger than relaxed must be justified: the (file, symbol) pair has
// to appear in kAtomicOrderAllowlist with a rationale naming the
// acquire/release pairing it implements. Relaxed accesses are free —
// they claim nothing. Fences (std::atomic_signal_fence /
// atomic_thread_fence) are out of scope, as are accesses through
// references or aliases of an atomic (the scan keys on declared names).
// ---------------------------------------------------------------------------

struct AtomicOrderJustification {
  const char* file;    ///< file the access appears in, relative to root
  const char* symbol;  ///< the atomic member/global accessed
  const char* rationale;
};

/// Every non-relaxed atomic access in src/ must map to one of these.
/// Add entries only with the pairing written out — "it felt safer" is
/// exactly the drift this pass exists to stop.
const AtomicOrderJustification kAtomicOrderAllowlist[] = {
    {"src/util/mpsc_queue.h", "size_hint_",
     "producer's release fetch_add pairs with the worker's acquire poll: "
     "a nonzero hint must imply the pushed node is already visible"},
    {"src/util/mpsc_queue.h", "closed_hint_",
     "release store in Close pairs with the worker's acquire poll so the "
     "final drain sees every pre-close push"},
    {"src/server/queue_manager.h", "combine_owner_",
     "release store on Begin/EndCombine pairs with the acquire load in "
     "the owner check: buffered batch state must be visible to whichever "
     "thread observes itself as owner"},
    {"src/net/piggyback.h", "buffered_total_",
     "acquire load in the quiescence probe pairs with the acq_rel RMWs "
     "so a zero count implies the channel buffers were really emptied"},
    {"src/net/piggyback.cc", "buffered_total_",
     "acq_rel RMWs under the channel mutex keep the count ordered with "
     "the buffer mutations it summarizes for the lock-free probe"},
    {"src/net/thread_network.cc", "started_",
     "acq_rel CAS makes Start's thread spawning happen-before any "
     "acquire observer; Register's acquire load pairs with it"},
    {"src/net/thread_network.cc", "stopped_",
     "acq_rel CAS ensures exactly one caller runs Stop's teardown and "
     "later observers see the joined state"},
    {"src/net/thread_network.cc", "inflight_",
     "acq_rel decrement pairs with the acquire read in the quiescence "
     "wait: a zero in-flight count implies all deliveries completed"},
    {"src/blink/blink_tree.cc", "root_",
     "release store of a new root pairs with acquire loads in descents "
     "so a reader never sees the root before its initialized contents"},
    {"src/workload/distributions.h", "head_",
     "acq_rel reservation pairs with the sampler's acquire read: a "
     "visible head implies the slots below it were published"},
    {"src/workload/distributions.h", "ring_",
     "release publish of a slot pairs with the sampler's acquire load so "
     "a sampled key is never torn or ahead of its publication"},
};

/// Balanced-paren argument text for the call whose '(' is at `open`;
/// empty-and-unterminated returns what was scanned.
std::string ParenArgs(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      if (--depth == 0) return text.substr(open + 1, i - open - 1);
    }
  }
  return text.substr(open + 1);
}

/// Names of std::atomic<...> variables declared in `code` (member or
/// global). Works from the declaration text between "std::atomic<" and
/// the terminating ';', truncated at the brace initializer: the last
/// identifier standing is the variable name, which holds for plain
/// members, brace-initialized members, and atomics nested in
/// std::vector / std::array declarations.
void CollectAtomicNames(const std::string& code,
                        std::set<std::string>* names) {
  static const std::regex ident(R"([A-Za-z_]\w*)");
  size_t pos = 0;
  while ((pos = code.find("std::atomic", pos)) != std::string::npos) {
    const size_t after = pos + 11;  // strlen("std::atomic")
    if (after >= code.size() || code[after] != '<') {
      pos = after;  // atomic_signal_fence / atomic_flag / prose
      continue;
    }
    const size_t semi = code.find(';', pos);
    if (semi == std::string::npos) break;
    std::string decl = code.substr(pos, semi - pos);
    int angle = 0;
    for (size_t i = 0; i < decl.size(); ++i) {
      if (decl[i] == '<') ++angle;
      if (decl[i] == '>' && angle > 0) --angle;
      if (decl[i] == '{' && angle == 0) {
        decl.resize(i);
        break;
      }
    }
    std::string last;
    for (auto it = std::sregex_iterator(decl.begin(), decl.end(), ident);
         it != std::sregex_iterator(); ++it) {
      last = it->str();
    }
    // Reject declarator-less matches (e.g. a cast or template argument):
    // a real declaration's last identifier is never the template keyword.
    if (!last.empty() && last != "atomic") names->insert(last);
    pos = semi;
  }
}

void CheckAtomicsDiscipline(const fs::path& root, Report& report) {
  struct SourceFile {
    std::string rel;
    std::string stem;  ///< path without extension: groups X.h with X.cc
    std::string code;
  };
  std::vector<SourceFile> sources;
  std::set<std::string> atomics;
  std::map<std::string, std::set<std::string>> atomics_by_stem;
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    auto text = ReadFile(entry.path());
    if (!text) continue;
    sources.push_back({rel, rel.substr(0, rel.rfind('.')),
                       StripLineComments(*text)});
    CollectAtomicNames(sources.back().code,
                       &atomics_by_stem[sources.back().stem]);
    atomics.insert(atomics_by_stem[sources.back().stem].begin(),
                   atomics_by_stem[sources.back().stem].end());
  }

  auto justified = [&](const std::string& rel, const std::string& symbol) {
    for (const AtomicOrderJustification& j : kAtomicOrderAllowlist) {
      if (rel == j.file && symbol == j.symbol) return true;
    }
    return false;
  };

  static const std::regex access(
      R"(([A-Za-z_]\w*)\s*(\[[^\][]*\])?\s*\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\()");
  static const std::regex order_use(R"(memory_order_(\w+))");
  for (const SourceFile& src : sources) {
    for (auto it = std::sregex_iterator(src.code.begin(), src.code.end(),
                                        access);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1];
      const std::string method = (*it)[3];
      if (!atomics.contains(name)) continue;  // e.g. NodeStore::store()
      const std::string args = ParenArgs(
          src.code, static_cast<size_t>(it->position(0)) + it->length(0) - 1);
      if (args.find("memory_order") == std::string::npos) {
        report.Add(src.rel, "atomics-discipline",
                   name + "." + method + "(...) without an explicit "
                   "std::memory_order (bare accesses default to seq_cst "
                   "silently; spell the intended ordering)");
        continue;
      }
      for (auto ord = std::sregex_iterator(args.begin(), args.end(),
                                           order_use);
           ord != std::sregex_iterator(); ++ord) {
        const std::string strength = (*ord)[1];
        if (strength == "relaxed") continue;
        if (!justified(src.rel, name)) {
          report.Add(src.rel, "atomics-discipline",
                     name + "." + method + " uses memory_order_" + strength +
                         " without a kAtomicOrderAllowlist entry; add "
                         "(file, symbol, rationale) to lazytree_lint.cc "
                         "naming the acquire/release pairing, or relax it");
        }
        break;  // one finding per access site
      }
    }
    // Operator forms re-introduce implicit seq_cst through the back door:
    // ++x / x++ / --x / x-- and plain or compound assignment to an atomic.
    // Scoped to names declared in this file's own header/impl pair: the
    // global set would false-positive on unrelated members that happen to
    // share a name (e.g. a plain size_ elsewhere vs. the atomic one).
    for (const std::string& name : atomics_by_stem[src.stem]) {
      const std::regex op_form("(\\+\\+|--)\\s*" + name + "\\b|\\b" + name +
                               "\\s*(\\+\\+|--|[-+&|^]?=[^=])");
      for (auto it = std::sregex_iterator(src.code.begin(), src.code.end(),
                                          op_form);
           it != std::sregex_iterator(); ++it) {
        // Exclude comparisons (== != <= >=) misparsed as assignment.
        const size_t at = static_cast<size_t>(it->position(0));
        if (at > 0 && std::string("=!<>").find(src.code[at - 1]) !=
                          std::string::npos) {
          continue;
        }
        const std::string snippet = it->str();
        if (snippet.find('=') != std::string::npos &&
            snippet.find("==") != std::string::npos) {
          continue;
        }
        report.Add(src.rel, "atomics-discipline",
                   "operator access '" + snippet + "' on std::atomic " +
                       name + " is an implicit seq_cst op; use an explicit "
                       "load/store/fetch with a spelled memory_order");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

int LintTree(const fs::path& root) {
  Report report;

  auto action_h = ReadFile(root / "src/msg/action.h");
  auto action_cc = ReadFile(root / "src/msg/action.cc");
  auto message_h = ReadFile(root / "src/msg/message.h");
  auto wire_cc = ReadFile(root / "src/msg/wire.cc");
  auto base_cc = ReadFile(root / "src/protocol/base.cc");
  auto processor_cc = ReadFile(root / "src/server/processor.cc");
  if (!action_h || !action_cc || !message_h || !wire_cc || !base_cc ||
      !processor_cc) {
    std::fprintf(stderr, "lazytree_lint: cannot read sources under %s\n",
                 root.string().c_str());
    return 2;
  }

  CheckWireCoverage({*action_h, *message_h, *wire_cc}, report);
  CheckDispatchTotality(*action_h, *action_cc, *base_cc, *processor_cc,
                        report);
  CheckConcurrencyConfinement(root, report);
  CheckCommutativityTable(report);
  CheckAtomicsDiscipline(root, report);

  const size_t n = report.Print();
  if (n > 0) {
    std::fprintf(stderr, "lazytree_lint: %zu finding(s)\n", n);
    return 1;
  }
  std::printf("lazytree_lint: clean\n");
  return 0;
}

/// Self-test: the fixtures contain deliberate violations; every checker
/// must fire on its fixture and stay quiet on the real tree's sources.
int SelfTest(const fs::path& root) {
  const fs::path fixtures = root / "tools/lint_fixtures";
  auto fix_action_h = ReadFile(fixtures / "bad_action.h");
  auto fix_wire_cc = ReadFile(fixtures / "bad_wire.cc");
  auto fix_base_cc = ReadFile(fixtures / "bad_base.cc");
  auto real_action_cc = ReadFile(root / "src/msg/action.cc");
  if (!fix_action_h || !fix_wire_cc || !fix_base_cc || !real_action_cc) {
    std::fprintf(stderr, "self-test: cannot read lint_fixtures under %s\n",
                 fixtures.string().c_str());
    return 2;
  }

  int failures = 0;
  auto expect = [&](const char* what, bool ok) {
    std::printf("self-test %-60s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };

  {
    // bad_wire.cc omits Action::hops from the encoder and
    // NodeSnapshot::parent from the decoder; both must be caught, with
    // the un-tampered fields staying quiet.
    Report r;
    CheckWireCoverage({*fix_action_h, *fix_action_h, *fix_wire_cc}, r);
    bool hops = false, parent = false;
    for (const Finding& f : r.findings()) {
      if (f.message.find("Action::hops") != std::string::npos &&
          f.message.find("encoder") != std::string::npos) {
        hops = true;
      }
      if (f.message.find("NodeSnapshot::parent") != std::string::npos &&
          f.message.find("decoder") != std::string::npos) {
        parent = true;
      }
    }
    expect("wire-coverage catches field missing from encoder", hops);
    expect("wire-coverage catches field missing from decoder", parent);
    expect("wire-coverage reports nothing else",
           r.findings().size() == 2);
  }

  {
    // bad_base.cc's dispatch switch omits kScanOp.
    // Fixture has no Processor::Deliver, so the dispatch surface is the
    // (deliberately incomplete) Handle switch alone.
    Report r;
    CheckDispatchTotality(*fix_action_h, *real_action_cc, *fix_base_cc,
                          *fix_base_cc, r);
    bool scan = false;
    for (const Finding& f : r.findings()) {
      if (f.message.find("kScanOp") != std::string::npos &&
          f.message.find("dispatch") != std::string::npos) {
        scan = true;
      }
    }
    expect("dispatch-totality catches unhandled ActionKind", scan);
  }

  {
    // A mutex planted outside the approved set must be flagged: run the
    // confinement scan over the fixture tree, whose layout mirrors src/.
    Report r;
    CheckConcurrencyConfinement(fixtures / "tree", r);
    bool found = false;
    for (const Finding& f : r.findings()) {
      if (f.file.find("protocol/locked.cc") != std::string::npos) {
        found = true;
      }
    }
    expect("concurrency-confinement catches stray std::mutex", found);
  }

  {
    // util/bad_atomics.h in the fixture tree plants one of each
    // atomics-discipline violation; all must fire, the relaxed access
    // must not, and nothing else in the fixture tree has atomics.
    Report r;
    CheckAtomicsDiscipline(fixtures / "tree", r);
    size_t bare = 0, unjustified = 0, operators = 0, clean_hits = 0;
    for (const Finding& f : r.findings()) {
      if (f.file.find("bad_atomics.h") == std::string::npos) continue;
      if (f.message.find("clean_") != std::string::npos) ++clean_hits;
      if (f.message.find("without an explicit") != std::string::npos) ++bare;
      if (f.message.find("kAtomicOrderAllowlist") != std::string::npos) {
        ++unjustified;
      }
      if (f.message.find("operator access") != std::string::npos) {
        ++operators;
      }
    }
    expect("atomics-discipline catches bare load/store/fetch", bare == 3);
    expect("atomics-discipline catches unjustified acquire",
           unjustified == 1);
    expect("atomics-discipline catches ++/assignment forms",
           operators == 2);
    expect("atomics-discipline ignores explicit relaxed accesses",
           clean_hits == 0);
  }

  {
    // The real tree must be clean (the tier-1 lint test asserts the same;
    // doing it here keeps the self-test meaningful standalone).
    Report r;
    auto action_h = ReadFile(root / "src/msg/action.h");
    auto message_h = ReadFile(root / "src/msg/message.h");
    auto wire_cc = ReadFile(root / "src/msg/wire.cc");
    auto base_cc = ReadFile(root / "src/protocol/base.cc");
    auto processor_cc = ReadFile(root / "src/server/processor.cc");
    CheckWireCoverage({*action_h, *message_h, *wire_cc}, r);
    CheckDispatchTotality(*action_h, *real_action_cc, *base_cc,
                          *processor_cc, r);
    CheckCommutativityTable(r);
    CheckAtomicsDiscipline(root, r);
    expect("checkers stay quiet on the real tree", r.findings().empty());
    if (!r.findings().empty()) r.Print();
  }

  if (failures > 0) {
    std::fprintf(stderr, "self-test: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("self-test: all checkers fire\n");
  return 0;
}

int Main(int argc, char** argv) {
  fs::path root = ".";
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: lazytree_lint [--self-test] [--root DIR]\n");
      return 2;
    }
  }
  if (!fs::exists(root / "src/msg/action.h")) {
    std::fprintf(stderr, "lazytree_lint: %s is not the lazytree repo root\n",
                 fs::absolute(root).string().c_str());
    return 2;
  }
  return self_test ? SelfTest(root) : LintTree(root);
}

}  // namespace
}  // namespace lazytree::lint

int main(int argc, char** argv) { return lazytree::lint::Main(argc, argv); }
