#!/usr/bin/env bash
# Ratcheted clang-tidy runner: fails only on findings NOT already recorded
# in tools/clang_tidy_baseline.txt, so the tree can adopt clang-tidy
# without a flag-day cleanup while new code stays clean.
#
# usage: run_clang_tidy.sh <clang-tidy-exe> <build-dir> <source-dir> [--update]
#
#   <build-dir> must contain compile_commands.json (the top-level
#   CMakeLists.txt sets CMAKE_EXPORT_COMPILE_COMMANDS).
#   --update rewrites the baseline from the current findings (use after
#   deliberately accepting or fixing findings).
#
# Baseline format: one "<file>: [<check>]" pair per line, sorted, '#'
# comments allowed. Line numbers are deliberately omitted — they drift on
# every unrelated edit and would make the ratchet flaky.
set -eu

TIDY="$1"
BUILD="$2"
SRC="$3"
MODE="${4:-check}"

BASELINE="$SRC/tools/clang_tidy_baseline.txt"
RAW="$BUILD/clang_tidy_raw.log"
CURRENT="$BUILD/clang_tidy_findings.txt"

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $BUILD/compile_commands.json missing" >&2
  exit 2
fi

cd "$SRC"

# A baseline entry for a file that no longer exists is a silent hole in
# the ratchet: its findings can never recur, but a typo'd or bit-rotted
# path would also mask a rename that SHOULD have carried its entries
# over. Fail loudly instead of ratcheting against fiction.
STALE=$(grep -v '^#' "$BASELINE" | sed -nE 's|^([^:]+): .*|\1|p' | sort -u |
        while IFS= read -r f; do [ -e "$f" ] || echo "$f"; done)
if [ -n "$STALE" ]; then
  echo "run_clang_tidy.sh: baseline references files that do not exist:" >&2
  echo "$STALE" | sed 's/^/  /' >&2
  echo "fix the paths or regenerate with --update" >&2
  exit 2
fi

FILES=$(find src tools -name '*.cc' ! -path 'tools/lint_fixtures/*' | sort)

# clang-tidy exits nonzero when it emits warnings; the ratchet below is the
# real gate, so tolerate that here.
"$TIDY" -p "$BUILD" --quiet $FILES >"$RAW" 2>"$BUILD/clang_tidy_stderr.log" || true

# Normalize "path/to/file.cc:12:3: warning: msg [check-name]" down to
# "file.cc: [check-name]" pairs.
sed -nE 's|^.*[/ ]((src\|tools\|tests\|bench)/[^:]+):[0-9]+:[0-9]+: (warning\|error): .* (\[[A-Za-z0-9.,-]+\])$|\1: \4|p' \
  "$RAW" | sort -u >"$CURRENT"

if [ "$MODE" = "--update" ]; then
  {
    echo "# clang-tidy ratchet baseline — regenerate with:"
    echo "#   tools/run_clang_tidy.sh <clang-tidy> <build-dir> . --update"
    cat "$CURRENT"
  } >"$BASELINE"
  echo "baseline updated: $(wc -l <"$CURRENT") finding(s) recorded"
  exit 0
fi

NEW=$(comm -23 "$CURRENT" <(grep -v '^#' "$BASELINE" | sort -u) || true)
FIXED=$(comm -13 "$CURRENT" <(grep -v '^#' "$BASELINE" | sort -u) || true)

if [ -n "$FIXED" ]; then
  echo "clang-tidy: baseline findings no longer present (consider --update):"
  echo "$FIXED" | sed 's/^/  /'
fi
if [ -n "$NEW" ]; then
  echo "clang-tidy: NEW findings not in tools/clang_tidy_baseline.txt:" >&2
  echo "$NEW" | sed 's/^/  /' >&2
  echo "full report: $RAW" >&2
  exit 1
fi
echo "clang-tidy: clean against baseline ($(wc -l <"$CURRENT") known finding(s))"
