// QueueManager unit tests (src/server/queue_manager.h).
//
// The op combiner sits between every protocol handler and the network, so
// its routing rules are load-bearing for both correctness and the perf
// numbers: nested scopes must flush exactly once at the outermost close,
// an empty scope must send nothing, ownership must hand off cleanly
// between consecutive batches (including across threads, as when the
// worker pool recycles), and the per-(from,to) FIFO contract must survive
// combined flushes interleaved with direct sends from other threads.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/server/queue_manager.h"

namespace lazytree {
namespace {

/// Records every Send in arrival order; no delivery, no threads.
class RecordingNetwork : public net::Network {
 public:
  void Register(ProcessorId, net::Receiver*) override {}
  ProcessorId size() const override { return 4; }
  void Send(Message m) override { sent.push_back(std::move(m)); }
  void Start() override {}
  void Stop() override {}
  bool WaitQuiescent(std::chrono::milliseconds) override { return true; }

  std::vector<Message> sent;
};

Action SearchFor(uint64_t key) {
  Action a;
  a.kind = ActionKind::kSearch;
  a.key = key;
  return a;
}

// Nested Begin/EndCombine: only the outermost EndCombine flushes, and the
// inner scopes' actions ride in the same per-destination message.
TEST(QueueManager, NestedCombineScopesFlushOnceAtOutermostClose) {
  RecordingNetwork net;
  QueueManager qm(/*self=*/0, &net);

  qm.BeginCombine();  // batch scope
  qm.SendAction(1, SearchFor(10));
  qm.BeginCombine();  // per-message scope
  qm.SendAction(1, SearchFor(11));
  qm.SendAction(2, SearchFor(12));
  qm.EndCombine();
  EXPECT_TRUE(net.sent.empty()) << "inner close must not flush";
  qm.SendAction(2, SearchFor(13));
  qm.EndCombine();

  ASSERT_EQ(net.sent.size(), 2u);  // one message per destination
  EXPECT_EQ(net.sent[0].to, 1u);   // first-touch order: dest 1 before 2
  ASSERT_EQ(net.sent[0].actions.size(), 2u);
  EXPECT_EQ(net.sent[0].actions[0].key, 10u);
  EXPECT_EQ(net.sent[0].actions[1].key, 11u);
  EXPECT_EQ(net.sent[1].to, 2u);
  ASSERT_EQ(net.sent[1].actions.size(), 2u);
  EXPECT_EQ(net.sent[1].actions[0].key, 12u);
  EXPECT_EQ(net.sent[1].actions[1].key, 13u);
  EXPECT_EQ(net.stats().Snapshot().combined_actions, 2u)
      << "4 actions in 2 messages = 2 combined";
}

// A combine scope that buffered nothing must close silently: no empty
// messages on the wire, no combining stats.
TEST(QueueManager, FlushWithZeroBufferedActionsSendsNothing) {
  RecordingNetwork net;
  QueueManager qm(/*self=*/0, &net);

  qm.BeginCombine();
  qm.EndCombine();

  EXPECT_TRUE(net.sent.empty());
  EXPECT_EQ(net.stats().Snapshot().combined_actions, 0u);

  // And the manager still works normally afterwards.
  qm.SendAction(3, SearchFor(7));
  ASSERT_EQ(net.sent.size(), 1u);
  EXPECT_EQ(net.sent[0].to, 3u);
}

// Consecutive batches, each owned by a different thread (as when a worker
// pool hands the processor to another worker): the scope owner must hand
// off so the second batch combines for its own thread, and each batch
// flushes its own actions exactly once.
TEST(QueueManager, OwnerThreadHandoffAcrossConsecutiveBatches) {
  RecordingNetwork net;
  QueueManager qm(/*self=*/0, &net);

  auto run_batch = [&](uint64_t base) {
    qm.BeginCombine();
    qm.SendAction(1, SearchFor(base));
    qm.SendAction(1, SearchFor(base + 1));
    qm.EndCombine();
  };

  std::thread first([&] { run_batch(100); });
  first.join();
  std::thread second([&] { run_batch(200); });
  second.join();

  ASSERT_EQ(net.sent.size(), 2u);
  ASSERT_EQ(net.sent[0].actions.size(), 2u);
  EXPECT_EQ(net.sent[0].actions[0].key, 100u);
  ASSERT_EQ(net.sent[1].actions.size(), 2u);
  EXPECT_EQ(net.sent[1].actions[0].key, 200u);
}

// After EndCombine resets the owner, the same thread's sends go direct
// again — the combining path must not leak past the scope.
TEST(QueueManager, SendsGoDirectOutsideScope) {
  RecordingNetwork net;
  QueueManager qm(/*self=*/0, &net);

  qm.BeginCombine();
  qm.SendAction(1, SearchFor(1));
  qm.EndCombine();
  qm.SendAction(1, SearchFor(2));
  qm.SendAction(1, SearchFor(3));

  ASSERT_EQ(net.sent.size(), 3u);
  EXPECT_EQ(net.sent[0].actions.size(), 1u);  // the flushed scope
  EXPECT_EQ(net.sent[1].actions.size(), 1u);  // direct
  EXPECT_EQ(net.sent[2].actions.size(), 1u);  // direct
}

// FIFO with a client thread interleaved: while the owner combines, a
// non-owner thread's SendAction must bypass the buffers (it can never
// match combine_owner_) and its message lands on the wire immediately —
// before the owner's flush. The owner's buffered actions still leave in
// submission order within their message, so per-sender order holds for
// both parties.
TEST(QueueManager, CombinedFlushInterleavedWithDirectSendsKeepsFifo) {
  RecordingNetwork net;
  QueueManager qm(/*self=*/0, &net);

  qm.BeginCombine();
  qm.SendAction(1, SearchFor(10));  // buffered by the owner
  std::thread client([&] {
    qm.SendAction(1, SearchFor(99));  // direct: client is not the owner
  });
  client.join();
  qm.SendAction(1, SearchFor(11));  // buffered after the direct send
  qm.EndCombine();

  ASSERT_EQ(net.sent.size(), 2u);
  // The client's direct message hit the network first...
  ASSERT_EQ(net.sent[0].actions.size(), 1u);
  EXPECT_EQ(net.sent[0].actions[0].key, 99u);
  // ...and the owner's combined message preserves its submission order.
  ASSERT_EQ(net.sent[1].actions.size(), 2u);
  EXPECT_EQ(net.sent[1].actions[0].key, 10u);
  EXPECT_EQ(net.sent[1].actions[1].key, 11u);
}

// Broadcast inside a scope buffers per destination and skips self.
TEST(QueueManager, BroadcastInsideScopeBuffersPerDestinationSkippingSelf) {
  RecordingNetwork net;
  QueueManager qm(/*self=*/0, &net);

  qm.BeginCombine();
  qm.Broadcast({0, 1, 2}, SearchFor(5));
  qm.Broadcast({1, 2}, SearchFor(6));
  qm.EndCombine();

  ASSERT_EQ(net.sent.size(), 2u);
  for (const Message& m : net.sent) {
    EXPECT_NE(m.to, 0u) << "self must be skipped";
    ASSERT_EQ(m.actions.size(), 2u);
    EXPECT_EQ(m.actions[0].key, 5u);
    EXPECT_EQ(m.actions[1].key, 6u);
  }
}

}  // namespace
}  // namespace lazytree
