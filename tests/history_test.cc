// History theory tests (§3): the checkers must accept synthetic correct
// executions and pinpoint each kind of violation.

#include <gtest/gtest.h>

#include "src/history/checker.h"

namespace lazytree {
namespace {

using history::CheckAll;
using history::CheckComplete;
using history::CheckCompatible;
using history::CheckOptions;
using history::CheckOrdered;
using history::CopyKey;
using history::HistoryLog;
using history::IssuedUpdate;
using history::Record;
using history::UpdateClass;

NodeId Id(uint32_t seq) { return NodeId::Make(0, seq); }

Record InsertRecord(UpdateId u, NodeId node, ProcessorId copy, Key key,
                    bool initial) {
  Record r;
  r.update = u;
  r.cls = UpdateClass::kInsert;
  r.node = node;
  r.copy = copy;
  r.key = key;
  r.initial = initial;
  return r;
}

NodeSnapshot Snap(NodeId id, std::vector<Entry> entries) {
  NodeSnapshot s;
  s.id = id;
  s.entries = std::move(entries);
  return s;
}

TEST(HistoryLog, TracksCopiesAndIssues) {
  HistoryLog log;
  log.RegisterIssued({1, UpdateClass::kInsert, Id(1), 10, 100});
  log.OnCopyCreated(Id(1), 0, {});
  log.Append(InsertRecord(1, Id(1), 0, 10, true));
  EXPECT_EQ(log.RecordCount(), 1u);
  EXPECT_EQ(log.Issued().size(), 1u);
  EXPECT_EQ(log.Copies().size(), 1u);
  log.Reset();
  EXPECT_EQ(log.RecordCount(), 0u);
}

TEST(HistoryLog, DisabledLogIgnoresEverything) {
  HistoryLog log(/*enabled=*/false);
  log.RegisterIssued({1, UpdateClass::kInsert, Id(1), 10, 100});
  log.Append(InsertRecord(1, Id(1), 0, 10, true));
  EXPECT_EQ(log.RecordCount(), 0u);
  EXPECT_TRUE(log.Issued().empty());
}

TEST(CheckerComplete, FlagsLostUpdates) {
  HistoryLog log;
  log.RegisterIssued({1, UpdateClass::kInsert, Id(1), 10, 0});
  log.RegisterIssued({2, UpdateClass::kInsert, Id(1), 20, 0});
  log.OnCopyCreated(Id(1), 0, {});
  log.Append(InsertRecord(1, Id(1), 0, 10, true));
  // Update 2 never lands anywhere.
  auto report = CheckComplete(log);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("u=2"), std::string::npos);
}

TEST(CheckerComplete, InheritedUpdatesCount) {
  HistoryLog log;
  log.RegisterIssued({1, UpdateClass::kInsert, Id(1), 10, 0});
  log.OnCopyCreated(Id(1), 0, {1});  // arrived via seed snapshot
  EXPECT_TRUE(CheckComplete(log).ok());
}

TEST(CheckerComplete, DeadCopiesStillCount) {
  // "A deleted node is conceptually retained" (§3.1).
  HistoryLog log;
  log.RegisterIssued({1, UpdateClass::kInsert, Id(1), 10, 0});
  log.OnCopyCreated(Id(1), 0, {});
  log.Append(InsertRecord(1, Id(1), 0, 10, true));
  log.OnCopyDeleted(Id(1), 0);
  EXPECT_TRUE(CheckComplete(log).ok());
}

TEST(CheckerCompatible, AcceptsReorderedCommutingUpdates) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {});
  log.OnCopyCreated(Id(1), 1, {});
  // Same two inserts, opposite order at the two copies: lazy updates
  // commute, so this is exactly what the paper allows.
  log.Append(InsertRecord(1, Id(1), 0, 10, true));
  log.Append(InsertRecord(2, Id(1), 0, 20, false));
  log.Append(InsertRecord(2, Id(1), 1, 20, true));
  log.Append(InsertRecord(1, Id(1), 1, 10, false));
  std::map<CopyKey, NodeSnapshot> finals;
  finals[{Id(1), 0}] = Snap(Id(1), {{10, 0}, {20, 0}});
  finals[{Id(1), 1}] = Snap(Id(1), {{10, 0}, {20, 0}});
  EXPECT_TRUE(CheckCompatible(log, finals).ok());
}

TEST(CheckerCompatible, FlagsMissingUpdateAtOneCopy) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {});
  log.OnCopyCreated(Id(1), 1, {});
  log.Append(InsertRecord(1, Id(1), 0, 10, true));
  std::map<CopyKey, NodeSnapshot> finals;
  finals[{Id(1), 0}] = Snap(Id(1), {{10, 0}});
  finals[{Id(1), 1}] = Snap(Id(1), {{10, 0}});
  auto report = CheckCompatible(log, finals);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("uniform histories differ"),
            std::string::npos);
}

TEST(CheckerCompatible, FlagsDivergentFinalValues) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {1});
  log.OnCopyCreated(Id(1), 1, {1});
  std::map<CopyKey, NodeSnapshot> finals;
  finals[{Id(1), 0}] = Snap(Id(1), {{10, 0}});
  finals[{Id(1), 1}] = Snap(Id(1), {{10, 1}});  // different payload
  auto report = CheckCompatible(log, finals);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("entries"), std::string::npos);
}

TEST(CheckerCompatible, FlagsDoubleApplication) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {});
  log.Append(InsertRecord(1, Id(1), 0, 10, true));
  log.Append(InsertRecord(1, Id(1), 0, 10, false));
  std::map<CopyKey, NodeSnapshot> finals;
  finals[{Id(1), 0}] = Snap(Id(1), {{10, 0}});
  auto report = CheckCompatible(log, finals);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("applied 2x"), std::string::npos);
  CheckOptions relaxed;
  relaxed.allow_duplicate_applications = true;
  EXPECT_TRUE(CheckCompatible(log, finals, relaxed).ok());
}

TEST(CheckerCompatible, DeadCopiesAreNotCompared) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {});
  log.OnCopyCreated(Id(1), 1, {});
  log.Append(InsertRecord(1, Id(1), 0, 10, true));
  log.OnCopyDeleted(Id(1), 1);  // never saw update 1, but it is dead
  std::map<CopyKey, NodeSnapshot> finals;
  finals[{Id(1), 0}] = Snap(Id(1), {{10, 0}});
  EXPECT_TRUE(CheckCompatible(log, finals).ok());
}

Record LinkRecord(UpdateId u, ProcessorId copy, Version version,
                  bool rewritten) {
  Record r;
  r.update = u;
  r.cls = UpdateClass::kLinkChange;
  r.node = Id(1);
  r.copy = copy;
  r.version = version;
  r.link = 0;
  r.initial = true;
  r.rewritten = rewritten;
  return r;
}

TEST(CheckerOrdered, AcceptsIncreasingVersions) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {});
  log.Append(LinkRecord(1, 0, 1, false));
  log.Append(LinkRecord(2, 0, 2, false));
  EXPECT_TRUE(CheckOrdered(log).ok());
}

TEST(CheckerOrdered, FlagsOutOfOrderApplication) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {});
  log.Append(LinkRecord(1, 0, 5, false));
  log.Append(LinkRecord(2, 0, 3, false));  // applied, but older version
  auto report = CheckOrdered(log);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("ordered"), std::string::npos);
}

TEST(CheckerOrdered, RewrittenRecordsAreExempt) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {});
  log.Append(LinkRecord(1, 0, 5, false));
  log.Append(LinkRecord(2, 0, 3, /*rewritten=*/true));
  EXPECT_TRUE(CheckOrdered(log).ok());
}

TEST(CheckerAll, MergesAllThree) {
  HistoryLog log;
  log.RegisterIssued({9, UpdateClass::kInsert, Id(1), 1, 0});
  log.OnCopyCreated(Id(1), 0, {});
  log.Append(LinkRecord(1, 0, 5, false));
  log.Append(LinkRecord(2, 0, 3, false));
  std::map<CopyKey, NodeSnapshot> finals;
  finals[{Id(1), 0}] = Snap(Id(1), {});
  auto report = CheckAll(log, finals);
  // complete (u=9 lost) + ordered (version regression) both fire.
  EXPECT_GE(report.violations.size(), 2u);
}

TEST(CheckerReport, ViolationCapKeepsOutputBounded) {
  HistoryLog log;
  for (uint32_t i = 1; i <= 40; ++i) {
    log.RegisterIssued({i, UpdateClass::kInsert, Id(1), i, 0});
  }
  CheckOptions options;
  options.max_violations = 4;
  auto report = CheckComplete(log, options);
  EXPECT_EQ(report.violations.size(), 5u);  // 4 + suppression notice
}

// ---------------------------------------------------------------------------
// Negative paths must *pinpoint*: a violation string that doesn't name the
// update, copy, and versions involved sends the reader back to a debugger.
// These tests pin the diagnostic contract, not just the pass/fail bit.
// ---------------------------------------------------------------------------

TEST(CheckerMessages, CompleteViolationNamesUpdateAndKey) {
  HistoryLog log;
  log.RegisterIssued({7, UpdateClass::kInsert, Id(1), 425, 1});
  auto report = CheckComplete(log);
  ASSERT_EQ(report.violations.size(), 1u);
  const std::string& v = report.violations.front();
  EXPECT_NE(v.find("u=7"), std::string::npos) << v;
  EXPECT_NE(v.find("key=425"), std::string::npos) << v;
  EXPECT_NE(v.find("never applied"), std::string::npos) << v;
}

TEST(CheckerMessages, LinkChangeInversionNamesCopyAndBothVersions) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 3, {});
  Record newer = LinkRecord(1, 3, 5, false);
  Record older = LinkRecord(2, 3, 2, false);  // version-order inversion
  log.Append(newer);
  log.Append(older);
  auto report = CheckOrdered(log);
  ASSERT_EQ(report.violations.size(), 1u);
  const std::string& v = report.violations.front();
  EXPECT_NE(v.find("link-change v=2"), std::string::npos) << v;
  EXPECT_NE(v.find("after v=5"), std::string::npos) << v;
  EXPECT_NE(v.find("@p3"), std::string::npos) << v;
}

TEST(CheckerMessages, LinkKindsAreOrderedIndependently) {
  // A right-link at v=5 then a parent-link at v=2 is NOT an inversion —
  // each link kind carries its own version counter.
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {});
  Record right = LinkRecord(1, 0, 5, false);
  right.link = 0;
  Record parent = LinkRecord(2, 0, 2, false);
  parent.link = 1;
  log.Append(right);
  log.Append(parent);
  EXPECT_TRUE(CheckOrdered(log).ok());
}

TEST(CheckerMessages, MembershipInversionNamesClassAndCopy) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 2, {});
  Record join = LinkRecord(1, 2, 4, false);
  join.cls = UpdateClass::kMembership;
  Record migrate = LinkRecord(2, 2, 4, false);  // equal version: not after
  migrate.cls = UpdateClass::kMigrate;
  log.Append(join);
  log.Append(migrate);
  auto report = CheckOrdered(log);
  ASSERT_EQ(report.violations.size(), 1u);
  const std::string& v = report.violations.front();
  EXPECT_NE(v.find("migrate"), std::string::npos) << v;
  EXPECT_NE(v.find("v=4"), std::string::npos) << v;
  EXPECT_NE(v.find("@p2"), std::string::npos) << v;
}

TEST(CheckerMessages, CompatibleDivergenceNamesBothCopies) {
  HistoryLog log;
  log.RegisterIssued({1, UpdateClass::kInsert, Id(1), 10, 100});
  log.OnCopyCreated(Id(1), 0, {});
  log.OnCopyCreated(Id(1), 1, {});
  log.Append(InsertRecord(1, Id(1), 0, 10, true));  // p1 never applies u=1
  std::map<CopyKey, NodeSnapshot> finals;
  finals[{Id(1), 0}] = Snap(Id(1), {{10, 100}});
  finals[{Id(1), 1}] = Snap(Id(1), {});
  auto report = CheckCompatible(log, finals);
  ASSERT_FALSE(report.ok());
  const std::string joined = report.ToString();
  EXPECT_NE(joined.find("@p0"), std::string::npos) << joined;
  EXPECT_NE(joined.find("@p1"), std::string::npos) << joined;
  EXPECT_NE(joined.find("u=1"), std::string::npos) << joined;
}

TEST(CheckerMessages, DoubleApplicationNamesCountAndCopy) {
  HistoryLog log;
  log.OnCopyCreated(Id(1), 0, {});
  log.Append(InsertRecord(3, Id(1), 0, 10, true));
  log.Append(InsertRecord(3, Id(1), 0, 10, false));  // re-applied relay
  std::map<CopyKey, NodeSnapshot> finals;
  finals[{Id(1), 0}] = Snap(Id(1), {{10, 0}});
  auto report = CheckCompatible(log, finals);
  ASSERT_FALSE(report.ok());
  const std::string& v = report.violations.front();
  EXPECT_NE(v.find("applied 2x"), std::string::npos) << v;
  EXPECT_NE(v.find("@p0"), std::string::npos) << v;
}

}  // namespace
}  // namespace lazytree
