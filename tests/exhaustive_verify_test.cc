// Exhaustive bounded verification tests (src/sim/exhaustive.h).
//
// These pin the acceptance surface of lazytree_verify: every shipped
// protocol's bounded configuration exhausts clean within tier-1 time, the
// commutativity-guided POR + state dedup reduce the explored executions by
// well over the required factor versus the naive DFS, the POR runtime
// cross-check and prefix-replay determinism check stay silent on healthy
// code, and both planted protocol mutations are detected with a minimized
// trace that replays to the same failure under plain ReplayEpisode.

#include <gtest/gtest.h>

#include <string>

#include "src/sim/exhaustive.h"

namespace lazytree {
namespace {

using sim::EpisodeResult;
using sim::ReplayEpisode;
using sim::VerifyConfig;
using sim::VerifyExhaustive;
using sim::VerifyResult;

// Mirrors the battery configs in verify_main.cc: small on purpose, but
// still splitting (fanout 3, more inserts than one leaf holds) with
// replicated leaves relaying lazy updates between two processors.
VerifyConfig BoundedConfig(ProtocolKind protocol) {
  VerifyConfig config;
  config.episode.protocol = protocol;
  config.episode.processors = 2;
  config.episode.seed = 1;
  config.episode.rounds = 1;
  config.episode.ops_per_round = 4;
  config.episode.key_space = 16;
  config.episode.fanout = 3;
  config.episode.leaf_replication = 2;
  config.episode.step_budget = 100000;
  if (protocol == ProtocolKind::kMobile ||
      protocol == ProtocolKind::kVarCopies) {
    config.episode.leaf_replication = 1;
    config.episode.shed_threshold = 1;
  }
  return config;
}

// The 4-processor membership-churn configuration whose starved schedules
// give the swap-ordered mutation a qualifying same-kind registration pair
// (two relayed joins/unjoins of different members queued on one channel).
VerifyConfig SwapMutationConfig() {
  VerifyConfig config = BoundedConfig(ProtocolKind::kVarCopies);
  config.episode.processors = 4;
  config.episode.rounds = 2;
  config.episode.ops_per_round = 6;
  config.episode.key_space = 32;
  config.episode.mutation = net::ScheduleMutation::kSwapOrdered;
  config.starve_victim = 1;
  config.max_executions = 20000;
  return config;
}

// Every protocol's bounded schedule space must exhaust with zero
// violations, zero cross-check failures, and zero determinism failures.
TEST(ExhaustiveVerify, BoundedConfigsExhaustCleanOnAllProtocols) {
  for (ProtocolKind protocol :
       {ProtocolKind::kSyncSplit, ProtocolKind::kSemiSyncSplit,
        ProtocolKind::kMobile, ProtocolKind::kVarCopies}) {
    SCOPED_TRACE(ProtocolKindName(protocol));
    VerifyResult result = VerifyExhaustive(BoundedConfig(protocol));
    EXPECT_TRUE(result.ok) << result.Summary();
    EXPECT_TRUE(result.exhausted) << result.Summary();
    EXPECT_TRUE(result.violations.empty());
    EXPECT_GT(result.stats.schedules, 0u);
    EXPECT_GT(result.stats.pruned_sleep, 0u);  // POR actually engaged
    EXPECT_GT(result.stats.cross_checks, 0u);
    EXPECT_EQ(result.stats.cross_check_failures, 0u);
    EXPECT_EQ(result.stats.determinism_failures, 0u);
  }
}

// The reductions must buy at least the required 5x over naive DFS on the
// semisync config. The naive run is capped at 32x the reduced execution
// count: either it exhausts below the cap (exact ratio, still >= 5x) or it
// hits the cap (ratio >= 32x, proven without running the full space).
TEST(ExhaustiveVerify, ReductionsBeatNaiveDfsByRequiredFactor) {
  VerifyConfig reduced = BoundedConfig(ProtocolKind::kSemiSyncSplit);
  VerifyResult fast = VerifyExhaustive(reduced);
  ASSERT_TRUE(fast.ok && fast.exhausted) << fast.Summary();

  VerifyConfig naive = reduced;
  naive.por = false;
  naive.dedup = false;
  naive.cross_check_samples = 0;
  naive.max_executions = fast.stats.executions * 32;
  VerifyResult slow = VerifyExhaustive(naive);
  EXPECT_TRUE(slow.ok) << slow.Summary();
  EXPECT_GE(slow.stats.executions, fast.stats.executions * 5)
      << "naive: " << slow.Summary() << "\nreduced: " << fast.Summary();
  // Naive exhaustion (when it fits the cap) must agree: no violations.
  if (slow.exhausted) {
    EXPECT_TRUE(slow.violations.empty());
  }
}

// Planted mutation 1: a dropped relayed lazy update must be flagged by the
// S3.1 compatible-histories check, and the minimized trace must replay to
// the same failure through the ordinary replay path.
TEST(ExhaustiveVerify, DetectsDroppedRelayWithReplayableTrace) {
  VerifyConfig config = BoundedConfig(ProtocolKind::kSemiSyncSplit);
  config.episode.mutation = net::ScheduleMutation::kDropRelay;
  VerifyResult result = VerifyExhaustive(config);
  ASSERT_FALSE(result.ok) << "planted mutation not detected";
  EXPECT_GT(result.stats.mutation_fired, 0u);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations[0].find("compatible"), std::string::npos)
      << result.violations[0];

  EpisodeResult replayed = ReplayEpisode(config.episode, result.trace);
  EXPECT_FALSE(replayed.ok) << "minimized trace must replay to failure";
}

// Planted mutation 2: swapping two version-ordered same-kind membership
// registrations past each other on one channel must diverge the receiving
// copy's history (the version gate drops the older registration), and the
// starvation-directed search must find it within budget.
TEST(ExhaustiveVerify, DetectsSwappedMembershipPairWithReplayableTrace) {
  VerifyConfig config = SwapMutationConfig();
  VerifyResult result = VerifyExhaustive(config);
  ASSERT_FALSE(result.ok) << "planted mutation not detected: "
                          << result.Summary();
  EXPECT_GT(result.stats.mutation_fired, 0u);
  ASSERT_FALSE(result.violations.empty());

  EpisodeResult replayed = ReplayEpisode(config.episode, result.trace);
  EXPECT_FALSE(replayed.ok) << "minimized trace must replay to failure";
  EXPECT_EQ(replayed.Signature(), result.violations[0]);
}

// A mutation planted in a config whose schedules never produce a
// qualifying pair must simply not fire — the verifier reports a clean
// exhaustion rather than a false positive (2 processors never relay
// membership, so swap-ordered has nothing to swap).
TEST(ExhaustiveVerify, UnfirableMutationYieldsCleanExhaustion) {
  VerifyConfig config = BoundedConfig(ProtocolKind::kVarCopies);
  config.episode.mutation = net::ScheduleMutation::kSwapOrdered;
  VerifyResult result = VerifyExhaustive(config);
  EXPECT_TRUE(result.ok) << result.Summary();
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.stats.mutation_fired, 0u);
}

}  // namespace
}  // namespace lazytree
