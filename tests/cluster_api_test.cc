// Cluster / DBTree public-surface tests: facade behaviour, structure
// checker sharpness, piggybacked cluster wiring, stats plumbing.

#include <gtest/gtest.h>

#include "src/core/dbtree.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::RandomKeys;
using testing::SimOptions;

TEST(DBTreeFacade, FullDictionaryLifecycle) {
  ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 4, 1);
  DBTree tree(o);
  EXPECT_EQ(tree.KeyCount(), 0u);
  ASSERT_TRUE(tree.Insert(1, 10).ok());
  ASSERT_TRUE(tree.Insert(2, 20).ok());
  ASSERT_TRUE(tree.Insert(3, 30).ok());
  EXPECT_EQ(tree.Insert(2, 99).code(), StatusCode::kAlreadyExists);

  auto hit = tree.Search(2);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, 20u);

  auto range = tree.Scan(2, 10);
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->size(), 2u);
  EXPECT_EQ((*range)[0].key, 2u);
  EXPECT_EQ((*range)[1].key, 3u);

  ASSERT_TRUE(tree.Delete(2).ok());
  EXPECT_EQ(tree.Search(2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.KeyCount(), 2u);
  EXPECT_TRUE(tree.cluster().VerifyHistories().ok());
}

TEST(DBTreeFacade, RoundRobinHomesAllWork) {
  ClusterOptions o = SimOptions(ProtocolKind::kVarCopies, 3, 5);
  DBTree tree(o);
  // 3*n operations hit every home; all must succeed.
  for (Key k = 1; k <= 90; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  for (Key k = 1; k <= 90; ++k) ASSERT_TRUE(tree.Search(k).ok());
}

TEST(ClusterApi, DumpLeavesMatchesScan) {
  Cluster cluster(SimOptions(ProtocolKind::kSemiSyncSplit, 4, 9));
  cluster.Start();
  for (Key k : RandomKeys(200, 3)) {
    ASSERT_TRUE(cluster.Insert(k % 4, k, k).ok());
  }
  auto dump = cluster.DumpLeaves();
  auto scan = cluster.Scan(0, 0, 100000);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(dump.size(), scan->size());
  for (size_t i = 0; i < dump.size(); ++i) {
    EXPECT_EQ(dump[i].key, (*scan)[i].key);
  }
}

TEST(ClusterApi, StructureCheckerFlagsDamage) {
  Cluster cluster(SimOptions(ProtocolKind::kSemiSyncSplit, 2, 11));
  cluster.Start();
  for (Key k : RandomKeys(100, 13)) {
    ASSERT_TRUE(cluster.Insert(k % 2, k, k).ok());
  }
  ASSERT_TRUE(cluster.CheckTreeStructure().empty());
  // Vandalize one leaf's range: the checker must notice.
  Node* victim = nullptr;
  cluster.processor(0).store().ForEach([&](const Node& n) {
    if (n.is_leaf() && n.range().high != kKeyInfinity && victim == nullptr) {
      victim = cluster.processor(0).store().Get(n.id());
    }
  });
  ASSERT_NE(victim, nullptr);
  victim->ApplySplit(victim->range().low + (victim->range().high -
                                            victim->range().low) /
                                               2,
                     NodeId::Make(9, 999));
  auto violations = cluster.CheckTreeStructure();
  EXPECT_FALSE(violations.empty());
}

TEST(ClusterApi, NetStatsAndHistoryAccessors) {
  ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 3, 15);
  o.piggyback_window = 4;
  Cluster cluster(o);
  cluster.Start();
  ASSERT_TRUE(cluster.Insert(0, 5, 50).ok());
  auto stats = cluster.NetStats();
  EXPECT_GT(stats.local_messages + stats.remote_messages, 0u);
  EXPECT_GT(cluster.history_log().RecordCount(), 0u);
  EXPECT_NE(cluster.sim(), nullptr);
  EXPECT_EQ(cluster.size(), 3u);
}

TEST(ClusterApi, HistoryTrackingOffStillServes) {
  ClusterOptions o = SimOptions(ProtocolKind::kVarCopies, 4, 17);
  o.tree.track_history = false;
  Cluster cluster(o);
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(200, 19)) {
    ASSERT_TRUE(cluster.Insert(k % 4, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  testing::ExpectMatchesOracle(cluster, oracle);
  EXPECT_EQ(cluster.history_log().RecordCount(), 0u);
  // The checkers pass vacuously on an empty log.
  EXPECT_TRUE(cluster.VerifyHistories().ok());
}

TEST(ClusterApi, SingleProcessorDegenerateCluster) {
  for (ProtocolKind protocol :
       {ProtocolKind::kSemiSyncSplit, ProtocolKind::kSyncSplit,
        ProtocolKind::kVigorous, ProtocolKind::kMobile,
        ProtocolKind::kVarCopies}) {
    Cluster cluster(SimOptions(protocol, 1, 21));
    cluster.Start();
    for (Key k = 1; k <= 100; ++k) {
      ASSERT_TRUE(cluster.Insert(0, k, k).ok())
          << ProtocolKindName(protocol);
    }
    auto hit = cluster.Search(0, 50);
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(*hit, 50u);
    testing::ExpectCorrect(cluster);
  }
}

TEST(ClusterApi, LargeFanoutShallowTree) {
  ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 4, 23,
                                /*fanout=*/128);
  Cluster cluster(o);
  cluster.Start();
  for (Key k : RandomKeys(500, 29)) {
    ASSERT_TRUE(cluster.Insert(k % 4, k, k).ok());
  }
  testing::ExpectCorrect(cluster);
  int32_t max_level = 0;
  for (auto& [key, snap] : cluster.CollectCopies()) {
    max_level = std::max(max_level, snap.level);
  }
  EXPECT_LE(max_level, 2) << "fanout 128 keeps 500 keys shallow";
}

// The simulator promise: the seed fully determines the execution — the
// final distributed state and even the message counts are bit-identical
// across runs.
TEST(Determinism, SameSeedSameFinalState) {
  auto run = [](uint64_t seed) {
    ClusterOptions o = SimOptions(ProtocolKind::kVarCopies, 5, seed,
                                  /*fanout=*/4);
    o.tree.shed_threshold = 4;
    auto cluster = std::make_unique<Cluster>(o);
    cluster->Start();
    Rng rng(seed + 1);
    for (int i = 0; i < 400; ++i) {
      cluster->InsertAsync(static_cast<ProcessorId>(i % 5),
                           rng.Range(1, 1u << 30), i,
                           [](const OpResult&) {});
    }
    cluster->Settle();
    return cluster;
  };
  auto a = run(42);
  auto b = run(42);
  auto c = run(43);

  auto copies_a = a->CollectCopies();
  auto copies_b = b->CollectCopies();
  ASSERT_EQ(copies_a.size(), copies_b.size());
  auto it_b = copies_b.begin();
  for (auto& [key, snap] : copies_a) {
    EXPECT_EQ(key, it_b->first);
    EXPECT_EQ(snap.entries, it_b->second.entries);
    EXPECT_EQ(snap.range, it_b->second.range);
    EXPECT_EQ(snap.version, it_b->second.version);
    ++it_b;
  }
  auto stats_a = a->NetStats();
  auto stats_b = b->NetStats();
  EXPECT_EQ(stats_a.remote_messages, stats_b.remote_messages);
  EXPECT_EQ(stats_a.remote_bytes, stats_b.remote_bytes);
  // And a different seed takes a different path.
  EXPECT_NE(a->NetStats().remote_messages, c->NetStats().remote_messages);
}

// Upsert mode across every protocol: last writer (at quiescence between
// writes) wins, duplicates never fail.
TEST(UpsertMode, OverwritesAcrossProtocols) {
  for (ProtocolKind protocol :
       {ProtocolKind::kSemiSyncSplit, ProtocolKind::kSyncSplit,
        ProtocolKind::kVigorous, ProtocolKind::kMobile,
        ProtocolKind::kVarCopies}) {
    ClusterOptions o = SimOptions(protocol, 3, 7);
    o.tree.upsert = true;
    Cluster cluster(o);
    cluster.Start();
    Oracle oracle(/*upsert=*/true);
    std::vector<Key> keys = RandomKeys(80, 9);
    for (int round = 0; round < 3; ++round) {
      for (size_t i = 0; i < keys.size(); ++i) {
        Value v = static_cast<Value>(round * 1000 + i);
        ASSERT_TRUE(cluster.Insert(i % 3, keys[i], v).ok())
            << ProtocolKindName(protocol);
        ASSERT_TRUE(oracle.Insert(keys[i], v).ok());
      }
    }
    testing::ExpectMatchesOracle(cluster, oracle);
    testing::ExpectCorrect(cluster);
  }
}

}  // namespace
}  // namespace lazytree
