// Transport conformance suite: every Network implementation must honor
// the paper's §4 assumption — reliable, exactly-once, per-(from,to) FIFO
// delivery — plus the repo's own contract extensions (reentrant Send from
// Deliver, WaitQuiescent). Runs against the zero-copy ThreadNetwork fast
// path, the checked (wire round-trip) ThreadNetwork mode, and SimNetwork,
// so the PR-2 transport rewrite cannot silently weaken any of them — and
// against both base transports wrapped in FaultyNetwork (5% drop +
// duplicate + reorder + delay) under ReliableNetwork, which must restore
// the exact same contract over the lossy links.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/faults.h"
#include "src/net/reliable.h"
#include "src/net/sim_network.h"
#include "src/net/thread_network.h"

namespace lazytree {
namespace {

enum class TransportUnderTest {
  kSim,
  kThreadFast,
  kThreadChecked,
  kSimLossy,     // Sim base + FaultyNetwork + ReliableNetwork (virtual timers)
  kThreadLossy,  // Thread base + FaultyNetwork + ReliableNetwork (real timers)
};

const char* TransportName(TransportUnderTest t) {
  switch (t) {
    case TransportUnderTest::kSim: return "Sim";
    case TransportUnderTest::kThreadFast: return "ThreadFast";
    case TransportUnderTest::kThreadChecked: return "ThreadChecked";
    case TransportUnderTest::kSimLossy: return "SimLossy";
    case TransportUnderTest::kThreadLossy: return "ThreadLossy";
  }
  return "?";
}

net::FaultPlan LossyPlan() {
  net::FaultPlan plan;
  plan.drop = 0.05;
  plan.duplicate = 0.05;
  plan.reorder = 0.05;
  plan.delay = 0.02;
  plan.seed = 11;
  return plan;
}

/// The lossy stack under test: base transport, a FaultyNetwork breaking
/// its links, and a ReliableNetwork restoring the §4 contract on top.
/// Declaration order is destruction-order-critical (reverse of wrapping).
class LossyTransport : public net::Network {
 public:
  LossyTransport(std::unique_ptr<net::Network> base, bool real_timers)
      : base_(std::move(base)),
        faulty_(std::make_unique<net::FaultyNetwork>(base_.get(),
                                                     LossyPlan())) {
    net::ReliabilityOptions ropt;
    ropt.real_timers = real_timers;
    reliable_ =
        std::make_unique<net::ReliableNetwork>(faulty_.get(), ropt);
  }

  void Register(ProcessorId id, net::Receiver* receiver) override {
    reliable_->Register(id, receiver);
  }
  ProcessorId size() const override { return reliable_->size(); }
  void Send(Message m) override { reliable_->Send(std::move(m)); }
  void Start() override { reliable_->Start(); }
  void Stop() override { reliable_->Stop(); }
  bool WaitQuiescent(std::chrono::milliseconds timeout) override {
    return reliable_->WaitQuiescent(timeout);
  }
  net::NetworkStats& stats() override { return reliable_->stats(); }

  net::FaultyNetwork& faulty() { return *faulty_; }
  net::ReliableNetwork& reliable() { return *reliable_; }

 private:
  std::unique_ptr<net::Network> base_;
  std::unique_ptr<net::FaultyNetwork> faulty_;
  std::unique_ptr<net::ReliableNetwork> reliable_;
};

std::unique_ptr<net::Network> MakeTransport(TransportUnderTest t,
                                            bool byte_stats = false) {
  switch (t) {
    case TransportUnderTest::kSim:
      return std::make_unique<net::SimNetwork>(7);
    case TransportUnderTest::kThreadFast:
      return std::make_unique<net::ThreadNetwork>(net::ThreadNetwork::Options{
          .checked_wire = false, .byte_stats = byte_stats});
    case TransportUnderTest::kThreadChecked:
      return std::make_unique<net::ThreadNetwork>(
          net::ThreadNetwork::Options{.checked_wire = true});
    case TransportUnderTest::kSimLossy:
      return std::make_unique<LossyTransport>(
          std::make_unique<net::SimNetwork>(7), /*real_timers=*/false);
    case TransportUnderTest::kThreadLossy:
      return std::make_unique<LossyTransport>(
          std::make_unique<net::ThreadNetwork>(net::ThreadNetwork::Options{
              .checked_wire = false, .byte_stats = byte_stats}),
          /*real_timers=*/true);
  }
  return nullptr;
}

bool IsThreaded(TransportUnderTest t) {
  return t == TransportUnderTest::kThreadFast ||
         t == TransportUnderTest::kThreadChecked ||
         t == TransportUnderTest::kThreadLossy;
}

bool IsLossy(TransportUnderTest t) {
  return t == TransportUnderTest::kSimLossy ||
         t == TransportUnderTest::kThreadLossy;
}

/// Thread-safe sink recording (from, key) sequences and total count.
class Recorder : public net::Receiver {
 public:
  void Deliver(Message m) override {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Action& a : m.actions) {
      by_sender_[m.from].push_back(a.key);
      ++total_;
    }
    if (bouncer_) bouncer_(m);
  }

  /// Installs a hook invoked under the lock for every delivered message.
  void SetHook(std::function<void(const Message&)> hook) {
    bouncer_ = std::move(hook);
  }

  std::vector<Key> SenderKeys(ProcessorId from) {
    std::lock_guard<std::mutex> lock(mu_);
    return by_sender_[from];
  }
  size_t total() {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  std::mutex mu_;
  std::function<void(const Message&)> bouncer_;
  std::map<ProcessorId, std::vector<Key>> by_sender_;
  size_t total_ = 0;
};

Action KeyedAction(Key k) {
  Action a;
  a.kind = ActionKind::kSearch;
  a.key = k;
  return a;
}

class TransportConformanceTest
    : public ::testing::TestWithParam<TransportUnderTest> {};

TEST_P(TransportConformanceTest, FifoPerOrderedPairExactlyOnce) {
  auto net = MakeTransport(GetParam());
  constexpr ProcessorId kProcs = 4;
  constexpr Key kPerChannel = 300;
  std::vector<std::unique_ptr<Recorder>> sinks;
  for (ProcessorId id = 0; id < kProcs; ++id) {
    sinks.push_back(std::make_unique<Recorder>());
    net->Register(id, sinks.back().get());
  }
  net->Start();
  // Every ordered pair (including self-sends) gets its own key sequence.
  for (Key k = 0; k < kPerChannel; ++k) {
    for (ProcessorId from = 0; from < kProcs; ++from) {
      for (ProcessorId to = 0; to < kProcs; ++to) {
        net->Send(Message(from, to, KeyedAction(k * 1000 + from)));
      }
    }
  }
  ASSERT_TRUE(net->WaitQuiescent(std::chrono::milliseconds(10000)));
  for (ProcessorId to = 0; to < kProcs; ++to) {
    EXPECT_EQ(sinks[to]->total(), kPerChannel * kProcs) << "exactly-once";
    for (ProcessorId from = 0; from < kProcs; ++from) {
      auto keys = sinks[to]->SenderKeys(from);
      ASSERT_EQ(keys.size(), kPerChannel);
      for (Key k = 0; k < kPerChannel; ++k) {
        ASSERT_EQ(keys[k], k * 1000 + from)
            << "FIFO broken on p" << from << "->p" << to << " at " << k;
      }
    }
  }
  net->Stop();
}

TEST_P(TransportConformanceTest, ReentrantSendFromDeliver) {
  auto net = MakeTransport(GetParam());
  Recorder r0, r1;
  net->Register(0, &r0);
  net->Register(1, &r1);
  // Ping-pong: each delivery below the limit sends key+1 back.
  auto bounce = [&](const Message& m) {
    for (const Action& a : m.actions) {
      if (a.key < 200) net->Send(Message(m.to, m.from, KeyedAction(a.key + 1)));
    }
  };
  r0.SetHook(bounce);
  r1.SetHook(bounce);
  net->Start();
  net->Send(Message(0, 1, KeyedAction(0)));
  ASSERT_TRUE(net->WaitQuiescent(std::chrono::milliseconds(10000)));
  // Keys 0..199 bounce; the final key==200 message arrives unbounced.
  EXPECT_EQ(r0.total() + r1.total(), 201u);
  net->Stop();
}

TEST_P(TransportConformanceTest, QuiescenceUnderSendStorm) {
  auto net = MakeTransport(GetParam());
  constexpr int kSenders = 16;
  constexpr Key kPerSender = 400;
  std::vector<std::unique_ptr<Recorder>> sinks;
  for (ProcessorId id = 0; id < kSenders; ++id) {
    sinks.push_back(std::make_unique<Recorder>());
    net->Register(id, sinks.back().get());
  }
  net->Start();
  auto send_all = [&](int s) {
    for (Key k = 0; k < kPerSender; ++k) {
      net->Send(Message(static_cast<ProcessorId>(s),
                        static_cast<ProcessorId>((s + 1 + k) % kSenders),
                        KeyedAction(k)));
    }
  };
  if (IsThreaded(GetParam())) {
    // 16 real producer threads hammer Send concurrently while workers
    // drain; WaitQuiescent must only return true once every message has
    // been fully handled.
    std::vector<std::thread> senders;
    for (int s = 0; s < kSenders; ++s) senders.emplace_back(send_all, s);
    for (auto& t : senders) t.join();
  } else {
    for (int s = 0; s < kSenders; ++s) send_all(s);
  }
  ASSERT_TRUE(net->WaitQuiescent(std::chrono::milliseconds(20000)));
  size_t total = 0;
  for (auto& sink : sinks) total += sink->total();
  EXPECT_EQ(total, static_cast<size_t>(kSenders) * kPerSender);
  // Quiescence is stable: nothing new shows up afterwards.
  EXPECT_TRUE(net->WaitQuiescent(std::chrono::milliseconds(10)));
  net->Stop();
}

TEST_P(TransportConformanceTest, SendDuringStopIsAccounted) {
  if (!IsThreaded(GetParam()) || IsLossy(GetParam())) {
    GTEST_SKIP() << "bare thread transport only: the reliable layer cannot "
                    "settle windows whose acks died with the transport";
  }
  auto net = MakeTransport(GetParam());
  Recorder r0, r1;
  net->Register(0, &r0);
  net->Register(1, &r1);
  net->Start();
  std::atomic<bool> stop_senders{false};
  // Race Send against Stop: sends that hit a closed inbox must still be
  // retired from the inflight accounting (the PR-2 shutdown-race fix),
  // so a later WaitQuiescent returns true instead of hanging.
  std::thread sender([&] {
    Key k = 0;
    while (!stop_senders.load(std::memory_order_relaxed)) {
      net->Send(Message(0, 1, KeyedAction(k++)));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net->Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop_senders.store(true);
  sender.join();
  EXPECT_TRUE(net->WaitQuiescent(std::chrono::milliseconds(5000)))
      << "messages dropped at shutdown leaked inflight accounting";
}

TEST_P(TransportConformanceTest, StatsCountRemoteLocalAndBytes) {
  if (IsLossy(GetParam())) {
    GTEST_SKIP() << "lossy stack: retransmits and acks make exact message "
                    "counts fault-schedule-dependent (see "
                    "LossyRecoveryIsObservable)";
  }
  // Byte accounting is opt-in on the thread fast path; this test asserts
  // the accounting itself, so switch it on.
  auto net = MakeTransport(GetParam(), /*byte_stats=*/true);
  Recorder r0, r1;
  net->Register(0, &r0);
  net->Register(1, &r1);
  net->Start();
  net->Send(Message(0, 1, KeyedAction(5)));
  net->Send(Message(1, 1, KeyedAction(6)));  // self-send = local
  ASSERT_TRUE(net->WaitQuiescent(std::chrono::milliseconds(5000)));
  auto snap = net->stats().Snapshot();
  EXPECT_EQ(snap.remote_messages, 1u);
  EXPECT_EQ(snap.local_messages, 1u);
  EXPECT_GT(snap.remote_bytes, 0u)
      << "fast path must still report wire-model byte costs";
  EXPECT_EQ(snap.ActionCount(ActionKind::kSearch), 2u);
  net->Stop();
}

TEST_P(TransportConformanceTest, LossyRecoveryIsObservable) {
  if (!IsLossy(GetParam())) GTEST_SKIP() << "lossy stack only";
  auto net = MakeTransport(GetParam());
  auto* lossy = static_cast<LossyTransport*>(net.get());
  constexpr ProcessorId kProcs = 3;
  constexpr Key kRounds = 300;
  std::vector<std::unique_ptr<Recorder>> sinks;
  for (ProcessorId id = 0; id < kProcs; ++id) {
    sinks.push_back(std::make_unique<Recorder>());
    net->Register(id, sinks.back().get());
  }
  // Ping-pong on every ordered pair: replies are reverse data traffic, so
  // cumulative acks ride them (piggybacked) instead of pure-ack frames.
  auto bounce = [&](const Message& m) {
    for (const Action& a : m.actions) {
      if (a.key < kRounds) {
        net->Send(Message(m.to, m.from, KeyedAction(a.key + 1)));
      }
    }
  };
  for (auto& sink : sinks) sink->SetHook(bounce);
  net->Start();
  for (ProcessorId from = 0; from < kProcs; ++from) {
    for (ProcessorId to = 0; to < kProcs; ++to) {
      if (from != to) net->Send(Message(from, to, KeyedAction(0)));
    }
  }
  ASSERT_TRUE(net->WaitQuiescent(std::chrono::milliseconds(20000)));
  // Recovery was real: the fault layer injected, the reliable layer paid.
  EXPECT_GT(lossy->faulty().dropped(), 0u);
  EXPECT_GT(lossy->faulty().duplicated(), 0u);
  auto snap = net->stats().Snapshot();
  EXPECT_GT(snap.retransmits, 0u) << "drops must force retransmissions";
  EXPECT_GT(snap.duplicates_dropped, 0u)
      << "injected duplicates must be suppressed by the dedup window";
  EXPECT_GT(snap.acks_piggybacked, 0u);
  EXPECT_EQ(snap.link_down, 0u) << "no link may die at 5% loss";
  // And the contract still held: exactly-once despite all of the above.
  // Each ordered pair's chain delivers keys 0..kRounds exactly once.
  for (ProcessorId to = 0; to < kProcs; ++to) {
    EXPECT_EQ(sinks[to]->total(), (kRounds + 1) * (kProcs - 1));
  }
  net->Stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportConformanceTest,
    ::testing::Values(TransportUnderTest::kSim,
                      TransportUnderTest::kThreadFast,
                      TransportUnderTest::kThreadChecked,
                      TransportUnderTest::kSimLossy,
                      TransportUnderTest::kThreadLossy),
    [](const ::testing::TestParamInfo<TransportUnderTest>& info) {
      return TransportName(info.param);
    });

}  // namespace
}  // namespace lazytree
