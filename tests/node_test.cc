// Node and NodeStore unit tests: range logic, half-splits, snapshot
// round trips, overflow buckets, closest-node recovery, forwarding.

#include <gtest/gtest.h>

#include "src/node/node.h"
#include "src/node/node_store.h"

namespace lazytree {
namespace {

NodeId Id(uint32_t seq) { return NodeId::Make(0, seq); }

TEST(KeyRange, ContainsAndEmpty) {
  KeyRange r{10, 20};
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_FALSE(r.Contains(9));
  EXPECT_FALSE(r.Empty());
  EXPECT_TRUE((KeyRange{5, 5}).Empty());
  EXPECT_EQ((KeyRange{0, kKeyInfinity}).ToString(), "[0,inf)");
}

TEST(NodeIdPacking, RoundTrip) {
  NodeId id = NodeId::Make(7, 42);
  EXPECT_EQ(id.creator(), 7u);
  EXPECT_EQ(id.seq(), 42u);
  EXPECT_TRUE(id.valid());
  EXPECT_FALSE(kInvalidNode.valid());
  EXPECT_EQ(id.ToString(), "n7.42");
}

TEST(Node, LeafInsertFindAndDuplicates) {
  Node leaf(Id(1), 0, KeyRange{0, kKeyInfinity}, /*track=*/true);
  EXPECT_TRUE(leaf.Insert(10, 100));
  EXPECT_TRUE(leaf.Insert(5, 50));
  EXPECT_TRUE(leaf.Insert(20, 200));
  EXPECT_FALSE(leaf.Insert(10, 999)) << "dup rejected";
  EXPECT_EQ(*leaf.Find(10), 100u) << "value unchanged";
  EXPECT_TRUE(leaf.Insert(10, 999, /*upsert=*/false) == false);
  EXPECT_FALSE(leaf.Insert(10, 999, /*upsert=*/true));
  EXPECT_EQ(*leaf.Find(10), 999u) << "upsert overwrote";
  EXPECT_FALSE(leaf.Find(11).has_value());
  EXPECT_EQ(leaf.size(), 3u);
  // Entries stay sorted.
  EXPECT_EQ(leaf.entries()[0].key, 5u);
  EXPECT_EQ(leaf.entries()[2].key, 20u);
}

TEST(Node, InteriorRouting) {
  Node interior(Id(2), 1, KeyRange{0, kKeyInfinity}, false);
  interior.Insert(0, Id(10).v);
  interior.Insert(100, Id(11).v);
  interior.Insert(200, Id(12).v);
  EXPECT_EQ(interior.ChildFor(0), Id(10));
  EXPECT_EQ(interior.ChildFor(99), Id(10));
  EXPECT_EQ(interior.ChildFor(100), Id(11));
  EXPECT_EQ(interior.ChildFor(150), Id(11));
  EXPECT_EQ(interior.ChildFor(5000), Id(12));
}

TEST(Node, HalfSplitMovesUpperHalfAndLinks) {
  Node n(Id(3), 0, KeyRange{0, 1000}, true);
  n.set_right(Id(99), 1000);
  for (Key k = 10; k <= 80; k += 10) n.Insert(k, k);
  n.NoteApplied(555);
  Node::SplitResult split = n.HalfSplit(Id(4));

  EXPECT_EQ(split.sep, 50u);
  EXPECT_EQ(n.range().high, 50u);
  EXPECT_EQ(n.right(), Id(4));
  EXPECT_EQ(n.right_low(), 50u);
  EXPECT_EQ(n.size(), 4u);

  const NodeSnapshot& sib = split.sibling;
  EXPECT_EQ(sib.range.low, 50u);
  EXPECT_EQ(sib.range.high, 1000u);
  EXPECT_EQ(sib.right, Id(99));
  EXPECT_EQ(sib.right_low, 1000u);
  EXPECT_EQ(sib.left, Id(3));
  EXPECT_EQ(sib.entries.size(), 4u);
  EXPECT_EQ(sib.version, n.version() + 1);
  ASSERT_EQ(sib.applied_updates.size(), 1u)
      << "sibling inherits the backwards extension";
  EXPECT_EQ(sib.applied_updates[0], 555u);
}

TEST(Node, ApplySplitDiscardsMovedEntries) {
  Node copy(Id(5), 0, KeyRange{0, 1000}, false);
  for (Key k = 10; k <= 80; k += 10) copy.Insert(k, k);
  copy.ApplySplit(50, Id(6));
  EXPECT_EQ(copy.size(), 4u);
  EXPECT_EQ(copy.range().high, 50u);
  EXPECT_EQ(copy.right(), Id(6));
  for (const Entry& e : copy.entries()) EXPECT_LT(e.key, 50u);
}

TEST(Node, OverflowBucketSemantics) {
  // Copies are maintained serially, so exceeding capacity is fine (§4.1:
  // "it is a simple matter to add overflow blocks").
  Node n(Id(7), 0, KeyRange{0, kKeyInfinity}, false);
  for (Key k = 1; k <= 20; ++k) n.Insert(k, k);
  EXPECT_TRUE(n.Overflowing(8));
  EXPECT_FALSE(n.Overflowing(20));
  EXPECT_EQ(n.size(), 20u);
}

TEST(Node, SnapshotRoundTripPreservesEverything) {
  Node n(Id(8), 2, KeyRange{100, 900}, true);
  n.set_right(Id(9), 900);
  n.set_left(Id(7));
  n.set_parent(Id(1));
  n.set_copies({0, 1, 2}, 1);
  n.set_version(5);
  n.set_link_version(LinkKind::kLeft, 3);
  n.Insert(100, Id(20).v);
  n.Insert(500, Id(21).v);
  n.NoteApplied(77);

  Node copy(n.ToSnapshot(), true);
  EXPECT_EQ(copy.id(), n.id());
  EXPECT_EQ(copy.level(), 2);
  EXPECT_EQ(copy.range(), n.range());
  EXPECT_EQ(copy.right(), Id(9));
  EXPECT_EQ(copy.left(), Id(7));
  EXPECT_EQ(copy.parent(), Id(1));
  EXPECT_EQ(copy.copies(), n.copies());
  EXPECT_EQ(copy.pc(), 1u);
  EXPECT_EQ(copy.version(), 5u);
  EXPECT_EQ(copy.link_version(LinkKind::kLeft), 3u);
  EXPECT_EQ(copy.entries(), n.entries());
  EXPECT_TRUE(copy.HasApplied(77));
  EXPECT_FALSE(copy.HasApplied(78));
}

TEST(Node, CopyMembership) {
  Node n(Id(10), 1, KeyRange{}, false);
  n.set_copies({0, 1}, 0);
  EXPECT_TRUE(n.HasCopy(1));
  EXPECT_FALSE(n.HasCopy(2));
  n.AddCopy(2);
  n.AddCopy(2);  // idempotent
  EXPECT_EQ(n.copies().size(), 3u);
  n.RemoveCopy(1);
  EXPECT_FALSE(n.HasCopy(1));
  EXPECT_EQ(n.copies().size(), 2u);
}

TEST(NodeStore, InstallGetRemove) {
  NodeStore store;
  store.Install(std::make_unique<Node>(Id(1), 0, KeyRange{}, false));
  EXPECT_NE(store.Get(Id(1)), nullptr);
  EXPECT_EQ(store.Get(Id(2)), nullptr);
  EXPECT_EQ(store.size(), 1u);
  store.Remove(Id(1));
  EXPECT_EQ(store.Get(Id(1)), nullptr);
  EXPECT_EQ(store.size(), 0u);
}

TEST(NodeStore, ForwardingAddressesAndGC) {
  NodeStore store;
  store.Install(std::make_unique<Node>(Id(1), 0, KeyRange{}, false));
  store.Remove(Id(1), /*forward_to=*/3);
  EXPECT_EQ(store.Forwarding(Id(1)), 3u);
  EXPECT_EQ(store.ForwardingCount(), 1u);
  // Reinstalling clears the stale forward.
  store.Install(std::make_unique<Node>(Id(1), 0, KeyRange{}, false));
  EXPECT_EQ(store.Forwarding(Id(1)), kInvalidProcessor);
  store.Remove(Id(1), 2);
  store.DropForwardingAddresses();
  EXPECT_EQ(store.Forwarding(Id(1)), kInvalidProcessor);
}

TEST(NodeStore, RootHintIsLevelOrdered) {
  NodeStore store;
  store.SetRootHint(Id(1), 1);
  store.SetRootHint(Id(2), 3);
  store.SetRootHint(Id(3), 2);  // lower: ignored
  EXPECT_EQ(store.root_hint(), Id(2));
  EXPECT_EQ(store.root_level(), 3);
}

TEST(NodeStore, ClosestPrefersLowestUsableLevel) {
  NodeStore store;
  // Level 2 spans everything; level 1 has [0,500) and [500,1000);
  // level 0 has [0,100).
  auto mk = [&](uint32_t seq, int32_t level, Key low, Key high) {
    auto n = std::make_unique<Node>(Id(seq), level, KeyRange{low, high},
                                    false);
    store.Install(std::move(n));
  };
  mk(1, 2, 0, kKeyInfinity);
  mk(2, 1, 0, 500);
  mk(3, 1, 500, 1000);
  mk(4, 0, 0, 100);
  store.SetRootHint(Id(1), 2);

  // Key 50 at level 0: the leaf itself.
  EXPECT_EQ(store.Closest(50, 0)->id(), Id(4));
  // Key 700 at level 0: no leaf; best start is level-1 [500,1000).
  EXPECT_EQ(store.Closest(700, 0)->id(), Id(3));
  // Key 700 at level 1 wants a level>=1 node with low <= 700.
  EXPECT_EQ(store.Closest(700, 1)->id(), Id(3));
  // Level 2 target: only the top qualifies.
  EXPECT_EQ(store.Closest(700, 2)->id(), Id(1));
  // Nothing usable (low > key at every level >= 3): falls back to root.
  EXPECT_EQ(store.Closest(5, 3)->id(), Id(1));
}

}  // namespace
}  // namespace lazytree
