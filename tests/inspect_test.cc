// Introspection tests: tree statistics and DOT export.

#include <gtest/gtest.h>

#include "src/core/inspect.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::RandomKeys;
using testing::SimOptions;

TEST(TreeStatsTest, CountsMatchReality) {
  Cluster cluster(SimOptions(ProtocolKind::kSemiSyncSplit, 4, 1));
  cluster.Start();
  std::vector<Key> keys = RandomKeys(300, 5);
  for (Key k : keys) ASSERT_TRUE(cluster.Insert(k % 4, k, k).ok());

  TreeStats stats = CollectTreeStats(cluster);
  EXPECT_EQ(stats.keys, keys.size());
  EXPECT_GE(stats.height, 3);
  ASSERT_TRUE(stats.levels.contains(0));
  EXPECT_DOUBLE_EQ(stats.levels[0].replication(), 1.0)
      << "leaves are single-copy";
  // Interior levels are replicated everywhere in fixed mode.
  EXPECT_DOUBLE_EQ(stats.levels[stats.height - 1].replication(), 4.0);
  size_t leaves = 0;
  for (auto& [host, count] : stats.leaves_per_host) leaves += count;
  EXPECT_EQ(leaves, stats.levels[0].nodes);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(TreeStatsTest, FillFractionReflectsUtilization) {
  ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 2, 3,
                                /*fanout=*/8);
  Cluster cluster(o);
  cluster.Start();
  for (Key k : RandomKeys(400, 7)) {
    ASSERT_TRUE(cluster.Insert(k % 2, k, k).ok());
  }
  TreeStats stats = CollectTreeStats(cluster);
  double fill = stats.levels[0].fill(8);
  EXPECT_GT(fill, 0.4);
  EXPECT_LE(fill, 1.0);
}

TEST(DotExport, ContainsEveryNodeAndValidStructure) {
  Cluster cluster(SimOptions(ProtocolKind::kVarCopies, 3, 9));
  cluster.Start();
  for (Key k : RandomKeys(120, 11)) {
    ASSERT_TRUE(cluster.Insert(0, k, k).ok());
  }
  std::string dot = ExportDot(cluster);
  EXPECT_NE(dot.find("digraph lazytree"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Every logical node appears.
  for (auto& [key, snap] : cluster.CollectCopies()) {
    EXPECT_NE(dot.find("\"" + key.node.ToString() + "\""),
              std::string::npos)
        << key.node.ToString();
  }
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

}  // namespace
}  // namespace lazytree
