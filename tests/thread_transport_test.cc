// End-to-end runs on the thread-backed transport: genuine parallelism,
// multiple client threads, all protocols, history checks at quiescence.

#include <gtest/gtest.h>

#include <thread>

#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::ExpectCorrect;
using testing::ExpectMatchesOracle;
using testing::RandomKeys;

ClusterOptions ThreadOptions(ProtocolKind protocol, uint32_t processors) {
  ClusterOptions o;
  o.processors = processors;
  o.protocol = protocol;
  o.transport = TransportKind::kThreads;
  o.tree.max_entries = 16;
  o.tree.track_history = true;
  return o;
}

class ThreadedProtocolTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ThreadedProtocolTest, ParallelClientsConverge) {
  Cluster cluster(ThreadOptions(GetParam(), 6));
  cluster.Start();
  Oracle oracle;

  constexpr int kClients = 4;
  constexpr int kPerClient = 1500;
  std::vector<Key> keys = RandomKeys(kClients * kPerClient, 77);
  for (Key k : keys) ASSERT_TRUE(oracle.Insert(k, k + 3).ok());

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        Key k = keys[c * kPerClient + i];
        Status s = cluster.Insert(static_cast<ProcessorId>(c % 6), k,
                                  k + 3);
        if (!s.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(cluster.Settle());
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);

  // Parallel readers next: every key visible from every processor.
  std::vector<std::thread> readers;
  std::atomic<int> misses{0};
  for (int c = 0; c < kClients; ++c) {
    readers.emplace_back([&, c] {
      for (int i = c; i < kClients * kPerClient; i += kClients * 7) {
        auto r = cluster.Search(static_cast<ProcessorId>(i % 6), keys[i]);
        if (!r.ok() || *r != keys[i] + 3) misses.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(misses.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ThreadedProtocolTest,
    ::testing::Values(ProtocolKind::kSemiSyncSplit, ProtocolKind::kSyncSplit,
                      ProtocolKind::kVigorous, ProtocolKind::kMobile,
                      ProtocolKind::kVarCopies),
    [](const ::testing::TestParamInfo<ProtocolKind>& pinfo) {
      return std::string(ProtocolKindName(pinfo.param));
    });

TEST(ThreadTransport, PiggybackedClusterStaysCorrect) {
  ClusterOptions o = ThreadOptions(ProtocolKind::kSemiSyncSplit, 5);
  o.piggyback_window = 16;
  Cluster cluster(o);
  cluster.Start();
  Oracle oracle;
  std::vector<Key> keys = RandomKeys(4000, 11);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < keys.size(); i += 4) {
        cluster.Insert(static_cast<ProcessorId>(i % 5), keys[i], 1);
      }
    });
  }
  for (Key k : keys) ASSERT_TRUE(oracle.Insert(k, 1).ok());
  for (auto& t : clients) t.join();
  ASSERT_TRUE(cluster.Settle());
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
  EXPECT_GT(cluster.history_log().RecordCount(), 0u);
}

TEST(ThreadTransport, DeletesAndScansFromParallelClients) {
  Cluster cluster(ThreadOptions(ProtocolKind::kVarCopies, 4));
  cluster.Start();
  Oracle oracle;
  std::vector<Key> keys = RandomKeys(4000, 21);
  for (Key k : keys) ASSERT_TRUE(oracle.Insert(k, k).ok());
  std::vector<std::thread> writers;
  for (int c = 0; c < 4; ++c) {
    writers.emplace_back([&, c] {
      for (size_t i = c; i < keys.size(); i += 4) {
        cluster.Insert(static_cast<ProcessorId>(c), keys[i], keys[i]);
      }
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_TRUE(cluster.Settle());
  // Parallel deleters remove disjoint slices while scanners read.
  std::atomic<int> scan_failures{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < 2; ++c) {
    workers.emplace_back([&, c] {
      for (size_t i = c; i < keys.size() / 2; i += 2) {
        cluster.Delete(static_cast<ProcessorId>(c), keys[i]);
      }
    });
  }
  for (int c = 2; c < 4; ++c) {
    workers.emplace_back([&, c] {
      Rng rng(77 + c);
      for (int i = 0; i < 200; ++i) {
        auto r = cluster.Scan(static_cast<ProcessorId>(c),
                              rng.Range(1, 1u << 30), 20);
        if (!r.ok()) scan_failures.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  for (size_t i = 0; i < keys.size() / 2; ++i) {
    ASSERT_TRUE(oracle.Delete(keys[i]).ok());
  }
  EXPECT_EQ(scan_failures.load(), 0);
  ASSERT_TRUE(cluster.Settle());
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
}

TEST(ThreadTransport, MobileMigrationsRaceRealThreads) {
  ClusterOptions o = ThreadOptions(ProtocolKind::kMobile, 4);
  o.tree.shed_threshold = 6;  // online shedding during the run
  Cluster cluster(o);
  cluster.Start();
  Oracle oracle;
  std::vector<Key> keys = RandomKeys(5000, 13);
  for (Key k : keys) ASSERT_TRUE(oracle.Insert(k, 2).ok());
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < keys.size(); i += 4) {
        cluster.Insert(static_cast<ProcessorId>(c), keys[i], 2);
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_TRUE(cluster.Settle());
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
}

}  // namespace
}  // namespace lazytree
