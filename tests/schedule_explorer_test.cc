// Schedule-exploration harness tests (src/sim/).
//
// The adversarial strategies must preserve correctness on every shipped
// protocol: a PCT or starvation schedule is still a legal asynchronous
// execution, so CheckAll, the structural walk, and exact oracle
// equivalence must hold for every (protocol, strategy, seed) episode.
// On top of that, the trace machinery itself is pinned down: a
// checked-in trace replays byte-for-byte, and the delta-debugging
// minimizer shrinks a genuinely failing (fault-injected) schedule to a
// smaller one that reproduces the identical violation deterministically.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/sim/explorer.h"
#include "src/sim/minimize.h"

namespace lazytree {
namespace {

using sim::EpisodeConfig;
using sim::EpisodeResult;
using sim::MinimizeResult;
using sim::ScheduleTrace;
using sim::StrategyKind;

EpisodeConfig BaseConfig(ProtocolKind protocol, StrategyKind strategy,
                         uint64_t seed) {
  EpisodeConfig config;
  config.protocol = protocol;
  config.processors = 4;
  config.seed = seed;
  config.rounds = 4;
  config.ops_per_round = 20;
  config.key_space = 256;
  config.fanout = 6;
  config.strategy.kind = strategy;
  config.strategy.seed = seed;
  config.strategy.pct_depth = 3;
  config.strategy.pct_expected_events = 2048;
  config.strategy.starve_victim = static_cast<ProcessorId>(seed % 4);
  return config;
}

constexpr ProtocolKind kShipped[] = {
    ProtocolKind::kSyncSplit, ProtocolKind::kSemiSyncSplit,
    ProtocolKind::kVigorous, ProtocolKind::kMobile,
    ProtocolKind::kVarCopies};

// Every clean episode must pass the whole battery: CheckAll, structure,
// per-key fate, all ops completed, and oracle-exact return codes and
// final dictionary (EpisodeResult.ok is the conjunction).
TEST(ScheduleExplorer, PctSchedulesPreserveCorrectnessOnAllProtocols) {
  for (ProtocolKind protocol : kShipped) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      EpisodeConfig config =
          BaseConfig(protocol, StrategyKind::kPct, seed);
      EpisodeResult result = sim::RunEpisode(config);
      EXPECT_TRUE(result.ok)
          << ProtocolKindName(protocol) << "/pct seed=" << seed << ": "
          << result.Signature();
      EXPECT_EQ(result.ops_completed, result.ops_submitted);
    }
  }
}

TEST(ScheduleExplorer, StarvationSchedulesPreserveCorrectnessOnAllProtocols) {
  for (ProtocolKind protocol : kShipped) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      EpisodeConfig config =
          BaseConfig(protocol, StrategyKind::kStarve, seed);
      EpisodeResult result = sim::RunEpisode(config);
      EXPECT_TRUE(result.ok)
          << ProtocolKindName(protocol) << "/starve seed=" << seed << ": "
          << result.Signature();
      EXPECT_EQ(result.ops_completed, result.ops_submitted);
    }
  }
}

// PCT must actually exercise its machinery: with depth d it owes d-1
// priority-change points over the episode.
TEST(ScheduleExplorer, PctHitsItsChangePoints) {
  sim::PctStrategy pct(/*seed=*/11, /*depth=*/4, /*expected_events=*/500);
  std::vector<net::ChannelView> channels = {
      {0, 1, 1}, {1, 0, 1}, {2, 3, 1}};
  for (int i = 0; i < 600; ++i) {
    size_t pick = pct.PickChannel(channels);
    ASSERT_LT(pick, channels.size());
  }
  EXPECT_EQ(pct.change_points_hit(), 3u);
}

// Starvation must hold the victim's channels back while others have work
// (modulo the fairness cap) yet still pick them when nothing else runs.
TEST(ScheduleExplorer, StarvationStrategyStarvesTheVictim) {
  sim::StarvationStrategy starve(/*seed=*/5, /*victim=*/2,
                                 /*max_starve=*/64);
  std::vector<net::ChannelView> channels = {
      {0, 1, 1}, {0, 2, 1}, {1, 2, 1}};
  int victim_picks = 0;
  for (int i = 0; i < 60; ++i) {
    size_t pick = starve.PickChannel(channels);
    if (channels[pick].to == 2) ++victim_picks;
  }
  EXPECT_EQ(victim_picks, 0) << "victim served while others had work";
  std::vector<net::ChannelView> only_victim = {{0, 2, 1}, {1, 2, 1}};
  size_t pick = starve.PickChannel(only_victim);
  EXPECT_EQ(only_victim[pick].to, 2u);
}

ScheduleTrace LoadCheckedInTrace(std::string* path_out) {
  std::string path =
      std::string(LAZYTREE_TEST_DATA_DIR) + "/semisync_pct_s7.trace";
  *path_out = path;
  StatusOr<ScheduleTrace> loaded = ScheduleTrace::LoadFile(path);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return loaded.ok() ? *loaded : ScheduleTrace{};
}

uint64_t MetaInt(const ScheduleTrace& trace, const std::string& key) {
  auto it = trace.meta.find(key);
  return it == trace.meta.end() ? 0 : std::stoull(it->second);
}

/// Rebuilds the episode config a recorded trace documents in its header.
EpisodeConfig ConfigFromMeta(const ScheduleTrace& trace) {
  EpisodeConfig config;
  ProtocolKind protocol;
  EXPECT_TRUE(
      sim::ParseProtocolKind(trace.meta.at("protocol"), &protocol));
  StrategyKind strategy;
  EXPECT_TRUE(sim::ParseStrategyKind(trace.meta.at("strategy"), &strategy));
  config.protocol = protocol;
  config.processors = static_cast<uint32_t>(MetaInt(trace, "processors"));
  config.seed = MetaInt(trace, "seed");
  config.rounds = static_cast<uint32_t>(MetaInt(trace, "rounds"));
  config.ops_per_round =
      static_cast<uint32_t>(MetaInt(trace, "ops_per_round"));
  config.key_space = MetaInt(trace, "key_space");
  config.fanout = static_cast<size_t>(MetaInt(trace, "fanout"));
  config.leaf_replication =
      static_cast<uint32_t>(MetaInt(trace, "leaf_replication"));
  config.interior_replication =
      static_cast<uint32_t>(MetaInt(trace, "interior_replication"));
  config.strategy.kind = strategy;
  config.strategy.seed = MetaInt(trace, "strategy_seed");
  config.strategy.pct_depth =
      static_cast<uint32_t>(MetaInt(trace, "pct_depth"));
  config.strategy.pct_expected_events = MetaInt(trace, "pct_expected_events");
  config.strategy.starve_victim =
      static_cast<ProcessorId>(MetaInt(trace, "starve_victim"));
  config.strategy.starve_cap =
      static_cast<uint32_t>(MetaInt(trace, "starve_cap"));
  return config;
}

// Regression: the checked-in trace replays cleanly with zero divergence,
// and re-recording the same episode reproduces it byte-for-byte. Any
// change to scheduling, rng consumption, workload generation, or the
// trace format shows up here before it silently invalidates old repros.
TEST(ScheduleExplorer, CheckedInTraceReplaysByteForByte) {
  std::string path;
  ScheduleTrace trace = LoadCheckedInTrace(&path);
  ASSERT_FALSE(trace.events.empty()) << path;
  EpisodeConfig config = ConfigFromMeta(trace);

  EpisodeResult replayed = sim::ReplayEpisode(config, trace);
  EXPECT_TRUE(replayed.ok) << replayed.Signature();
  EXPECT_EQ(replayed.replay_diverged, 0u)
      << "replay wandered off the recorded schedule";

  EpisodeResult recorded = sim::RunEpisode(config);
  EXPECT_TRUE(recorded.ok) << recorded.Signature();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string want;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) want.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(recorded.trace.Serialize(), want)
      << "re-recorded schedule differs from the checked-in trace";
}

TEST(ScheduleExplorer, TraceSerializationRoundTrips) {
  std::string path;
  ScheduleTrace trace = LoadCheckedInTrace(&path);
  StatusOr<ScheduleTrace> reparsed = ScheduleTrace::Parse(trace.Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->meta, trace.meta);
  EXPECT_TRUE(reparsed->events == trace.events);
}

// A fault-injected episode that fails must minimize to a trace with no
// more fault events that reproduces the identical first violation on
// back-to-back replays — the repro artifact the CLI hands out.
TEST(ScheduleExplorer, MinimizerShrinksAFailingTraceDeterministically) {
  EpisodeResult failing;
  EpisodeConfig failing_config;
  bool found = false;
  for (uint64_t seed = 1; seed <= 6 && !found; ++seed) {
    EpisodeConfig config =
        BaseConfig(ProtocolKind::kSemiSyncSplit, StrategyKind::kUniform,
                   seed);
    config.drop = 0.02;  // violate the §4 reliable-network assumption
    EpisodeResult result = sim::RunEpisode(config);
    if (!result.ok) {
      failing = std::move(result);
      failing_config = config;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "2% message loss must be detectable within 6 seeds";

  StatusOr<MinimizeResult> minimized =
      sim::MinimizeTrace(failing_config, failing.trace);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  EXPECT_EQ(minimized->signature, failing.Signature());
  EXPECT_LE(minimized->final_faults, minimized->initial_faults);
  EXPECT_GT(minimized->final_faults, 0u)
      << "a failing schedule cannot minimize to zero injected faults";
  EXPECT_TRUE(minimized->deterministic)
      << "minimized trace must reproduce the same violation twice";

  // And it really is a (config, trace) repro: an independent replay fails
  // with the recorded signature.
  EpisodeResult repro =
      sim::ReplayEpisode(failing_config, minimized->trace);
  EXPECT_FALSE(repro.ok);
  EXPECT_EQ(repro.Signature(), minimized->signature);
}

// Replaying a clean trace against a deliberately faulted replay config
// must not re-inject faults: replay pins every outcome.
TEST(ScheduleExplorer, ReplayPinsOutcomesRegardlessOfFaultConfig) {
  std::string path;
  ScheduleTrace trace = LoadCheckedInTrace(&path);
  EpisodeConfig config = ConfigFromMeta(trace);
  config.drop = 0.5;  // would destroy the run if it applied
  EpisodeResult result = sim::ReplayEpisode(config, trace);
  EXPECT_TRUE(result.ok) << result.Signature();
  EXPECT_EQ(result.replay_diverged, 0u);
}

}  // namespace
}  // namespace lazytree
