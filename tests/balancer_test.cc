// Balancer tests: load measurement and convergence to even leaf
// distribution on both §4.2 (mobile) and §4.3 (variable copies).

#include <gtest/gtest.h>

#include "src/core/balancer.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::ExpectCorrect;
using testing::ExpectMatchesOracle;
using testing::RandomKeys;
using testing::SimOptions;

class BalancerTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(BalancerTest, EvensOutASkewedCluster) {
  Cluster cluster(SimOptions(GetParam(), 4, 3));
  cluster.Start();
  Oracle oracle;
  // Everything lands on p0 initially: maximal skew.
  for (Key k : RandomKeys(500, 5)) {
    ASSERT_TRUE(cluster.Insert(0, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  Balancer balancer(&cluster);
  auto before = balancer.Measure();
  EXPECT_GT(before.total_leaves, 10u);
  EXPECT_NEAR(before.imbalance, 4.0, 0.01) << "all load on one of four";

  auto after = balancer.RebalanceUntil(/*target_imbalance=*/1.35);
  EXPECT_LE(after.imbalance, 1.35);
  EXPECT_EQ(after.total_leaves, before.total_leaves) << "no leaf lost";
  EXPECT_GT(balancer.migrations_issued(), 0u);

  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
}

TEST_P(BalancerTest, RebalanceOnAlreadyEvenClusterIsANoop) {
  ClusterOptions o = SimOptions(GetParam(), 4, 7);
  o.tree.shed_threshold = 3;  // online shedding keeps it even
  Cluster cluster(o);
  cluster.Start();
  size_t i = 0;
  for (Key k : RandomKeys(400, 9)) {
    ASSERT_TRUE(cluster.Insert(static_cast<ProcessorId>(i++ % 4), k, k).ok());
  }
  Balancer balancer(&cluster);
  auto stats = balancer.RebalanceUntil(1.5);
  EXPECT_LE(stats.imbalance, 1.5);
  // A second pass from an even state issues little or nothing.
  size_t more = balancer.RebalanceOnce();
  EXPECT_LE(more, stats.total_leaves / 4);
  cluster.Settle();
  ExpectCorrect(cluster);
}

INSTANTIATE_TEST_SUITE_P(
    MobileProtocols, BalancerTest,
    ::testing::Values(ProtocolKind::kMobile, ProtocolKind::kVarCopies),
    [](const ::testing::TestParamInfo<ProtocolKind>& pinfo) {
      return std::string(ProtocolKindName(pinfo.param));
    });

}  // namespace
}  // namespace lazytree
