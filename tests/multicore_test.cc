// Multi-core execution paths under test: per-processor worker threads
// with op combining and the local-replica read fast path enabled, checked
// three ways —
//
//   * a real-thread hammer with full §3 history tracking (run under the
//     ThreadSanitize build via the `tsan` ctest label),
//   * schedule-explorer conformance: adversarial sim schedules with the
//     knobs forced on must still produce §3.1-checker-accepted histories
//     and exact oracle agreement,
//   * the read-your-completed-writes regression that pins the ycsb-d fix:
//     a search for a key whose insert already completed must succeed on
//     the threads transport (BENCH_PR6's not_found=2563 anomaly came from
//     benching reads against *in-flight* inserts; see EXPERIMENTS.md).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/sim/explorer.h"
#include "src/workload/distributions.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::ExpectCorrect;
using testing::ExpectMatchesOracle;
using testing::RandomKeys;

ClusterOptions MulticoreOptions(uint32_t processors, uint64_t seed,
                                TransportKind transport) {
  ClusterOptions o;
  o.processors = processors;
  o.protocol = ProtocolKind::kSemiSyncSplit;
  o.transport = transport;
  o.seed = seed;
  o.combine_ops = 1;          // force on (also on sim)
  o.local_read_fastpath = 1;  // force on (also on sim)
  o.tree.max_entries = 8;
  o.tree.track_history = true;
  return o;
}

// Parallel writers + readers with combining and the fast path on, full
// history tracking, §3 checks and oracle comparison at quiescence. The
// prime TSan target: client threads race worker threads through the
// combiner's owner gate and the fast path's inline descent.
TEST(Multicore, ThreadedHammerStaysCorrect) {
  Cluster cluster(
      MulticoreOptions(6, 99, TransportKind::kThreads));
  cluster.Start();
  Oracle oracle;

  constexpr int kClients = 4;
  constexpr int kPerClient = 1200;
  std::vector<Key> keys = RandomKeys(kClients * kPerClient, 42);
  for (Key k : keys) ASSERT_TRUE(oracle.Insert(k, k + 1).ok());

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        Key k = keys[c * kPerClient + i];
        if (!cluster.Insert(static_cast<ProcessorId>(c % 6), k, k + 1)
                 .ok()) {
          failures.fetch_add(1);
        }
        // Interleave reads so the fast path races live splits.
        if (i % 3 == 0) {
          cluster.Search(static_cast<ProcessorId>((c + i) % 6),
                         keys[(c * kPerClient + i) / 2]);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(cluster.Settle());
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);

  // Both mechanisms actually fired — this isn't vacuously testing the
  // old path.
  auto stats = cluster.NetStats();
  EXPECT_GT(stats.combined_actions, 0u);
  EXPECT_GT(stats.fastpath_reads, 0u);
}

// The fast path answers from local copies and relies on §4.2 side-link
// recovery for staleness; combining re-batches action streams. Neither
// may change what the §3.1 checkers accept. Sweep adversarial schedules
// with both knobs forced on: every episode must pass the full battery
// (checkers + structure + per-key fates + exact oracle match).
TEST(Multicore, ExplorerEpisodesAcceptCombinedHistories) {
  for (sim::StrategyKind strategy :
       {sim::StrategyKind::kUniform, sim::StrategyKind::kPct,
        sim::StrategyKind::kStarve}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      sim::EpisodeConfig config;
      config.protocol = ProtocolKind::kSemiSyncSplit;
      config.processors = 4;
      config.seed = seed;
      config.strategy.kind = strategy;
      config.strategy.seed = seed * 17;
      config.strategy.pct_depth = 3;
      config.strategy.pct_expected_events = 2048;
      config.strategy.starve_victim =
          static_cast<ProcessorId>(seed % 4);
      config.combine_ops = true;
      config.local_fastpath = true;
      sim::EpisodeResult result = sim::RunEpisode(config);
      EXPECT_TRUE(result.ok)
          << sim::StrategyKindName(strategy) << "/seed=" << seed << ": "
          << (result.violations.empty() ? "(no violations)"
                                        : result.violations.front());
      EXPECT_EQ(result.ops_completed, result.ops_submitted);
    }
  }
}

// Same knobs, sync-split protocol: the combiner must respect AAS-ordered
// split traffic too.
TEST(Multicore, ExplorerSyncSplitEpisodes) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    sim::EpisodeConfig config;
    config.protocol = ProtocolKind::kSyncSplit;
    config.processors = 4;
    config.seed = seed;
    config.strategy.kind = sim::StrategyKind::kUniform;
    config.strategy.seed = seed;
    config.combine_ops = true;
    config.local_fastpath = true;
    sim::EpisodeResult result = sim::RunEpisode(config);
    EXPECT_TRUE(result.ok)
        << "seed=" << seed << ": "
        << (result.violations.empty() ? "(no violations)"
                                      : result.violations.front());
  }
}

// Forcing the knobs on the sim transport must stay deterministic: two
// runs with the same seed produce the same schedule, the same message
// counts, and the same tree.
TEST(Multicore, SimWithKnobsForcedOnIsDeterministic) {
  auto run = [](uint64_t seed) {
    Cluster cluster(MulticoreOptions(4, seed, TransportKind::kSim));
    cluster.Start();
    std::vector<Key> keys = RandomKeys(600, seed);
    for (size_t i = 0; i < keys.size(); ++i) {
      cluster.InsertAsync(static_cast<ProcessorId>(i % 4), keys[i], i,
                          [](const OpResult&) {});
      if (i % 64 == 63) cluster.Settle();
    }
    EXPECT_TRUE(cluster.Settle());
    auto stats = cluster.NetStats();
    return std::make_pair(stats.remote_messages,
                          cluster.DumpLeaves().size());
  };
  EXPECT_EQ(run(7), run(7));
}

// Read-your-completed-writes on the threads transport: once Insert()
// returns OK (the reply is sent only after the leaf applied the write,
// and leaves are single-copy), a Search for that key from ANY processor
// must find it — even with combining and the fast path rewriting the
// message flow. LatestDist models exactly this contract: Publish() is
// called only with completed keys, so Next() never hands out a key a
// search can miss. This is the regression fence for the BENCH_PR6 ycsb-d
// anomaly (reads racing their own in-flight inserts).
TEST(Multicore, ReadYourCompletedWrites) {
  Cluster cluster(
      MulticoreOptions(4, 5, TransportKind::kThreads));
  cluster.Start();

  workload::LatestDist latest(1u << 30);
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kWrites = 1500;
  std::atomic<bool> done{false};
  std::atomic<int> write_failures{0};
  std::atomic<int> stale_reads{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWriters; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (int i = 0; i < kWrites; ++i) {
        Key k = rng.Range(1, 1u << 30);
        Status st =
            cluster.Insert(static_cast<ProcessorId>(w), k, k);
        if (st.ok()) {
          latest.Publish(k);  // completed => publish, the ycsb-d contract
        } else if (!st.IsAlreadyExists()) {
          write_failures.fetch_add(1);
        }
      }
      done.store(true);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    workers.emplace_back([&, r] {
      Rng rng(2000 + r);
      while (!done.load()) {
        Key k = latest.Next(rng);
        if (k == 1) continue;  // ring not seeded yet
        auto res = cluster.Search(
            static_cast<ProcessorId>(2 + r), k);
        if (res.status().IsNotFound()) stale_reads.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(write_failures.load(), 0);
  EXPECT_EQ(stale_reads.load(), 0)
      << "a search missed a key whose insert had completed";
  ASSERT_TRUE(cluster.Settle());
  ExpectCorrect(cluster);
}

// DeliverBatch opens one combine scope across a whole drained inbox
// batch; deletes and scans must flow through it correctly, not only
// point ops.
TEST(Multicore, BatchedDeletesAndScans) {
  Cluster cluster(
      MulticoreOptions(4, 31, TransportKind::kThreads));
  cluster.Start();
  Oracle oracle;
  std::vector<Key> keys = RandomKeys(3000, 31);
  for (Key k : keys) ASSERT_TRUE(oracle.Insert(k, k).ok());
  std::vector<std::thread> writers;
  for (int c = 0; c < 4; ++c) {
    writers.emplace_back([&, c] {
      for (size_t i = c; i < keys.size(); i += 4) {
        cluster.Insert(static_cast<ProcessorId>(c), keys[i], keys[i]);
      }
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_TRUE(cluster.Settle());

  std::atomic<int> scan_failures{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < 2; ++c) {
    workers.emplace_back([&, c] {
      for (size_t i = c; i < keys.size() / 2; i += 2) {
        cluster.Delete(static_cast<ProcessorId>(c), keys[i]);
      }
    });
  }
  for (int c = 2; c < 4; ++c) {
    workers.emplace_back([&, c] {
      Rng rng(3 + c);
      for (int i = 0; i < 150; ++i) {
        auto r = cluster.Scan(static_cast<ProcessorId>(c),
                              rng.Range(1, 1u << 30), 16);
        if (!r.ok()) scan_failures.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  for (size_t i = 0; i < keys.size() / 2; ++i) {
    ASSERT_TRUE(oracle.Delete(keys[i]).ok());
  }
  EXPECT_EQ(scan_failures.load(), 0);
  ASSERT_TRUE(cluster.Settle());
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
}

}  // namespace
}  // namespace lazytree
