// Workload-generator unit tests: distribution shapes and mix ratios.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/workload/generator.h"

namespace lazytree {
namespace {

using workload::GenOp;
using workload::Generator;
using workload::HotspotDist;
using workload::MakeDistribution;
using workload::OpMix;
using workload::SequentialDist;
using workload::UniformDist;
using workload::ZipfianDist;

TEST(Distributions, UniformCoversTheSpace) {
  UniformDist dist(1000);
  Rng rng(1);
  std::set<Key> seen;
  for (int i = 0; i < 20000; ++i) {
    Key k = dist.Next(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LT(k, 1000u);
    seen.insert(k);
  }
  EXPECT_GT(seen.size(), 950u) << "uniform should touch nearly all keys";
}

TEST(Distributions, SequentialIsStrictlyIncreasing) {
  SequentialDist dist(10, 3);
  Rng rng(1);
  Key prev = 0;
  for (int i = 0; i < 100; ++i) {
    Key k = dist.Next(rng);
    EXPECT_GT(k, prev);
    prev = k;
  }
  EXPECT_EQ(prev, 10u + 99u * 3u);
}

TEST(Distributions, ZipfianIsHeavilySkewed) {
  ZipfianDist dist(10000, 1u << 30, 0.99);
  Rng rng(7);
  std::map<Key, int> counts;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[dist.Next(rng)];
  // The most popular key should dwarf the uniform expectation and the
  // top handful should carry a large share of the traffic.
  int max_count = 0;
  std::vector<int> all;
  for (auto& [k, c] : counts) {
    max_count = std::max(max_count, c);
    all.push_back(c);
  }
  EXPECT_GT(max_count, kSamples / 100)
      << "rank-1 of a 0.99-zipfian carries >1% of traffic";
  std::sort(all.rbegin(), all.rend());
  int top10 = 0;
  for (size_t i = 0; i < 10 && i < all.size(); ++i) top10 += all[i];
  EXPECT_GT(top10, kSamples / 4) << "top-10 keys carry >25%";
}

TEST(Distributions, HotspotRespectsRatios) {
  HotspotDist dist(100000, /*hot_fraction=*/0.05, /*hot_ops=*/0.9);
  Rng rng(3);
  int hot = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (dist.Next(rng) <= 5000) ++hot;
  }
  // 90% targeted + ~5% of the cold traffic falls in the hot span too.
  EXPECT_NEAR(static_cast<double>(hot) / kSamples, 0.9 + 0.1 * 0.05, 0.02);
}

TEST(Distributions, FactoryByName) {
  for (const char* name : {"uniform", "sequential", "zipfian", "hotspot"}) {
    auto dist = MakeDistribution(name, 1u << 20);
    ASSERT_NE(dist, nullptr);
    EXPECT_STREQ(dist->name(), name);
    Rng rng(1);
    EXPECT_GE(dist->Next(rng), 1u);
  }
}

TEST(Generator, MixRatiosApproximatelyHold) {
  OpMix mix;
  mix.insert = 0.4;
  mix.search = 0.4;
  mix.erase = 0.15;
  mix.scan = 0.05;
  Generator gen(mix, std::make_unique<UniformDist>(1u << 20), 11);
  std::map<GenOp::Type, int> counts;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) ++counts[gen.Next().type];
  EXPECT_NEAR(counts[GenOp::Type::kInsert] / double(kOps), 0.4, 0.02);
  EXPECT_NEAR(counts[GenOp::Type::kSearch] / double(kOps), 0.4, 0.02);
  EXPECT_NEAR(counts[GenOp::Type::kDelete] / double(kOps), 0.15, 0.02);
  EXPECT_NEAR(counts[GenOp::Type::kScan] / double(kOps), 0.05, 0.01);
}

TEST(Generator, DeletesTargetPreviouslyInsertedKeysOnce) {
  OpMix mix;
  mix.insert = 0.5;
  mix.search = 0;
  mix.erase = 0.5;
  Generator gen(mix, std::make_unique<UniformDist>(1u << 30), 13);
  std::multiset<Key> inserted;
  std::multiset<Key> deleted;
  for (int i = 0; i < 5000; ++i) {
    GenOp op = gen.Next();
    if (op.type == GenOp::Type::kInsert) inserted.insert(op.key);
    if (op.type == GenOp::Type::kDelete) deleted.insert(op.key);
  }
  for (Key k : deleted) {
    EXPECT_GT(inserted.count(k), 0u) << "delete of never-inserted key";
    EXPECT_LE(deleted.count(k), inserted.count(k));
  }
}

TEST(Generator, DeleteWithNoLiveKeysBecomesSearch) {
  OpMix mix;
  mix.insert = 0;
  mix.search = 0;
  mix.erase = 1;
  Generator gen(mix, std::make_unique<UniformDist>(100), 17);
  EXPECT_EQ(gen.Next().type, GenOp::Type::kSearch);
}

TEST(Generator, ReproducibleBySeed) {
  auto run = [](uint64_t seed) {
    OpMix mix;
    Generator gen(mix, std::make_unique<UniformDist>(1u << 20), seed);
    std::vector<Key> keys;
    for (int i = 0; i < 100; ++i) keys.push_back(gen.Next().key);
    return keys;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace lazytree
