// Shared-memory B-link tree tests: sequential correctness, structural
// invariants, and real multi-threaded hammering against the oracle.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/blink/blink_tree.h"
#include "src/blink/lock_tree.h"
#include "src/oracle/oracle.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::RandomKeys;

TEST(BlinkTree, EmptySearchMisses) {
  BlinkTree tree(8);
  EXPECT_FALSE(tree.Search(7).has_value());
  EXPECT_EQ(tree.Size(), 0u);
}

TEST(BlinkTree, InsertSearchRoundTrip) {
  BlinkTree tree(8);
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_FALSE(tree.Insert(5, 51)) << "duplicate rejected";
  auto hit = tree.Search(5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 50u);
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(BlinkTree, SequentialBulkMatchesOracle) {
  BlinkTree tree(6);
  Oracle oracle;
  for (Key k : RandomKeys(5000, 42)) {
    EXPECT_TRUE(tree.Insert(k, k ^ 0xABCD));
    ASSERT_TRUE(oracle.Insert(k, k ^ 0xABCD).ok());
  }
  EXPECT_EQ(tree.Size(), 5000u);
  EXPECT_EQ(tree.CheckStructure(), 0u);
  EXPECT_GE(tree.Height(), 4);
  for (const Entry& e : oracle.Dump()) {
    auto hit = tree.Search(e.key);
    ASSERT_TRUE(hit.has_value()) << e.key;
    EXPECT_EQ(*hit, e.payload);
  }
  EXPECT_FALSE(tree.Search(0).has_value());
}

TEST(BlinkTree, AscendingAndDescendingFills) {
  for (bool ascending : {true, false}) {
    BlinkTree tree(4);
    for (int i = 1; i <= 2000; ++i) {
      Key k = ascending ? static_cast<Key>(i)
                        : static_cast<Key>(2001 - i);
      ASSERT_TRUE(tree.Insert(k, k));
    }
    EXPECT_EQ(tree.Size(), 2000u);
    EXPECT_EQ(tree.CheckStructure(), 0u);
    for (Key k = 1; k <= 2000; ++k) {
      ASSERT_TRUE(tree.Search(k).has_value()) << k;
    }
  }
}

TEST(BlinkTree, ConcurrentInsertersConverge) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  BlinkTree tree(16);
  std::vector<Key> keys = RandomKeys(kThreads * kPerThread, 7);
  std::vector<std::thread> workers;
  std::atomic<int> dup_count{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!tree.Insert(keys[t * kPerThread + i], 1)) ++dup_count;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(dup_count.load(), 0);
  EXPECT_EQ(tree.Size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(tree.CheckStructure(), 0u);
  for (size_t i = 0; i < keys.size(); i += 101) {
    ASSERT_TRUE(tree.Search(keys[i]).has_value()) << keys[i];
  }
}

TEST(BlinkTree, ConcurrentReadersSeeEveryCommittedKey) {
  // Writers insert ascending ranges; readers continuously verify that a
  // key observed once never disappears (splits must not lose keys).
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 3000;
  BlinkTree tree(8);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> lost{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      std::vector<Key> seen;
      while (!stop.load(std::memory_order_acquire)) {
        if (!seen.empty()) {
          Key k = seen[rng.Below(seen.size())];
          if (!tree.Search(k).has_value()) {
            lost.fetch_add(1);
          }
        }
        Key probe = rng.Range(1, kWriters * kPerWriter);
        if (tree.Search(probe).has_value()) seen.push_back(probe);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 1; i <= kPerWriter; ++i) {
        tree.Insert(static_cast<Key>(w * kPerWriter + i), 1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(lost.load(), 0u) << "a committed key became unreachable";
  EXPECT_EQ(tree.CheckStructure(), 0u);
}

TEST(BlinkTree, DeleteAndFreeAtEmpty) {
  BlinkTree tree(4);
  Oracle oracle;
  for (Key k : RandomKeys(1000, 55)) {
    ASSERT_TRUE(tree.Insert(k, k));
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  std::vector<Entry> dump = oracle.Dump();
  // Delete everything in a middle band (empties whole leaves).
  for (size_t i = 250; i < 750; ++i) {
    EXPECT_TRUE(tree.Delete(dump[i].key));
    ASSERT_TRUE(oracle.Delete(dump[i].key).ok());
  }
  EXPECT_FALSE(tree.Delete(dump[300].key)) << "double delete";
  EXPECT_EQ(tree.Size(), 500u);
  EXPECT_EQ(tree.CheckStructure(), 0u) << "emptied leaves stay linked";
  for (const Entry& e : oracle.Dump()) {
    ASSERT_TRUE(tree.Search(e.key).has_value()) << e.key;
  }
  EXPECT_FALSE(tree.Search(dump[400].key).has_value());
}

TEST(BlinkTree, ScanMatchesOracleAcrossEmptiedLeaves) {
  BlinkTree tree(4);
  Oracle oracle;
  for (Key k : RandomKeys(800, 77)) {
    ASSERT_TRUE(tree.Insert(k, k * 3));
    ASSERT_TRUE(oracle.Insert(k, k * 3).ok());
  }
  std::vector<Entry> dump = oracle.Dump();
  for (size_t i = 200; i < 500; ++i) {
    ASSERT_TRUE(tree.Delete(dump[i].key));
    ASSERT_TRUE(oracle.Delete(dump[i].key).ok());
  }
  Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    Key start = rng.Range(1, 1u << 30);
    size_t limit = 1 + rng.Below(50);
    auto got = tree.Scan(start, limit);
    auto want = oracle.Scan(start, limit);
    ASSERT_EQ(got.size(), want.size()) << "start " << start;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].key);
      EXPECT_EQ(got[i].second, want[i].payload);
    }
  }
  EXPECT_TRUE(tree.Scan(1, 0).empty());
}

TEST(BlinkTree, ConcurrentMixedWithDeletes) {
  BlinkTree tree(16);
  constexpr int kThreads = 6;
  std::vector<Key> keys = RandomKeys(kThreads * 3000, 99);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Each thread inserts its own slice, then deletes half of it.
      for (int i = 0; i < 3000; ++i) tree.Insert(keys[t * 3000 + i], 1);
      for (int i = 0; i < 3000; i += 2) tree.Delete(keys[t * 3000 + i]);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tree.Size(), static_cast<size_t>(kThreads * 1500));
  EXPECT_EQ(tree.CheckStructure(), 0u);
  for (size_t i = 1; i < keys.size(); i += 101) {
    EXPECT_EQ(tree.Search(keys[i]).has_value(), i % 2 == 1);
  }
}

TEST(LockTree, BasicsAndConcurrency) {
  LockTree tree;
  EXPECT_TRUE(tree.Insert(1, 10));
  EXPECT_FALSE(tree.Insert(1, 11));
  ASSERT_TRUE(tree.Search(1).has_value());
  EXPECT_EQ(*tree.Search(1), 10u);

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (Key k = 0; k < 2000; ++k) tree.Insert(k * 4 + t + 2, k);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tree.Size(), 8001u);
}

}  // namespace
}  // namespace lazytree
