// End-to-end tests of the fixed-copies protocol family (§4.1) driven
// through the public Cluster API on the deterministic simulator.

#include <gtest/gtest.h>

#include <set>

#include "src/protocol/naive.h"
#include "src/protocol/sync_split.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::ExpectCorrect;
using testing::ExpectMatchesOracle;
using testing::RandomKeys;
using testing::SimOptions;

TEST(ClusterBasics, EmptyTreeSearchMisses) {
  Cluster cluster(SimOptions(ProtocolKind::kSemiSyncSplit, 4, 1));
  cluster.Start();
  auto result = cluster.Search(0, 42);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ClusterBasics, InsertThenSearchFromEveryProcessor) {
  Cluster cluster(SimOptions(ProtocolKind::kSemiSyncSplit, 4, 1));
  cluster.Start();
  ASSERT_TRUE(cluster.Insert(0, 42, 4200).ok());
  for (ProcessorId home = 0; home < 4; ++home) {
    auto result = cluster.Search(home, 42);
    ASSERT_TRUE(result.ok()) << "home " << home;
    EXPECT_EQ(*result, 4200u);
  }
}

TEST(ClusterBasics, DuplicateInsertFails) {
  Cluster cluster(SimOptions(ProtocolKind::kSemiSyncSplit, 2, 1));
  cluster.Start();
  ASSERT_TRUE(cluster.Insert(0, 7, 70).ok());
  Status dup = cluster.Insert(1, 7, 71);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  auto result = cluster.Search(0, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 70u) << "duplicate must not clobber";
}

TEST(ClusterBasics, UpsertOverwrites) {
  ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 2, 1);
  o.tree.upsert = true;
  Cluster cluster(o);
  cluster.Start();
  ASSERT_TRUE(cluster.Insert(0, 7, 70).ok());
  ASSERT_TRUE(cluster.Insert(1, 7, 71).ok());
  auto result = cluster.Search(0, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 71u);
}

TEST(ClusterBasics, SequentialFillSplitsAndStaysCorrect) {
  Cluster cluster(SimOptions(ProtocolKind::kSemiSyncSplit, 4, 7));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(300, 99)) {
    ASSERT_TRUE(cluster.Insert(k % 4, k, k * 2).ok()) << "key " << k;
    ASSERT_TRUE(oracle.Insert(k, k * 2).ok());
  }
  ASSERT_TRUE(cluster.Settle());
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
  // 300 keys with fanout 6 must have grown a multi-level tree.
  auto copies = cluster.CollectCopies();
  int32_t max_level = 0;
  for (auto& [key, snap] : copies) max_level = std::max(max_level, snap.level);
  EXPECT_GE(max_level, 2);
}

TEST(ClusterBasics, OperationHopCountsAreReported) {
  Cluster cluster(SimOptions(ProtocolKind::kSemiSyncSplit, 4, 3));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(100, 5)) {
    ASSERT_TRUE(cluster.Insert(0, k, k).ok());
  }
  bool done = false;
  OpResult seen;
  cluster.SearchAsync(2, RandomKeys(100, 5)[50], [&](const OpResult& r) {
    seen = r;
    done = true;
  });
  ASSERT_TRUE(cluster.Settle());
  ASSERT_TRUE(done);
  EXPECT_GE(seen.hops, 2u) << "search must traverse root and leaf";
}

// --- Concurrent (adversarially interleaved) workloads ----------------

struct ProtocolSeedCase {
  ProtocolKind protocol;
  uint64_t seed;
};

class ConcurrentProtocolTest
    : public ::testing::TestWithParam<ProtocolSeedCase> {};

// Submit a batch of inserts from every processor *before* running the
// scheduler, so relays, splits and navigations interleave adversarially.
TEST_P(ConcurrentProtocolTest, BatchInsertsConvergeAndMatchOracle) {
  const auto& param = GetParam();
  ClusterOptions o = SimOptions(param.protocol, 5, param.seed);
  Cluster cluster(o);
  cluster.Start();
  Oracle oracle;

  std::vector<Key> keys = RandomKeys(400, param.seed * 31 + 7);
  int completions = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    cluster.InsertAsync(static_cast<ProcessorId>(i % 5), keys[i],
                        keys[i] + 1,
                        [&](const OpResult& r) {
                          EXPECT_TRUE(r.status.ok());
                          ++completions;
                        });
    ASSERT_TRUE(oracle.Insert(keys[i], keys[i] + 1).ok());
  }
  ASSERT_TRUE(cluster.Settle());
  EXPECT_EQ(completions, 400);
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);

  // Every key must be findable from every processor afterwards.
  for (size_t i = 0; i < keys.size(); i += 37) {
    auto result = cluster.Search(static_cast<ProcessorId>(i % 5), keys[i]);
    ASSERT_TRUE(result.ok()) << "key " << keys[i];
    EXPECT_EQ(*result, keys[i] + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsAndSeeds, ConcurrentProtocolTest,
    ::testing::Values(
        ProtocolSeedCase{ProtocolKind::kSemiSyncSplit, 1},
        ProtocolSeedCase{ProtocolKind::kSemiSyncSplit, 2},
        ProtocolSeedCase{ProtocolKind::kSemiSyncSplit, 3},
        ProtocolSeedCase{ProtocolKind::kSyncSplit, 1},
        ProtocolSeedCase{ProtocolKind::kSyncSplit, 2},
        ProtocolSeedCase{ProtocolKind::kSyncSplit, 3},
        ProtocolSeedCase{ProtocolKind::kVigorous, 1},
        ProtocolSeedCase{ProtocolKind::kVigorous, 2}),
    [](const ::testing::TestParamInfo<ProtocolSeedCase>& pinfo) {
      return std::string(ProtocolKindName(pinfo.param.protocol)) + "_seed" +
             std::to_string(pinfo.param.seed);
    });

// The Fig.-4 strawman must actually lose keys under racing splits —
// otherwise the "lost insert problem" benchmark measures nothing.
TEST(NaiveProtocol, LosesInsertsUnderConcurrency) {
  // Fig. 4 needs client inserts on *replicated* nodes, so replicate the
  // leaves (the general §4.1 fixed-copies model).
  uint64_t total_lost = 0;
  for (uint64_t seed = 1; seed <= 6 && total_lost == 0; ++seed) {
    ClusterOptions o = SimOptions(ProtocolKind::kNaive, 5, seed,
                                  /*fanout=*/4);
    o.tree.leaf_replication = 3;
    // The strawman loses inserts by design; the quiescence hook would
    // (correctly) abort the process before the test could count them.
    o.check_histories = false;
    Cluster cluster(o);
    cluster.Start();
    std::vector<Key> keys = RandomKeys(500, seed);
    for (size_t i = 0; i < keys.size(); ++i) {
      cluster.InsertAsync(static_cast<ProcessorId>(i % 5), keys[i], 1,
                          [](const OpResult&) {});
    }
    ASSERT_TRUE(cluster.Settle());
    uint64_t leaf_drops = 0;
    for (ProcessorId id = 0; id < 5; ++id) {
      leaf_drops += static_cast<NaiveProtocol*>(
                        cluster.processor(id).handler())
                        ->dropped_leaf_relays();
    }
    size_t stored = cluster.DumpLeaves().size();
    EXPECT_EQ(keys.size() - stored, leaf_drops)
        << "every dropped leaf relay is exactly one lost key";
    total_lost += leaf_drops;
  }
  EXPECT_GT(total_lost, 0u)
      << "no seed exercised the lost-insert race; workload too gentle";
}

// With the same replicated-leaf configuration, the paper's protocols must
// NOT lose anything — the exact contrast Fig. 4 vs Fig. 5 draws.
TEST(NaiveProtocol, SemiSyncSurvivesTheSameWorkload) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 5, seed,
                                  /*fanout=*/4);
    o.tree.leaf_replication = 3;
    Cluster cluster(o);
    cluster.Start();
    Oracle oracle;
    std::vector<Key> keys = RandomKeys(500, seed);
    for (size_t i = 0; i < keys.size(); ++i) {
      cluster.InsertAsync(static_cast<ProcessorId>(i % 5), keys[i], 1,
                          [](const OpResult&) {});
      ASSERT_TRUE(oracle.Insert(keys[i], 1).ok());
    }
    ASSERT_TRUE(cluster.Settle());
    ExpectMatchesOracle(cluster, oracle);
    ExpectCorrect(cluster);
  }
}

// The synchronous protocol must actually block inserts during splits —
// that stall is the cost Fig. 5 contrasts.
TEST(SyncProtocol, DefersInsertsDuringSplits) {
  ClusterOptions o = SimOptions(ProtocolKind::kSyncSplit, 5, 11,
                                /*fanout=*/4);
  Cluster cluster(o);
  cluster.Start();
  std::vector<Key> keys = RandomKeys(600, 17);
  for (size_t i = 0; i < keys.size(); ++i) {
    cluster.InsertAsync(static_cast<ProcessorId>(i % 5), keys[i], 1,
                        [](const OpResult&) {});
  }
  ASSERT_TRUE(cluster.Settle());
  uint64_t deferred = 0;
  for (ProcessorId id = 0; id < 5; ++id) {
    deferred += static_cast<SyncSplitProtocol*>(
                    cluster.processor(id).handler())
                    ->deferred_inserts();
  }
  EXPECT_GT(deferred, 0u);
  ExpectCorrect(cluster);
}

// Interior replication factor below "everywhere" still works.
TEST(ClusterBasics, PartialInteriorReplication) {
  ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 8, 21);
  o.tree.interior_replication = 2;
  Cluster cluster(o);
  cluster.Start();
  Oracle oracle;
  std::vector<Key> keys = RandomKeys(300, 23);
  for (size_t i = 0; i < keys.size(); ++i) {
    cluster.InsertAsync(static_cast<ProcessorId>(i % 8), keys[i],
                        keys[i] * 3, [](const OpResult&) {});
    ASSERT_TRUE(oracle.Insert(keys[i], keys[i] * 3).ok());
  }
  ASSERT_TRUE(cluster.Settle());
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
}

}  // namespace
}  // namespace lazytree
