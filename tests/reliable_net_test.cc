// Nasty-edge tests for the reliable-delivery layer (net/reliable.h) and
// its interaction with fault injection (net/faults.h) and the cluster:
//
//   * dedup-window wraparound at sequence-number overflow,
//   * the cumulative ack riding the last in-flight (reverse) message,
//   * a retransmission racing the original's late delivery,
//   * a partition window healing in the middle of a leaf split,
//   * bounded retransmit budget: link-down fails pending ops with a
//     retriable status instead of hanging Settle(),
//   * fault-bearing episode traces recording byte-for-byte identically
//     and replaying without divergence.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/cluster.h"
#include "src/net/faults.h"
#include "src/net/reliable.h"
#include "src/net/sim_network.h"
#include "src/sim/explorer.h"

namespace lazytree {
namespace {

/// Records (from, key) sequences; optional reply hook for reverse traffic.
class Recorder : public net::Receiver {
 public:
  void Deliver(Message m) override {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Action& a : m.actions) {
      keys_.push_back(a.key);
      ++total_;
    }
    if (hook_) hook_(m);
  }
  void SetHook(std::function<void(const Message&)> hook) {
    hook_ = std::move(hook);
  }
  std::vector<Key> keys() {
    std::lock_guard<std::mutex> lock(mu_);
    return keys_;
  }
  size_t total() {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  std::mutex mu_;
  std::function<void(const Message&)> hook_;
  std::vector<Key> keys_;
  size_t total_ = 0;
};

Action KeyedAction(Key k) {
  Action a;
  a.kind = ActionKind::kSearch;
  a.key = k;
  return a;
}

// ---------------------------------------------------------------------------
// Sequence overflow: the dedup window and the reorder buffer must survive
// next_seq wrapping past UINT64_MAX, because both compare sequence numbers
// with serial arithmetic, not magnitude.
TEST(ReliableNetTest, DedupWindowSurvivesSequenceWraparound) {
  net::SimNetwork sim(7);
  net::FaultPlan plan;
  plan.drop = 0.25;      // force retransmissions across the wrap
  plan.duplicate = 0.5;  // force dedup decisions across the wrap
  plan.seed = 3;
  net::FaultyNetwork faulty(&sim, plan);
  net::ReliabilityOptions ropt;
  ropt.initial_seq = UINT64_MAX - 3;  // wrap after four sends
  net::ReliableNetwork reliable(&faulty, ropt);

  Recorder r0, r1;
  reliable.Register(0, &r0);
  reliable.Register(1, &r1);
  reliable.Start();
  constexpr Key kCount = 16;
  for (Key k = 0; k < kCount; ++k) {
    reliable.Send(Message(0, 1, KeyedAction(k)));
  }
  ASSERT_TRUE(reliable.WaitQuiescent(std::chrono::milliseconds(10000)));

  // The fault layer really misbehaved...
  EXPECT_GT(faulty.dropped() + faulty.duplicated(), 0u);
  // ...and exactly-once FIFO still held across the numeric wrap.
  auto keys = r1.keys();
  ASSERT_EQ(keys.size(), kCount);
  for (Key k = 0; k < kCount; ++k) EXPECT_EQ(keys[k], k);
  EXPECT_EQ(reliable.Unacked(), 0u);
  reliable.Stop();
}

// ---------------------------------------------------------------------------
// Ack piggybacking: when the receiver happens to send reverse data while
// its delayed ack is still pending, the ack must ride that message — the
// last in-flight frame — instead of waiting for the pure-ack timer.
TEST(ReliableNetTest, AckRidesLastInflightReverseMessage) {
  net::SimNetwork sim(7);
  net::ReliableNetwork reliable(&sim, net::ReliabilityOptions{});

  Recorder r0, r1;
  // Every delivery at p1 answers with one reverse message.
  r1.SetHook([&](const Message& m) {
    reliable.Send(Message(1, 0, KeyedAction(m.actions.front().key + 100)));
  });
  reliable.Register(0, &r0);
  reliable.Register(1, &r1);
  reliable.Start();

  reliable.Send(Message(0, 1, KeyedAction(1)));
  ASSERT_TRUE(sim.Step());  // deliver the data; the hook sends the reply
  EXPECT_EQ(reliable.stats().Snapshot().acks_piggybacked, 1u)
      << "the pending ack must ride the reply, not a pure-ack frame";

  ASSERT_TRUE(sim.Step());  // deliver the reply: its ack empties 0->1
  EXPECT_EQ(reliable.Unacked(), 1u) << "only the reply itself is unacked";

  // Drain: the reply's own ack is the only remaining timer work.
  ASSERT_TRUE(reliable.WaitQuiescent(std::chrono::milliseconds(5000)));
  EXPECT_EQ(reliable.Unacked(), 0u);
  EXPECT_EQ(r0.total(), 1u);
  EXPECT_EQ(r1.total(), 1u);
  reliable.Stop();
}

// ---------------------------------------------------------------------------
// Retransmit vs late original: fire the retransmission timer while the
// original is still sitting undelivered in the base transport, so both
// copies are in flight on the same channel. Exactly one may surface.
TEST(ReliableNetTest, RetransmitRacingLateOriginalIsDeduped) {
  net::SimNetwork sim(7);
  net::ReliableNetwork reliable(&sim, net::ReliabilityOptions{});
  Recorder r0, r1;
  reliable.Register(0, &r0);
  reliable.Register(1, &r1);
  reliable.Start();

  reliable.Send(Message(0, 1, KeyedAction(7)));
  // The original is queued in the simulator, "late". Advance the virtual
  // clock to the retransmission deadline: a second copy joins it.
  ASSERT_TRUE(reliable.Pump());
  EXPECT_EQ(reliable.stats().Snapshot().retransmits, 1u);

  ASSERT_TRUE(reliable.WaitQuiescent(std::chrono::milliseconds(5000)));
  EXPECT_EQ(r1.total(), 1u) << "exactly one of the two copies delivers";
  EXPECT_EQ(reliable.stats().Snapshot().duplicates_dropped, 1u);
  EXPECT_EQ(reliable.Unacked(), 0u);
  reliable.Stop();
}

// ---------------------------------------------------------------------------
// Partition healing mid-split: a send-index partition window blackholes
// the inter-processor link exactly while a leaf split's relayed traffic is
// in flight. Retransmissions burn through the window; once it heals, every
// operation completes and the §3.1 battery is green.
TEST(ReliableNetTest, PartitionHealsMidSplit) {
  ClusterOptions options;
  options.processors = 2;
  options.protocol = ProtocolKind::kSemiSyncSplit;
  options.transport = TransportKind::kSim;
  options.seed = 5;
  options.tree.max_entries = 4;       // splits arrive quickly
  options.tree.leaf_replication = 2;  // relayed lazy updates cross the link
  net::FaultPlan::Partition window;
  window.a = 0;
  window.b = 1;
  window.start = 2;  // the bootstrap traffic passes, the split hits the wall
  window.length = 4;
  options.faults.partitions.push_back(window);  // activates reliable layer
  // Both directions of the pair carry a window, and pure acks blackholed on
  // the reverse direction keep the sender's retry counter climbing until an
  // eager re-ack finally gets through — budget for both windows.
  options.reliability.max_retransmits = 25;

  Cluster cluster(options);
  cluster.Start();
  for (Key k = 0; k < 12; ++k) {
    ASSERT_TRUE(cluster.Insert(0, k * 7 + 1, k).ok()) << "key " << k * 7 + 1;
  }
  ASSERT_TRUE(cluster.Settle());
  ASSERT_NE(cluster.faulty(), nullptr);
  ASSERT_NE(cluster.reliable(), nullptr);
  EXPECT_GT(cluster.faulty()->partitioned(), 0u)
      << "the window must actually have blackholed messages";
  auto snap = cluster.NetStats();
  EXPECT_GT(snap.retransmits, 0u) << "healing is retransmission-driven";
  EXPECT_EQ(snap.link_down, 0u) << "the window must heal within budget";
  EXPECT_FALSE(cluster.reliable()->AnyLinkDown());
  for (Key k = 0; k < 12; ++k) {
    auto found = cluster.Search(1, k * 7 + 1);
    ASSERT_TRUE(found.ok()) << "key " << k * 7 + 1;
    EXPECT_EQ(*found, k);
  }
  EXPECT_TRUE(cluster.VerifyHistories().violations.empty());
  cluster.Stop();
}

// ---------------------------------------------------------------------------
// Graceful degradation: a permanent partition exhausts the retransmit
// budget, the link is declared down, pending operations fail with the
// retriable kUnavailable status, and Settle() returns instead of hanging.
TEST(ReliableNetTest, LinkDownFailsPendingOpsWithRetriableStatus) {
  ClusterOptions options;
  options.processors = 2;
  options.protocol = ProtocolKind::kSemiSyncSplit;
  options.transport = TransportKind::kSim;
  options.seed = 5;
  options.tree.max_entries = 8;
  net::FaultPlan::Partition forever;
  forever.a = 0;
  forever.b = 1;
  forever.start = 0;
  forever.length = UINT64_MAX / 2;  // never heals
  options.faults.partitions.push_back(forever);
  options.reliability.max_retransmits = 3;  // die fast

  Cluster cluster(options);
  cluster.Start();
  std::vector<OpResult> results(8);
  std::vector<bool> done(8, false);
  for (Key k = 0; k < 8; ++k) {
    // Half the ops are homed at p1, whose navigation must cross the dead
    // link; the p0-homed half stays local and must keep succeeding.
    const ProcessorId home = (k < 4) ? 0 : 1;
    cluster.InsertAsync(home, k, k, [&results, &done, k](const OpResult& res) {
      results[k] = res;
      done[k] = true;
    });
  }
  EXPECT_TRUE(cluster.Settle()) << "a dead link must not hang Settle()";

  ASSERT_NE(cluster.reliable(), nullptr);
  EXPECT_TRUE(cluster.reliable()->AnyLinkDown());
  auto snap = cluster.NetStats();
  EXPECT_GT(snap.link_down, 0u);
  size_t unavailable = 0;
  for (Key k = 0; k < 8; ++k) {
    ASSERT_TRUE(done[k]) << "op " << k << " neither completed nor failed";
    if (results[k].status.code() == StatusCode::kUnavailable) ++unavailable;
  }
  EXPECT_GT(unavailable, 0u)
      << "cross-link ops must fail retriable, not silently vanish";
  cluster.Stop();
}

// ---------------------------------------------------------------------------
// Determinism: a fault-bearing episode under the reliable layer records
// the identical trace twice and replays without divergence — drops, dups,
// retransmissions, and virtual-timer firings are all schedulable events.
TEST(ReliableNetTest, FaultBearingTraceRecordsAndReplaysByteForByte) {
  sim::EpisodeConfig config;
  config.protocol = ProtocolKind::kSemiSyncSplit;
  config.processors = 3;
  config.seed = 11;
  config.rounds = 2;
  config.ops_per_round = 12;
  config.key_space = 64;
  config.fanout = 4;
  config.leaf_replication = 2;
  config.drop = 0.05;
  config.dup = 0.05;
  config.reliable = true;
  ASSERT_TRUE(config.clean())
      << "recovered faults hold the episode to the oracle-exact standard";

  sim::EpisodeResult first = sim::RunEpisode(config);
  sim::EpisodeResult second = sim::RunEpisode(config);
  EXPECT_TRUE(first.ok) << (first.violations.empty()
                                ? "?"
                                : first.violations.front());
  EXPECT_GT(first.trace.FaultCount(), 0u)
      << "the config must actually inject faults";
  EXPECT_EQ(first.trace.events, second.trace.events)
      << "same config, same seed => byte-identical schedule";
  EXPECT_EQ(first.trace.meta, second.trace.meta);
  auto meta = first.trace.meta.find("reliable");
  ASSERT_NE(meta, first.trace.meta.end());
  EXPECT_EQ(meta->second, "1");

  sim::EpisodeResult replayed = sim::ReplayEpisode(config, first.trace);
  EXPECT_TRUE(replayed.ok) << (replayed.violations.empty()
                                   ? "?"
                                   : replayed.violations.front());
  EXPECT_EQ(replayed.replay_diverged, 0u);
}

}  // namespace
}  // namespace lazytree
