// Wire-format tests: varints, action/snapshot/message round trips, and
// rejection of malformed input.

#include <gtest/gtest.h>

#include "src/msg/wire.h"
#include "src/util/rng.h"

namespace lazytree {
namespace {

TEST(Wire, VarintRoundTripEdgeValues) {
  wire::Writer w;
  const uint64_t values[] = {0,    1,    127,  128,   16383, 16384,
                             1u << 20, ~0ull, 42,   0x8000000000000000ull};
  for (uint64_t v : values) w.PutVarint(v);
  std::vector<uint8_t> bytes = w.Take();
  wire::Reader r(bytes);
  for (uint64_t v : values) {
    auto got = r.GetVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(Wire, TruncatedVarintFails) {
  std::vector<uint8_t> bytes = {0x80, 0x80};  // continuation, no end
  wire::Reader r(bytes);
  EXPECT_FALSE(r.GetVarint().ok());
}

Action FullActionFixture() {
  Action a;
  a.kind = ActionKind::kRelayedSplit;
  a.target = NodeId::Make(3, 77);
  a.op = MakeOpId(2, 5);
  a.update = 991;
  a.key = 123456;
  a.value = 654321;
  a.found = true;
  a.rc = Action::Rc::kOk;
  a.version = 17;
  a.origin = 4;
  a.level = 2;
  a.hops = 9;
  a.new_node = NodeId::Make(1, 8);
  a.sep = 500;
  a.link = LinkKind::kLeft;
  a.members = {0, 2, 5};
  a.snapshot.id = NodeId::Make(9, 1);
  a.snapshot.level = 1;
  a.snapshot.range = {100, 900};
  a.snapshot.version = 3;
  a.snapshot.right = NodeId::Make(9, 2);
  a.snapshot.right_low = 900;
  a.snapshot.left = NodeId::Make(9, 3);
  a.snapshot.parent = NodeId::Make(9, 4);
  a.snapshot.link_versions[0] = 5;
  a.snapshot.link_versions[2] = 7;
  a.snapshot.entries = {{100, 11}, {200, 22}, {800, 33}};
  a.snapshot.copies = {1, 2, 3};
  a.snapshot.pc = 2;
  a.snapshot.applied_updates = {4, 9, 16};
  return a;
}

void ExpectActionsEqual(const Action& a, const Action& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.update, b.update);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.rc, b.rc);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.hops, b.hops);
  EXPECT_EQ(a.new_node, b.new_node);
  EXPECT_EQ(a.sep, b.sep);
  EXPECT_EQ(a.link, b.link);
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.snapshot.id, b.snapshot.id);
  EXPECT_EQ(a.snapshot.level, b.snapshot.level);
  EXPECT_EQ(a.snapshot.range, b.snapshot.range);
  EXPECT_EQ(a.snapshot.version, b.snapshot.version);
  EXPECT_EQ(a.snapshot.right, b.snapshot.right);
  EXPECT_EQ(a.snapshot.right_low, b.snapshot.right_low);
  EXPECT_EQ(a.snapshot.left, b.snapshot.left);
  EXPECT_EQ(a.snapshot.parent, b.snapshot.parent);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.snapshot.link_versions[i], b.snapshot.link_versions[i]);
  }
  EXPECT_EQ(a.snapshot.entries, b.snapshot.entries);
  EXPECT_EQ(a.snapshot.copies, b.snapshot.copies);
  EXPECT_EQ(a.snapshot.pc, b.snapshot.pc);
  EXPECT_EQ(a.snapshot.applied_updates, b.snapshot.applied_updates);
}

TEST(Wire, MessageRoundTripFull) {
  Message m(1, 2, FullActionFixture());
  m.seq = 42;
  auto bytes = wire::EncodeMessage(m);
  auto decoded = wire::DecodeMessage(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->from, 1u);
  EXPECT_EQ(decoded->to, 2u);
  EXPECT_EQ(decoded->seq, 42u);
  ASSERT_EQ(decoded->actions.size(), 1u);
  ExpectActionsEqual(decoded->actions[0], m.actions[0]);
}

TEST(Wire, MessageRoundTripDefaults) {
  Action a;
  a.kind = ActionKind::kSearch;
  Message m(0, 0, a);
  auto decoded = wire::DecodeMessage(wire::EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->actions[0].kind, ActionKind::kSearch);
  EXPECT_EQ(decoded->actions[0].level, -1);
  EXPECT_EQ(decoded->actions[0].origin, kInvalidProcessor);
  EXPECT_FALSE(decoded->actions[0].snapshot.valid());
}

TEST(Wire, MultiActionMessage) {
  Message m;
  m.from = 3;
  m.to = 1;
  for (int i = 0; i < 5; ++i) {
    Action a;
    a.kind = ActionKind::kRelayedInsert;
    a.key = static_cast<Key>(i * 100);
    m.actions.push_back(a);
  }
  auto decoded = wire::DecodeMessage(wire::EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->actions.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(decoded->actions[i].key, static_cast<Key>(i * 100));
  }
}

TEST(Wire, RejectsUnknownKindAndTrailingBytes) {
  Message m(0, 1, Action{});
  m.actions[0].kind = ActionKind::kSearch;
  auto bytes = wire::EncodeMessage(m);
  // Find and corrupt the kind byte (first fixed8 after 4 varints).
  // Rather than byte surgery, decode-with-append: trailing garbage.
  auto with_garbage = bytes;
  with_garbage.push_back(0x01);
  EXPECT_FALSE(wire::DecodeMessage(with_garbage).ok());

  // Truncation at every prefix must fail, never crash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(wire::DecodeMessage(prefix).ok()) << "cut=" << cut;
  }
}

Action RandomAction(Rng& rng) {
  Action a;
  a.kind = static_cast<ActionKind>(
      1 + rng.Below(static_cast<uint64_t>(ActionKind::kMaxKind) - 1));
  a.target = NodeId{rng.Next()};
  a.op = rng.Next();
  a.update = rng.Next();
  a.key = rng.Below(kKeyInfinity);
  a.value = rng.Next();
  a.found = rng.Chance(0.5);
  a.rc = static_cast<Action::Rc>(rng.Below(4));
  a.version = rng.Next();
  if (rng.Chance(0.5)) a.origin = static_cast<ProcessorId>(rng.Below(64));
  a.level = static_cast<int32_t>(rng.Below(10)) - 1;
  a.hops = static_cast<uint32_t>(rng.Below(100));
  a.new_node = rng.Chance(0.5) ? NodeId{rng.Next()} : kInvalidNode;
  a.sep = rng.Next();
  a.link = static_cast<LinkKind>(rng.Below(3));
  for (uint64_t i = rng.Below(6); i > 0; --i) {
    a.members.push_back(static_cast<ProcessorId>(rng.Below(64)));
  }
  if (rng.Chance(0.2)) {
    Key k = 0;
    for (uint64_t i = rng.Below(30); i > 0; --i) {
      k += 1 + rng.Below(1000);
      a.range_results.push_back({k, rng.Next()});
    }
  }
  if (rng.Chance(0.3)) {
    a.snapshot.id = NodeId{rng.Next() | 1};
    a.snapshot.level = static_cast<int32_t>(rng.Below(5));
    a.snapshot.range = {rng.Below(1000), 1000 + rng.Below(1000)};
    a.snapshot.version = rng.Next();
    a.snapshot.right = NodeId{rng.Next()};
    a.snapshot.right_low = rng.Next();
    a.snapshot.left = NodeId{rng.Next()};
    a.snapshot.parent = NodeId{rng.Next()};
    for (Version& v : a.snapshot.link_versions) v = rng.Below(1000);
    size_t entries = rng.Below(20);
    Key k = a.snapshot.range.low;
    for (size_t i = 0; i < entries; ++i) {
      k += 1 + rng.Below(50);
      a.snapshot.entries.push_back({k, rng.Next()});
    }
    for (uint64_t i = rng.Below(5); i > 0; --i) {
      a.snapshot.copies.push_back(static_cast<ProcessorId>(rng.Below(64)));
    }
    if (rng.Chance(0.7)) {
      a.snapshot.pc = static_cast<ProcessorId>(rng.Below(64));
    }
    for (uint64_t i = rng.Below(8); i > 0; --i) {
      a.snapshot.applied_updates.push_back(rng.Next());
    }
  }
  return a;
}

// The round-trip property the zero-copy transport relies on: the wire
// format is a *bijection* on the reachable message space, so the opt-in
// checked mode and the counting EncodedSize cannot drift from the fast
// path. encode -> decode -> re-encode must be byte-identical, and
// EncodedSize must equal the materialized size, for arbitrary messages.
TEST(Wire, FuzzRoundTripReencodesByteIdentical) {
  Rng rng(2024);
  for (int iter = 0; iter < 1000; ++iter) {
    Message m;
    m.from = rng.Chance(0.9) ? static_cast<ProcessorId>(rng.Below(16))
                             : kInvalidProcessor;
    m.to = rng.Chance(0.9) ? static_cast<ProcessorId>(rng.Below(16))
                           : kInvalidProcessor;
    m.seq = rng.Next();
    for (uint64_t i = 1 + rng.Below(4); i > 0; --i) {
      m.actions.push_back(RandomAction(rng));
    }

    const std::vector<uint8_t> bytes = wire::EncodeMessage(m);
    EXPECT_EQ(wire::EncodedSize(m), bytes.size()) << "iter " << iter;

    auto decoded = wire::DecodeMessage(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->actions.size(), m.actions.size());
    for (size_t i = 0; i < m.actions.size(); ++i) {
      ExpectActionsEqual(decoded->actions[i], m.actions[i]);
    }

    const std::vector<uint8_t> reencoded = wire::EncodeMessage(*decoded);
    ASSERT_EQ(reencoded, bytes) << "re-encode not byte-identical, iter "
                                << iter;
  }
}

TEST(Wire, EncodedSizeMatches) {
  Message m(1, 2, FullActionFixture());
  EXPECT_EQ(wire::EncodedSize(m), wire::EncodeMessage(m).size());
  EXPECT_EQ(wire::EncodedSize(Message{}), wire::EncodeMessage(Message{}).size());
}

}  // namespace
}  // namespace lazytree
