// §4.3 tests: variable copies — join/unjoin replication management, the
// Fig.-2 path-replication invariant, the Fig.-6 concurrent join+insert
// race, and mobile leaves under the full dB-tree.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/protocol/varcopies.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::ExpectCorrect;
using testing::ExpectMatchesOracle;
using testing::RandomKeys;
using testing::SimOptions;

VarCopiesProtocol* Var(Cluster& cluster, ProcessorId id) {
  return static_cast<VarCopiesProtocol*>(cluster.processor(id).handler());
}

std::map<NodeId, ProcessorId> LeafHosts(Cluster& cluster) {
  std::map<NodeId, ProcessorId> hosts;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    cluster.processor(id).store().ForEach([&](const Node& n) {
      if (n.is_leaf()) hosts[n.id()] = id;
    });
  }
  return hosts;
}

/// Verifies Fig. 2: every processor that hosts a leaf also hosts a copy
/// of every node on the path from the root to that leaf.
void ExpectPathReplication(Cluster& cluster) {
  // Representative copy of each logical node, for path computation.
  std::map<NodeId, NodeSnapshot> nodes;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    cluster.processor(id).store().ForEach(
        [&](const Node& n) { nodes.try_emplace(n.id(), n.ToSnapshot()); });
  }
  int32_t top_level = 0;
  for (auto& [id, snap] : nodes) {
    top_level = std::max(top_level, snap.level);
  }
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    Processor& p = cluster.processor(id);
    p.store().ForEach([&](const Node& leaf) {
      if (!leaf.is_leaf()) return;
      // Walk down from the top of the tree toward this leaf by key and
      // require a local copy at every step.
      Key probe = leaf.range().low;
      const NodeSnapshot* cur = nullptr;
      for (auto& [nid, snap] : nodes) {
        if (snap.level == top_level && snap.range.Contains(probe)) {
          cur = &snap;
        }
      }
      ASSERT_NE(cur, nullptr);
      while (cur->level > 0) {
        EXPECT_NE(p.store().Get(cur->id), nullptr)
            << "p" << id << " hosts leaf " << leaf.id().ToString()
            << " but no copy of path node " << cur->id.ToString()
            << " (level " << cur->level << ")";
        // Descend by key, following right links within the level.
        while (probe >= cur->right_low) {
          cur = &nodes.at(cur->right);
        }
        Key child_payload = 0;
        for (const Entry& e : cur->entries) {
          if (e.key <= probe) child_payload = e.payload;
        }
        cur = &nodes.at(NodeId{child_payload});
      }
    });
  }
}

TEST(VarCopiesProtocol, BasicInsertSearchAcrossProcessors) {
  Cluster cluster(SimOptions(ProtocolKind::kVarCopies, 4, 1));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(200, 3)) {
    ASSERT_TRUE(cluster.Insert(k % 4, k, k * 2).ok()) << "key " << k;
    ASSERT_TRUE(oracle.Insert(k, k * 2).ok());
  }
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
}

TEST(VarCopiesProtocol, MigrationTriggersJoinsAndPathReplication) {
  Cluster cluster(SimOptions(ProtocolKind::kVarCopies, 4, 5));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(250, 7)) {
    ASSERT_TRUE(cluster.Insert(0, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  // Spread the leaves (all on p0 so far) across the cluster.
  int dest = 0;
  for (auto& [id, host] : LeafHosts(cluster)) {
    cluster.MigrateNode(id, host, static_cast<ProcessorId>(dest++ % 4));
  }
  ASSERT_TRUE(cluster.Settle());
  uint64_t joins = 0;
  for (ProcessorId id = 0; id < 4; ++id) {
    joins += Var(cluster, id)->joins_granted();
  }
  EXPECT_GT(joins, 0u) << "migrations must force path joins";
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
  ExpectPathReplication(cluster);
}

// The Fig.-6 race, constructed deterministically: an insert's relays are
// delayed (piggyback buffer) while another processor joins the node; the
// PC's version-gated re-relay must deliver the insert to the new copy.
TEST(VarCopiesProtocol, Fig6ConcurrentJoinAndInsertNeedsReRelay) {
  ClusterOptions o = SimOptions(ProtocolKind::kVarCopies, 4, 1,
                                /*fanout=*/4);
  o.piggyback_window = 100000;  // relays stay buffered until Settle
  Cluster cluster(o);
  cluster.Start();
  Oracle oracle;
  Rng rng(5);
  std::set<Key> warm;
  while (warm.size() < 60) warm.insert(rng.Range(1000, 1u << 20));
  for (Key k : warm) {
    ASSERT_TRUE(cluster.Insert(0, k, 1).ok());
    ASSERT_TRUE(oracle.Insert(k, 1).ok());
  }

  // Move the rightmost leaf to p1 (its ancestors' membership was pruned
  // back to the leaf owners; the leftmost spine stays everywhere).
  auto leaves = LeafHosts(cluster);
  NodeId moved = kInvalidNode;
  KeyRange moved_range;
  for (ProcessorId id = 0; id < 4; ++id) {
    cluster.processor(id).store().ForEach([&](const Node& n) {
      if (n.is_leaf() &&
          (!moved.valid() || n.range().low > moved_range.low)) {
        moved = n.id();
        moved_range = n.range();
      }
    });
  }
  cluster.MigrateNode(moved, 0, 1);
  ASSERT_TRUE(cluster.Settle());

  // Fill p1's leaf until it splits: the parent pointer insert executes at
  // p1's local parent copy; its relays sit in the piggyback buffer.
  for (int i = 0; i < 8; ++i) {
    Key k = moved_range.low + 1 + i;
    cluster.InsertAsync(1, k, 7, [](const OpResult&) {});
    ASSERT_TRUE(oracle.Insert(k, 7).ok());
  }
  while (cluster.sim()->Step()) {
  }

  // A p0-hosted leaf under the same parent migrates to p3: p3 joins the
  // parent; the grant snapshot predates the buffered insert.
  NodeId neighbor = kInvalidNode;
  Key best_low = 0;
  cluster.processor(0).store().ForEach([&](const Node& n) {
    if (n.is_leaf() && n.range().low < moved_range.low &&
        n.range().low >= best_low) {
      neighbor = n.id();
      best_low = n.range().low;
    }
  });
  cluster.MigrateNode(neighbor, 0, 3);
  while (cluster.sim()->Step()) {
  }

  // Release the delayed relays: the PC must re-relay to p3.
  ASSERT_TRUE(cluster.Settle());
  uint64_t rerelays = 0;
  for (ProcessorId id = 0; id < 4; ++id) {
    rerelays += Var(cluster, id)->late_joiner_rerelays();
  }
  EXPECT_GT(rerelays, 0u) << "the Fig.-6 re-relay path must fire";
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
  ExpectPathReplication(cluster);
}

// Organic churn: joins/unjoins racing inserts at scale stay correct.
TEST(VarCopiesProtocol, ChurnWithPiggybackingStaysComplete) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ClusterOptions o = SimOptions(ProtocolKind::kVarCopies, 8, seed,
                                  /*fanout=*/4);
    o.piggyback_window = 8;
    Cluster cluster(o);
    cluster.Start();
    Oracle oracle;
    std::vector<Key> warm = RandomKeys(200, seed + 50);
    for (Key k : warm) {
      ASSERT_TRUE(cluster.Insert(0, k, 1).ok());
      ASSERT_TRUE(oracle.Insert(k, 1).ok());
    }
    std::vector<Key> wave = RandomKeys(600, seed + 60);
    Rng rng(seed);
    size_t i = 0;
    auto hosts = LeafHosts(cluster);
    auto host_it = hosts.begin();
    for (Key k : wave) {
      if (oracle.Insert(k, 2).ok()) {
        cluster.InsertAsync(static_cast<ProcessorId>(i % 8), k, 2,
                            [](const OpResult&) {});
      }
      if (++i % 5 == 0 && host_it != hosts.end()) {
        cluster.MigrateNode(host_it->first, host_it->second,
                            static_cast<ProcessorId>(rng.Below(8)));
        ++host_it;
      }
    }
    ASSERT_TRUE(cluster.Settle());
    ExpectMatchesOracle(cluster, oracle);
    ExpectCorrect(cluster);
    ExpectPathReplication(cluster);
  }
}

TEST(VarCopiesProtocol, UnjoinsHappenWhenLeavesLeave) {
  Cluster cluster(SimOptions(ProtocolKind::kVarCopies, 4, 11));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(400, 13)) {
    ASSERT_TRUE(cluster.Insert(0, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  // Scatter, settle, then pull everything back to p0: the other
  // processors must unjoin the interior nodes they no longer need.
  int dest = 0;
  for (auto& [id, host] : LeafHosts(cluster)) {
    cluster.MigrateNode(id, host, static_cast<ProcessorId>(dest++ % 4));
  }
  ASSERT_TRUE(cluster.Settle());
  for (auto& [id, host] : LeafHosts(cluster)) {
    if (host != 0) cluster.MigrateNode(id, host, 0);
  }
  ASSERT_TRUE(cluster.Settle());
  uint64_t unjoins = 0;
  for (ProcessorId id = 0; id < 4; ++id) {
    unjoins += Var(cluster, id)->unjoins_processed();
  }
  EXPECT_GT(unjoins, 0u);
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
  ExpectPathReplication(cluster);
}

TEST(VarCopiesProtocol, OnlineSheddingKeepsInvariantUnderLoad) {
  ClusterOptions o = SimOptions(ProtocolKind::kVarCopies, 4, 17);
  o.tree.shed_threshold = 3;
  Cluster cluster(o);
  cluster.Start();
  Oracle oracle;
  std::vector<Key> keys = RandomKeys(800, 19);
  size_t i = 0;
  for (Key k : keys) {
    cluster.InsertAsync(static_cast<ProcessorId>(i++ % 4), k, k,
                        [](const OpResult&) {});
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  ASSERT_TRUE(cluster.Settle());
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
  ExpectPathReplication(cluster);
  std::map<ProcessorId, int> per_host;
  for (auto& [id, host] : LeafHosts(cluster)) ++per_host[host];
  EXPECT_GE(per_host.size(), 2u) << "shedding should spread data";
}

TEST(VarCopiesProtocol, SeedSweepConvergence) {
  for (uint64_t seed = 31; seed <= 40; ++seed) {
    ClusterOptions o = SimOptions(ProtocolKind::kVarCopies, 4, seed);
    o.tree.shed_threshold = 4;
    Cluster cluster(o);
    cluster.Start();
    Oracle oracle;
    std::vector<Key> keys = RandomKeys(300, seed);
    size_t i = 0;
    for (Key k : keys) {
      cluster.InsertAsync(static_cast<ProcessorId>(i++ % 4), k, 5,
                          [](const OpResult&) {});
      ASSERT_TRUE(oracle.Insert(k, 5).ok());
    }
    ASSERT_TRUE(cluster.Settle()) << "seed " << seed;
    ExpectMatchesOracle(cluster, oracle);
    ExpectCorrect(cluster);
  }
}

}  // namespace
}  // namespace lazytree
