// §4.2 tests: single-copy mobile nodes — migration, forwarding addresses,
// version-gated link-changes, misnavigation recovery, data balancing.

#include <gtest/gtest.h>

#include <map>

#include "src/protocol/mobile.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::ExpectCorrect;
using testing::ExpectMatchesOracle;
using testing::RandomKeys;
using testing::SimOptions;

MobileProtocol* Mobile(Cluster& cluster, ProcessorId id) {
  return static_cast<MobileProtocol*>(cluster.processor(id).handler());
}

/// All leaves with their current hosts.
std::map<NodeId, ProcessorId> LeafHosts(Cluster& cluster) {
  std::map<NodeId, ProcessorId> hosts;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    cluster.processor(id).store().ForEach([&](const Node& n) {
      if (n.is_leaf()) hosts[n.id()] = id;
    });
  }
  return hosts;
}

TEST(MobileProtocol, SingleProcessorBasics) {
  Cluster cluster(SimOptions(ProtocolKind::kMobile, 1, 1));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(200, 3)) {
    ASSERT_TRUE(cluster.Insert(0, k, k + 9).ok());
    ASSERT_TRUE(oracle.Insert(k, k + 9).ok());
  }
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
}

TEST(MobileProtocol, RemoteProcessorsReachTheTree) {
  // All nodes start on p0; operations submitted at p3 must route there.
  Cluster cluster(SimOptions(ProtocolKind::kMobile, 4, 1));
  cluster.Start();
  ASSERT_TRUE(cluster.Insert(3, 100, 1).ok());
  auto hit = cluster.Search(2, 100);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, 1u);
}

TEST(MobileProtocol, ExplicitLeafMigrationMovesTheNode) {
  Cluster cluster(SimOptions(ProtocolKind::kMobile, 4, 5));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(60, 11)) {
    ASSERT_TRUE(cluster.Insert(0, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  auto before = LeafHosts(cluster);
  ASSERT_GE(before.size(), 2u);
  // Move every leaf off p0, one per destination round-robin.
  int moved = 0;
  for (auto& [id, host] : before) {
    ASSERT_EQ(host, 0u) << "everything starts on p0";
    cluster.MigrateNode(id, host, 1 + (moved++ % 3));
  }
  ASSERT_TRUE(cluster.Settle());
  auto after = LeafHosts(cluster);
  ASSERT_EQ(after.size(), before.size());
  for (auto& [id, host] : after) EXPECT_NE(host, 0u) << id.ToString();
  uint64_t completed = 0;
  for (ProcessorId id = 0; id < 4; ++id) {
    completed += Mobile(cluster, id)->migrations_completed();
  }
  EXPECT_EQ(completed, before.size());
  // The tree still answers correctly from every processor.
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
  for (Key k : RandomKeys(60, 11)) {
    auto hit = cluster.Search(k % 4, k);
    ASSERT_TRUE(hit.ok()) << "key " << k << " lost after migration";
  }
}

TEST(MobileProtocol, MigrationRacesInsertsSafely) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Cluster cluster(SimOptions(ProtocolKind::kMobile, 4, seed));
    cluster.Start();
    Oracle oracle;
    // Warm up with enough keys to create several leaves.
    std::vector<Key> warm = RandomKeys(80, seed + 100);
    for (Key k : warm) {
      ASSERT_TRUE(cluster.Insert(0, k, 7).ok());
      ASSERT_TRUE(oracle.Insert(k, 7).ok());
    }
    auto hosts = LeafHosts(cluster);
    // Now race: a second wave of inserts from all processors while every
    // leaf is told to migrate.
    std::vector<Key> wave = RandomKeys(200, seed + 200);
    size_t i = 0;
    int completions = 0;
    for (Key k : wave) {
      if (oracle.Insert(k, 8).ok()) {
        cluster.InsertAsync(static_cast<ProcessorId>(i % 4), k, 8,
                            [&](const OpResult& r) {
                              EXPECT_TRUE(r.status.ok());
                              ++completions;
                            });
      }
      ++i;
    }
    int dest = 1;
    for (auto& [id, host] : hosts) {
      cluster.MigrateNode(id, host, dest++ % 4);
    }
    ASSERT_TRUE(cluster.Settle());
    EXPECT_EQ(completions, static_cast<int>(wave.size()));
    ExpectMatchesOracle(cluster, oracle);
    ExpectCorrect(cluster);
  }
}

TEST(MobileProtocol, ForwardingAddressGarbageCollectionIsSafe) {
  // §4.2: forwarding addresses are not required for correctness. Migrate,
  // drop every forwarding address, and verify recovery still routes.
  Cluster cluster(SimOptions(ProtocolKind::kMobile, 4, 9));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(120, 13)) {
    ASSERT_TRUE(cluster.Insert(0, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  auto hosts = LeafHosts(cluster);
  int dest = 1;
  for (auto& [id, host] : hosts) cluster.MigrateNode(id, host, dest++ % 4);
  ASSERT_TRUE(cluster.Settle());
  size_t dropped = 0;
  for (ProcessorId id = 0; id < 4; ++id) {
    dropped += cluster.processor(id).store().ForwardingCount();
    cluster.processor(id).store().DropForwardingAddresses();
  }
  EXPECT_GT(dropped, 0u) << "migrations must have left addresses";
  ExpectMatchesOracle(cluster, oracle);
  for (Key k : RandomKeys(120, 13)) {
    auto hit = cluster.Search(k % 4, k);
    ASSERT_TRUE(hit.ok()) << "key " << k << " unreachable after GC";
  }
  ExpectCorrect(cluster);
}

TEST(MobileProtocol, OnlineSheddingBalancesLeaves) {
  ClusterOptions o = SimOptions(ProtocolKind::kMobile, 4, 17);
  o.tree.shed_threshold = 4;  // shed split-off leaves beyond 4 per host
  Cluster cluster(o);
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(600, 19)) {
    ASSERT_TRUE(cluster.Insert(0, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  ASSERT_TRUE(cluster.Settle());
  auto hosts = LeafHosts(cluster);
  std::map<ProcessorId, int> per_host;
  for (auto& [id, host] : hosts) ++per_host[host];
  EXPECT_GE(per_host.size(), 3u)
      << "shedding should spread leaves across hosts";
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
}

TEST(MobileProtocol, LinkChangeVersionGatingHoldsUnderRace) {
  // Repeated migrations of adjacent leaves generate racing link-changes;
  // the ordered-history checker inside ExpectCorrect is the assertion.
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    Cluster cluster(SimOptions(ProtocolKind::kMobile, 4, seed));
    cluster.Start();
    Oracle oracle;
    for (Key k : RandomKeys(100, seed)) {
      ASSERT_TRUE(cluster.Insert(0, k, 1).ok());
      ASSERT_TRUE(oracle.Insert(k, 1).ok());
    }
    // Three rounds of everyone-moves, issued back to back without
    // settling in between.
    Rng rng(seed);
    for (int round = 0; round < 3; ++round) {
      for (auto& [id, host] : LeafHosts(cluster)) {
        cluster.MigrateNode(id, host,
                            static_cast<ProcessorId>(rng.Below(4)));
      }
    }
    ASSERT_TRUE(cluster.Settle());
    ExpectMatchesOracle(cluster, oracle);
    ExpectCorrect(cluster);
  }
}

TEST(MobileProtocol, ScansSurviveMigrationStorm) {
  // Scans walk the leaf chain by key; leaves teleporting mid-scan must
  // never corrupt results (forwarding keeps them on track; the stale-
  // cache regression below covers the recovery path deterministically).
  for (uint64_t seed = 77; seed <= 80; ++seed) {
    Cluster cluster(SimOptions(ProtocolKind::kMobile, 4, seed));
    cluster.Start();
    Oracle oracle;
    for (Key k : RandomKeys(300, 79)) {
      ASSERT_TRUE(cluster.Insert(0, k, k).ok());
      ASSERT_TRUE(oracle.Insert(k, k).ok());
    }
    Rng rng(seed + 4);
    // Round 1: scatter the leaves and settle, so p0's address cache now
    // names the round-1 hosts.
    for (auto& [id, host] : LeafHosts(cluster)) {
      cluster.MigrateNode(id, host, static_cast<ProcessorId>(rng.Below(4)));
    }
    ASSERT_TRUE(cluster.Settle());
    // Round 2 races the scans: leaves leave their round-1 hosts, so the
    // scanning path's cached addresses go stale and the forwarding /
    // closest-node recovery must kick in.
    std::vector<std::vector<Entry>> scans(10);
    int done = 0;
    for (int s2 = 0; s2 < 10; ++s2) {
      cluster.ScanAsync(static_cast<ProcessorId>(s2 % 4),
                        rng.Range(1, 1u << 30), 25,
                        [&, s2](const OpResult& r) {
                          EXPECT_TRUE(r.status.ok());
                          scans[s2] = r.entries;
                          ++done;
                        });
    }
    for (auto& [id, host] : LeafHosts(cluster)) {
      cluster.MigrateNode(id, host, static_cast<ProcessorId>(rng.Below(4)));
    }
    ASSERT_TRUE(cluster.Settle());
    EXPECT_EQ(done, 10);
    // Results are sorted and contain only real keys (scans racing moves
    // are best-effort, but must never invent or disorder entries).
    for (const auto& result : scans) {
      Key prev = 0;
      for (const Entry& e : result) {
        EXPECT_GT(e.key, prev);
        prev = e.key;
        EXPECT_TRUE(oracle.Search(e.key).ok()) << e.key;
      }
    }
    ExpectCorrect(cluster);
  }
}

// Regression: stale address caches + garbage-collected forwarding must
// not livelock. Construction: leaf L and its neighbors leave p0; L then
// moves again so p0's cache goes stale; the intermediate host GCs its
// forwarding address and holds no nodes at all. A search from p0 now
// bounces p0 -> p1 (nothing there) and must still terminate via the
// randomized recovery hand-off to a processor whose neighbor links are
// fresh.
TEST(MobileProtocol, StaleCachePlusGcForwardingTerminates) {
  Cluster cluster(SimOptions(ProtocolKind::kMobile, 4, 5));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(120, 11)) {
    ASSERT_TRUE(cluster.Insert(0, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  // Pick a middle leaf L and its neighbors by range order.
  std::vector<std::pair<Key, NodeId>> by_low;
  cluster.processor(0).store().ForEach([&](const Node& n) {
    if (n.is_leaf()) by_low.push_back({n.range().low, n.id()});
  });
  std::sort(by_low.begin(), by_low.end());
  ASSERT_GE(by_low.size(), 5u);
  const size_t mid = by_low.size() / 2;
  const NodeId left = by_low[mid - 1].second;
  const NodeId leaf = by_low[mid].second;
  const NodeId right = by_low[mid + 1].second;
  const Key probe = by_low[mid].first;

  // Neighbors to p3, L to p1, settle; then L onward to p2 so p0's cache
  // (which learned L@p1 when it shipped it) goes stale.
  cluster.MigrateNode(left, 0, 3);
  cluster.MigrateNode(right, 0, 3);
  cluster.MigrateNode(leaf, 0, 1);
  ASSERT_TRUE(cluster.Settle());
  cluster.MigrateNode(leaf, 1, 2);
  ASSERT_TRUE(cluster.Settle());
  // p1 garbage-collects its forwarding address and now stores nothing.
  cluster.processor(1).store().DropForwardingAddresses();
  EXPECT_EQ(cluster.processor(1).store().size(), 0u);

  // Searches for L's keys from every processor must still terminate.
  for (ProcessorId home = 0; home < 4; ++home) {
    auto hit = cluster.Search(home, probe);
    ASSERT_TRUE(hit.ok()) << "home p" << home;
    EXPECT_EQ(*hit, probe);
  }
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);

  // Force the worst case the proactive refreshes normally prevent:
  // every processor forgets every cached address AND every forwarding
  // address, and a search is addressed straight to L at its *old* host
  // p1 (which stores nothing). §4.2's missing-node recovery — closest
  // node first, randomized hand-off once re-descents stop making
  // progress — must still deliver an answer.
  for (ProcessorId id = 0; id < 4; ++id) {
    Mobile(cluster, id)->TEST_ForgetAddresses();
    cluster.processor(id).store().DropForwardingAddresses();
  }
  OpResult misdirected;
  bool done = false;
  OpId op = cluster.processor(3).ops().Begin([&](const OpResult& r) {
    misdirected = r;
    done = true;
  });
  Action a;
  a.kind = ActionKind::kSearch;
  a.op = op;
  a.key = probe;
  a.target = leaf;
  a.level = 0;
  a.origin = 3;
  cluster.network().Send(Message(3, /*to=*/1, std::move(a)));
  ASSERT_TRUE(cluster.Settle());
  ASSERT_TRUE(done) << "misdirected search must terminate";
  ASSERT_TRUE(misdirected.status.ok());
  EXPECT_EQ(misdirected.value, probe);
  uint64_t recoveries = 0;
  for (ProcessorId id = 0; id < 4; ++id) {
    recoveries += Mobile(cluster, id)->recovery_routes() +
                  Mobile(cluster, id)->forward_hits();
  }
  EXPECT_GT(recoveries, 0u) << "the misdirected search must hit recovery";
}

}  // namespace
}  // namespace lazytree
