// Shared helpers for the lazytree test suites.

#ifndef LAZYTREE_TESTS_TEST_UTIL_H_
#define LAZYTREE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <vector>

#include "src/core/cluster.h"
#include "src/oracle/oracle.h"
#include "src/util/rng.h"

namespace lazytree {
namespace testing {

/// Default small-fanout options so trees get deep quickly in tests.
inline ClusterOptions SimOptions(ProtocolKind protocol, uint32_t processors,
                                 uint64_t seed, size_t fanout = 6) {
  ClusterOptions o;
  o.processors = processors;
  o.protocol = protocol;
  o.transport = TransportKind::kSim;
  o.seed = seed;
  o.tree.max_entries = fanout;
  o.tree.track_history = true;
  return o;
}

/// Asserts all three §3 history requirements plus structural sanity.
inline void ExpectCorrect(Cluster& cluster) {
  auto report = cluster.VerifyHistories();
  EXPECT_TRUE(report.ok()) << report.ToString();
  auto structure = cluster.CheckTreeStructure();
  EXPECT_TRUE(structure.empty())
      << structure.size() << " structural violations, first: "
      << structure.front();
}

/// Asserts the distributed tree's dictionary equals the oracle's.
inline void ExpectMatchesOracle(Cluster& cluster, const Oracle& oracle) {
  std::vector<Entry> got = cluster.DumpLeaves();
  std::vector<Entry> want = oracle.Dump();
  ASSERT_EQ(got.size(), want.size())
      << "tree holds " << got.size() << " keys, oracle " << want.size();
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << "at index " << i;
    EXPECT_EQ(got[i].payload, want[i].payload)
        << "value mismatch for key " << got[i].key;
  }
}

/// Deterministic pseudo-random distinct keys (avoids 0 and infinity).
inline std::vector<Key> RandomKeys(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys;
  keys.reserve(count);
  std::set<Key> seen;
  while (keys.size() < count) {
    Key k = rng.Range(1, 1u << 30);
    if (seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

}  // namespace testing
}  // namespace lazytree

#endif  // LAZYTREE_TESTS_TEST_UTIL_H_
