// Transport tests: the paper's network assumption (reliable, exactly-once,
// per-channel FIFO) on both implementations; sim determinism; piggyback
// semantics; quiescence detection.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <thread>

#include "src/net/piggyback.h"
#include "src/net/sim_network.h"
#include "src/net/thread_network.h"

namespace lazytree {
namespace {

/// Records every delivered action's (from, key) for order checking.
class Recorder : public net::Receiver {
 public:
  explicit Recorder(net::Network* network = nullptr) : network_(network) {}

  void Deliver(Message m) override {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Action& a : m.actions) {
      by_sender_[m.from].push_back(a.key);
      total_++;
      if (network_ != nullptr && a.kind == ActionKind::kSearch &&
          a.key < bounce_limit_) {
        // Ping-pong: reply with key+1 (exercises reentrant Send).
        Action reply;
        reply.kind = ActionKind::kSearch;
        reply.key = a.key + 1;
        network_->Send(Message(m.to, m.from, reply));
      }
    }
  }

  std::vector<Key> SenderKeys(ProcessorId from) {
    std::lock_guard<std::mutex> lock(mu_);
    return by_sender_[from];
  }
  size_t total() {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }
  void set_bounce_limit(Key limit) { bounce_limit_ = limit; }

 private:
  net::Network* network_;
  Key bounce_limit_ = 0;
  std::mutex mu_;
  std::map<ProcessorId, std::vector<Key>> by_sender_;
  size_t total_ = 0;
};

Action KeyedAction(Key k) {
  Action a;
  a.kind = ActionKind::kSearch;
  a.key = k;
  return a;
}

TEST(SimNetwork, DeliversEverythingExactlyOnce) {
  net::SimNetwork net(1);
  Recorder r0, r1;
  net.Register(0, &r0);
  net.Register(1, &r1);
  for (Key k = 0; k < 100; ++k) net.Send(Message(0, 1, KeyedAction(k)));
  EXPECT_EQ(net.Pending(), 100u);
  EXPECT_TRUE(net.WaitQuiescent(std::chrono::milliseconds(1000)));
  EXPECT_EQ(r1.total(), 100u);
  EXPECT_EQ(r0.total(), 0u);
  EXPECT_EQ(net.Pending(), 0u);
}

TEST(SimNetwork, PerChannelFifoDespiteRandomScheduling) {
  net::SimNetwork net(99);
  Recorder sinks[3];
  for (ProcessorId id = 0; id < 3; ++id) net.Register(id, &sinks[id]);
  // Two senders interleave into one receiver; each sender's order holds.
  for (Key k = 0; k < 200; ++k) {
    net.Send(Message(0, 2, KeyedAction(k)));
    net.Send(Message(1, 2, KeyedAction(1000 + k)));
  }
  ASSERT_TRUE(net.WaitQuiescent(std::chrono::milliseconds(1000)));
  auto from0 = sinks[2].SenderKeys(0);
  auto from1 = sinks[2].SenderKeys(1);
  ASSERT_EQ(from0.size(), 200u);
  ASSERT_EQ(from1.size(), 200u);
  for (Key k = 0; k < 200; ++k) {
    EXPECT_EQ(from0[k], k);
    EXPECT_EQ(from1[k], 1000 + k);
  }
}

TEST(SimNetwork, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    net::SimNetwork net(seed);
    Recorder r0(&net), r1(&net);
    r0.set_bounce_limit(50);
    r1.set_bounce_limit(50);
    net.Register(0, &r0);
    net.Register(1, &r1);
    net.Send(Message(0, 1, KeyedAction(0)));
    net.Send(Message(1, 0, KeyedAction(1)));
    net.WaitQuiescent(std::chrono::milliseconds(1000));
    return net.delivered();
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(SimNetwork, StepDeliversOne) {
  net::SimNetwork net(3);
  Recorder r0;
  net.Register(0, &r0);
  EXPECT_FALSE(net.Step()) << "nothing pending";
  net.Send(Message(0, 0, KeyedAction(1)));
  net.Send(Message(0, 0, KeyedAction(2)));
  EXPECT_TRUE(net.Step());
  EXPECT_EQ(r0.total(), 1u);
  EXPECT_TRUE(net.Step());
  EXPECT_FALSE(net.Step());
}

TEST(ThreadNetwork, DeliversAcrossThreadsAndQuiesces) {
  net::ThreadNetwork net;
  Recorder sinks[4];
  for (ProcessorId id = 0; id < 4; ++id) net.Register(id, &sinks[id]);
  net.Start();
  std::vector<std::thread> senders;
  for (ProcessorId from = 0; from < 4; ++from) {
    senders.emplace_back([&net, from] {
      for (Key k = 0; k < 500; ++k) {
        net.Send(Message(from, (from + 1) % 4, KeyedAction(k)));
      }
    });
  }
  for (auto& t : senders) t.join();
  EXPECT_TRUE(net.WaitQuiescent(std::chrono::milliseconds(5000)));
  for (ProcessorId id = 0; id < 4; ++id) {
    EXPECT_EQ(sinks[id].total(), 500u);
    auto keys = sinks[id].SenderKeys((id + 3) % 4);
    ASSERT_EQ(keys.size(), 500u);
    for (Key k = 0; k < 500; ++k) EXPECT_EQ(keys[k], k) << "FIFO broken";
  }
  net.Stop();
}

TEST(ThreadNetwork, ReentrantSendFromDeliver) {
  net::ThreadNetwork net;
  Recorder r0(&net), r1(&net);
  r0.set_bounce_limit(100);
  r1.set_bounce_limit(100);
  net.Register(0, &r0);
  net.Register(1, &r1);
  net.Start();
  net.Send(Message(0, 1, KeyedAction(0)));
  EXPECT_TRUE(net.WaitQuiescent(std::chrono::milliseconds(5000)));
  // Keys 0..99 bounce; the final key==100 message is delivered unbounced.
  EXPECT_EQ(r0.total() + r1.total(), 101u);
  net.Stop();
}

TEST(NetworkStats, CountsRemoteLocalAndBytes) {
  net::SimNetwork net(1);
  Recorder r0, r1;
  net.Register(0, &r0);
  net.Register(1, &r1);
  net.Send(Message(0, 1, KeyedAction(5)));
  net.Send(Message(1, 1, KeyedAction(6)));  // self-send = local
  auto snap = net.stats().Snapshot();
  EXPECT_EQ(snap.remote_messages, 1u);
  EXPECT_EQ(snap.local_messages, 1u);
  EXPECT_GT(snap.remote_bytes, 0u);
  EXPECT_EQ(snap.ActionCount(ActionKind::kSearch), 2u);
  auto diff = net.stats().Snapshot() - snap;
  EXPECT_EQ(diff.remote_messages, 0u);
}

TEST(SimNetworkLatency, DeliversInTimeOrderAndAdvancesClock) {
  net::SimNetwork net(1);
  net.EnableLatency(/*base_us=*/100, /*jitter_us=*/50, /*local_us=*/1);
  Recorder r0, r1;
  net.Register(0, &r0);
  net.Register(1, &r1);
  for (Key k = 0; k < 50; ++k) net.Send(Message(0, 1, KeyedAction(k)));
  net.Send(Message(1, 1, KeyedAction(999)));  // local: tiny latency
  EXPECT_EQ(net.NowUs(), 0u);
  ASSERT_TRUE(net.Step());
  // The local message (1µs) beats every remote one (>=100µs).
  EXPECT_EQ(r1.SenderKeys(1).size(), 1u);
  EXPECT_GE(net.NowUs(), 1u);
  EXPECT_LT(net.NowUs(), 100u);
  ASSERT_TRUE(net.WaitQuiescent(std::chrono::milliseconds(1000)));
  EXPECT_GE(net.NowUs(), 100u) << "clock advanced past the base latency";
  // Per-channel FIFO survives the jitter (arrivals are clamped).
  auto keys = r1.SenderKeys(0);
  ASSERT_EQ(keys.size(), 50u);
  for (Key k = 0; k < 50; ++k) EXPECT_EQ(keys[k], k);
}

TEST(SimNetworkLatency, DeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    net::SimNetwork net(seed);
    net.EnableLatency(200, 100);
    Recorder r0, r1;
    net.Register(0, &r0);
    net.Register(1, &r1);
    for (Key k = 0; k < 30; ++k) {
      net.Send(Message(0, 1, KeyedAction(k)));
      net.Send(Message(1, 0, KeyedAction(100 + k)));
    }
    net.WaitQuiescent(std::chrono::milliseconds(1000));
    return net.NowUs();
  };
  EXPECT_EQ(run(9), run(9));
}

Action RelayedAction(Key k) {
  Action a;
  a.kind = ActionKind::kRelayedInsert;
  a.key = k;
  return a;
}

TEST(Piggyback, DefersRelaysUntilDirectTraffic) {
  net::SimNetwork base(1);
  net::PiggybackNetwork net(&base, /*max_buffered=*/16);
  Recorder r0, r1;
  net.Register(0, &r0);
  net.Register(1, &r1);
  for (Key k = 0; k < 5; ++k) net.Send(Message(0, 1, RelayedAction(k)));
  EXPECT_EQ(net.Buffered(), 5u);
  EXPECT_EQ(base.Pending(), 0u) << "relays buffered, not sent";
  // A direct message flushes the buffer onto itself, relays first.
  net.Send(Message(0, 1, KeyedAction(99)));
  EXPECT_EQ(net.Buffered(), 0u);
  EXPECT_EQ(base.Pending(), 1u) << "one combined message";
  ASSERT_TRUE(base.WaitQuiescent(std::chrono::milliseconds(1000)));
  auto keys = r1.SenderKeys(0);
  ASSERT_EQ(keys.size(), 6u);
  for (Key k = 0; k < 5; ++k) EXPECT_EQ(keys[k], k) << "relay order kept";
  EXPECT_EQ(keys[5], 99u) << "direct action rides last";
}

TEST(Piggyback, CapForcesStandaloneFlush) {
  net::SimNetwork base(1);
  net::PiggybackNetwork net(&base, /*max_buffered=*/4);
  Recorder r1;
  Recorder r0;
  net.Register(0, &r0);
  net.Register(1, &r1);
  for (Key k = 0; k < 4; ++k) net.Send(Message(0, 1, RelayedAction(k)));
  EXPECT_EQ(net.Buffered(), 0u) << "cap reached: flushed";
  EXPECT_EQ(base.Pending(), 1u);
}

TEST(Piggyback, WaitQuiescentFlushesBuffers) {
  net::SimNetwork base(1);
  net::PiggybackNetwork net(&base, /*max_buffered=*/64);
  Recorder r0, r1;
  net.Register(0, &r0);
  net.Register(1, &r1);
  for (Key k = 0; k < 10; ++k) net.Send(Message(0, 1, RelayedAction(k)));
  EXPECT_TRUE(net.WaitQuiescent(std::chrono::milliseconds(1000)));
  EXPECT_EQ(r1.total(), 10u);
  EXPECT_EQ(net.Buffered(), 0u);
}

TEST(Piggyback, ZeroWindowPassesThrough) {
  net::SimNetwork base(1);
  net::PiggybackNetwork net(&base, /*max_buffered=*/0);
  Recorder r0, r1;
  net.Register(0, &r0);
  net.Register(1, &r1);
  net.Send(Message(0, 1, RelayedAction(1)));
  EXPECT_EQ(base.Pending(), 1u);
}

}  // namespace
}  // namespace lazytree
