// Property sweep: randomized mixed workloads (inserts, searches,
// deletes, scans, migrations, piggybacking) across every protocol and
// many seeds. Invariants asserted after each round:
//   * oracle equivalence of the dictionary contents,
//   * the three §3 history requirements,
//   * structural soundness of every level,
//   * every submitted operation completes.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::ExpectCorrect;
using testing::ExpectMatchesOracle;
using testing::SimOptions;

struct SweepCase {
  ProtocolKind protocol;
  bool piggyback;
  bool migrations;
};

class PropertySweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PropertySweepTest, RandomizedMixedWorkloadsHoldInvariants) {
  const SweepCase& param = GetParam();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ClusterOptions o = SimOptions(param.protocol, 6, seed, /*fanout=*/5);
    if (param.piggyback) o.piggyback_window = 8;
    Cluster cluster(o);
    cluster.Start();
    Oracle oracle;
    Rng rng(seed * 97 + 13);
    std::vector<Key> settled;  // keys known to be in the tree

    for (int round = 0; round < 3; ++round) {
      int submitted = 0;
      int completed = 0;
      auto count_cb = [&](const OpResult&) { ++completed; };

      // A burst of fresh inserts.
      std::set<Key> fresh;
      while (fresh.size() < 120) fresh.insert(rng.Range(1, 1u << 30));
      for (Key k : fresh) {
        if (!oracle.Insert(k, k ^ 0xF00D).ok()) continue;
        ++submitted;
        cluster.InsertAsync(static_cast<ProcessorId>(rng.Below(6)), k,
                            k ^ 0xF00D, count_cb);
      }
      // Deletes of previously settled keys (no same-key races).
      for (int d = 0; d < 40 && !settled.empty(); ++d) {
        size_t pick = rng.Below(settled.size());
        Key k = settled[pick];
        settled[pick] = settled.back();
        settled.pop_back();
        ASSERT_TRUE(oracle.Delete(k).ok());
        ++submitted;
        cluster.DeleteAsync(static_cast<ProcessorId>(rng.Below(6)), k,
                            count_cb);
      }
      // Racing searches and scans (results not asserted mid-race; they
      // only must complete).
      for (int s = 0; s < 30; ++s) {
        ++submitted;
        if (s % 5 == 0) {
          cluster.ScanAsync(static_cast<ProcessorId>(rng.Below(6)),
                            rng.Range(1, 1u << 30), 10, count_cb);
        } else {
          cluster.SearchAsync(static_cast<ProcessorId>(rng.Below(6)),
                              rng.Range(1, 1u << 30), count_cb);
        }
      }
      // Optional migration churn for the mobile family.
      if (param.migrations) {
        std::map<NodeId, ProcessorId> hosts;
        for (ProcessorId id = 0; id < 6; ++id) {
          cluster.processor(id).store().ForEach([&](const Node& n) {
            if (n.is_leaf()) hosts[n.id()] = id;
          });
        }
        int moved = 0;
        for (auto& [id, host] : hosts) {
          if (moved++ % 3 == 0) {
            cluster.MigrateNode(id, host,
                                static_cast<ProcessorId>(rng.Below(6)));
          }
        }
      }

      ASSERT_TRUE(cluster.Settle())
          << ProtocolKindName(param.protocol) << " seed " << seed;
      EXPECT_EQ(completed, submitted)
          << "every operation must complete (round " << round << ")";
      for (Key k : fresh) settled.push_back(k);

      ExpectMatchesOracle(cluster, oracle);
      ExpectCorrect(cluster);

      // Spot-check scans against the oracle at quiescence.
      Key start = rng.Range(1, 1u << 30);
      auto got = cluster.Scan(static_cast<ProcessorId>(round % 6), start,
                              25);
      ASSERT_TRUE(got.ok());
      std::vector<Entry> want = oracle.Scan(start, 25);
      ASSERT_EQ(got->size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ((*got)[i].key, want[i].key);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PropertySweepTest,
    ::testing::Values(
        SweepCase{ProtocolKind::kSemiSyncSplit, false, false},
        SweepCase{ProtocolKind::kSemiSyncSplit, true, false},
        SweepCase{ProtocolKind::kSyncSplit, false, false},
        SweepCase{ProtocolKind::kSyncSplit, true, false},
        SweepCase{ProtocolKind::kVigorous, false, false},
        SweepCase{ProtocolKind::kMobile, false, true},
        SweepCase{ProtocolKind::kMobile, true, true},
        SweepCase{ProtocolKind::kVarCopies, false, true},
        SweepCase{ProtocolKind::kVarCopies, true, true}),
    [](const ::testing::TestParamInfo<SweepCase>& pinfo) {
      std::string name = ProtocolKindName(pinfo.param.protocol);
      if (pinfo.param.piggyback) name += "_piggyback";
      if (pinfo.param.migrations) name += "_migrations";
      return name;
    });

}  // namespace
}  // namespace lazytree
