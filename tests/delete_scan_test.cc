// Deletes (the paper's stated future work, realized with the
// free-at-empty / never-merge policy of [11]) and B-link range scans,
// across every protocol.

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::ExpectCorrect;
using testing::ExpectMatchesOracle;
using testing::RandomKeys;
using testing::SimOptions;

class DeleteScanTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DeleteScanTest, DeleteBasics) {
  Cluster cluster(SimOptions(GetParam(), 4, 1));
  cluster.Start();
  ASSERT_TRUE(cluster.Insert(0, 10, 100).ok());
  ASSERT_TRUE(cluster.Insert(1, 20, 200).ok());

  EXPECT_TRUE(cluster.Delete(2, 10).ok());
  EXPECT_EQ(cluster.Delete(3, 10).code(), StatusCode::kNotFound)
      << "double delete misses";
  EXPECT_EQ(cluster.Search(0, 10).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(cluster.Search(0, 20).ok()) << "other keys unaffected";
  EXPECT_EQ(cluster.Delete(0, 999).code(), StatusCode::kNotFound);
  ExpectCorrect(cluster);
}

TEST_P(DeleteScanTest, InsertDeleteChurnMatchesOracle) {
  Cluster cluster(SimOptions(GetParam(), 4, 3));
  cluster.Start();
  Oracle oracle;
  std::vector<Key> keys = RandomKeys(300, 7);
  for (Key k : keys) {
    ASSERT_TRUE(cluster.Insert(k % 4, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  // Delete every third key (settled keys: no same-key races).
  for (size_t i = 0; i < keys.size(); i += 3) {
    ASSERT_TRUE(cluster.Delete(i % 4, keys[i]).ok()) << keys[i];
    ASSERT_TRUE(oracle.Delete(keys[i]).ok());
  }
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
  // Re-insert a deleted key.
  ASSERT_TRUE(cluster.Insert(0, keys[0], 777).ok());
  auto hit = cluster.Search(1, keys[0]);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, 777u);
}

TEST_P(DeleteScanTest, ConcurrentDisjointDeletesConverge) {
  Cluster cluster(SimOptions(GetParam(), 5, 9, /*fanout=*/4));
  cluster.Start();
  Oracle oracle;
  std::vector<Key> keys = RandomKeys(400, 11);
  size_t i = 0;
  for (Key k : keys) {
    cluster.InsertAsync(static_cast<ProcessorId>(i++ % 5), k, 1,
                        [](const OpResult&) {});
    ASSERT_TRUE(oracle.Insert(k, 1).ok());
  }
  ASSERT_TRUE(cluster.Settle());
  // Delete half of them, all in flight at once, from every processor.
  int completions = 0;
  for (size_t j = 0; j < keys.size(); j += 2) {
    cluster.DeleteAsync(static_cast<ProcessorId>(j % 5), keys[j],
                        [&](const OpResult& r) {
                          EXPECT_TRUE(r.status.ok()) << r.key;
                          ++completions;
                        });
    ASSERT_TRUE(oracle.Delete(keys[j]).ok());
  }
  ASSERT_TRUE(cluster.Settle());
  EXPECT_EQ(completions, static_cast<int>((keys.size() + 1) / 2));
  ExpectMatchesOracle(cluster, oracle);
  ExpectCorrect(cluster);
}

TEST_P(DeleteScanTest, FreeAtEmptyNodesSurviveTotalDeletion) {
  // Empty every leaf; the structure (never merged) must keep working.
  Cluster cluster(SimOptions(GetParam(), 3, 13));
  cluster.Start();
  std::vector<Key> keys = RandomKeys(150, 17);
  for (Key k : keys) ASSERT_TRUE(cluster.Insert(k % 3, k, k).ok());
  for (Key k : keys) ASSERT_TRUE(cluster.Delete(k % 3, k).ok());
  EXPECT_TRUE(cluster.DumpLeaves().empty());
  auto structure = cluster.CheckTreeStructure();
  EXPECT_TRUE(structure.empty()) << structure.front();
  // Still fully usable.
  ASSERT_TRUE(cluster.Insert(0, keys[5], 5).ok());
  auto hit = cluster.Search(2, keys[5]);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, 5u);
  ExpectCorrect(cluster);
}

TEST_P(DeleteScanTest, ScanReturnsSortedRange) {
  Cluster cluster(SimOptions(GetParam(), 4, 19));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(250, 23)) {
    ASSERT_TRUE(cluster.Insert(k % 4, k, k * 2).ok());
    ASSERT_TRUE(oracle.Insert(k, k * 2).ok());
  }
  // Scans from assorted starting points and limits, vs the oracle.
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    Key start = rng.Range(0, 1u << 30);
    uint64_t limit = 1 + rng.Below(40);
    auto got = cluster.Scan(trial % 4, start, limit);
    ASSERT_TRUE(got.ok());
    std::vector<Entry> want = oracle.Scan(start, limit);
    ASSERT_EQ(got->size(), want.size())
        << "start=" << start << " limit=" << limit;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*got)[i].key, want[i].key);
      EXPECT_EQ((*got)[i].payload, want[i].payload);
    }
  }
  // Full-tree scan equals the dump.
  auto all = cluster.Scan(0, 0, 100000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), oracle.size());
}

TEST_P(DeleteScanTest, ScanAcrossEmptiedLeaves) {
  Cluster cluster(SimOptions(GetParam(), 3, 31));
  cluster.Start();
  Oracle oracle;
  std::vector<Key> keys = RandomKeys(200, 37);
  for (Key k : keys) {
    ASSERT_TRUE(cluster.Insert(k % 3, k, 1).ok());
    ASSERT_TRUE(oracle.Insert(k, 1).ok());
  }
  // Carve a hole in the middle of the key space.
  std::vector<Key> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = sorted.size() / 4; i < 3 * sorted.size() / 4; ++i) {
    ASSERT_TRUE(cluster.Delete(0, sorted[i]).ok());
    ASSERT_TRUE(oracle.Delete(sorted[i]).ok());
  }
  // A scan straddling the hole walks the emptied leaves transparently.
  Key start = sorted[sorted.size() / 4 - 2];
  auto got = cluster.Scan(1, start, 30);
  ASSERT_TRUE(got.ok());
  std::vector<Entry> want = oracle.Scan(start, 30);
  ASSERT_EQ(got->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*got)[i].key, want[i].key);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, DeleteScanTest,
    ::testing::Values(ProtocolKind::kSemiSyncSplit, ProtocolKind::kSyncSplit,
                      ProtocolKind::kVigorous, ProtocolKind::kMobile,
                      ProtocolKind::kVarCopies),
    [](const ::testing::TestParamInfo<ProtocolKind>& pinfo) {
      return std::string(ProtocolKindName(pinfo.param));
    });

// Replicated-leaf deletes exercise the relayed-delete paths.
TEST(DeleteReplicated, RelayedDeletesConvergeOnReplicatedLeaves) {
  for (ProtocolKind protocol :
       {ProtocolKind::kSemiSyncSplit, ProtocolKind::kSyncSplit,
        ProtocolKind::kVigorous}) {
    ClusterOptions o = SimOptions(protocol, 5, 41, /*fanout=*/4);
    o.tree.leaf_replication = 3;
    Cluster cluster(o);
    cluster.Start();
    Oracle oracle;
    std::vector<Key> keys = RandomKeys(300, 43);
    size_t i = 0;
    for (Key k : keys) {
      cluster.InsertAsync(static_cast<ProcessorId>(i++ % 5), k, 2,
                          [](const OpResult&) {});
      ASSERT_TRUE(oracle.Insert(k, 2).ok());
    }
    ASSERT_TRUE(cluster.Settle());
    for (size_t j = 0; j < keys.size(); j += 2) {
      cluster.DeleteAsync(static_cast<ProcessorId>(j % 5), keys[j],
                          [](const OpResult&) {});
      ASSERT_TRUE(oracle.Delete(keys[j]).ok());
    }
    ASSERT_TRUE(cluster.Settle());
    ExpectMatchesOracle(cluster, oracle);
    ExpectCorrect(cluster);
  }
}

// Deletes racing splits: out-of-range relayed deletes hit the history
// rewrite at the PC, exactly like inserts in Fig. 5.
TEST(DeleteReplicated, DeletesRacingSplitsRewriteHistory) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ClusterOptions o =
        SimOptions(ProtocolKind::kSemiSyncSplit, 5, seed, /*fanout=*/4);
    o.tree.leaf_replication = 3;
    Cluster cluster(o);
    cluster.Start();
    Oracle oracle;
    std::vector<Key> keys = RandomKeys(250, seed + 5);
    for (Key k : keys) {
      ASSERT_TRUE(cluster.Insert(k % 5, k, 2).ok());
      ASSERT_TRUE(oracle.Insert(k, 2).ok());
    }
    // Interleave: a wave of new inserts (forcing splits) with deletes of
    // existing keys, all racing.
    std::vector<Key> wave = RandomKeys(250, seed + 500);
    for (size_t i = 0; i < wave.size(); ++i) {
      if (oracle.Insert(wave[i], 3).ok()) {
        cluster.InsertAsync(static_cast<ProcessorId>(i % 5), wave[i], 3,
                            [](const OpResult&) {});
      }
      if (i < keys.size() && i % 2 == 0) {
        cluster.DeleteAsync(static_cast<ProcessorId>((i + 1) % 5), keys[i],
                            [](const OpResult&) {});
        ASSERT_TRUE(oracle.Delete(keys[i]).ok());
      }
    }
    ASSERT_TRUE(cluster.Settle());
    ExpectMatchesOracle(cluster, oracle);
    ExpectCorrect(cluster);
  }
}

}  // namespace
}  // namespace lazytree
