// Fail-stop crash/restart injection (sim transport).
//
// A crashed processor loses its volatile state: the network drops its
// inbound messages until restart and its local copies die (their deaths
// recorded against the history log, so §3 checking treats them as
// conceptually-retained dead state rather than violations). These tests
// crash a *non-PC* copy holder in the middle of the two structure
// changes the protocols propagate lazily — a semi-sync split and a
// varcopies join — then restart it and require the surviving state to
// pass the full §3 battery and still serve every acknowledged key.

#include <gtest/gtest.h>

#include <set>

#include "src/protocol/varcopies.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::ExpectCorrect;
using testing::ExpectMatchesOracle;
using testing::RandomKeys;
using testing::SimOptions;

size_t CountLogicalNodes(Cluster& cluster) {
  std::set<NodeId> ids;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    cluster.processor(id).store().ForEach(
        [&](const Node& n) { ids.insert(n.id()); });
  }
  return ids.size();
}

/// The leaf covering `key`, as seen by any live copy.
const Node* FindLeafCovering(Cluster& cluster, Key key) {
  const Node* found = nullptr;
  for (ProcessorId id = 0; id < cluster.size() && !found; ++id) {
    cluster.processor(id).store().ForEach([&](const Node& n) {
      if (n.is_leaf() && n.Contains(key)) found = &n;
    });
  }
  return found;
}

TEST(CrashRestart, NonPcCopyCrashDuringSemiSyncSplit) {
  ClusterOptions o =
      SimOptions(ProtocolKind::kSemiSyncSplit, 4, 17, /*fanout=*/4);
  o.tree.leaf_replication = 3;
  Cluster cluster(o);
  cluster.Start();
  Oracle oracle;

  // Warm keys in a low band so the later overflow targets the rightmost
  // leaf (range open to infinity) deterministically.
  for (Key k : RandomKeys(30, 9)) {
    Key key = 1000 + (k % 1000);
    if (oracle.Insert(key, key * 3).ok()) {
      ASSERT_TRUE(cluster.Insert(0, key, key * 3).ok());
    }
  }
  ASSERT_TRUE(cluster.Settle());

  // Pick the crash victim: a copy holder of the rightmost leaf that is
  // neither its PC nor the clients' home processor.
  const Node* target = FindLeafCovering(cluster, 100000);
  ASSERT_NE(target, nullptr);
  ASSERT_GE(target->copies().size(), 3u);
  ProcessorId pc = target->pc();
  ProcessorId victim = kInvalidProcessor;
  for (ProcessorId p : target->copies()) {
    if (p != pc && p != 0) victim = p;
  }
  ASSERT_NE(victim, kInvalidProcessor);

  // Overflow the leaf asynchronously and run the simulator just far
  // enough for the PC to perform the half-split; the split/link relays
  // to the peer copies are still in flight when the victim dies.
  size_t nodes_before = CountLogicalNodes(cluster);
  size_t acked = 0;
  std::vector<Key> burst;
  for (int i = 0; i < 8; ++i) burst.push_back(100000 + 7 * i);
  for (Key k : burst) {
    ASSERT_TRUE(oracle.Insert(k, k + 1).ok());
    cluster.InsertAsync(0, k, k + 1, [&acked](const OpResult& r) {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      ++acked;
    });
  }
  while (CountLogicalNodes(cluster) == nodes_before) {
    ASSERT_TRUE(cluster.sim()->Step()) << "drained before any split";
  }

  cluster.CrashProcessor(victim);
  for (int i = 0; i < 4; ++i) cluster.sim()->Step();
  cluster.RestartProcessor(victim);
  ASSERT_TRUE(cluster.Settle());

  EXPECT_EQ(acked, burst.size());
  ExpectCorrect(cluster);  // compatible/complete histories + structure
  ExpectMatchesOracle(cluster, oracle);
  for (Key k : burst) {
    StatusOr<Value> got = cluster.Search(0, k);
    ASSERT_TRUE(got.ok()) << "acked key " << k << " lost after crash: "
                          << got.status().ToString();
    EXPECT_EQ(*got, k + 1);
  }
}

TEST(CrashRestart, NonPcCopyCrashDuringVarCopiesJoin) {
  Cluster cluster(SimOptions(ProtocolKind::kVarCopies, 4, 23));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(40, 13)) {
    ASSERT_TRUE(cluster.Insert(0, k, k * 2).ok());
    ASSERT_TRUE(oracle.Insert(k, k * 2).ok());
  }
  ASSERT_TRUE(cluster.Settle());

  // All leaves bootstrapped on p0, so the interior spine is replicated
  // while p2 hosts no leaf: crashing p2 cannot lose dictionary state,
  // only a non-PC interior copy (the ISSUE's "non-PC copy").
  NodeId moved = kInvalidNode;
  Key best_low = 0;
  cluster.processor(0).store().ForEach([&](const Node& n) {
    if (n.is_leaf() && n.range().low >= best_low) {
      moved = n.id();
      best_low = n.range().low;
    }
  });
  ASSERT_TRUE(moved.valid());

  // Migrating the rightmost leaf to p1 makes p1 join the leaf's ancestor
  // path (§4.3). Crash p2 while the join handshake is in flight.
  cluster.MigrateNode(moved, 0, 1);
  for (int i = 0; i < 6; ++i) cluster.sim()->Step();
  cluster.CrashProcessor(2);
  for (int i = 0; i < 4; ++i) cluster.sim()->Step();
  cluster.RestartProcessor(2);
  ASSERT_TRUE(cluster.Settle());

  uint64_t joins = 0;
  for (ProcessorId id = 0; id < 4; ++id) {
    joins += static_cast<VarCopiesProtocol*>(cluster.processor(id).handler())
                 ->joins_granted();
  }
  EXPECT_GT(joins, 0u) << "migration must have forced a path join";

  ExpectCorrect(cluster);
  ExpectMatchesOracle(cluster, oracle);
  for (Key k : RandomKeys(40, 13)) {
    StatusOr<Value> got = cluster.Search(3, k);
    ASSERT_TRUE(got.ok()) << "key " << k
                          << " unreachable after crash/restart: "
                          << got.status().ToString();
    EXPECT_EQ(*got, k * 2);
  }
}

// Restarting a processor that never crashed must be a no-op: minimized
// schedules can retain a restart whose crash was deleted.
TEST(CrashRestart, RestartWithoutCrashIsHarmless) {
  Cluster cluster(SimOptions(ProtocolKind::kSemiSyncSplit, 4, 3));
  cluster.Start();
  Oracle oracle;
  for (Key k : RandomKeys(50, 21)) {
    ASSERT_TRUE(cluster.Insert(k % 4, k, k).ok());
    ASSERT_TRUE(oracle.Insert(k, k).ok());
  }
  cluster.RestartProcessor(1);
  ASSERT_TRUE(cluster.Settle());
  ExpectCorrect(cluster);
  ExpectMatchesOracle(cluster, oracle);
}

}  // namespace
}  // namespace lazytree
