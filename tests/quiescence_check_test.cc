// The always-on §3.1 quiescence hook (ClusterOptions::check_histories):
// every Settle() that reaches quiescence re-verifies complete/compatible/
// ordered histories and dies on the first violation. These tests pin the
// three sides of that contract — correct protocols settle silently, a
// violating protocol dies at the earliest quiescent point (not at test
// teardown), and the CheckOptions policy knobs flow through ClusterOptions
// into both the hook and VerifyHistories().

#include <string>
#include <vector>

#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::RandomKeys;
using testing::SimOptions;

void DriveNaiveWorkload(Cluster& cluster, uint64_t seed) {
  std::vector<Key> keys = RandomKeys(500, seed);
  for (size_t i = 0; i < keys.size(); ++i) {
    cluster.InsertAsync(static_cast<ProcessorId>(i % 5), keys[i], 1,
                        [](const OpResult&) {});
  }
  cluster.Settle();
}

TEST(QuiescenceCheckDeathTest, NaiveViolationDiesAtFirstQuiescentPoint) {
  // The Fig.-4 strawman loses inserts under racing splits; with the hook
  // left at its default the process must die inside Settle(), naming the
  // broken requirement — not limp along until someone calls
  // VerifyHistories().
  EXPECT_DEATH(
      {
        for (uint64_t seed = 1; seed <= 6; ++seed) {
          ClusterOptions o = SimOptions(ProtocolKind::kNaive, 5, seed,
                                        /*fanout=*/4);
          o.tree.leaf_replication = 3;
          Cluster cluster(o);
          cluster.Start();
          DriveNaiveWorkload(cluster, seed);
        }
      },
      "3.1 invariant violated at quiescence");
}

TEST(QuiescenceCheck, CorrectProtocolSettlesWithHookOn) {
  ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 4, 7);
  ASSERT_TRUE(o.check_histories) << "the hook must default on in tests";
  Cluster cluster(o);
  cluster.Start();
  for (Key k : RandomKeys(200, 7)) {
    cluster.InsertAsync(static_cast<ProcessorId>(k % 4), k, k + 1,
                        [](const OpResult&) {});
  }
  EXPECT_TRUE(cluster.Settle());
  testing::ExpectCorrect(cluster);
}

TEST(QuiescenceCheck, HookIsInertWithoutHistoryTracking) {
  // Without tracking there is no log to verify; the same violating
  // workload must settle instead of dying (benches run this way).
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ClusterOptions o = SimOptions(ProtocolKind::kNaive, 5, seed,
                                  /*fanout=*/4);
    o.tree.leaf_replication = 3;
    o.tree.track_history = false;
    Cluster cluster(o);
    cluster.Start();
    DriveNaiveWorkload(cluster, seed);
  }
}

TEST(QuiescenceCheck, MaxViolationsFlowsThroughOptions) {
  // The naive strawman produces many completeness violations across the
  // seed sweep; the Options-supplied cap must bound VerifyHistories().
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ClusterOptions o = SimOptions(ProtocolKind::kNaive, 5, seed,
                                  /*fanout=*/4);
    o.tree.leaf_replication = 3;
    o.check_histories = false;  // observe, don't die
    o.history_check.max_violations = 3;
    Cluster cluster(o);
    cluster.Start();
    DriveNaiveWorkload(cluster, seed);
    auto report = cluster.VerifyHistories();
    if (report.ok()) continue;  // gentle seed; try the next
    EXPECT_LE(report.violations.size(), 4u)  // 3 + suppression notice
        << report.ToString();
    return;
  }
  FAIL() << "no seed produced a violation to exercise the cap";
}

/// Duplicate-application violations under message duplication, with the
/// policy supplied through ClusterOptions.
std::vector<std::string> DuplicateViolations(uint64_t seed, bool allow) {
  ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 5, seed,
                                /*fanout=*/4);
  o.tree.leaf_replication = 3;
  o.check_histories = false;  // faults are injected deliberately
  o.history_check.allow_duplicate_applications = allow;
  o.history_check.max_violations = 64;
  Cluster cluster(o);
  cluster.Start();
  cluster.sim()->InjectFaults(/*drop=*/0, /*dup=*/0.05);
  std::vector<Key> keys = RandomKeys(400, seed + 7);
  for (size_t i = 0; i < keys.size(); ++i) {
    cluster.InsertAsync(static_cast<ProcessorId>(i % 5), keys[i], 1,
                        [](const OpResult&) {});
  }
  cluster.Settle();
  cluster.sim()->InjectFaults(0, 0);
  std::vector<std::string> dup;
  for (const std::string& v : cluster.VerifyHistories().violations) {
    if (v.find("applied ") != std::string::npos &&
        v.find("x at") != std::string::npos) {
      dup.push_back(v);
    }
  }
  return dup;
}

TEST(QuiescenceCheck, DuplicatePolicyFlowsThroughOptions) {
  // Same seed → same sim schedule → the only difference between the two
  // runs is the Options-supplied policy.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<std::string> strict = DuplicateViolations(seed, false);
    if (strict.empty()) continue;  // this seed's dups were all benign
    EXPECT_TRUE(DuplicateViolations(seed, true).empty())
        << "allow_duplicate_applications must silence re-apply findings";
    return;
  }
  FAIL() << "no seed produced a duplicate application to exercise policy";
}

}  // namespace
}  // namespace lazytree
