// Unit tests for the utility kit: Status/StatusOr, Rng, Histogram,
// BlockingQueue, MpscBatchQueue, WaitGroup.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/util/histogram.h"
#include "src/util/mpsc_queue.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/statusor.h"
#include "src/util/threading.h"

namespace lazytree {
namespace {

TEST(Status, OkIsDefaultAndCheap) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "not_found: key 42");
}

TEST(Status, CopyingSharesRepresentation) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kInternal);
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(a == b);
}

TEST(Status, AllConstructorsMapToCodes) {
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::InvalidArgument("").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::TimedOut("").code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
}

TEST(StatusOr, ValueAndErrorPaths) {
  StatusOr<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  EXPECT_EQ(good.value_or(9), 7);

  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(StatusOr, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(3));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 3);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff_seed_equal = true;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.Next(), y = b.Next(), z = c.Next();
    all_equal &= (x == y);
    any_diff_seed_equal &= (x == z);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_FALSE(any_diff_seed_equal);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Range(10, 13));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 13u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.P50(), 50, 6);
  EXPECT_NEAR(h.P99(), 99, 6);
}

TEST(Histogram, MergeAndReset) {
  Histogram a, b;
  for (int i = 0; i < 50; ++i) a.Record(10);
  for (int i = 0; i < 50; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Percentile(50), 0.0);
}

TEST(Histogram, SmallValuePercentilesAreSane) {
  // Regression: values in [0, 4] straddle the exact-bucket / log-bucket
  // boundary; percentiles must stay within [min, max].
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(3);
  for (int i = 0; i < 100; ++i) h.Record(4);
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, 3.0) << "p" << p;
    EXPECT_LE(v, 4.0) << "p" << p;
  }
  Histogram zeros;
  zeros.Record(0);
  zeros.Record(0);
  EXPECT_EQ(zeros.Percentile(50), 0.0);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  h.Record(0);
  h.Record(1ull << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 1ull << 62);
  EXPECT_FALSE(h.Summary().empty());
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(BlockingQueue, CloseWakesAndDrains) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2)) << "closed queue rejects pushes";
  EXPECT_EQ(q.Pop().value(), 1) << "drains remaining items";
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueue, CrossThreadHandoff) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) q.Push(i);
    q.Close();
  });
  int expected = 0;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 1000);
  producer.join();
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  auto v = q.PopFor(std::chrono::milliseconds(10));
  EXPECT_FALSE(v.has_value());
}

TEST(MpscBatchQueue, DrainsWholeBatchInOrder) {
  MpscBatchQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Push(i));
  std::vector<int> batch;
  ASSERT_TRUE(q.PopAll(batch));
  ASSERT_EQ(batch.size(), 10u) << "one swap drains everything pending";
  for (int i = 0; i < 10; ++i) EXPECT_EQ(batch[i], i);
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_FALSE(q.TryPopAll(batch));
}

TEST(MpscBatchQueue, CloseWakesAndDrains) {
  MpscBatchQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2)) << "closed queue rejects pushes";
  std::vector<int> batch;
  ASSERT_TRUE(q.PopAll(batch)) << "drains remaining items after close";
  EXPECT_EQ(batch, std::vector<int>({1}));
  EXPECT_FALSE(q.PopAll(batch)) << "closed and drained";
}

TEST(MpscBatchQueue, MultiProducerKeepsPerProducerOrder) {
  MpscBatchQueue<std::pair<int, int>> q;  // (producer, seq)
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push({p, i});
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  int total = 0;
  std::vector<std::pair<int, int>> batch;
  while (total < kProducers * kPerProducer) {
    if (!q.PopAll(batch)) break;
    for (auto& [p, seq] : batch) {
      ASSERT_EQ(seq, next_seq[p]++) << "producer " << p << " reordered";
      ++total;
    }
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
  for (auto& t : producers) t.join();
}

TEST(WaitGroup, WaitsForAllDone) {
  WaitGroup wg;
  wg.Add(3);
  std::thread t([&] {
    wg.Done();
    wg.Done();
    wg.Done();
  });
  wg.Wait();
  EXPECT_EQ(wg.Count(), 0);
  t.join();
}

TEST(WaitGroup, WaitForTimesOutWhenPending) {
  WaitGroup wg;
  wg.Add(1);
  EXPECT_FALSE(wg.WaitFor(std::chrono::milliseconds(10)));
  wg.Done();
  EXPECT_TRUE(wg.WaitFor(std::chrono::milliseconds(10)));
}

}  // namespace
}  // namespace lazytree
