// Server-runtime unit tests: AAS registry, operation tracker, queue
// manager routing, processor id allocation and bookkeeping.

#include <gtest/gtest.h>

#include "src/net/sim_network.h"
#include "src/server/aas.h"
#include "src/server/op_tracker.h"
#include "src/server/processor.h"
#include "src/server/queue_manager.h"

namespace lazytree {
namespace {

NodeId Id(uint32_t seq) { return NodeId::Make(0, seq); }

TEST(AasRegistry, BeginDeferEndRoundTrip) {
  AasRegistry aas;
  EXPECT_FALSE(aas.Active(Id(1)));
  aas.Begin(Id(1));
  EXPECT_TRUE(aas.Active(Id(1)));
  EXPECT_FALSE(aas.Active(Id(2)));

  Action a;
  a.kind = ActionKind::kInsert;
  a.key = 5;
  aas.Defer(Id(1), a);
  a.key = 6;
  aas.Defer(Id(1), a);
  EXPECT_EQ(aas.DeferredCount(Id(1)), 2u);

  std::vector<Action> drained = aas.End(Id(1));
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].key, 5u) << "arrival order preserved";
  EXPECT_EQ(drained[1].key, 6u);
  EXPECT_FALSE(aas.Active(Id(1)));
  EXPECT_EQ(aas.DeferredCount(Id(1)), 0u);
}

TEST(AasRegistry, IndependentNodes) {
  AasRegistry aas;
  aas.Begin(Id(1));
  aas.Begin(Id(2));
  EXPECT_EQ(aas.ActiveCount(), 2u);
  EXPECT_TRUE(aas.End(Id(1)).empty());
  EXPECT_TRUE(aas.Active(Id(2)));
}

TEST(OpTracker, BeginCompleteLifecycle) {
  OpTracker tracker(3);
  OpResult seen;
  OpId op = tracker.Begin([&](const OpResult& r) { seen = r; });
  EXPECT_EQ(OpOrigin(op), 3u);
  EXPECT_EQ(tracker.Outstanding(), 1u);

  OpResult result;
  result.op = op;
  result.status = Status::OK();
  result.value = 99;
  tracker.Complete(result);
  EXPECT_EQ(seen.value, 99u);
  EXPECT_EQ(tracker.Outstanding(), 0u);
  EXPECT_EQ(tracker.completed(), 1u);

  // Duplicate / unknown completions are ignored, not fatal.
  tracker.Complete(result);
  EXPECT_EQ(tracker.completed(), 1u);
}

TEST(OpTracker, DistinctIdsPerOperation) {
  OpTracker tracker(1);
  OpId a = tracker.Begin([](const OpResult&) {});
  OpId b = tracker.Begin([](const OpResult&) {});
  EXPECT_NE(a, b);
  EXPECT_EQ(tracker.Outstanding(), 2u);
}

class CountingReceiver : public net::Receiver {
 public:
  void Deliver(Message m) override { count += m.actions.size(); }
  size_t count = 0;
};

TEST(QueueManager, RoutesLocalAndRemote) {
  net::SimNetwork net(1);
  CountingReceiver r0, r1;
  net.Register(0, &r0);
  net.Register(1, &r1);
  QueueManager qm(0, &net);
  Action a;
  a.kind = ActionKind::kSearch;
  qm.SendLocal(a);
  qm.SendAction(1, a);
  qm.Broadcast({0, 1}, a);  // skips self
  ASSERT_TRUE(net.WaitQuiescent(std::chrono::milliseconds(1000)));
  EXPECT_EQ(r0.count, 1u) << "local + broadcast-skip-self";
  EXPECT_EQ(r1.count, 2u);
  auto stats = net.stats().Snapshot();
  EXPECT_EQ(stats.local_messages, 1u);
  EXPECT_EQ(stats.remote_messages, 2u);
}

TEST(Processor, IdAllocatorsAreUniqueAndCreatorTagged) {
  net::SimNetwork net(1);
  history::HistoryLog log(false);
  TreeConfig config;
  Processor p(0, 1, &net, &log, config);
  NodeId n1 = p.NewNodeId();
  NodeId n2 = p.NewNodeId();
  EXPECT_NE(n1, n2);
  EXPECT_EQ(n1.creator(), 0u);
  UpdateId u1 = p.NewUpdateId();
  UpdateId u2 = p.NewUpdateId();
  EXPECT_NE(u1, u2);
}

TEST(Processor, InstallAndRemoveTrackHistory) {
  net::SimNetwork net(1);
  history::HistoryLog log(true);
  TreeConfig config;
  Processor p(0, 1, &net, &log, config);
  auto node = std::make_unique<Node>(Id(5), 0, KeyRange{}, true);
  node->NoteApplied(77);
  p.InstallNode(std::move(node));
  auto copies = log.Copies();
  ASSERT_EQ(copies.size(), 1u);
  EXPECT_EQ(copies.begin()->second.inherited.size(), 1u);
  EXPECT_TRUE(copies.begin()->second.live);
  p.RemoveNode(Id(5));
  EXPECT_FALSE(log.Copies().begin()->second.live);
}

}  // namespace
}  // namespace lazytree
