// Assumption validation and ablations.
//
// The paper's protocols assume a reliable, exactly-once, FIFO network
// (§4) and rely on the §4.3 version machinery for joins. These tests
// break each load-bearing piece deliberately and verify that the
// executable correctness theory *detects* the resulting damage — i.e.,
// that the checkers are sharp and the mechanisms are necessary, not
// decorative.

#include <gtest/gtest.h>

#include <set>

#include "src/protocol/varcopies.h"
#include "src/sim/explorer.h"
#include "tests/test_util.h"

namespace lazytree {
namespace {

using testing::RandomKeys;
using testing::SimOptions;

/// Damage score after running a replicated workload on a faulty network:
/// checker violations + client ops that never completed + keys missing.
struct Damage {
  size_t violations = 0;
  int lost_completions = 0;
  int64_t missing_keys = 0;
  bool any() const {
    return violations > 0 || lost_completions > 0 || missing_keys > 0;
  }
};

Damage RunWithFaults(uint64_t seed, double drop, double dup) {
  ClusterOptions o = SimOptions(ProtocolKind::kSemiSyncSplit, 5, seed,
                                /*fanout=*/4);
  o.tree.leaf_replication = 3;
  // This harness *measures* the damage faults cause; the quiescence hook
  // would abort on the first violation before Damage could be collected.
  o.check_histories = false;
  Cluster cluster(o);
  cluster.Start();
  cluster.sim()->InjectFaults(drop, dup);
  std::set<Key> keys;
  Rng rng(seed + 7);
  while (keys.size() < 400) keys.insert(rng.Range(1, 1u << 30));
  int completions = 0;
  size_t i = 0;
  for (Key k : keys) {
    cluster.InsertAsync(static_cast<ProcessorId>(i++ % 5), k, 1,
                        [&](const OpResult&) { ++completions; });
  }
  cluster.Settle();
  cluster.sim()->InjectFaults(0, 0);  // settle bookkeeping honestly
  Damage damage;
  damage.violations = cluster.VerifyHistories().violations.size();
  damage.lost_completions = static_cast<int>(keys.size()) - completions;
  damage.missing_keys = static_cast<int64_t>(keys.size()) -
                        static_cast<int64_t>(cluster.DumpLeaves().size());
  return damage;
}

TEST(NetworkAssumption, MessageLossBreaksTheProtocolDetectably) {
  // §4: "we assume that the network is reliable". Drop 2% of messages
  // and the checkers / clients must notice across a few seeds.
  bool detected = false;
  for (uint64_t seed = 1; seed <= 4 && !detected; ++seed) {
    detected = RunWithFaults(seed, /*drop=*/0.02, /*dup=*/0).any();
  }
  EXPECT_TRUE(detected)
      << "dropping messages must produce observable damage";
}

TEST(NetworkAssumption, DuplicationBreaksFixedCopiesDetectably) {
  // Exactly-once matters too: duplicated relays double-apply at copies
  // without update tracking... with tracking the checker flags them.
  bool detected = false;
  for (uint64_t seed = 1; seed <= 6 && !detected; ++seed) {
    Damage d = RunWithFaults(seed, /*drop=*/0, /*dup=*/0.05);
    detected = d.violations > 0;
  }
  EXPECT_TRUE(detected)
      << "duplicated messages must be flagged by the history checkers";
}

TEST(NetworkAssumption, CleanNetworkBaselineIsGreen) {
  Damage d = RunWithFaults(1, 0, 0);
  EXPECT_FALSE(d.any()) << "violations=" << d.violations
                        << " lost=" << d.lost_completions
                        << " missing=" << d.missing_keys;
}

// Faulty schedules detected under `kind` scheduling across a fixed seed
// budget (more detections = fewer seeds needed per repro on average).
constexpr uint64_t kSeedBudget = 12;
uint64_t DetectionsUnder(sim::StrategyKind kind, double drop) {
  uint64_t detections = 0;
  for (uint64_t seed = 1; seed <= kSeedBudget; ++seed) {
    sim::EpisodeConfig config;
    config.protocol = ProtocolKind::kSemiSyncSplit;
    config.processors = 4;
    config.seed = seed;
    config.rounds = 4;
    config.ops_per_round = 20;
    config.key_space = 256;
    config.fanout = 4;
    config.drop = drop;
    config.strategy.kind = kind;
    config.strategy.seed = seed;
    if (!sim::RunEpisode(config).ok) ++detections;
  }
  return detections;
}

// Ablation of the *schedule* dimension: sparse link loss must be
// detectable by the checkers under both delivery disciplines within a
// small seed budget. This used to rank PCT above uniform, but that edge
// came from self-send drops — schedule-independent guaranteed
// detections that no real lossy link can produce (a processor cannot
// lose its own in-process work) and that the fault model no longer
// injects. With only genuine link loss left, per-seed detection counts
// of the two strategies differ by noise; PCT's real leverage is
// ordering adversarial schedules, which schedule_explorer_test and the
// starve-victim heuristic of the exhaustive verifier cover.
TEST(NetworkAssumption, SparseLossIsDetectedUnderBothSchedulers) {
  const double drop = 0.008;
  uint64_t pct = DetectionsUnder(sim::StrategyKind::kPct, drop);
  uint64_t uniform = DetectionsUnder(sim::StrategyKind::kUniform, drop);
  EXPECT_GT(pct, 0u) << "PCT must detect 0.8% link loss within "
                     << kSeedBudget << " seeds";
  EXPECT_GT(uniform, 0u) << "uniform must detect 0.8% link loss within "
                         << kSeedBudget << " seeds";
}

// Ablation: without the §4.3 version-gated re-relay, the constructed
// Fig.-6 interleaving leaves the joiner's copy incomplete — and the
// compatible-history checker says so.
TEST(Fig6Ablation, DisablingReRelayYieldsIncompleteCopies) {
  for (bool ablate : {false, true}) {
    ClusterOptions o = SimOptions(ProtocolKind::kVarCopies, 4, 1,
                                  /*fanout=*/4);
    o.piggyback_window = 100000;
    o.tree.ablate_fig6_rerelay = ablate;
    // The ablated protocol is *expected* to violate completeness; the
    // test asserts on the report instead of dying at quiescence.
    o.check_histories = false;
    Cluster cluster(o);
    cluster.Start();
    Rng rng(5);
    std::set<Key> warm;
    while (warm.size() < 60) warm.insert(rng.Range(1000, 1u << 20));
    for (Key k : warm) ASSERT_TRUE(cluster.Insert(0, k, 1).ok());

    // Rightmost leaf to p1 (pruned-membership ancestors).
    NodeId moved = kInvalidNode;
    KeyRange moved_range;
    cluster.processor(0).store().ForEach([&](const Node& n) {
      if (n.is_leaf() &&
          (!moved.valid() || n.range().low > moved_range.low)) {
        moved = n.id();
        moved_range = n.range();
      }
    });
    cluster.MigrateNode(moved, 0, 1);
    ASSERT_TRUE(cluster.Settle());
    for (int i = 0; i < 8; ++i) {
      cluster.InsertAsync(1, moved_range.low + 1 + i, 7,
                          [](const OpResult&) {});
    }
    while (cluster.sim()->Step()) {
    }
    NodeId neighbor = kInvalidNode;
    Key best_low = 0;
    cluster.processor(0).store().ForEach([&](const Node& n) {
      if (n.is_leaf() && n.range().low < moved_range.low &&
          n.range().low >= best_low) {
        neighbor = n.id();
        best_low = n.range().low;
      }
    });
    cluster.MigrateNode(neighbor, 0, 3);
    while (cluster.sim()->Step()) {
    }
    ASSERT_TRUE(cluster.Settle());

    auto report = cluster.VerifyHistories();
    if (ablate) {
      EXPECT_FALSE(report.ok())
          << "without re-relays the joiner's history must be incomplete";
    } else {
      EXPECT_TRUE(report.ok()) << report.ToString();
    }
  }
}

}  // namespace
}  // namespace lazytree
