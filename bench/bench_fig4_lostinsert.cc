// F4 — Fig. 4 (the lost-insert problem).
//
// "If S1 reduces the range of the node to exclude I4's key, then I4's key
// is lost." The naive protocol (PC ignores out-of-range relayed inserts)
// silently loses exactly one key per dropped leaf relay; the paper's
// semi-synchronous protocol rewrites history and loses nothing — on the
// identical adversarial workload.

#include "bench/bench_util.h"
#include "src/protocol/naive.h"

namespace lazytree {
namespace {

struct Outcome {
  size_t inserted = 0;
  size_t stored = 0;
  uint64_t leaf_drops = 0;
};

Outcome RunOne(ProtocolKind protocol, uint64_t seed) {
  ClusterOptions o;
  o.processors = 5;
  o.protocol = protocol;
  o.transport = TransportKind::kSim;
  o.seed = seed;
  o.tree.max_entries = 4;        // split often
  o.tree.leaf_replication = 3;   // client inserts are themselves relayed
  o.tree.track_history = false;
  Cluster cluster(o);
  cluster.Start();

  Rng rng(seed * 77 + 1);
  std::set<Key> keys;
  while (keys.size() < 800) keys.insert(rng.Range(1, 1ull << 40));
  size_t i = 0;
  for (Key k : keys) {
    cluster.InsertAsync(static_cast<ProcessorId>(i++ % 5), k, 1,
                        [](const OpResult&) {});
  }
  cluster.Settle();

  Outcome out;
  out.inserted = keys.size();
  out.stored = cluster.DumpLeaves().size();
  if (protocol == ProtocolKind::kNaive) {
    for (ProcessorId id = 0; id < 5; ++id) {
      out.leaf_drops += static_cast<NaiveProtocol*>(
                            cluster.processor(id).handler())
                            ->dropped_leaf_relays();
    }
  }
  return out;
}

void Run() {
  bench::Banner(
      "F4", "Fig. 4 — the lost-insert problem",
      "Same workload, two protocols: the strawman drops out-of-range\n"
      "relays at the PC (lost keys); semi-synchronous rewriting loses\n"
      "nothing.");

  bench::Table table({"seed", "naive_lost", "naive_drops", "semisync_lost"});
  table.Header();
  uint64_t total_naive_lost = 0, total_semi_lost = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Outcome naive = RunOne(ProtocolKind::kNaive, seed);
    Outcome semi = RunOne(ProtocolKind::kSemiSyncSplit, seed);
    table.Row({std::to_string(seed),
               bench::FmtU(naive.inserted - naive.stored),
               bench::FmtU(naive.leaf_drops),
               bench::FmtU(semi.inserted - semi.stored)});
    total_naive_lost += naive.inserted - naive.stored;
    total_semi_lost += semi.inserted - semi.stored;
  }
  std::printf(
      "\nShape check: naive lost %llu keys across seeds (= its dropped\n"
      "leaf relays); semi-synchronous lost %llu.\n",
      (unsigned long long)total_naive_lost,
      (unsigned long long)total_semi_lost);
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
