// F2 — Fig. 2 (the dB-tree replication policy).
//
// "The dB-tree replication policy stores the root everywhere, the leaves
// at a single processor, and the intermediate nodes at a moderate level
// of replication. [...] an operation can perform much of its searching
// locally, reducing the number of messages passed."
//
// Sweep the interior replication factor on a fixed 8-processor cluster
// and measure how many hops a search serves locally vs. remotely.

#include "bench/bench_util.h"

namespace lazytree {
namespace {

void Run() {
  bench::Banner(
      "F2", "Fig. 2 — replication policy and search locality",
      "More interior replication -> more local hops and fewer messages\n"
      "per search; the root-everywhere policy lets every processor start\n"
      "operations locally.");

  bench::Table table({"interior_repl", "remote_msgs/op", "local_msgs/op",
                      "local_frac", "hops_p50", "hops_p99"});
  table.Header();

  for (uint32_t repl : {1u, 2u, 4u, 8u}) {
    ClusterOptions o;
    o.processors = 8;
    o.protocol = ProtocolKind::kSemiSyncSplit;
    o.transport = TransportKind::kSim;
    o.seed = 3;
    o.tree.max_entries = 8;
    o.tree.track_history = false;
    o.tree.interior_replication = repl;
    Cluster cluster(o);
    cluster.Start();
    bench::Preload(cluster, 4000, 77);

    auto result = bench::RunSimWorkload(cluster, 8000,
                                        /*insert_fraction=*/0.0, 21);
    const double local = static_cast<double>(result.net.local_messages);
    const double remote = static_cast<double>(result.net.remote_messages);
    table.Row({repl == 8 ? "8 (=P, everywhere)" : std::to_string(repl),
               bench::Fmt("%.2f", remote / result.ops),
               bench::Fmt("%.2f", local / result.ops),
               bench::Fmt("%.2f", local / (local + remote)),
               bench::Fmt("%.0f", result.hops.P50()),
               bench::Fmt("%.0f", result.hops.P99())});
  }
  std::printf(
      "\nShape check: remote messages per search fall monotonically as\n"
      "interior replication rises (the Fig.-2 locality claim).\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
