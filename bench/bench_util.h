// Shared plumbing for the experiment benches (see DESIGN.md's experiment
// index): cluster workload drivers and aligned-table printing. Each bench
// binary regenerates one figure/claim of the paper and prints the series
// EXPERIMENTS.md records.

#ifndef LAZYTREE_BENCH_BENCH_UTIL_H_
#define LAZYTREE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/core/balancer.h"
#include "src/core/cluster.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/threading.h"

namespace lazytree::bench {

/// Prints one row of "|"-separated cells under a header.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    // Floor of 8 so cells a little wider than a short header ("checked"
    // under "mode") don't shove the rest of the row out of alignment.
    for (const auto& h : headers_) {
      widths_.push_back(h.size() > 8 ? h.size() + 2 : 10);
    }
  }

  void Header() {
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%-*s", static_cast<int>(widths_[i]),
                  headers_[i].c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s", std::string(widths_[i] - 1, '-').c_str());
      std::printf(" ");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      std::printf("%-*s", static_cast<int>(widths_[i]), cells[i].c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
inline std::string FmtU(uint64_t v) { return std::to_string(v); }

/// Outcome of one driven workload.
struct RunResult {
  uint64_t ops = 0;
  double seconds = 0;
  net::StatsSnapshot net;      ///< delta over the run
  Histogram hops;              ///< per-op node visits
  uint64_t completed = 0;

  double OpsPerSec() const { return seconds > 0 ? ops / seconds : 0; }
  double RemoteMsgsPerOp() const {
    return ops ? static_cast<double>(net.remote_messages) / ops : 0;
  }
  double BytesPerOp() const {
    return ops ? static_cast<double>(net.remote_bytes) / ops : 0;
  }
};

/// Pre-loads `count` distinct random keys (synchronously, not measured).
inline std::vector<Key> Preload(Cluster& cluster, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys;
  keys.reserve(count);
  while (keys.size() < count) {
    Key k = rng.Range(1, 1ull << 40);
    cluster.InsertAsync(
        static_cast<ProcessorId>(keys.size() % cluster.size()), k, k,
        [](const OpResult&) {});
    if (keys.size() % 64 == 63) cluster.Settle();
    keys.push_back(k);
  }
  cluster.Settle();
  return keys;
}

/// Drives a closed-loop mixed workload on the sim transport: at most
/// `concurrency` operations are outstanding; each completion launches the
/// next (a realistic client population — enqueueing everything at once
/// would make early operations chase right links across every split that
/// happens "while" they run). The sim has no wall clock, so `seconds` is
/// the real drain time; use message counts for protocol comparisons.
struct SimDriver {
  Cluster* cluster;
  Rng rng;
  size_t remaining;
  double insert_fraction;
  RunResult* result;

  void LaunchOne() {
    if (remaining == 0) return;
    --remaining;
    ProcessorId home =
        static_cast<ProcessorId>(rng.Below(cluster->size()));
    auto cb = [this](const OpResult& r) {
      result->hops.Record(r.hops);
      ++result->completed;
      LaunchOne();
    };
    if (rng.NextDouble() < insert_fraction) {
      cluster->InsertAsync(home, rng.Range(1, 1ull << 40), remaining, cb);
    } else {
      cluster->SearchAsync(home, rng.Range(1, 1ull << 40), cb);
    }
  }
};

inline RunResult RunSimWorkload(Cluster& cluster, size_t ops,
                                double insert_fraction, uint64_t seed,
                                size_t concurrency = 32) {
  RunResult result;
  result.ops = ops;
  auto before = cluster.NetStats();
  SimDriver driver{&cluster, Rng(seed), ops, insert_fraction, &result};
  const uint64_t t0 = NowNanos();
  for (size_t i = 0; i < concurrency && i < ops; ++i) driver.LaunchOne();
  cluster.Settle(std::chrono::milliseconds(120000));
  result.seconds = (NowNanos() - t0) * 1e-9;
  result.net = cluster.NetStats() - before;
  return result;
}

/// Closed-loop driver for a latency-mode sim cluster: records per-op
/// latency in simulated microseconds.
struct LatencyDriver {
  Cluster* cluster;
  Rng rng;
  size_t remaining;
  double insert_fraction;
  Histogram* latencies;

  void LaunchOne() {
    if (remaining == 0) return;
    --remaining;
    ProcessorId home =
        static_cast<ProcessorId>(rng.Below(cluster->size()));
    const uint64_t t0 = cluster->sim()->NowUs();
    auto cb = [this, t0](const OpResult&) {
      latencies->Record(cluster->sim()->NowUs() - t0);
      LaunchOne();
    };
    if (rng.NextDouble() < insert_fraction) {
      cluster->InsertAsync(home, rng.Range(1, 1ull << 40), 1, cb);
    } else {
      cluster->SearchAsync(home, rng.Range(1, 1ull << 40), cb);
    }
  }
};

inline Histogram RunSimLatencyWorkload(Cluster& cluster, size_t ops,
                                       double insert_fraction,
                                       uint64_t seed,
                                       size_t concurrency = 16) {
  Histogram latencies;
  LatencyDriver driver{&cluster, Rng(seed), ops, insert_fraction,
                       &latencies};
  for (size_t i = 0; i < concurrency && i < ops; ++i) driver.LaunchOne();
  cluster.Settle(std::chrono::milliseconds(120000));
  return latencies;
}

/// Drives `clients` threads of synchronous ops against a thread-transport
/// cluster; measures wall-clock throughput.
inline RunResult RunThreadWorkload(Cluster& cluster, int clients,
                                   size_t ops_per_client,
                                   double insert_fraction, uint64_t seed) {
  RunResult result;
  result.ops = static_cast<uint64_t>(clients) * ops_per_client;
  auto before = cluster.NetStats();
  std::vector<std::thread> workers;
  const uint64_t t0 = NowNanos();
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      Rng rng(seed * 1000 + c);
      for (size_t i = 0; i < ops_per_client; ++i) {
        ProcessorId home =
            static_cast<ProcessorId>((c + i) % cluster.size());
        Key k = rng.Range(1, 1ull << 40);
        if (rng.NextDouble() < insert_fraction) {
          cluster.Insert(home, k, i);
        } else {
          cluster.Search(home, k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  cluster.Settle(std::chrono::milliseconds(120000));
  result.seconds = (NowNanos() - t0) * 1e-9;
  result.net = cluster.NetStats() - before;
  result.completed = result.ops;
  return result;
}

/// Standard preamble naming the experiment.
inline void Banner(const char* exp_id, const char* paper_artifact,
                   const char* claim) {
  std::printf("=== %s — %s ===\n%s\n\n", exp_id, paper_artifact, claim);
}

}  // namespace lazytree::bench

#endif  // LAZYTREE_BENCH_BENCH_UTIL_H_
