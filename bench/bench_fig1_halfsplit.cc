// F1 — Fig. 1 (the half-split operation).
//
// The figure shows the two-step B-link split: (1) create the sibling and
// link it in; (2) lazily insert the pointer into the parent. This bench
// measures what that decomposition buys in the distributed setting: the
// actions and messages per split for each protocol, and how far parent
// completion lags behind the half-split (operations keep navigating
// through the link the whole time).

#include <set>

#include "bench/bench_util.h"

namespace lazytree {
namespace {

void Run() {
  bench::Banner(
      "F1", "Fig. 1 — half-split operation",
      "Two-step splits keep every action local to one node at a time; the\n"
      "parent pointer is installed lazily while searches recover via the\n"
      "right link. Rows: per-protocol action counts per split.");

  bench::Table table({"protocol", "splits", "coord msgs/split",
                      "creates/split", "ops_ok"});
  table.Header();

  for (ProtocolKind protocol :
       {ProtocolKind::kSemiSyncSplit, ProtocolKind::kSyncSplit,
        ProtocolKind::kVigorous, ProtocolKind::kMobile,
        ProtocolKind::kVarCopies}) {
    ClusterOptions o;
    o.processors = 8;
    o.protocol = protocol;
    o.transport = TransportKind::kSim;
    o.seed = 1;
    o.tree.max_entries = 8;
    o.tree.track_history = false;
    Cluster cluster(o);
    cluster.Start();

    auto before = cluster.NetStats();
    auto result = bench::RunSimWorkload(cluster, 6000,
                                        /*insert_fraction=*/1.0, 11);
    auto net = result.net;

    // Count splits from the final tree shape: every node beyond the
    // bootstrap pair came from one split (or root growth).
    std::set<NodeId> nodes;
    for (ProcessorId id = 0; id < cluster.size(); ++id) {
      cluster.processor(id).store().ForEach(
          [&](const Node& n) { nodes.insert(n.id()); });
    }
    const double splits = static_cast<double>(nodes.size() - 2);
    const uint64_t split_msgs =
        net.ActionCount(ActionKind::kSplitStart) +
        net.ActionCount(ActionKind::kSplitAck) +
        net.ActionCount(ActionKind::kSplitEnd) +
        net.ActionCount(ActionKind::kRelayedSplit) +
        net.ActionCount(ActionKind::kVigorousApplySplit) +
        net.ActionCount(ActionKind::kCreateNode);
    table.Row({ProtocolKindName(protocol), bench::FmtU((uint64_t)splits),
               bench::Fmt("%.1f", split_msgs / splits),
               bench::Fmt("%.2f",
                          net.ActionCount(ActionKind::kCreateNode) /
                              splits),
               bench::FmtU(result.completed)});
    (void)before;
  }
  std::printf(
      "\nShape check: lazy protocols complete splits in O(copies) "
      "messages;\nno operation ever failed while splits were in flight.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
