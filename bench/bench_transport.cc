// Transport microbenchmark + protocol throughput pipeline (PR 2).
//
// Part 1 measures the raw ThreadNetwork message hot path: msgs/sec,
// actions/sec and delivery latency (p50/p99) for the zero-copy fast path
// vs. the checked wire round-trip mode (the pre-PR-2 pipeline), over
// three coalesced-message mixes shaped like what the piggyback layer
// hands the transport: pure relayed-insert batches, a mixed stream with
// occasional snapshot-bearing split relays, and a split-heavy stream
// where every action carries a node snapshot (the |copies(n)| relay
// traffic the paper's lazy protocols generate).
//
// Part 2 measures end-to-end protocol throughput (ops/sec) on the thread
// transport for {naive, sync, semisync} at 4/8/16 processors, so future
// PRs have a recorded perf trajectory.
//
// `--json PATH` writes the full result set (BENCH_PR2.json at the repo
// root via the `lazytree_bench` target); `--smoke` runs only the 2-second
// fast-path microbenchmark as a perf-path compile regression check
// (`ctest -L bench`). Build with -DCMAKE_BUILD_TYPE=Release for numbers
// worth recording.

#include <cstring>
#include <fstream>

#include "bench/bench_util.h"
#include "src/net/thread_network.h"
#include "src/util/logging.h"

namespace lazytree {
namespace {

// --- Part 1: raw transport ---

/// Per-station sink: timestamps carried in Action::value become delivery
/// latency samples. Each station's histogram is touched only by its own
/// worker thread; merged after Stop.
class LatencySink : public net::Receiver {
 public:
  void Deliver(Message m) override {
    ++delivered_msgs_;
    delivered_actions_ += m.actions.size();
    // Blast mode sends value==0 (untimed): saturated-queue latency is a
    // queue-depth artifact, so only paced sends carry timestamps.
    if (!m.actions.empty() && m.actions[0].value != 0) {
      latency_us_.Record((NowNanos() - m.actions[0].value) / 1000);
    }
  }
  Histogram latency_us_;
  uint64_t delivered_msgs_ = 0;
  uint64_t delivered_actions_ = 0;
};

struct TransportResult {
  uint64_t messages = 0;
  uint64_t actions = 0;
  double msgs_per_sec = 0;
  double actions_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// A coalesced-message shape: `actions_per_msg` actions per message,
/// every `split_every`-th action a kRelayedSplit carrying a
/// `split_entries`-entry node snapshot (the rest are kRelayedInsert).
/// `split_every` larger than `actions_per_msg` means no snapshots.
struct MixSpec {
  const char* name;
  int actions_per_msg;
  int split_every;
  int split_entries;
};

constexpr MixSpec kMixes[] = {
    // Bare coalesced inserts: per-message overhead dominates.
    {"inserts", 8, 1 << 20, 0},
    // Occasional split relay riding an insert batch.
    {"mixed", 8, 4, 24},
    // All-split relay stream (node snapshots at the repo's max_entries):
    // per-action serialization cost dominates. Headline mix.
    {"splits", 16, 1, 24},
};

/// `senders` producer threads blast coalesced messages at `stations`
/// receivers for `seconds`; the clock stops at quiescence so the rate
/// counts fully handled messages, not enqueues. Every burst ends with
/// WaitQuiescent, which bounds inbox depth (the queues are unbounded)
/// without putting any per-message synchronization on the measured path.
/// In `paced` mode a single sender uses small bursts, so the latency
/// percentiles measure per-message delivery cost instead of saturated
/// queue depth.
///
TransportResult RunTransportBench(bool checked_wire, const MixSpec& mix,
                                  int stations, int senders, double seconds,
                                  bool paced = false) {
  if (paced) senders = 1;
  const int actions_per_msg = mix.actions_per_msg;
  const int split_every = mix.split_every;
  const int split_entries = mix.split_entries;
  net::ThreadNetwork net(
      net::ThreadNetwork::Options{.checked_wire = checked_wire});
  std::vector<std::unique_ptr<LatencySink>> sinks;
  for (ProcessorId id = 0; id < static_cast<ProcessorId>(stations); ++id) {
    sinks.push_back(std::make_unique<LatencySink>());
    net.Register(id, sinks.back().get());
  }
  net.Start();

  NodeSnapshot split_snapshot;
  split_snapshot.id = NodeId::Make(1, 42);
  split_snapshot.range = {1000, 1000 + static_cast<Key>(split_entries)};
  split_snapshot.copies = {0, 1, 2};
  split_snapshot.pc = 0;
  for (Key k = 1000; k < 1000 + static_cast<Key>(split_entries); ++k) {
    split_snapshot.entries.push_back({k, k});
  }

  std::atomic<uint64_t> sent_msgs{0};
  std::atomic<uint64_t> sent_actions{0};
  const uint64_t deadline =
      NowNanos() + static_cast<uint64_t>(seconds * 1e9);
  const uint64_t t0 = NowNanos();
  std::vector<std::thread> producers;
  for (int s = 0; s < senders; ++s) {
    producers.emplace_back([&, s] {
      uint64_t msgs = 0;
      uint64_t actions = 0;
      ProcessorId to = static_cast<ProcessorId>(s % stations);
      const int burst_size = paced ? 16 : 256;
      while (NowNanos() < deadline) {
        for (int burst = 0; burst < burst_size; ++burst) {
          Message m;
          m.from = static_cast<ProcessorId>(s % stations);
          to = static_cast<ProcessorId>((to + 1) % stations);
          m.to = to;
          m.actions.reserve(actions_per_msg);
          const uint64_t stamp = paced ? NowNanos() : 0;
          for (int i = 0; i < actions_per_msg; ++i) {
            Action a;
            if (i % split_every == split_every - 1) {
              a.kind = ActionKind::kRelayedSplit;
              a.snapshot = split_snapshot;
            } else {
              a.kind = ActionKind::kRelayedInsert;
            }
            a.key = actions + static_cast<uint64_t>(i);
            a.value = stamp;
            m.actions.push_back(std::move(a));
          }
          actions += m.actions.size();
          net.Send(std::move(m));
          ++msgs;
        }
        net.WaitQuiescent(std::chrono::milliseconds(paced ? 100 : 10000));
      }
      sent_msgs.fetch_add(msgs);
      sent_actions.fetch_add(actions);
    });
  }
  for (auto& t : producers) t.join();
  bool quiesced = net.WaitQuiescent(std::chrono::milliseconds(60000));
  const double elapsed = (NowNanos() - t0) * 1e-9;
  net.Stop();
  LAZYTREE_CHECK(quiesced) << "transport bench did not quiesce";

  Histogram merged;
  uint64_t delivered_msgs = 0;
  uint64_t delivered_actions = 0;
  for (auto& sink : sinks) {
    merged.Merge(sink->latency_us_);
    delivered_msgs += sink->delivered_msgs_;
    delivered_actions += sink->delivered_actions_;
  }
  LAZYTREE_CHECK(delivered_msgs == sent_msgs.load() &&
                 delivered_actions == sent_actions.load())
      << "lost messages: sent " << sent_msgs.load() << " delivered "
      << delivered_msgs;

  TransportResult r;
  r.messages = sent_msgs.load();
  r.actions = sent_actions.load();
  r.msgs_per_sec = r.messages / elapsed;
  r.actions_per_sec = r.actions / elapsed;
  r.p50_us = merged.P50();
  r.p99_us = merged.P99();
  return r;
}

// --- Part 2: protocol throughput ---

struct ProtocolResult {
  ProtocolKind protocol;
  uint32_t processors;
  double ops_per_sec = 0;
  double remote_msgs_per_op = 0;
  /// Link loss injected for this row (0 = pristine network, no reliable
  /// layer) and the reliability counters it produced (net/reliable.h).
  double drop = 0;
  uint64_t retransmits = 0;
  uint64_t duplicates_dropped = 0;
  uint64_t acks_piggybacked = 0;
  uint64_t link_down = 0;
};

ProtocolResult RunProtocolBench(ProtocolKind protocol, uint32_t processors,
                                size_t ops_per_client, double drop = 0) {
  ClusterOptions o;
  o.processors = processors;
  o.protocol = protocol;
  o.transport = TransportKind::kThreads;
  o.tree.max_entries = 24;
  o.tree.track_history = false;
  if (drop > 0) {
    o.faults.drop = drop;
    o.faults.seed = 29;
    o.reliability.max_retransmits = 20;
  }
  Cluster cluster(o);
  cluster.Start();
  bench::RunResult run = bench::RunThreadWorkload(
      cluster, /*clients=*/static_cast<int>(processors), ops_per_client,
      /*insert_fraction=*/0.5, /*seed=*/17);
  ProtocolResult r;
  r.protocol = protocol;
  r.processors = processors;
  r.ops_per_sec = run.OpsPerSec();
  r.remote_msgs_per_op = run.RemoteMsgsPerOp();
  r.drop = drop;
  r.retransmits = run.net.retransmits;
  r.duplicates_dropped = run.net.duplicates_dropped;
  r.acks_piggybacked = run.net.acks_piggybacked;
  r.link_down = run.net.link_down;
  return r;
}

// --- driver ---

struct MixResult {
  const MixSpec* mix;
  TransportResult fast;
  TransportResult checked;
  double Speedup() const {
    return fast.msgs_per_sec / checked.msgs_per_sec;
  }
};

void WriteJson(const std::string& path, const std::vector<MixResult>& mixes,
               const std::vector<ProtocolResult>& protocols) {
  std::ofstream out(path);
  LAZYTREE_CHECK(out.good()) << "cannot write " << path;
  char buf[512];
  out << "{\n  \"bench\": \"PR2 transport + protocol pipeline\",\n";
  std::snprintf(buf, sizeof(buf), "  \"hardware_threads\": %u,\n",
                std::thread::hardware_concurrency());
  out << buf;
  auto transport_obj = [&](const char* name, const TransportResult& r) {
    std::snprintf(
        buf, sizeof(buf),
        "      \"%s\": {\"messages\": %llu, \"msgs_per_sec\": %.0f, "
        "\"actions_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f}",
        name, static_cast<unsigned long long>(r.messages), r.msgs_per_sec,
        r.actions_per_sec, r.p50_us, r.p99_us);
    out << buf;
  };
  out << "  \"transport\": {\n    \"mixes\": [\n";
  for (size_t i = 0; i < mixes.size(); ++i) {
    const MixResult& m = mixes[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mix\": \"%s\", \"actions_per_msg\": %d,\n",
                  m.mix->name, m.mix->actions_per_msg);
    out << buf;
    transport_obj("fast", m.fast);
    out << ",\n";
    transport_obj("checked", m.checked);
    std::snprintf(buf, sizeof(buf), ",\n      \"speedup\": %.2f}%s\n",
                  m.Speedup(), i + 1 < mixes.size() ? "," : "");
    out << buf;
  }
  // Headline number: the split-relay stream, the shape whose wire cost
  // the zero-copy path is built to avoid.
  std::snprintf(buf, sizeof(buf),
                "    ],\n    \"headline_mix\": \"%s\",\n"
                "    \"speedup_fast_over_checked\": %.2f\n  },\n",
                mixes.back().mix->name, mixes.back().Speedup());
  out << buf;
  out << "  \"protocols\": [\n";
  for (size_t i = 0; i < protocols.size(); ++i) {
    const ProtocolResult& p = protocols[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"protocol\": \"%s\", \"processors\": %u, "
        "\"ops_per_sec\": %.0f, \"remote_msgs_per_op\": %.2f, "
        "\"drop_pct\": %.1f, \"retransmits\": %llu, "
        "\"duplicates_dropped\": %llu, \"acks_piggybacked\": %llu, "
        "\"link_down\": %llu}%s\n",
        ProtocolKindName(p.protocol), p.processors, p.ops_per_sec,
        p.remote_msgs_per_op, p.drop * 100,
        static_cast<unsigned long long>(p.retransmits),
        static_cast<unsigned long long>(p.duplicates_dropped),
        static_cast<unsigned long long>(p.acks_piggybacked),
        static_cast<unsigned long long>(p.link_down),
        i + 1 < protocols.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

int Run(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  double seconds = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--smoke] [--seconds N]\n",
                   argv[0]);
      return 2;
    }
  }
#ifndef NDEBUG
  std::printf(
      "WARNING: assertions are enabled (Debug/Sanitize build); use\n"
      "  cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release\n"
      "for numbers worth recording.\n\n");
#endif

  bench::Banner(
      "T1", "transport hot path — zero-copy vs. checked wire",
      "msgs/sec, actions/sec and delivery latency through ThreadNetwork\n"
      "for three coalesced-message mixes (4 senders -> 4 stations):\n"
      "  inserts  8 relayed inserts per message, no snapshots\n"
      "  mixed    8 actions per message, every 4th a 24-entry split relay\n"
      "  splits   16 split relays per message, 24-entry snapshots each");

  if (smoke) {
    // Perf-path compile regression check: just prove the fast path moves
    // messages end to end at a sane rate.
    TransportResult fast = RunTransportBench(false, kMixes[1], 4, 4, seconds);
    std::printf("smoke: %llu msgs, %.0f msgs/sec, p50 %.1fµs p99 %.1fµs\n",
                static_cast<unsigned long long>(fast.messages),
                fast.msgs_per_sec, fast.p50_us, fast.p99_us);
    LAZYTREE_CHECK(fast.messages > 0) << "no messages delivered";
    return 0;
  }

  // Throughput from the saturating blast; latency from a paced run where
  // queues stay shallow.
  auto measure = [&](const MixSpec& mix, bool checked_wire) {
    TransportResult r = RunTransportBench(checked_wire, mix, 4, 4, seconds);
    TransportResult paced = RunTransportBench(checked_wire, mix, 4, 1,
                                              seconds / 4, /*paced=*/true);
    r.p50_us = paced.p50_us;
    r.p99_us = paced.p99_us;
    return r;
  };
  std::vector<MixResult> mixes;
  bench::Table table({"mix", "mode", "msgs/sec", "actions/sec", "p50 µs",
                      "p99 µs", "speedup"});
  table.Header();
  for (const MixSpec& mix : kMixes) {
    MixResult m;
    m.mix = &mix;
    m.fast = measure(mix, false);
    m.checked = measure(mix, true);
    table.Row({mix.name, "fast", bench::Fmt("%.0f", m.fast.msgs_per_sec),
               bench::Fmt("%.0f", m.fast.actions_per_sec),
               bench::Fmt("%.1f", m.fast.p50_us),
               bench::Fmt("%.1f", m.fast.p99_us),
               bench::Fmt("%.2fx", m.Speedup())});
    table.Row({mix.name, "checked",
               bench::Fmt("%.0f", m.checked.msgs_per_sec),
               bench::Fmt("%.0f", m.checked.actions_per_sec),
               bench::Fmt("%.1f", m.checked.p50_us),
               bench::Fmt("%.1f", m.checked.p99_us), ""});
    mixes.push_back(std::move(m));
  }
  std::printf("\nheadline (splits mix) speedup: %.2fx\n\n",
              mixes.back().Speedup());

  bench::Banner("T2", "protocol ops/sec on the thread transport",
                "End-to-end throughput per protocol and cluster size\n"
                "(50% inserts, synchronous clients, one per processor).");
  std::vector<ProtocolResult> protocols;
  bench::Table ptable({"protocol", "procs", "ops/sec", "remote msgs/op"});
  ptable.Header();
  for (uint32_t procs : {4u, 8u, 16u}) {
    for (ProtocolKind kind :
         {ProtocolKind::kNaive, ProtocolKind::kSyncSplit,
          ProtocolKind::kSemiSyncSplit}) {
      protocols.push_back(RunProtocolBench(kind, procs,
                                           /*ops_per_client=*/1000));
      const ProtocolResult& p = protocols.back();
      ptable.Row({ProtocolKindName(p.protocol), bench::FmtU(p.processors),
                  bench::Fmt("%.0f", p.ops_per_sec),
                  bench::Fmt("%.2f", p.remote_msgs_per_op)});
    }
  }

  // One lossy row prices the reliable layer under real loss on the
  // thread transport; bench_faults has the full sweep.
  protocols.push_back(RunProtocolBench(ProtocolKind::kSemiSyncSplit, 4,
                                       /*ops_per_client=*/1000,
                                       /*drop=*/0.01));
  {
    const ProtocolResult& p = protocols.back();
    std::printf(
        "\nsemisync @ 1%% drop (4 procs, reliable layer): %.0f ops/sec, "
        "%llu retransmits, %llu deduped, %llu piggybacked acks, %llu "
        "links down\n",
        p.ops_per_sec, static_cast<unsigned long long>(p.retransmits),
        static_cast<unsigned long long>(p.duplicates_dropped),
        static_cast<unsigned long long>(p.acks_piggybacked),
        static_cast<unsigned long long>(p.link_down));
  }

  if (!json_path.empty()) {
    WriteJson(json_path, mixes, protocols);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace lazytree

int main(int argc, char** argv) { return lazytree::Run(argc, argv); }
