// A3 — ablation for the never-merge design choice.
//
// The paper's dB-tree "never merges nodes and performs data balancing on
// leaf nodes (we have previously found that never merging nodes results
// in little loss in space utilization [11])". This bench measures that
// premise on our implementation: leaf space utilization through grow,
// steady-churn, and shrink phases under free-at-empty deletes.

#include <set>

#include "bench/bench_util.h"

namespace lazytree {
namespace {

struct Util {
  size_t leaves = 0;
  size_t keys = 0;
  double utilization = 0;  // keys / (leaves * capacity)
};

Util Measure(Cluster& cluster, size_t capacity) {
  Util u;
  std::set<NodeId> seen;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    cluster.processor(id).store().ForEach([&](const Node& n) {
      if (!n.is_leaf() || !seen.insert(n.id()).second) return;
      ++u.leaves;
      u.keys += n.size();
    });
  }
  u.utilization = u.leaves
                      ? static_cast<double>(u.keys) /
                            (static_cast<double>(u.leaves) * capacity)
                      : 0;
  return u;
}

void Run() {
  bench::Banner(
      "A3", "[11] — free-at-empty space utilization (design ablation)",
      "Nodes are never merged; deletes leave slack behind. [11] found the\n"
      "loss modest — measured here across grow / churn / shrink phases\n"
      "(B-trees with inserts only sit near ln 2 = 0.69).");

  constexpr size_t kCapacity = 16;
  ClusterOptions o;
  o.processors = 4;
  o.protocol = ProtocolKind::kSemiSyncSplit;
  o.transport = TransportKind::kSim;
  o.seed = 11;
  o.tree.max_entries = kCapacity;
  o.tree.track_history = false;
  Cluster cluster(o);
  cluster.Start();

  bench::Table table({"phase              ", "keys ", "leaves", "utilization"});
  table.Header();
  Rng rng(3);
  std::vector<Key> live;

  auto insert_n = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      Key k = rng.Range(1, 1ull << 40);
      cluster.InsertAsync(static_cast<ProcessorId>(i % 4), k, 1,
                          [](const OpResult&) {});
      live.push_back(k);
      if (i % 256 == 0) cluster.Settle();
    }
    cluster.Settle();
  };
  auto delete_n = [&](size_t n) {
    for (size_t i = 0; i < n && !live.empty(); ++i) {
      size_t pick = rng.Below(live.size());
      cluster.DeleteAsync(static_cast<ProcessorId>(i % 4), live[pick],
                          [](const OpResult&) {});
      live[pick] = live.back();
      live.pop_back();
      if (i % 256 == 0) cluster.Settle();
    }
    cluster.Settle();
  };
  auto report = [&](const char* phase) {
    Util u = Measure(cluster, kCapacity);
    table.Row({phase, bench::FmtU(u.keys), bench::FmtU(u.leaves),
               bench::Fmt("%.2f", u.utilization)});
  };

  insert_n(8000);
  report("grow to 8k");
  for (int round = 0; round < 4; ++round) {
    delete_n(2000);
    insert_n(2000);
  }
  report("churn 4x(-2k,+2k)");
  delete_n(6000);
  report("shrink to 2k");
  insert_n(6000);
  report("regrow to 8k");

  std::printf(
      "\nShape check: insert-only utilization lands near ln2 (0.69);\n"
      "churn at constant size costs a handful of points (the [11]\n"
      "premise); only a deliberate 4x shrink leaves real slack, and\n"
      "regrowth reclaims it by refilling emptied nodes.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
