// F3 — Fig. 3 (lazy inserts commute).
//
// The figure's scenario: two children of a replicated parent half-split
// "at about the same time"; the two pointer inserts reach the parent's
// copies in different orders, the copies are transiently inconsistent,
// yet the tree stays navigable and the copies converge without any
// synchronization. We regenerate the scenario at increasing parent copy
// counts and measure deliveries to convergence plus the final checks.

#include "bench/bench_util.h"
#include "src/history/checker.h"

namespace lazytree {
namespace {

void Run() {
  bench::Banner(
      "F3", "Fig. 3 — concurrent lazy inserts on a replicated parent",
      "Simultaneous child splits insert into different parent copies in\n"
      "different orders; copies transiently diverge but converge with no\n"
      "synchronization (compatible histories at quiescence).");

  bench::Table table({"parent_copies", "racing_splits", "deliveries",
                      "relays", "converged", "searchable_during"});
  table.Header();

  for (uint32_t copies : {2u, 4u, 8u}) {
    ClusterOptions o;
    o.processors = copies;
    o.protocol = ProtocolKind::kSemiSyncSplit;
    o.transport = TransportKind::kSim;
    o.seed = copies;
    o.tree.max_entries = 6;
    o.tree.track_history = true;
    Cluster cluster(o);
    cluster.Start();
    // A modest tree so leaves hang under replicated interior parents.
    std::vector<Key> keys = bench::Preload(cluster, 600, 5);

    // Race: enqueue a burst of inserts that will split many leaves
    // "at about the same time", plus concurrent searches that must keep
    // succeeding mid-divergence.
    Rng rng(9);
    uint64_t searches_ok = 0, searches = 0;
    auto before = cluster.NetStats();
    uint64_t delivered_before = cluster.sim()->delivered();
    for (int i = 0; i < 800; ++i) {
      cluster.InsertAsync(static_cast<ProcessorId>(i % copies),
                          rng.Range(1, 1ull << 40), 1,
                          [](const OpResult&) {});
    }
    for (int i = 0; i < 200; ++i) {
      Key probe = keys[rng.Below(keys.size())];
      ++searches;
      cluster.SearchAsync(static_cast<ProcessorId>(i % copies), probe,
                          [&](const OpResult& r) {
                            if (r.status.ok()) ++searches_ok;
                          });
    }
    cluster.Settle();
    auto net = cluster.NetStats() - before;
    uint64_t deliveries = cluster.sim()->delivered() - delivered_before;

    auto report = cluster.VerifyHistories();
    const uint64_t splits = net.ActionCount(ActionKind::kRelayedSplit);
    table.Row({std::to_string(copies), bench::FmtU(splits),
               bench::FmtU(deliveries),
               bench::FmtU(net.ActionCount(ActionKind::kRelayedInsert)),
               report.ok() ? "yes" : "NO",
               bench::Fmt("%.0f%%", 100.0 * searches_ok / searches)});
    if (!report.ok()) {
      std::printf("%s\n", report.ToString().c_str());
    }
  }
  std::printf(
      "\nShape check: every run converges (compatible histories) and all\n"
      "concurrent searches succeed while parent copies disagree.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
