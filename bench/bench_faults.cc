// bench_faults — the loss sweep for the reliable-delivery layer
// (EXPERIMENTS.md "Loss sweep"; PR9 robustness work).
//
// The paper assumes a reliable, exactly-once, FIFO network (§4); the
// net/reliable.h layer manufactures that assumption on top of a lossy
// link. This bench prices the manufacturing: a mixed insert/search
// workload runs against clusters whose links drop 0% / 0.1% / 1% / 5% of
// messages (via net/faults.h), on both the simulated and the real-thread
// transport, and reports goodput plus the reliability counters
// (retransmits, duplicates deduped, piggybacked acks, links declared
// down). A raw row — no reliable layer, no faults — anchors the overhead
// of the layer itself at 0% loss.
//
// Every operation must still complete at every loss rate: loss degrades
// throughput, never correctness. The bench CHECK-fails otherwise, which
// is what the CI smoke run (`--smoke`, one 1%-drop scenario) exists to
// catch.
//
// `--json PATH` writes the machine-readable sweep (BENCH_PR9.json via
// the `lazytree_bench` target).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/net/faults.h"

namespace lazytree::bench {
namespace {

struct SweepPoint {
  const char* transport;  // "sim" | "threads"
  double drop;            // per-message loss probability
  bool reliable;          // false only for the raw 0%-loss anchor row
};

struct SweepResult {
  SweepPoint point;
  uint64_t ops = 0;
  double ops_per_sec = 0;
  double remote_msgs_per_op = 0;
  uint64_t dropped = 0;  // messages the fault layer actually ate
  uint64_t retransmits = 0;
  uint64_t duplicates_dropped = 0;
  uint64_t acks_piggybacked = 0;
  uint64_t link_down = 0;
};

SweepResult RunPoint(const SweepPoint& point, size_t ops, bool smoke) {
  ClusterOptions o;
  o.processors = 4;
  o.protocol = ProtocolKind::kSemiSyncSplit;
  o.transport = std::strcmp(point.transport, "sim") == 0
                    ? TransportKind::kSim
                    : TransportKind::kThreads;
  o.seed = 17;
  o.tree.max_entries = 24;
  o.tree.track_history = false;
  if (point.drop > 0) {
    o.faults.drop = point.drop;
    o.faults.seed = 29;
  }
  // Pin the layer explicitly: the sweep's 0%-loss reliable row must
  // carry the seq/ack machinery so its cost is visible against the raw
  // row, and the lossy rows must not depend on the auto-enable rule.
  o.reliable = point.reliable ? 1 : 0;
  // Generous budget: at 5% loss a frame's k-th retransmit is still lost
  // with probability 0.05^k, so links must survive the whole run.
  o.reliability.max_retransmits = 20;

  Cluster cluster(o);
  cluster.Start();
  Preload(cluster, smoke ? 256 : 1024, /*seed=*/5);
  auto before = cluster.NetStats();
  uint64_t dropped_before =
      cluster.faulty() != nullptr ? cluster.faulty()->dropped() : 0;
  RunResult run;
  if (o.transport == TransportKind::kSim) {
    run = RunSimWorkload(cluster, ops, /*insert_fraction=*/0.5,
                         /*seed=*/23);
  } else {
    const int clients = 4;
    run = RunThreadWorkload(cluster, clients, ops / clients,
                            /*insert_fraction=*/0.5, /*seed=*/23);
  }
  auto net = cluster.NetStats() - before;

  SweepResult r;
  r.point = point;
  r.ops = run.ops;
  r.ops_per_sec = run.OpsPerSec();
  r.remote_msgs_per_op = run.RemoteMsgsPerOp();
  r.dropped = (cluster.faulty() != nullptr ? cluster.faulty()->dropped()
                                           : 0) -
              dropped_before;
  r.retransmits = net.retransmits;
  r.duplicates_dropped = net.duplicates_dropped;
  r.acks_piggybacked = net.acks_piggybacked;
  r.link_down = net.link_down;

  // Loss must degrade throughput, never correctness: every client op
  // completed and no link exhausted its budget.
  LAZYTREE_CHECK(run.completed == run.ops)
      << point.transport << " drop=" << point.drop << ": completed "
      << run.completed << " of " << run.ops;
  LAZYTREE_CHECK(r.link_down == 0)
      << point.transport << " drop=" << point.drop
      << ": a link died mid-sweep";
  if (point.drop > 0) {
    LAZYTREE_CHECK(r.dropped > 0)
        << "fault plan injected no loss at drop=" << point.drop;
    LAZYTREE_CHECK(r.retransmits > 0)
        << "loss without retransmissions at drop=" << point.drop;
  }
  cluster.Stop();
  return r;
}

void WriteJson(const std::string& path,
               const std::vector<SweepResult>& sweep) {
  std::ofstream out(path);
  LAZYTREE_CHECK(out.good()) << "cannot write " << path;
  char buf[512];
  out << "{\n  \"bench\": \"PR9 loss sweep: reliable delivery over lossy "
         "links\",\n";
  out << "  \"workload\": \"50/50 insert/search, 4 processors, "
         "semisync-split\",\n";
  out << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepResult& r = sweep[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"transport\": \"%s\", \"drop_pct\": %.1f, "
        "\"reliable\": %s, \"ops\": %llu, \"ops_per_sec\": %.0f, "
        "\"remote_msgs_per_op\": %.2f, \"messages_lost\": %llu, "
        "\"retransmits\": %llu, \"duplicates_dropped\": %llu, "
        "\"acks_piggybacked\": %llu, \"link_down\": %llu}%s\n",
        r.point.transport, r.point.drop * 100,
        r.point.reliable ? "true" : "false",
        static_cast<unsigned long long>(r.ops), r.ops_per_sec,
        r.remote_msgs_per_op, static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.duplicates_dropped),
        static_cast<unsigned long long>(r.acks_piggybacked),
        static_cast<unsigned long long>(r.link_down),
        i + 1 < sweep.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<SweepPoint> points;
  if (smoke) {
    // The CI-sized run: the one 1%-drop scenario on both transports.
    points = {{"sim", 0.01, true}, {"threads", 0.01, true}};
  } else {
    for (const char* transport : {"sim", "threads"}) {
      points.push_back({transport, 0.0, false});  // raw anchor
      for (double drop : {0.0, 0.001, 0.01, 0.05}) {
        points.push_back({transport, drop, true});
      }
    }
  }
  const size_t ops = smoke ? 512 : 4096;

  std::printf("loss sweep: %zu ops/point, 4 processors, semisync-split\n\n",
              ops);
  Table table({"transport", "drop%", "reliable", "ops/sec", "rmsg/op",
               "lost", "rexmit", "dedup", "piggyack", "linkdown"});
  table.Header();
  std::vector<SweepResult> sweep;
  for (const SweepPoint& p : points) {
    SweepResult r = RunPoint(p, ops, smoke);
    table.Row({r.point.transport, Fmt("%.1f", r.point.drop * 100),
               r.point.reliable ? "yes" : "no", Fmt("%.0f", r.ops_per_sec),
               Fmt("%.2f", r.remote_msgs_per_op), FmtU(r.dropped),
               FmtU(r.retransmits), FmtU(r.duplicates_dropped),
               FmtU(r.acks_piggybacked), FmtU(r.link_down)});
    sweep.push_back(r);
  }

  if (!json_path.empty()) {
    WriteJson(json_path, sweep);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace lazytree::bench

int main(int argc, char** argv) { return lazytree::bench::Main(argc, argv); }
