// F6 — Fig. 6 (incomplete histories due to concurrent joins and inserts).
//
// The figure's race, constructed deterministically:
//   1. processor p1 owns a leaf and a copy of its replicated parent n;
//   2. p1's leaf splits -> p1 performs the pointer insert on its copy of
//      n; the relays to n's other copies are *in flight* (held in the
//      piggyback buffer — §1.1 says relays may be arbitrarily delayed);
//   3. processor p3 receives a leaf under n and joins copies(n): the PC
//      grants a snapshot that does NOT contain the insert;
//   4. the delayed relay finally reaches the PC with a version that
//      predates p3's join — the PC re-relays it to p3 (§4.3 step 3a).
// Without the version machinery, p3's copy would be incomplete forever.
// Afterwards, an organic churn phase shows the same machinery holding up
// under randomized load.

#include <map>
#include <set>

#include "bench/bench_util.h"
#include "src/history/checker.h"
#include "src/protocol/varcopies.h"

namespace lazytree {
namespace {

uint64_t TotalRerelays(Cluster& cluster) {
  uint64_t total = 0;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    total += static_cast<VarCopiesProtocol*>(
                 cluster.processor(id).handler())
                 ->late_joiner_rerelays();
  }
  return total;
}

std::map<NodeId, std::pair<ProcessorId, KeyRange>> Leaves(
    Cluster& cluster) {
  std::map<NodeId, std::pair<ProcessorId, KeyRange>> leaves;
  for (ProcessorId id = 0; id < cluster.size(); ++id) {
    cluster.processor(id).store().ForEach([&](const Node& n) {
      if (n.is_leaf()) leaves[n.id()] = {id, n.range()};
    });
  }
  return leaves;
}

/// Pumps the base sim network dry WITHOUT flushing piggyback buffers
/// (Settle would flush them — that is the step we are delaying).
void PumpBase(Cluster& cluster) {
  while (cluster.sim()->Step()) {
  }
}

void ConstructedRace() {
  ClusterOptions o;
  o.processors = 4;
  o.protocol = ProtocolKind::kVarCopies;
  o.transport = TransportKind::kSim;
  o.seed = 1;
  o.tree.max_entries = 4;
  o.piggyback_window = 100000;  // relays stay buffered until we say so
  o.tree.track_history = true;
  Cluster cluster(o);
  cluster.Start();

  // Warm: a small tree, everything on p0; flush (Settle) is fine here.
  Rng rng(5);
  std::set<Key> warm;
  while (warm.size() < 60) warm.insert(rng.Range(1000, 1u << 20));
  for (Key k : warm) cluster.Insert(0, k, 1);

  // Step 1: move one leaf to p1 (p1 joins the leaf's path). Choose the
  // rightmost leaf: its interior ancestors are split-off siblings whose
  // membership was pruned back to the leaf owners (the leftmost spine
  // keeps its bootstrap everywhere-copies, which would mask the race).
  auto leaves = Leaves(cluster);
  NodeId moved = kInvalidNode;
  KeyRange moved_range;
  for (auto& [id, info] : leaves) {
    if (!moved.valid() || info.second.low > moved_range.low) {
      moved = id;
      moved_range = info.second;
    }
  }
  cluster.MigrateNode(moved, 0, 1);
  cluster.Settle();

  // Step 2: fill p1's leaf until it splits. The parent pointer insert
  // executes at p1's local parent copy; its relays to the other parent
  // copies enter the piggyback buffer and STAY there (no flush).
  Key probe = moved_range.low;
  for (int i = 0; i < 8; ++i) {
    cluster.InsertAsync(1, probe + 1 + i, 7, [](const OpResult&) {});
  }
  PumpBase(cluster);
  const size_t buffered = static_cast<net::PiggybackNetwork&>(
                              cluster.network())
                              .Buffered();

  // Step 3: a p0-hosted leaf just left of the moved one (same parent)
  // migrates to p3, which joins that parent; the PC's grant snapshot
  // predates the buffered insert. (Sourcing the join from p0 keeps the
  // p1->p0 channel idle, so the delayed relays stay in flight — any
  // direct p1->p0 message would piggyback them home early.)
  NodeId neighbor = kInvalidNode;
  Key best_low = 0;
  for (auto& [id, info] : Leaves(cluster)) {
    if (info.first == 0 && info.second.low < moved_range.low &&
        info.second.low >= best_low) {
      neighbor = id;
      best_low = info.second.low;
    }
  }
  cluster.MigrateNode(neighbor, 0, 3);
  PumpBase(cluster);
  const uint64_t rerelays_before_flush = TotalRerelays(cluster);

  // Step 4: release the delayed relays; the PC must re-relay to p3.
  cluster.Settle();
  const uint64_t rerelays_after = TotalRerelays(cluster);

  auto report = cluster.VerifyHistories();
  std::printf(
      "constructed race: %zu relays delayed in flight; re-relays fired "
      "before flush: %llu, after: %llu; history checks: %s\n\n",
      buffered, (unsigned long long)rerelays_before_flush,
      (unsigned long long)rerelays_after, report.ToString().c_str());
}

void OrganicChurn() {
  bench::Table table({"seed", "joins", "unjoins", "re-relays",
                      "msgs/join", "complete+compatible"});
  table.Header();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ClusterOptions o;
    o.processors = 8;
    o.protocol = ProtocolKind::kVarCopies;
    o.transport = TransportKind::kSim;
    o.seed = seed;
    o.tree.max_entries = 4;
    o.piggyback_window = 8;
    o.tree.track_history = true;
    Cluster cluster(o);
    cluster.Start();
    Rng warm_rng(seed + 50);
    std::set<Key> warm;
    while (warm.size() < 200) warm.insert(warm_rng.Range(1, 1u << 30));
    for (Key k : warm) cluster.Insert(0, k, 1);

    std::map<NodeId, ProcessorId> hosts;
    for (ProcessorId id = 0; id < 8; ++id) {
      cluster.processor(id).store().ForEach([&](const Node& n) {
        if (n.is_leaf()) hosts[n.id()] = id;
      });
    }
    auto before = cluster.NetStats();
    Rng rng(seed);
    std::set<Key> wave;
    while (wave.size() < 600) wave.insert(rng.Range(1, 1u << 30));
    auto it = hosts.begin();
    int i = 0;
    Rng dest_rng(seed);
    for (Key k : wave) {
      cluster.InsertAsync(static_cast<ProcessorId>(i % 8), k, 2,
                          [](const OpResult&) {});
      if (++i % 5 == 0 && it != hosts.end()) {
        cluster.MigrateNode(it->first, it->second,
                            static_cast<ProcessorId>(dest_rng.Below(8)));
        ++it;
      }
    }
    cluster.Settle();
    auto net = cluster.NetStats() - before;

    uint64_t joins = 0, unjoins = 0;
    for (ProcessorId id = 0; id < 8; ++id) {
      auto* var = static_cast<VarCopiesProtocol*>(
          cluster.processor(id).handler());
      joins += var->joins_granted();
      unjoins += var->unjoins_processed();
    }
    const uint64_t join_msgs = net.ActionCount(ActionKind::kJoin) +
                               net.ActionCount(ActionKind::kJoinGrant) +
                               net.ActionCount(ActionKind::kRelayedJoin);
    auto report = cluster.VerifyHistories();
    table.Row({std::to_string(seed), bench::FmtU(joins),
               bench::FmtU(unjoins), bench::FmtU(TotalRerelays(cluster)),
               joins ? bench::Fmt("%.1f", double(join_msgs) / joins) : "-",
               report.ok() ? "yes" : "NO"});
    if (!report.ok()) std::printf("%s\n", report.ToString().c_str());
  }
}

void Run() {
  bench::Banner(
      "F6", "Fig. 6 — joins racing inserts (variable copies)",
      "Every join increments the node version; the PC re-relays inserts\n"
      "attached to older versions to late joiners, so new copies obtain\n"
      "complete histories.");
  ConstructedRace();
  OrganicChurn();
  std::printf(
      "\nShape check: the constructed Fig.-6 interleaving requires the\n"
      "re-relay and still converges; organic churn keeps all three §3\n"
      "requirements green with ~3 messages per join.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
