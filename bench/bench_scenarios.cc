// bench_scenarios — the YCSB-grade scenario battery over lazytree::Cluster
// (EXPERIMENTS.md "Scenario battery"; ROADMAP item 2 shape).
//
// Phases per scenario: a load phase (records pre-inserted, not measured)
// and a timed run phase driving the standard A–F mixes plus two stressors
// of our own (hotspot-shift, delete-heavy churn) on both transports:
//
//   ycsb-a  50% read / 50% update            zipfian
//   ycsb-b  95% read /  5% update            zipfian
//   ycsb-c  100% read                        zipfian  (the scaling story)
//   ycsb-d  95% read /  5% insert            latest (completed-insert ring)
//   ycsb-e  95% scan /  5% insert            zipfian, scan limit 16
//   ycsb-f  50% read / 50% read-modify-write zipfian
//   hotspot-shift  95/5 read/update, hot 5% region jumps mid-run
//   churn   50% read / 25% insert / 25% delete over a small key space
//
// Reported per row: ops/sec, p50/p95/p99/p999 latency (µs — wall clock on
// threads, simulated time on sim), remote msgs/op, combined actions/op,
// fast-path hops/op, not_found/failed counts. `--json PATH` additionally
// emits the machine-readable battery (BENCH_PR7.json via the
// `lazytree_bench` target) including the 1→16-thread ycsb-c scaling grid
// and the combine/fastpath ablation. `--smoke` is the CI-sized run.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/util/affinity.h"
#include "src/workload/distributions.h"

namespace lazytree::bench {
namespace {

constexpr Key kSpace = 1ull << 30;

struct Spec {
  const char* name;
  double read, update, insert, rmw, scan, del;
  const char* dist;  // zipfian | latest | uniform | hotspot-shift
};

const Spec kSpecs[] = {
    {"ycsb-a", 0.50, 0.50, 0.00, 0.00, 0.00, 0.00, "zipfian"},
    {"ycsb-b", 0.95, 0.05, 0.00, 0.00, 0.00, 0.00, "zipfian"},
    {"ycsb-c", 1.00, 0.00, 0.00, 0.00, 0.00, 0.00, "zipfian"},
    {"ycsb-d", 0.95, 0.00, 0.05, 0.00, 0.00, 0.00, "latest"},
    {"ycsb-e", 0.00, 0.00, 0.05, 0.00, 0.95, 0.00, "zipfian"},
    {"ycsb-f", 0.50, 0.00, 0.00, 0.50, 0.00, 0.00, "zipfian"},
    {"hotspot-shift", 0.95, 0.05, 0.00, 0.00, 0.00, 0.00,
     "hotspot-shift"},
    {"churn", 0.50, 0.00, 0.25, 0.00, 0.00, 0.25, "uniform"},
};

/// Hotspot whose hot 5% region jumps to the far half of the key space
/// once half the run's operations have completed — the skew-migration
/// stressor (ROADMAP item 2): the replicas that were hot go cold and a
/// cold path must absorb the herd.
class ShiftingHotspotDist : public workload::KeyDistribution {
 public:
  ShiftingHotspotDist(Key space, const std::atomic<uint64_t>* progress,
                      uint64_t total_ops)
      : space_(space), progress_(progress), total_ops_(total_ops) {}
  Key Next(Rng& rng) override {
    const Key span = space_ / 20;
    const bool shifted =
        progress_->load(std::memory_order_relaxed) >= total_ops_ / 2;
    const Key base = shifted ? space_ / 2 : 1;
    if (rng.Chance(0.9)) return base + rng.Below(span);
    return 1 + rng.Below(space_ - 1);
  }
  const char* name() const override { return "hotspot-shift"; }

 private:
  Key space_;
  const std::atomic<uint64_t>* progress_;
  uint64_t total_ops_;
};

/// Everything one scenario's clients share. The distribution objects are
/// stateless per call (or internally atomic, for LatestDist), so client
/// threads share them with private Rngs.
struct ScenarioCtx {
  const Spec* spec;
  size_t records;
  size_t ops;
  Key churn_space;
  workload::ZipfianDist zipf;
  workload::LatestDist latest;
  workload::UniformDist uniform;
  ShiftingHotspotDist shift;
  std::atomic<uint64_t> progress{0};

  ScenarioCtx(const Spec& s, size_t rec, size_t n)
      : spec(&s),
        records(rec),
        ops(n),
        churn_space(rec * 2),
        zipf(rec, kSpace),
        latest(kSpace),
        uniform(s.dist == std::string("uniform") ? rec * 2 : kSpace),
        shift(kSpace, &progress, n) {}

  Key NextKey(Rng& rng) {
    if (std::strcmp(spec->dist, "zipfian") == 0) return zipf.Next(rng);
    if (std::strcmp(spec->dist, "latest") == 0) return latest.Next(rng);
    if (std::strcmp(spec->dist, "hotspot-shift") == 0)
      return shift.Next(rng);
    return uniform.Next(rng);
  }

  Key LoadKey(size_t i, Rng& rng) {
    if (std::strcmp(spec->dist, "zipfian") == 0 ||
        std::strcmp(spec->dist, "hotspot-shift") == 0) {
      // Loaded keys are exactly the zipfian rank universe, so run-phase
      // reads always address loaded records.
      return zipf.KeyForRank(1 + (i % records));
    }
    if (std::strcmp(spec->dist, "uniform") == 0) {
      return 1 + rng.Below(churn_space - 1);
    }
    return 1 + rng.Below(kSpace - 1);
  }

  /// Fresh key for a run-phase insert.
  Key InsertKey(Rng& rng) {
    if (std::strcmp(spec->dist, "uniform") == 0) {
      return 1 + rng.Below(churn_space - 1);
    }
    return 1 + rng.Below(kSpace - 1);
  }
};

struct Totals {
  Histogram lat_us;
  uint64_t not_found = 0;
  uint64_t failed = 0;
  uint64_t completed = 0;

  void Count(const Status& st) {
    ++completed;
    if (st.ok()) return;
    if (st.IsNotFound()) {
      ++not_found;
    } else if (!st.IsAlreadyExists()) {
      ++failed;
    }
  }
  void Absorb(const Totals& o) {
    lat_us.Merge(o.lat_us);
    not_found += o.not_found;
    failed += o.failed;
    completed += o.completed;
  }
};

struct Row {
  std::string scenario;
  std::string transport;
  double ops_per_sec = 0;
  double p50 = 0, p95 = 0, p99 = 0, p999 = 0;
  double remote_per_op = 0;
  double combined_per_op = 0;
  double fastpath_per_op = 0;
  double load_seconds = 0;
  uint64_t completed = 0, not_found = 0, failed = 0;
};

ClusterOptions MakeOptions(bool threads, uint32_t procs, uint64_t seed,
                           int8_t combine = -1, int8_t fastpath = -1) {
  ClusterOptions o;
  o.processors = procs;
  o.protocol = ProtocolKind::kSemiSyncSplit;
  o.transport = threads ? TransportKind::kThreads : TransportKind::kSim;
  o.seed = seed;
  o.combine_ops = combine;
  o.local_read_fastpath = fastpath;
  o.tree.max_entries = 8;
  o.tree.track_history = false;  // bench mode: no §3 bookkeeping
  o.check_histories = false;
  o.tree.upsert = true;  // YCSB updates are overwrites
  if (!threads) {
    // Timestamped sim: 4µs one-way remote latency, 1µs jitter, so the
    // latency columns mean something (simulated µs).
    o.sim_latency_us = 4;
    o.sim_jitter_us = 1;
  }
  return o;
}

double LoadPhase(Cluster& cluster, ScenarioCtx& ctx, uint64_t seed) {
  const uint64_t t0 = NowNanos();
  Rng rng(seed ^ 0x10adull);
  std::vector<Key> recent;  // tail of the load, seeds the latest-ring
  const bool is_latest = std::strcmp(ctx.spec->dist, "latest") == 0;
  for (size_t i = 0; i < ctx.records; ++i) {
    Key k = ctx.LoadKey(i, rng);
    cluster.InsertAsync(static_cast<ProcessorId>(i % cluster.size()), k,
                        static_cast<Value>(i), [](const OpResult&) {});
    if (is_latest) {
      recent.push_back(k);
      if (recent.size() > 2048) recent.erase(recent.begin());
    }
    // Periodic drains keep early inserts from chasing every split that
    // "later" inserts cause (and bound the threads-transport queues).
    if (i % 512 == 511) cluster.Settle(std::chrono::milliseconds(120000));
  }
  cluster.Settle(std::chrono::milliseconds(120000));
  // Everything above is settled, hence completed: publishing the tail is
  // exactly "completed inserts" semantics.
  for (Key k : recent) ctx.latest.Publish(k);
  return (NowNanos() - t0) * 1e-9;
}

// --- threads transport: synchronous client threads -----------------------

void ThreadClientLoop(Cluster& cluster, ScenarioCtx& ctx, int client,
                      size_t my_ops, uint64_t seed, Totals& t) {
  Rng rng(seed * 7919 + static_cast<uint64_t>(client));
  const Spec& s = *ctx.spec;
  for (size_t i = 0; i < my_ops; ++i) {
    const ProcessorId home = static_cast<ProcessorId>(
        (static_cast<size_t>(client) + i) % cluster.size());
    const double u = rng.NextDouble();
    const uint64_t t0 = NowNanos();
    if (u < s.read) {
      StatusOr<Value> r = cluster.Search(home, ctx.NextKey(rng));
      t.Count(r.status());
    } else if (u < s.read + s.update) {
      t.Count(cluster.Insert(home, ctx.NextKey(rng), i));
    } else if (u < s.read + s.update + s.insert) {
      Key k = ctx.InsertKey(rng);
      Status st = cluster.Insert(home, k, i);
      if (st.ok() && std::strcmp(s.dist, "latest") == 0) {
        ctx.latest.Publish(k);
      }
      t.Count(st);
    } else if (u < s.read + s.update + s.insert + s.rmw) {
      Key k = ctx.NextKey(rng);
      StatusOr<Value> r = cluster.Search(home, k);
      Status st = cluster.Insert(home, k, r.ok() ? *r + 1 : 1);
      t.Count(st);
    } else if (u < s.read + s.update + s.insert + s.rmw + s.scan) {
      StatusOr<std::vector<Entry>> r =
          cluster.Scan(home, ctx.NextKey(rng), 16);
      t.Count(r.status());
    } else {
      Status st = cluster.Delete(home, ctx.NextKey(rng));
      t.Count(st);
    }
    t.lat_us.Record((NowNanos() - t0) / 1000);
    ctx.progress.fetch_add(1, std::memory_order_relaxed);
  }
}

Row RunThreadsScenario(const Spec& spec, size_t records, size_t ops,
                       uint32_t procs, uint64_t seed, int8_t combine = -1,
                       int8_t fastpath = -1) {
  Cluster cluster(MakeOptions(true, procs, seed, combine, fastpath));
  cluster.Start();
  ScenarioCtx ctx(spec, records, ops);
  Row row;
  row.scenario = spec.name;
  row.transport = "threads";
  row.load_seconds = LoadPhase(cluster, ctx, seed);

  const int clients = static_cast<int>(procs);
  std::vector<Totals> per(clients);
  auto before = cluster.NetStats();
  std::vector<std::thread> workers;
  const uint64_t t0 = NowNanos();
  for (int c = 0; c < clients; ++c) {
    const size_t my_ops =
        ops / clients + (static_cast<size_t>(c) < ops % clients ? 1 : 0);
    workers.emplace_back([&, c, my_ops] {
      ThreadClientLoop(cluster, ctx, c, my_ops, seed, per[c]);
    });
  }
  for (auto& w : workers) w.join();
  const double seconds = (NowNanos() - t0) * 1e-9;
  cluster.Settle(std::chrono::milliseconds(120000));
  auto net = cluster.NetStats() - before;

  Totals totals;
  for (const Totals& t : per) totals.Absorb(t);
  row.ops_per_sec = seconds > 0 ? ops / seconds : 0;
  row.p50 = totals.lat_us.P50();
  row.p95 = totals.lat_us.P95();
  row.p99 = totals.lat_us.P99();
  row.p999 = totals.lat_us.P999();
  row.remote_per_op = static_cast<double>(net.remote_messages) / ops;
  row.combined_per_op = static_cast<double>(net.combined_actions) / ops;
  row.fastpath_per_op = static_cast<double>(net.fastpath_reads) / ops;
  row.completed = totals.completed;
  row.not_found = totals.not_found;
  row.failed = totals.failed;
  return row;
}

// --- sim transport: closed-loop async driver ------------------------------

struct SimScenarioDriver {
  Cluster* cluster;
  ScenarioCtx* ctx;
  Rng rng;
  size_t remaining;
  Totals* totals;

  void Finish(uint64_t t0, const Status& st) {
    totals->lat_us.Record(cluster->sim()->NowUs() - t0);
    totals->Count(st);
    ctx->progress.fetch_add(1, std::memory_order_relaxed);
    LaunchOne();
  }

  void LaunchOne() {
    if (remaining == 0) return;
    --remaining;
    const Spec& s = *ctx->spec;
    const ProcessorId home =
        static_cast<ProcessorId>(rng.Below(cluster->size()));
    const double u = rng.NextDouble();
    const uint64_t t0 = cluster->sim()->NowUs();
    if (u < s.read) {
      cluster->SearchAsync(home, ctx->NextKey(rng),
                           [this, t0](const OpResult& r) {
                             Finish(t0, r.status);
                           });
    } else if (u < s.read + s.update) {
      cluster->InsertAsync(home, ctx->NextKey(rng), 1,
                           [this, t0](const OpResult& r) {
                             Finish(t0, r.status);
                           });
    } else if (u < s.read + s.update + s.insert) {
      const Key k = ctx->InsertKey(rng);
      const bool publish = std::strcmp(s.dist, "latest") == 0;
      cluster->InsertAsync(home, k, 1,
                           [this, t0, k, publish](const OpResult& r) {
                             if (publish && r.status.ok()) {
                               ctx->latest.Publish(k);
                             }
                             Finish(t0, r.status);
                           });
    } else if (u < s.read + s.update + s.insert + s.rmw) {
      const Key k = ctx->NextKey(rng);
      cluster->SearchAsync(
          home, k, [this, t0, k, home](const OpResult& r) {
            const Value next = r.status.ok() ? r.value + 1 : 1;
            cluster->InsertAsync(home, k, next,
                                 [this, t0](const OpResult& r2) {
                                   Finish(t0, r2.status);
                                 });
          });
    } else if (u < s.read + s.update + s.insert + s.rmw + s.scan) {
      cluster->ScanAsync(home, ctx->NextKey(rng), 16,
                         [this, t0](const OpResult& r) {
                           Finish(t0, r.status);
                         });
    } else {
      cluster->DeleteAsync(home, ctx->NextKey(rng),
                           [this, t0](const OpResult& r) {
                             Finish(t0, r.status);
                           });
    }
  }
};

Row RunSimScenario(const Spec& spec, size_t records, size_t ops,
                   uint32_t procs, uint64_t seed) {
  Cluster cluster(MakeOptions(false, procs, seed));
  cluster.Start();
  ScenarioCtx ctx(spec, records, ops);
  Row row;
  row.scenario = spec.name;
  row.transport = "sim";
  row.load_seconds = LoadPhase(cluster, ctx, seed);

  Totals totals;
  auto before = cluster.NetStats();
  SimScenarioDriver driver{&cluster, &ctx, Rng(seed * 31 + 7), ops,
                           &totals};
  const uint64_t t0 = NowNanos();
  for (size_t i = 0; i < 32 && i < ops; ++i) driver.LaunchOne();
  cluster.Settle(std::chrono::milliseconds(240000));
  const double seconds = (NowNanos() - t0) * 1e-9;
  auto net = cluster.NetStats() - before;

  row.ops_per_sec = seconds > 0 ? ops / seconds : 0;
  row.p50 = totals.lat_us.P50();
  row.p95 = totals.lat_us.P95();
  row.p99 = totals.lat_us.P99();
  row.p999 = totals.lat_us.P999();
  row.remote_per_op = static_cast<double>(net.remote_messages) / ops;
  row.combined_per_op = static_cast<double>(net.combined_actions) / ops;
  row.fastpath_per_op = static_cast<double>(net.fastpath_reads) / ops;
  row.completed = totals.completed;
  row.not_found = totals.not_found;
  row.failed = totals.failed;
  return row;
}

// --- output ---------------------------------------------------------------

void PrintRows(const std::vector<Row>& rows) {
  Table table({"scenario", "transport", "ops/sec", "p50µs", "p95µs",
               "p99µs", "p999µs", "rmsg/op", "comb/op", "fast/op",
               "not_found"});
  table.Header();
  for (const Row& r : rows) {
    table.Row({r.scenario, r.transport, Fmt("%.0f", r.ops_per_sec),
               Fmt("%.1f", r.p50), Fmt("%.1f", r.p95), Fmt("%.1f", r.p99),
               Fmt("%.1f", r.p999), Fmt("%.2f", r.remote_per_op),
               Fmt("%.2f", r.combined_per_op),
               Fmt("%.2f", r.fastpath_per_op), FmtU(r.not_found)});
  }
  std::printf("\n");
}

void AppendRowJson(std::string& out, const Row& r, const char* extra_key,
                   uint64_t extra_val, bool has_extra) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"scenario\": \"%s\", \"transport\": \"%s\", "
      "\"ops_per_sec\": %.0f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
      "\"p99_us\": %.1f, \"p999_us\": %.1f,\n     "
      "\"remote_msgs_per_op\": %.2f, \"combined_actions_per_op\": %.2f, "
      "\"fastpath_hops_per_op\": %.2f, \"load_seconds\": %.2f, "
      "\"completed\": %llu, \"not_found\": %llu, \"failed\": %llu",
      r.scenario.c_str(), r.transport.c_str(), r.ops_per_sec, r.p50,
      r.p95, r.p99, r.p999, r.remote_per_op, r.combined_per_op,
      r.fastpath_per_op, r.load_seconds,
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.not_found),
      static_cast<unsigned long long>(r.failed));
  out += buf;
  if (has_extra) {
    std::snprintf(buf, sizeof(buf), ", \"%s\": %llu", extra_key,
                  static_cast<unsigned long long>(extra_val));
    out += buf;
  }
  out += "}";
}

struct BatteryResult {
  std::vector<Row> battery;
  std::vector<Row> scaling;   // ycsb-c threads, varying processors
  std::vector<uint32_t> scaling_procs;
  std::vector<Row> ablation;  // ycsb-c threads x {combine,fastpath}
  std::vector<std::string> ablation_labels;
};

void WriteJson(const std::string& path, const BatteryResult& result,
               size_t records, size_t ops, uint32_t procs, uint64_t seed) {
  std::string out = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"bench\": \"PR7 scenario battery\",\n"
                "  \"seed\": %llu,\n  \"records\": %zu,\n"
                "  \"ops\": %zu,\n  \"processors\": %u,\n"
                "  \"protocol\": \"semisync\",\n"
                "  \"hardware_threads\": %u,\n",
                static_cast<unsigned long long>(seed), records, ops, procs,
                AvailableCpus());
  out += buf;
  out += "  \"scenarios\": [\n";
  for (size_t i = 0; i < result.battery.size(); ++i) {
    AppendRowJson(out, result.battery[i], nullptr, 0, false);
    out += i + 1 < result.battery.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"scaling_ycsb_c_threads\": [\n";
  for (size_t i = 0; i < result.scaling.size(); ++i) {
    AppendRowJson(out, result.scaling[i], "threads",
                  result.scaling_procs[i], true);
    out += i + 1 < result.scaling.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"ablation_ycsb_c_threads\": [\n";
  for (size_t i = 0; i < result.ablation.size(); ++i) {
    out += "    {\"config\": \"" + result.ablation_labels[i] + "\",\n ";
    std::string row_json;
    AppendRowJson(row_json, result.ablation[i], nullptr, 0, false);
    // Merge: drop the row's opening brace, keep its fields.
    out += row_json.substr(row_json.find('{') + 1);
    out += i + 1 < result.ablation.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

int Run(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  size_t records = 50000;
  size_t ops = 30000;
  uint32_t procs = 8;
  const uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      records = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
      procs = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--smoke] [--records N] "
                   "[--ops N] [--procs N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    records = 2000;
    ops = 2000;
    procs = 4;
  }

  Banner("E-YCSB", "scenario battery (ROADMAP item 2)",
         "A-F mixes + hotspot-shift + churn on both transports; ycsb-c "
         "thread-scaling grid and multicore-knob ablation.");
  std::printf("records=%zu ops=%zu processors=%u hardware_threads=%u\n\n",
              records, ops, procs, AvailableCpus());

  BatteryResult result;
  const size_t n_specs =
      smoke ? 3 : sizeof(kSpecs) / sizeof(kSpecs[0]);
  const Spec* smoke_specs[] = {&kSpecs[0], &kSpecs[2], &kSpecs[3]};
  for (size_t i = 0; i < n_specs; ++i) {
    const Spec& spec = smoke ? *smoke_specs[i] : kSpecs[i];
    result.battery.push_back(
        RunSimScenario(spec, records, ops, procs, seed));
    result.battery.push_back(
        RunThreadsScenario(spec, records, ops, procs, seed));
    std::printf("%s done\n", spec.name);
  }
  std::printf("\n");
  PrintRows(result.battery);

  // Scaling grid: search-heavy ycsb-c, threads transport, 1 -> 16
  // processor threads (one client per processor).
  const Spec& ycsb_c = kSpecs[2];
  std::vector<uint32_t> grid =
      smoke ? std::vector<uint32_t>{1, 2}
            : std::vector<uint32_t>{1, 2, 4, 8, 16};
  for (uint32_t p : grid) {
    result.scaling.push_back(
        RunThreadsScenario(ycsb_c, records, ops, p, seed));
    result.scaling_procs.push_back(p);
  }
  std::printf("ycsb-c threads scaling (1 hardware thread available: %u)\n",
              AvailableCpus());
  Table sc({"threads", "ops/sec", "speedup", "rmsg/op", "p99µs"});
  sc.Header();
  for (size_t i = 0; i < result.scaling.size(); ++i) {
    sc.Row({FmtU(result.scaling_procs[i]),
            Fmt("%.0f", result.scaling[i].ops_per_sec),
            Fmt("%.2f", result.scaling[i].ops_per_sec /
                            result.scaling[0].ops_per_sec),
            Fmt("%.2f", result.scaling[i].remote_per_op),
            Fmt("%.1f", result.scaling[i].p99)});
  }
  std::printf("\n");

  // Ablation: what each multicore knob buys on the hot-read mix.
  if (!smoke) {
    struct Knobs { const char* label; int8_t combine, fastpath; };
    const Knobs knobs[] = {
        {"baseline (both off)", 0, 0},
        {"combine only", 1, 0},
        {"fastpath only", 0, 1},
        {"combine+fastpath", 1, 1},
    };
    for (const Knobs& k : knobs) {
      result.ablation.push_back(RunThreadsScenario(
          ycsb_c, records, ops, procs, seed, k.combine, k.fastpath));
      result.ablation_labels.push_back(k.label);
    }
    std::printf("ycsb-c threads ablation (%u processors)\n", procs);
    Table ab({"config", "ops/sec", "rmsg/op", "comb/op", "fast/op",
              "p99µs"});
    ab.Header();
    for (size_t i = 0; i < result.ablation.size(); ++i) {
      const Row& r = result.ablation[i];
      ab.Row({result.ablation_labels[i], Fmt("%.0f", r.ops_per_sec),
              Fmt("%.2f", r.remote_per_op), Fmt("%.2f", r.combined_per_op),
              Fmt("%.2f", r.fastpath_per_op), Fmt("%.1f", r.p99)});
    }
    std::printf("\n");
  }

  if (!json_path.empty()) {
    WriteJson(json_path, result, records, ops, procs, seed);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace lazytree::bench

int main(int argc, char** argv) {
  return lazytree::bench::Run(argc, argv);
}
