// C2 — §1/§3 claim: lazy updates make replica maintenance cheap; the
// alternative (an available-copies / AAS round per update) is
// prohibitively expensive.
//
// Insert-heavy workload on replicated leaves: messages per insert and
// wall-clock throughput, lazy semi-synchronous protocol vs. the vigorous
// lock-all-copies baseline, sweeping the replication factor.

#include "bench/bench_util.h"

namespace lazytree {
namespace {

struct Cost {
  double msgs_per_insert = 0;
  double ops_per_sec = 0;
};

Cost RunOne(ProtocolKind protocol, uint32_t copies) {
  ClusterOptions o;
  o.processors = copies;
  o.protocol = protocol;
  o.transport = TransportKind::kThreads;
  o.tree.max_entries = 16;
  o.tree.leaf_replication = copies;
  o.tree.track_history = false;
  Cluster cluster(o);
  cluster.Start();
  auto result = bench::RunThreadWorkload(cluster, copies, 1500,
                                         /*insert_fraction=*/1.0, 11);
  Cost cost;
  cost.msgs_per_insert = result.RemoteMsgsPerOp();
  cost.ops_per_sec = result.OpsPerSec();
  return cost;
}

void Run() {
  bench::Banner(
      "C2", "§1 — lazy vs. vigorous replica maintenance",
      "Per-insert message cost and throughput: commuting relays\n"
      "(|copies|-1 one-way messages, piggybackable) vs. a lock/ack/apply\n"
      "round (3(|copies|-1)) that also blocks readers.");

  bench::Table table({"copies", "lazy msgs/ins", "vigorous msgs/ins",
                      "ratio", "lazy ops/s", "vigorous ops/s", "speedup"});
  table.Header();
  for (uint32_t copies : {2u, 4u, 8u}) {
    Cost lazy = RunOne(ProtocolKind::kSemiSyncSplit, copies);
    Cost vigorous = RunOne(ProtocolKind::kVigorous, copies);
    table.Row({std::to_string(copies),
               bench::Fmt("%.2f", lazy.msgs_per_insert),
               bench::Fmt("%.2f", vigorous.msgs_per_insert),
               bench::Fmt("%.2fx",
                          vigorous.msgs_per_insert / lazy.msgs_per_insert),
               bench::Fmt("%.0f", lazy.ops_per_sec),
               bench::Fmt("%.0f", vigorous.ops_per_sec),
               bench::Fmt("%.2fx",
                          lazy.ops_per_sec / vigorous.ops_per_sec)});
  }
  std::printf(
      "\nShape check: the vigorous baseline pays ~3x the messages per\n"
      "insert and loses throughput at every replication factor.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
