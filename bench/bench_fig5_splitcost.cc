// F5 — Fig. 5 (synchronous vs. semi-synchronous split ordering).
//
// The paper's analytic claims, measured:
//   * synchronous splits cost 3·|copies(n)| messages (start + ack + end
//     per non-PC copy) and block initial inserts for a round trip;
//   * semi-synchronous splits cost |copies(n)| messages (one relayed
//     split per non-PC copy — "and therefore is optimal") and never
//     block an insert.

#include "bench/bench_util.h"
#include "src/protocol/sync_split.h"

namespace lazytree {
namespace {

struct SplitCost {
  double msgs_per_split = 0;
  double predicted = 0;
  uint64_t splits = 0;
  uint64_t deferred_inserts = 0;
};

SplitCost RunOne(ProtocolKind protocol, uint32_t copies, uint64_t seed) {
  ClusterOptions o;
  o.processors = copies;
  o.protocol = protocol;
  o.transport = TransportKind::kSim;
  o.seed = seed;
  o.tree.max_entries = 4;
  o.tree.leaf_replication = copies;  // every split coordinates `copies`
  o.tree.interior_replication = 0;   // interior everywhere too
  o.tree.track_history = false;
  Cluster cluster(o);
  cluster.Start();

  Rng rng(seed + 5);
  std::set<Key> keys;
  while (keys.size() < 1200) keys.insert(rng.Range(1, 1ull << 40));
  size_t i = 0;
  for (Key k : keys) {
    cluster.InsertAsync(static_cast<ProcessorId>(i++ % copies), k, 1,
                        [](const OpResult&) {});
  }
  cluster.Settle();
  auto net = cluster.NetStats();
  auto snap = net;

  SplitCost cost;
  if (protocol == ProtocolKind::kSyncSplit) {
    cost.splits = snap.ActionCount(ActionKind::kSplitEnd) / (copies - 1);
    const uint64_t coordination = snap.ActionCount(ActionKind::kSplitStart) +
                                  snap.ActionCount(ActionKind::kSplitAck) +
                                  snap.ActionCount(ActionKind::kSplitEnd);
    cost.msgs_per_split =
        cost.splits ? static_cast<double>(coordination) / cost.splits : 0;
    cost.predicted = 3.0 * (copies - 1);
    for (ProcessorId id = 0; id < copies; ++id) {
      cost.deferred_inserts += static_cast<SyncSplitProtocol*>(
                                   cluster.processor(id).handler())
                                   ->deferred_inserts();
    }
  } else {
    cost.splits = snap.ActionCount(ActionKind::kRelayedSplit) / (copies - 1);
    cost.msgs_per_split =
        cost.splits ? static_cast<double>(
                          snap.ActionCount(ActionKind::kRelayedSplit)) /
                          cost.splits
                    : 0;
    cost.predicted = static_cast<double>(copies - 1);
  }
  return cost;
}

void Run() {
  bench::Banner(
      "F5", "Fig. 5 — split coordination cost",
      "Messages per split: synchronous = 3(|copies|-1) with inserts\n"
      "blocked during the AAS; semi-synchronous = |copies|-1 relays with\n"
      "zero blocking (optimal).");

  bench::Table table({"copies", "sync msgs/split", "(predicted)",
                      "sync deferred", "semi msgs/split", "(predicted)",
                      "semi deferred"});
  table.Header();

  for (uint32_t copies : {2u, 4u, 8u, 16u}) {
    SplitCost sync = RunOne(ProtocolKind::kSyncSplit, copies, 2);
    SplitCost semi = RunOne(ProtocolKind::kSemiSyncSplit, copies, 2);
    table.Row({std::to_string(copies),
               bench::Fmt("%.1f", sync.msgs_per_split),
               bench::Fmt("%.1f", sync.predicted),
               bench::FmtU(sync.deferred_inserts),
               bench::Fmt("%.1f", semi.msgs_per_split),
               bench::Fmt("%.1f", semi.predicted),
               "0"});
  }
  // Part 2 — the *time* cost of blocking, in simulated microseconds:
  // with a 200µs one-way network, a synchronous split stalls deferred
  // inserts for at least a lock round trip; semi-synchronous inserts
  // never wait on split coordination.
  std::printf(
      "\nInsert latency under split-heavy load (simulated µs; 200µs "
      "one-way +/-100):\n");
  bench::Table lat({"protocol", "copies", "p50", "p95", "p99", "max"});
  lat.Header();
  for (ProtocolKind protocol :
       {ProtocolKind::kSyncSplit, ProtocolKind::kSemiSyncSplit}) {
    for (uint32_t copies : {4u, 8u}) {
      ClusterOptions o;
      o.processors = copies;
      o.protocol = protocol;
      o.transport = TransportKind::kSim;
      o.seed = 3;
      o.sim_latency_us = 200;
      o.sim_jitter_us = 100;
      o.tree.max_entries = 4;
      o.tree.leaf_replication = copies;
      o.tree.interior_replication = 0;
      o.tree.track_history = false;
      Cluster cluster(o);
      cluster.Start();
      Histogram latency = bench::RunSimLatencyWorkload(
          cluster, 1500, /*insert_fraction=*/1.0, 7);
      lat.Row({ProtocolKindName(protocol), std::to_string(copies),
               bench::Fmt("%.0f", latency.P50()),
               bench::Fmt("%.0f", latency.P95()),
               bench::Fmt("%.0f", latency.P99()),
               bench::FmtU(latency.max())});
    }
  }
  std::printf(
      "\nShape check: sync/semi message ratio is 3x at every copy count;\n"
      "only the synchronous protocol ever defers an insert, and its\n"
      "latency tail grows with the AAS round trips.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
