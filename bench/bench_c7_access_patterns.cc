// C7 — access-pattern sensitivity (supplementary experiment).
//
// The dB-tree's costs depend on *where* the traffic goes:
//   * sequential ingest concentrates every insert on the rightmost leaf
//     — the load-balancing motivation of [14]; online shedding
//     (§4.2/§4.3) spreads it;
//   * Zipfian reads concentrate on a few hot paths, which interior
//     replication serves locally;
//   * uniform traffic is the neutral baseline.
// Reported per pattern: per-processor load concentration (serial-
// processor makespan model) and messages per op, with and without the
// countermeasure the paper proposes.

#include <set>

#include "bench/bench_util.h"
#include "src/workload/generator.h"

namespace lazytree {
namespace {

struct PatternResult {
  double max_share = 0;  // hottest processor's fraction of all actions
  double msgs_per_op = 0;
};

PatternResult RunPattern(const std::string& pattern, bool countermeasure,
                         uint64_t seed) {
  ClusterOptions o;
  o.processors = 6;
  o.protocol = ProtocolKind::kVarCopies;
  o.transport = TransportKind::kSim;
  o.seed = seed;
  o.tree.max_entries = 8;
  o.tree.track_history = false;
  if (countermeasure) o.tree.shed_threshold = 6;  // online balancing
  Cluster cluster(o);
  cluster.Start();

  workload::OpMix mix;
  mix.insert = 0.6;
  mix.search = 0.4;
  workload::Generator gen(mix,
                          workload::MakeDistribution(pattern, 1u << 30),
                          seed + 1);

  std::vector<uint64_t> before(o.processors);
  for (ProcessorId id = 0; id < o.processors; ++id) {
    before[id] = cluster.processor(id).actions_handled();
  }
  auto net_before = cluster.NetStats();
  constexpr size_t kOps = 5000;
  Rng home_rng(seed + 2);
  for (size_t i = 0; i < kOps; ++i) {
    workload::GenOp op = gen.Next();
    ProcessorId home = static_cast<ProcessorId>(home_rng.Below(6));
    if (op.type == workload::GenOp::Type::kInsert) {
      cluster.InsertAsync(home, op.key, op.value, [](const OpResult&) {});
    } else {
      cluster.SearchAsync(home, op.key, [](const OpResult&) {});
    }
    if (i % 64 == 63) cluster.Settle();
  }
  cluster.Settle();

  PatternResult result;
  uint64_t total = 0, max_handled = 0;
  for (ProcessorId id = 0; id < o.processors; ++id) {
    uint64_t handled = cluster.processor(id).actions_handled() - before[id];
    total += handled;
    max_handled = std::max(max_handled, handled);
  }
  auto net = cluster.NetStats() - net_before;
  result.max_share = total ? double(max_handled) / total : 0;
  result.msgs_per_op = double(net.remote_messages) / kOps;
  return result;
}

void Run() {
  bench::Banner(
      "C7", "supplementary — access-pattern sensitivity ([14] motivation)",
      "Sequential ingest overloads the rightmost-leaf owner unless leaves\n"
      "shed; skewed reads ride the replicated interior. max-share = the\n"
      "hottest processor's fraction of all executed actions (1/6 = 0.17\n"
      "is perfectly even on 6 processors).");

  bench::Table table({"pattern   ", "max-share", "msgs/op",
                      "max-share (shedding)", "msgs/op (shedding)"});
  table.Header();
  for (const char* pattern :
       {"uniform", "sequential", "zipfian", "hotspot"}) {
    PatternResult plain = RunPattern(pattern, false, 3);
    PatternResult shed = RunPattern(pattern, true, 3);
    table.Row({pattern, bench::Fmt("%.2f", plain.max_share),
               bench::Fmt("%.2f", plain.msgs_per_op),
               bench::Fmt("%.2f", shed.max_share),
               bench::Fmt("%.2f", shed.msgs_per_op)});
  }
  std::printf(
      "\nShape check: sequential ingest shows the worst concentration\n"
      "without shedding and the biggest improvement with it; uniform is\n"
      "near-even either way.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
