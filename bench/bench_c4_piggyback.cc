// C4 — §1.1 claim: "the lazy update can be piggybacked onto messages used
// for other purposes, greatly reducing the cost of replication
// management."
//
// Relayed updates commute, so they can ride later messages for free.
// Sweep the piggyback window and measure real network messages and bytes
// per operation on an insert-heavy replicated workload.

#include "bench/bench_util.h"

namespace lazytree {
namespace {

void Run() {
  bench::Banner(
      "C4", "§1.1 — piggybacking relayed updates",
      "Commuting relays buffered per destination and flushed onto the\n"
      "next message for that destination: same correctness, fewer\n"
      "messages on the wire.");

  bench::Table table({"window", "remote msgs/op", "bytes/op",
                      "piggybacked", "correct"});
  table.Header();

  for (size_t window : {size_t{0}, size_t{2}, size_t{8}, size_t{32}}) {
    ClusterOptions o;
    o.processors = 6;
    o.protocol = ProtocolKind::kSemiSyncSplit;
    o.transport = TransportKind::kSim;
    o.seed = 5;
    o.tree.max_entries = 8;
    o.tree.leaf_replication = 3;
    o.tree.track_history = true;
    o.piggyback_window = window;
    Cluster cluster(o);
    cluster.Start();

    auto result = bench::RunSimWorkload(cluster, 5000,
                                        /*insert_fraction=*/0.8, 17);
    auto report = cluster.VerifyHistories();
    uint64_t piggybacked =
        window == 0 ? 0 : cluster.network().stats().Snapshot()
                              .piggybacked_actions;
    table.Row({window == 0 ? "off" : std::to_string(window),
               bench::Fmt("%.2f", result.RemoteMsgsPerOp()),
               bench::Fmt("%.0f", result.BytesPerOp()),
               bench::FmtU(piggybacked), report.ok() ? "yes" : "NO"});
    if (!report.ok()) std::printf("%s\n", report.ToString().c_str());
  }
  std::printf(
      "\nShape check: messages per op fall as the window grows while the\n"
      "history checks keep passing — delaying commuting relays is free.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
