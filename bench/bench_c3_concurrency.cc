// C3 — §1.1 claim: "the dB-tree not only supports concurrent read actions
// on different copies of its nodes, it supports concurrent reads and
// updates, and also concurrent updates."
//
// Mixed read/update load focused on a small hot key range (maximizing
// same-node contention). Lazy updates never block a search; the vigorous
// baseline's per-update AAS defers reads at every locked copy. We measure
// mixed throughput and the number of reader deferrals.

#include "bench/bench_util.h"

namespace lazytree {
namespace {

struct Mixed {
  double ops_per_sec = 0;
  uint64_t lock_rounds = 0;  // vigorous lock messages (each defers reads)
};

Mixed RunOne(ProtocolKind protocol, double insert_fraction) {
  ClusterOptions o;
  o.processors = 6;
  o.protocol = protocol;
  o.transport = TransportKind::kThreads;
  o.tree.max_entries = 24;
  o.tree.leaf_replication = 3;  // hot leaves are replicated
  o.tree.track_history = false;
  Cluster cluster(o);
  cluster.Start();

  // Hot range: all traffic within [1, 50'000] so node-level contention
  // is real.
  std::vector<std::thread> clients;
  std::atomic<uint64_t> done{0};
  const uint64_t t0 = NowNanos();
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(41 * (c + 1));
      for (int i = 0; i < 2000; ++i) {
        Key k = rng.Range(1, 50000);
        if (rng.NextDouble() < insert_fraction) {
          cluster.Insert(static_cast<ProcessorId>(c), k, 1);
        } else {
          cluster.Search(static_cast<ProcessorId>(c), k);
        }
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  cluster.Settle();
  Mixed out;
  out.ops_per_sec = done.load() / ((NowNanos() - t0) * 1e-9);
  out.lock_rounds =
      cluster.NetStats().ActionCount(ActionKind::kVigorousLock);
  return out;
}

void Run() {
  bench::Banner(
      "C3", "§1.1 — concurrent reads + updates on one node's copies",
      "Hot-range mixed workload: lazy updates serve reads during updates\n"
      "(zero read blocking); the vigorous AAS locks every copy per update\n"
      "and defers reads meanwhile.");

  bench::Table table({"insert_frac", "lazy ops/s", "vigorous ops/s",
                      "speedup", "vig lock msgs"});
  table.Header();
  for (double frac : {0.1, 0.3, 0.5}) {
    Mixed lazy = RunOne(ProtocolKind::kSemiSyncSplit, frac);
    Mixed vig = RunOne(ProtocolKind::kVigorous, frac);
    table.Row({bench::Fmt("%.0f%%", frac * 100),
               bench::Fmt("%.0f", lazy.ops_per_sec),
               bench::Fmt("%.0f", vig.ops_per_sec),
               bench::Fmt("%.2fx", lazy.ops_per_sec / vig.ops_per_sec),
               bench::FmtU(vig.lock_rounds)});
  }
  std::printf(
      "\nShape check: the lazy advantage grows with the update fraction —\n"
      "each vigorous update stalls reads at every copy it locks.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
