// C5 — §4.2/[14] claim: lazy node mobility supports effective,
// low-overhead data balancing; forwarding addresses are an optimization
// that can be garbage-collected at any time.
//
// Skewed ingest onto one processor, then rebalance. Reports: imbalance
// before/after, messages per migrated leaf, search cost before/after
// balancing, and the recovery behaviour with forwarding addresses
// dropped.

#include "bench/bench_util.h"
#include "src/protocol/mobile.h"

namespace lazytree {
namespace {

void Run() {
  bench::Banner(
      "C5", "§4.2 / [14] — lazy mobility enables data balancing",
      "Leaves migrate with one snapshot message + lazy link-changes; the\n"
      "tree serves operations throughout, with or without forwarding\n"
      "addresses.");

  bench::Table table({"protocol", "imbalance pre", "imbalance post",
                      "migrations", "msgs/migration", "hops pre",
                      "hops post", "hops post-GC"});
  table.Header();

  for (ProtocolKind protocol :
       {ProtocolKind::kMobile, ProtocolKind::kVarCopies}) {
    ClusterOptions o;
    o.processors = 6;
    o.protocol = protocol;
    o.transport = TransportKind::kSim;
    o.seed = 9;
    o.tree.max_entries = 8;
    o.tree.track_history = false;
    Cluster cluster(o);
    cluster.Start();

    // Skewed ingest: everything submitted at (and kept on) p0.
    Rng rng(3);
    for (int i = 0; i < 3000; ++i) {
      cluster.InsertAsync(0, rng.Range(1, 1ull << 40), 1,
                          [](const OpResult&) {});
      if (i % 128 == 0) cluster.Settle();
    }
    cluster.Settle();

    auto search_cost = [&](uint64_t seed) {
      auto r = bench::RunSimWorkload(cluster, 2000, 0.0, seed);
      return r.hops.mean();
    };

    Balancer balancer(&cluster);
    auto pre = balancer.Measure();
    double hops_pre = search_cost(31);

    auto net_before = cluster.NetStats();
    auto post = balancer.RebalanceUntil(1.3);
    auto net = cluster.NetStats() - net_before;
    const uint64_t migrations = balancer.migrations_issued();
    double hops_post = search_cost(37);

    // Drop every forwarding address; recovery must still route.
    for (ProcessorId id = 0; id < cluster.size(); ++id) {
      cluster.processor(id).store().DropForwardingAddresses();
    }
    double hops_gc = search_cost(41);

    table.Row({ProtocolKindName(protocol),
               bench::Fmt("%.2fx", pre.imbalance),
               bench::Fmt("%.2fx", post.imbalance),
               bench::FmtU(migrations),
               migrations ? bench::Fmt("%.1f", double(net.remote_messages) /
                                                  migrations)
                          : "-",
               bench::Fmt("%.1f", hops_pre),
               bench::Fmt("%.1f", hops_post),
               bench::Fmt("%.1f", hops_gc)});
  }
  std::printf(
      "\nShape check: imbalance drops to ~1x; per-migration cost is a\n"
      "small constant (snapshot + link-changes); searches stay cheap even\n"
      "after the forwarding addresses are garbage-collected.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
