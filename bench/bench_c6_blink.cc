// C6 — §1.1 rationale: "Concurrent B-link tree algorithms have been found
// to provide the highest concurrency of all concurrent B-tree algorithms"
// — why the B-link tree is the right base for a distributed protocol.
//
// google-benchmark microbenchmarks: the shared-memory B-link tree versus
// a single reader-writer-lock tree across thread counts and mixes.

#include <benchmark/benchmark.h>

#include "src/blink/blink_tree.h"
#include "src/blink/lock_tree.h"
#include "src/util/rng.h"

namespace lazytree {
namespace {

constexpr size_t kPreload = 100000;

template <typename Tree>
std::unique_ptr<Tree> MakePreloaded() {
  auto tree = std::make_unique<Tree>();
  Rng rng(7);
  for (size_t i = 0; i < kPreload; ++i) {
    tree->Insert(rng.Range(1, 1ull << 40), i);
  }
  return tree;
}

template <typename Tree>
void MixedWorkload(benchmark::State& state, Tree& tree,
                   double insert_fraction) {
  Rng rng(1234 + state.thread_index());
  for (auto _ : state) {
    Key k = rng.Range(1, 1ull << 40);
    if (rng.NextDouble() < insert_fraction) {
      benchmark::DoNotOptimize(tree.Insert(k, 1));
    } else {
      benchmark::DoNotOptimize(tree.Search(k));
    }
  }
  state.SetItemsProcessed(state.iterations());
}

BlinkTree* SharedBlink() {
  static BlinkTree* tree = [] {
    auto t = new BlinkTree(64);
    Rng rng(7);
    for (size_t i = 0; i < kPreload; ++i) {
      t->Insert(rng.Range(1, 1ull << 40), i);
    }
    return t;
  }();
  return tree;
}

LockTree* SharedLock() {
  static LockTree* tree = [] {
    auto t = new LockTree();
    Rng rng(7);
    for (size_t i = 0; i < kPreload; ++i) {
      t->Insert(rng.Range(1, 1ull << 40), i);
    }
    return t;
  }();
  return tree;
}

void BM_Blink_ReadOnly(benchmark::State& state) {
  MixedWorkload(state, *SharedBlink(), 0.0);
}
void BM_Lock_ReadOnly(benchmark::State& state) {
  MixedWorkload(state, *SharedLock(), 0.0);
}
void BM_Blink_Mixed20(benchmark::State& state) {
  MixedWorkload(state, *SharedBlink(), 0.2);
}
void BM_Lock_Mixed20(benchmark::State& state) {
  MixedWorkload(state, *SharedLock(), 0.2);
}
void BM_Blink_WriteHeavy(benchmark::State& state) {
  MixedWorkload(state, *SharedBlink(), 0.8);
}
void BM_Lock_WriteHeavy(benchmark::State& state) {
  MixedWorkload(state, *SharedLock(), 0.8);
}

BENCHMARK(BM_Blink_ReadOnly)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_Lock_ReadOnly)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_Blink_Mixed20)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_Lock_Mixed20)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_Blink_WriteHeavy)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_Lock_WriteHeavy)->Threads(1)->Threads(4)->Threads(8);

}  // namespace
}  // namespace lazytree

BENCHMARK_MAIN();
