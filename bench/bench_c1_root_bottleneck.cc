// C1 — §1 claim: "If the root node is not replicated, it becomes a
// bottleneck and overwhelms the node that stores it."
//
// Each simulated processor executes actions serially (the paper's node
// manager model), so the processor with the most actions determines the
// parallel makespan. We run an identical search-heavy workload and
// measure how the action load concentrates: with a single-copy index,
// one processor handles nearly everything; with the dB-tree replication
// policy the load spreads and the achievable speedup tracks the cluster
// size. (This host has one physical core, so load-per-processor — not
// wall-clock — is the faithful scaling metric.)

#include "bench/bench_util.h"

namespace lazytree {
namespace {

struct LoadProfile {
  uint64_t total_actions = 0;
  uint64_t max_actions = 0;
  double implied_speedup() const {
    return max_actions ? static_cast<double>(total_actions) / max_actions
                       : 0;
  }
  double max_share() const {
    return total_actions
               ? static_cast<double>(max_actions) / total_actions
               : 0;
  }
};

LoadProfile RunOne(uint32_t processors, uint32_t interior_replication) {
  ClusterOptions o;
  o.processors = processors;
  o.protocol = ProtocolKind::kSemiSyncSplit;
  o.transport = TransportKind::kSim;
  o.seed = 7;
  o.tree.max_entries = 16;
  o.tree.interior_replication = interior_replication;
  o.tree.track_history = false;
  Cluster cluster(o);
  cluster.Start();
  bench::Preload(cluster, 3000, 7);

  std::vector<uint64_t> before(processors);
  for (ProcessorId id = 0; id < processors; ++id) {
    before[id] = cluster.processor(id).actions_handled();
  }
  bench::RunSimWorkload(cluster, 8000, /*insert_fraction=*/0.05, 3,
                        /*concurrency=*/64);
  LoadProfile profile;
  for (ProcessorId id = 0; id < processors; ++id) {
    uint64_t handled = cluster.processor(id).actions_handled() - before[id];
    profile.total_actions += handled;
    profile.max_actions = std::max(profile.max_actions, handled);
  }
  return profile;
}

void Run() {
  bench::Banner(
      "C1", "§1 — the unreplicated root is a bottleneck",
      "Per-processor action load under a search-heavy workload. Each\n"
      "processor is serial, so max load = makespan: a single-copy index\n"
      "concentrates the work; replication spreads it.");

  bench::Table table({"processors", "x1 max-share", "x1 speedup",
                      "repl max-share", "repl speedup"});
  table.Header();
  for (uint32_t p : {1u, 2u, 4u, 8u, 16u}) {
    LoadProfile single = RunOne(p, 1);
    LoadProfile everywhere = RunOne(p, 0);
    table.Row({std::to_string(p),
               bench::Fmt("%.0f%%", 100 * single.max_share()),
               bench::Fmt("%.2fx", single.implied_speedup()),
               bench::Fmt("%.0f%%", 100 * everywhere.max_share()),
               bench::Fmt("%.2fx", everywhere.implied_speedup())});
  }
  std::printf(
      "\nShape check: with the index unreplicated, one processor's share\n"
      "stays high and the achievable speedup flattens; with the dB-tree\n"
      "policy, load spreads and speedup tracks the processor count.\n");
}

}  // namespace
}  // namespace lazytree

int main() {
  lazytree::Run();
  return 0;
}
